"""Unit tests for the sharded parallel-PDES runtime building blocks."""

import pickle

import pytest

from repro.errors import PdesError, SimulationError
from repro.machine.bgq import BGQParams
from repro.machine.network import TorusNetwork
from repro.sim.engine import Engine
from repro.sim.parallel import (
    ChaosSpec,
    LocalRing,
    ShmRing,
    make_factory,
    plan_shards,
    rank_weights_from_critical_path,
    run_program,
)
from repro.sim.parallel.partition import LOOKAHEAD_SAFETY
from repro.sim.parallel.runner import mapping_for_ranks
from repro.topology.mapping import abcdet_mapping
from repro.topology.partitions import partition_shape


# ------------------------------------------------------------ engine hooks


class TestEngineHooks:
    def test_schedule_at_absolute_time(self):
        eng = Engine()
        order = []
        eng.schedule_at(3e-6, order.append, "late")
        eng.schedule_at(1e-6, order.append, "early")
        eng.run()
        assert order == ["early", "late"]
        assert eng.now == 3e-6

    def test_schedule_at_key_orders_equal_timestamps(self):
        eng = Engine()
        order = []
        # Submission order says "b" first; content keys say "a" first.
        eng.schedule_at(1e-6, order.append, "b", key=(7, 0))
        eng.schedule_at(1e-6, order.append, "a", key=(2, 5))
        eng.run()
        assert order == ["a", "b"]

    def test_schedule_at_rejects_past(self):
        eng = Engine()
        eng.schedule(1e-6, lambda _: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(0.5e-6, lambda _: None)

    def test_next_event_time(self):
        eng = Engine()
        assert eng.next_event_time() is None
        eng.schedule(2e-6, lambda _: None)
        assert eng.next_event_time() == 2e-6

    def test_next_event_time_skips_cancelled_timers(self):
        eng = Engine()
        timer = eng.schedule_timer(1e-6, lambda _: None)
        eng.schedule(5e-6, lambda _: None)
        timer.cancel()
        assert eng.next_event_time() == 5e-6

    def test_exclusive_run_stops_before_horizon(self):
        eng = Engine()
        hits = []
        eng.schedule(1e-6, hits.append, "in")
        eng.schedule(2e-6, hits.append, "at")
        eng.run(until=2e-6, exclusive=True)
        assert hits == ["in"]
        assert eng.now == 2e-6
        eng.run()  # the horizon event still executes later
        assert hits == ["in", "at"]

    def test_inclusive_run_unchanged(self):
        eng = Engine()
        hits = []
        eng.schedule(2e-6, hits.append, "at")
        eng.run(until=2e-6)
        assert hits == ["at"]


# ------------------------------------------------------------------ rings


@pytest.mark.parametrize("ring_cls", [ShmRing, LocalRing])
class TestRings:
    def test_roundtrip(self, ring_cls):
        ring = ring_cls(capacity=4096)
        try:
            ring.push(b"alpha")
            ring.push(b"beta")
            assert ring.pop_all() == [b"alpha", b"beta"]
            assert ring.pop_all() == []
        finally:
            ring.close()
            ring.unlink()

    def test_overflow_raises(self, ring_cls):
        ring = ring_cls(capacity=64)
        try:
            with pytest.raises(PdesError, match="ring overflow"):
                for _ in range(8):
                    ring.push(b"x" * 24)
        finally:
            ring.close()
            ring.unlink()


def test_shm_ring_wraparound():
    ring = ShmRing(capacity=128)
    try:
        # Cursors are monotone byte counts; repeated fill/drain cycles
        # force records to straddle the physical end of the buffer.
        for i in range(64):
            payload = bytes([i]) * (20 + i % 31)
            ring.push(payload)
            assert ring.pop_all() == [payload]
    finally:
        ring.close()
        ring.unlink()


# -------------------------------------------------------------- partition


class TestPartition:
    def setup_method(self):
        self.params = BGQParams()
        self.mapping = abcdet_mapping(partition_shape(8), 16)  # 128 ranks

    def test_plan_invariants(self):
        plan = plan_shards(self.mapping, 4, self.params)
        assert plan.bounds[0] == 0 and plan.bounds[-1] == 128
        assert list(plan.bounds) == sorted(set(plan.bounds))
        for shard in range(plan.shards):
            for rank in plan.ranks_of(shard):
                assert plan.shard_of(rank) == shard

    def test_node_aligned_boundaries(self):
        plan = plan_shards(self.mapping, 4, self.params)
        assert plan.node_aligned
        assert all(b % 16 == 0 for b in plan.bounds)
        expected = (
            self.params.am_send_overhead + self.params.hop_latency
        ) * LOOKAHEAD_SAFETY
        assert plan.lookahead == pytest.approx(expected)

    def test_node_split_shrinks_lookahead(self):
        # 4 shards over 32 ranks on 2 nodes must split nodes.
        plan = plan_shards(self.mapping, 4, self.params, num_ranks=32)
        assert not plan.node_aligned
        assert plan.lookahead == pytest.approx(
            self.params.shm_latency * LOOKAHEAD_SAFETY
        )

    def test_weights_bias_boundaries(self):
        # Pile all the weight on the first quarter of the ranks: shard 0
        # should shrink well below the uniform 64-rank split.
        weights = [10.0] * 32 + [1.0] * 96
        plan = plan_shards(self.mapping, 2, self.params, rank_weights=weights)
        assert plan.bounds[1] < 64

    def test_every_shard_nonempty(self):
        plan = plan_shards(self.mapping, 7, self.params, num_ranks=9)
        sizes = [len(plan.ranks_of(s)) for s in range(7)]
        assert all(size >= 1 for size in sizes)
        assert sum(sizes) == 9

    def test_rejects_bad_inputs(self):
        with pytest.raises(PdesError):
            plan_shards(self.mapping, 0, self.params)
        with pytest.raises(PdesError):
            plan_shards(self.mapping, 5, self.params, num_ranks=4)
        with pytest.raises(PdesError):
            plan_shards(self.mapping, 2, self.params, rank_weights=[1.0])

    def test_critical_path_weights(self):
        class Seg:
            def __init__(self, rank, duration):
                self.rank = rank
                self.duration = duration

        class Report:
            segments = [Seg(0, 3e-6), Seg(0, 1e-6), Seg(2, 8e-6), Seg(99, 1.0)]

        weights = rank_weights_from_critical_path(Report(), 4)
        assert len(weights) == 4
        assert weights[2] > weights[0] > weights[1] == weights[3] == 1.0

    def test_mapping_for_ranks_rounds_up(self):
        mapping = mapping_for_ranks(10_000, 16)
        assert mapping.num_ranks >= 10_000
        with pytest.raises(PdesError):
            mapping_for_ranks(0)


# ------------------------------------------------- network shard safety


class TestNetworkShardSafety:
    def setup_method(self):
        self.mapping = abcdet_mapping(partition_shape(8), 16)
        self.params = BGQParams()

    def _traffic(self, net):
        net.put_timing(0, 20, 4096)
        net.get_timing(0, 40, 512)
        net.packet_arrival(3, 90)

    def test_clones_share_no_cache_state(self):
        base = TorusNetwork(Engine(), self.mapping, self.params)
        a = base.shard_clone(Engine())
        b = base.shard_clone(Engine())
        self._traffic(a)
        # a's FIFO clocks and memo caches moved; b's must be untouched.
        assert a._inject_free and a._hops_cache and a._node_cache
        for name in TorusNetwork._MUTABLE_CACHES:
            assert getattr(b, name) == {}, f"{name} leaked between shards"
            assert getattr(base, name) == {}, f"{name} leaked to the template"
        # Immutable inputs are genuinely shared, not copied.
        assert a.mapping is b.mapping is base.mapping
        assert a.params is b.params is base.params

    def test_clone_timing_matches_fresh_instance(self):
        a = TorusNetwork(Engine(), self.mapping, self.params)
        b = TorusNetwork(Engine(), self.mapping, self.params).shard_clone(Engine())
        ta = a.put_timing(0, 20, 4096)
        tb = b.put_timing(0, 20, 4096)
        assert ta == tb

    def test_clear_caches(self):
        net = TorusNetwork(Engine(), self.mapping, self.params)
        self._traffic(net)
        net.clear_caches()
        for name in TorusNetwork._MUTABLE_CACHES:
            assert getattr(net, name) == {}

    def test_pickle_drops_engine_and_caches(self):
        net = TorusNetwork(Engine(), self.mapping, self.params)
        self._traffic(net)
        clone = pickle.loads(pickle.dumps(net))
        assert clone.engine is None
        for name in TorusNetwork._MUTABLE_CACHES:
            assert getattr(clone, name) == {}
        # The original keeps its state: pickling is a read-only export.
        assert net._inject_free


# ----------------------------------------------------- runner / job knob


class TestRunner:
    def test_single_matches_inline(self):
        n = 32
        base = run_program(make_factory("clique", n, ops=4, seed=1), n, shards=1)
        alt = run_program(
            make_factory("clique", n, ops=4, seed=1), n, shards=2, mode="inline"
        )
        assert alt.schedule_digest == base.schedule_digest
        assert alt.results == base.results
        assert alt.delivered == base.delivered

    def test_seed_changes_digest(self):
        n = 32
        a = run_program(make_factory("clique", n, ops=4, seed=1), n)
        b = run_program(make_factory("clique", n, ops=4, seed=2), n)
        assert a.schedule_digest != b.schedule_digest

    def test_metrics_merged_across_shards(self):
        n = 32
        r = run_program(
            make_factory("clique", n, ops=4, seed=1), n, shards=2, mode="inline"
        )
        snap = r.metrics.snapshot(per_rank=True)
        assert snap["counters"]["pdes.delivered"] == r.delivered
        assert len(snap["per_rank"]["counters"]["pdes.delivered"]) == n

    def test_chaos_requires_valid_spec(self):
        with pytest.raises(PdesError):
            ChaosSpec(drop_mod=1)

    def test_mode_validation(self):
        with pytest.raises(PdesError):
            run_program(make_factory("clique", 8, ops=1), 8, mode="warp")
        with pytest.raises(PdesError):
            run_program(make_factory("clique", 8, ops=1), 8, shards=2, mode="single")

    def test_unknown_workload(self):
        with pytest.raises(PdesError):
            make_factory("nope", 8)

    def test_armci_config_shard_plan(self):
        from repro.armci import ArmciConfig, ArmciJob
        from repro.errors import ArmciError

        job = ArmciJob(num_procs=64, config=ArmciConfig(shards=2))
        assert job.shard_plan is not None
        assert job.shard_plan.shards == 2
        assert job.shard_plan.num_ranks == 64
        assert ArmciJob(num_procs=64).shard_plan is None
        with pytest.raises(ArmciError):
            ArmciConfig(shards=0)
