"""Tests for the zero-copy data plane and chunk-run coalescing.

Covers the descriptor-level run merging (StridedDescriptor/IoVector),
the AddressSpace view/write_into primitives, the engine zero-delay fast
lane, end-to-end transfers with coalescing on/off, the aggregation
buffer regrow fix, and coalescing under randomized schedules with the
happens-before oracle attached.
"""

import numpy as np
import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.armci.vector import IoVector
from repro.errors import ArmciError, PamiError
from repro.pami.memory import AddressSpace, as_u8
from repro.sim.engine import Engine, SchedulePolicy
from repro.types import StridedDescriptor, StridedShape


def make_job(num_procs=2, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=kwargs.pop("procs_per_node", 1),
        **kwargs,
    )
    job.init()
    return job


# ----------------------------------------------------- descriptor merging


class TestStridedCoalescedRuns:
    def test_degenerate_single_chunk(self):
        desc = StridedDescriptor(StridedShape(128), (), ())
        assert desc.coalesced_runs() == [(0, 0, 128)]

    def test_fully_contiguous_collapses_to_one_run(self):
        # chunk_bytes == stride on both sides: one RDMA for the patch.
        desc = StridedDescriptor(StridedShape(64, (8,)), (64,), (64,))
        assert desc.coalesced_runs() == [(0, 0, 8 * 64)]

    def test_gapped_both_sides_never_merges(self):
        desc = StridedDescriptor(StridedShape(64, (4,)), (128,), (128,))
        runs = desc.coalesced_runs()
        assert len(runs) == 4
        assert all(n == 64 for _s, _d, n in runs)

    def test_contiguous_on_one_side_only_never_merges(self):
        # Source is packed but the destination has gaps: the NIC cannot
        # fold the pair into one op, so no run forms (and vice versa).
        src_only = StridedDescriptor(StridedShape(64, (4,)), (64,), (256,))
        dst_only = StridedDescriptor(StridedShape(64, (4,)), (256,), (64,))
        assert len(src_only.coalesced_runs()) == 4
        assert len(dst_only.coalesced_runs()) == 4

    def test_multidim_inner_contiguous_merges_per_row(self):
        # Inner dim packed, outer dim strided: one run per outer row.
        desc = StridedDescriptor(
            StridedShape(32, (4, 3)), (32, 1024), (32, 2048)
        )
        runs = desc.coalesced_runs()
        assert len(runs) == 3
        assert all(n == 4 * 32 for _s, _d, n in runs)

    def test_runs_preserve_total_bytes_and_mapping(self):
        desc = StridedDescriptor(StridedShape(16, (5,)), (16,), (16,))
        runs = desc.coalesced_runs()
        assert sum(n for _s, _d, n in runs) == desc.shape.total_bytes


class TestVectorCoalescedSegments:
    def test_adjacent_both_sides_merge(self):
        vec = IoVector((0, 64, 128), (1000, 1064, 1128), (64, 64, 64))
        assert vec.coalesced_segments() == [(0, 1000, 192)]

    def test_gap_breaks_run(self):
        vec = IoVector((0, 64, 256), (1000, 1064, 1256), (64, 64, 64))
        assert vec.coalesced_segments() == [(0, 1000, 128), (256, 1256, 64)]

    def test_one_side_adjacency_insufficient(self):
        # Local side adjacent, remote side gapped: no merge.
        vec = IoVector((0, 64), (1000, 2000), (64, 64))
        assert vec.coalesced_segments() == [(0, 1000, 64), (64, 2000, 64)]

    def test_single_segment(self):
        vec = IoVector((0,), (512,), (48,))
        assert vec.coalesced_segments() == [(0, 512, 48)]

    def test_zero_length_segment_rejected(self):
        with pytest.raises(ArmciError):
            IoVector((0, 64), (100, 164), (64, 0))


class TestZeroLengthTransfers:
    def test_zero_chunk_descriptor_rejected(self):
        with pytest.raises(ArmciError):
            StridedShape(0, (4,))

    def test_zero_byte_put_rejected(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(64)
            if rt.rank == 0:
                src = rt.world.space(0).allocate(64)
                with pytest.raises(PamiError):
                    yield from rt.put(1, src, alloc.addr(1), 0)
            yield from rt.barrier()

        job.run(body)


# ----------------------------------------------------- memory primitives


class TestAddressSpaceZeroCopy:
    def test_write_into_accepts_all_buffer_flavours(self):
        sp = AddressSpace()
        a = sp.allocate(64)
        sp.write_into(a, b"\x01" * 16)
        sp.write_into(a + 16, memoryview(b"\x02" * 16))
        sp.write_into(a + 32, np.full(16, 3, dtype=np.uint8))
        sp.write_into(a + 48, np.full(2, 0.0, dtype=np.float64))
        assert sp.read(a, 16) == b"\x01" * 16
        assert sp.read(a + 16, 16) == b"\x02" * 16
        assert sp.read(a + 32, 16) == b"\x03" * 16
        assert sp.read(a + 48, 16) == b"\x00" * 16

    def test_view_is_zero_copy(self):
        sp = AddressSpace()
        a = sp.allocate(32)
        view = sp.view(a, 32)
        view[:] = 7
        assert sp.read(a, 32) == b"\x07" * 32

    def test_snapshot_is_private(self):
        sp = AddressSpace()
        a = sp.allocate(8)
        snap = sp.snapshot(a, 8)
        sp.write_into(a, b"\xff" * 8)
        assert bytes(snap) == b"\x00" * 8

    def test_as_u8_reinterprets_without_copy(self):
        arr = np.arange(4, dtype=np.float64)
        u8 = as_u8(arr)
        assert u8.size == 32
        arr[0] = 9.0
        assert as_u8(arr)[0] == u8[0]  # same backing memory

    def test_free_uses_sorted_bases(self):
        sp = AddressSpace()
        bases = [sp.allocate(16) for _ in range(8)]
        for base in bases[::2]:
            sp.free(base)
        for base in bases[1::2]:  # survivors still addressable
            sp.write_into(base, b"x" * 16)
        with pytest.raises(PamiError):
            sp.free(bases[0])

    def test_i64_view_roundtrip(self):
        sp = AddressSpace()
        a = sp.allocate(8)
        cell = sp.i64_view(a)
        cell[0] = -42
        assert sp.read_i64(a) == -42


# ----------------------------------------------------- engine fast lane


class TestEngineFastLane:
    def test_zero_delay_fifo_merges_with_heap_order(self):
        eng = Engine()
        order = []
        eng.schedule(0.0, lambda a: order.append(a), 1)
        eng.schedule(1e-9, lambda a: order.append(a), 2)
        eng.schedule(0.0, lambda a: order.append(a), 3)
        eng.run()
        assert order == [1, 3, 2]

    def test_equivalent_to_explicit_fifo_policy(self):
        """Fast lane must replay the exact heap-only FIFO schedule."""

        def workload(engine):
            log = []

            def chain(depth):
                def cb(_):
                    log.append(depth)
                    if depth < 5:
                        engine.schedule(0.0, chain(depth + 1))
                        engine.schedule(1e-9 * depth, chain(depth + 2))
                return cb

            engine.schedule(0.0, chain(0))
            engine.schedule(0.0, chain(1))
            engine.run()
            return log, engine.events_executed, engine.now

        fast = workload(Engine())  # fast lane active
        slow = workload(Engine(policy=SchedulePolicy()))  # heap-only FIFO
        assert fast == slow

    def test_cancelled_zero_delay_timer_skipped(self):
        eng = Engine()
        fired = []
        timer = eng.schedule_timer(0.0, lambda a: fired.append(a), "x")
        timer.cancel()
        eng.schedule(0.0, lambda a: fired.append(a), "y")
        eng.run()
        assert fired == ["y"]
        assert eng.events_executed == 1

    def test_fast_lane_disabled_when_recording(self):
        eng = Engine(record_schedule=True)
        eng.schedule(0.0, lambda a: None)
        eng.run()
        assert len(eng.schedule_log) == 1


# ------------------------------------------------- end-to-end coalescing


class TestCoalescingEndToEnd:
    def _strided_roundtrip(self, config, desc, nbytes):
        job = make_job(config=config)

        def body(rt):
            alloc = yield from rt.malloc(nbytes)
            if rt.rank == 0:
                space = rt.world.space(0)
                src = space.allocate(nbytes)
                back = space.allocate(nbytes)
                payload = np.random.default_rng(7).integers(
                    0, 256, nbytes, dtype=np.uint8
                )
                space.write_into(src, payload)
                yield from rt.puts(1, src, alloc.addr(1), desc)
                yield from rt.fence(1)
                yield from rt.gets(1, back, alloc.addr(1), desc)
                # Only the chunk regions travel; gap bytes stay zero.
                chunk = desc.shape.chunk_bytes
                got = space.view(back, nbytes)
                for off in desc.chunk_offsets("src"):
                    assert np.array_equal(
                        got[off:off + chunk], payload[off:off + chunk]
                    )
            yield from rt.barrier()

        job.run(body)
        return job

    def test_contiguous_descriptor_posts_single_rdma(self):
        desc = StridedDescriptor(StridedShape(64, (16,)), (64,), (64,))
        job = self._strided_roundtrip(
            ArmciConfig(coalesce_chunks=True), desc, 16 * 64
        )
        # 1 put + 1 get, each collapsed to exactly one RDMA.
        assert job.trace.count("armci.strided_rdma_ops") == 2
        assert job.trace.count("armci.strided_chunks_coalesced") == 2 * 15

    def test_coalescing_off_posts_one_rdma_per_chunk(self):
        desc = StridedDescriptor(StridedShape(64, (16,)), (64,), (64,))
        job = self._strided_roundtrip(ArmciConfig(), desc, 16 * 64)
        assert job.trace.count("armci.strided_rdma_ops") == 2 * 16
        assert job.trace.count("armci.strided_chunks_coalesced") == 0

    def test_gapped_descriptor_unaffected_by_coalescing(self):
        desc = StridedDescriptor(StridedShape(64, (8,)), (128,), (128,))
        job = self._strided_roundtrip(
            ArmciConfig(coalesce_chunks=True), desc, 8 * 128
        )
        assert job.trace.count("armci.strided_rdma_ops") == 2 * 8

    def test_vector_adjacent_segments_collapse(self):
        segs, seg = 12, 32
        span = segs * seg
        job = make_job(config=ArmciConfig(coalesce_chunks=True))

        def body(rt):
            alloc = yield from rt.malloc(span)
            if rt.rank == 0:
                space = rt.world.space(0)
                src = space.allocate(span)
                payload = np.arange(span, dtype=np.uint8) % 251
                space.write_into(src, payload)
                vec = IoVector(
                    tuple(src + i * seg for i in range(segs)),
                    tuple(alloc.addr(1) + i * seg for i in range(segs)),
                    (seg,) * segs,
                )
                yield from rt.putv(1, vec)
                yield from rt.fence(1)
                back = space.allocate(span)
                rvec = IoVector(
                    tuple(back + i * seg for i in range(segs)),
                    tuple(alloc.addr(1) + i * seg for i in range(segs)),
                    (seg,) * segs,
                )
                yield from rt.getv(1, rvec)
                assert np.array_equal(space.view(back, span), payload)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.vector_rdma_ops") == 2
        assert job.trace.count("armci.vector_segments_coalesced") == 2 * (segs - 1)

    def test_auto_protocol_opts_in_by_default(self):
        assert ArmciConfig(strided_protocol="auto").coalesce_effective
        assert not ArmciConfig().coalesce_effective
        assert not ArmciConfig(
            strided_protocol="auto", coalesce_chunks=False
        ).coalesce_effective
        assert ArmciConfig(coalesce_chunks=True).coalesce_effective

    def test_invalid_coalesce_value_rejected(self):
        with pytest.raises(ArmciError):
            ArmciConfig(coalesce_chunks="yes")


# ----------------------------------------------- aggregation buffer fix


class TestAggregationBufferRegrow:
    def test_regrow_frees_previous_segment(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(512 * 1024)
            yield from rt.barrier()
            if rt.rank == 0:
                space = rt.world.space(0)
                src = space.allocate(256 * 1024)
                # First flush sizes the buffer at the 64 KiB floor...
                agg = rt.aggregate(1)
                agg.put(src, alloc.addr(1), 1024)
                yield from agg.flush()
                first = rt._agg_buffer
                # ...second flush forces a regrow past 64 KiB.
                agg = rt.aggregate(1)
                agg.put(src, alloc.addr(1), 128 * 1024)
                yield from agg.flush()
                second = rt._agg_buffer
                assert second[1] > first[1]
                # The outgrown segment is gone: address space and NIC
                # registration both released.
                with pytest.raises(PamiError):
                    space.view(first[0], 1)
                assert rt.world.regions[0].find(first[0], first[1]) is None
                assert rt.trace.count("armci.aggregate_buffer_regrows") == 1
            yield from rt.barrier()

        job.run(body)


# --------------------------------------- coalescing under fuzz schedules


class TestCoalescingUnderFuzz:
    @pytest.mark.parametrize("target", ["strided", "vector"])
    def test_randomized_schedules_with_oracle(self, target):
        from repro.verify import fuzz

        fn = fuzz.target_strided if target == "strided" else fuzz.target_vector
        for seed in range(6):
            result = fn(
                seed,
                policy="random",
                config_overrides={"coalesce_chunks": True},
            )
            assert result.failures == [], result.failures
            assert result.oracle.report.violations == []
