"""Unit tests for ARMCI building blocks: config, handles, caches, trackers."""

import pytest

from repro.errors import ArmciError, HandleError
from repro.armci import ArmciConfig, ArmciJob
from repro.armci.consistency import CsMrTracker, CsTgtTracker, make_tracker
from repro.armci.endpoints import EndpointCache
from repro.armci.region_cache import RegionCache
from repro.armci.handles import Handle
from repro.pami.memregion import MemoryRegion
from repro.sim import Engine, Trace

#: Conformance suite: every test in this module runs once per backend
#: (the ``backend`` fixture re-points ``repro.transport.DEFAULT_BACKEND``).
pytestmark = pytest.mark.usefixtures("backend")


class TestConfig:
    def test_defaults(self):
        cfg = ArmciConfig()
        assert not cfg.async_thread
        assert cfg.num_contexts == 1
        assert cfg.use_rdma
        assert cfg.consistency_tracker == "cs_mr"

    def test_paper_modes(self):
        d = ArmciConfig.default_mode()
        at = ArmciConfig.async_thread_mode()
        assert not d.async_thread and d.num_contexts == 1
        assert at.async_thread and at.num_contexts == 2

    def test_invalid_values_rejected(self):
        with pytest.raises(ArmciError):
            ArmciConfig(num_contexts=0)
        with pytest.raises(ArmciError):
            ArmciConfig(consistency_tracker="bogus")
        with pytest.raises(ArmciError):
            ArmciConfig(strided_protocol="bogus")
        with pytest.raises(ArmciError):
            ArmciConfig(region_cache_capacity=0)
        with pytest.raises(ArmciError):
            ArmciConfig(tall_skinny_threshold=-1)


class TestConsistencyTrackers:
    def test_factory(self):
        assert isinstance(make_tracker("cs_tgt"), CsTgtTracker)
        assert isinstance(make_tracker("cs_mr"), CsMrTracker)
        with pytest.raises(ArmciError):
            make_tracker("nope")

    def test_cs_tgt_false_positive_on_other_region(self):
        """The paper's dgemm complaint: cs_tgt fences reads of A because
        of outstanding writes to C."""
        t = CsTgtTracker()
        key_a, key_c = (3, 0x1000), (3, 0x9000)
        t.on_write(3, key_c)
        assert t.needs_fence(3, key_a)  # false positive
        assert t.needs_fence(3, key_c)  # true positive

    def test_cs_mr_no_false_positive(self):
        t = CsMrTracker()
        key_a, key_c = (3, 0x1000), (3, 0x9000)
        t.on_write(3, key_c)
        assert not t.needs_fence(3, key_a)
        assert t.needs_fence(3, key_c)

    def test_fence_clears_write_status(self):
        for t in (CsTgtTracker(), CsMrTracker()):
            key = (1, 0x1000)
            t.on_write(1, key)
            assert t.needs_fence(1, key)
            t.on_fence(1)
            assert not t.needs_fence(1, key)

    def test_cs_mr_fence_scoped_to_target(self):
        t = CsMrTracker()
        t.on_write(1, (1, 0x1000))
        t.on_write(2, (2, 0x1000))
        t.on_fence(1)
        assert not t.needs_fence(1, (1, 0x1000))
        assert t.needs_fence(2, (2, 0x1000))

    def test_reads_never_force_fences(self):
        for t in (CsTgtTracker(), CsMrTracker()):
            key = (1, 0x1000)
            t.on_get(1, key)
            assert not t.needs_fence(1, key)

    def test_space_entries_scale_differently(self):
        """cs_tgt: Theta(zeta); cs_mr: Theta(sigma * zeta)."""
        tgt, mr = CsTgtTracker(), CsMrTracker()
        sigma, zeta = 4, 10
        for dst in range(zeta):
            for s in range(sigma):
                key = (dst, 0x1000 * (s + 1))
                tgt.on_write(dst, key)
                mr.on_write(dst, key)
        assert tgt.space_entries == zeta
        assert mr.space_entries == sigma * zeta

    def test_cs_mr_requires_key(self):
        t = CsMrTracker()
        with pytest.raises(ArmciError):
            t.on_write(1, None)  # type: ignore[arg-type]


class TestEndpointCache:
    def test_creation_cost_charged_once_per_destination(self):
        eng = Engine()
        cache = EndpointCache(0, create_time=0.3e-6, trace=Trace())

        def body():
            yield from cache.get(5)
            t1 = eng.now
            yield from cache.get(5)
            return t1, eng.now

        proc = eng.spawn(body(), name="b")
        [(t1, t2)] = eng.run_until_complete([proc])
        assert t1 == pytest.approx(0.3e-6)
        assert t2 == t1  # cache hit is free
        assert len(cache) == 1
        assert cache.clique_size == 1

    def test_space_matches_eq3(self):
        eng = Engine()
        cache = EndpointCache(0, create_time=0.0, trace=Trace())

        def body():
            for dst in range(100):
                yield from cache.get(dst)

        eng.run_until_complete([eng.spawn(body(), name="b")])
        assert cache.space_bytes(alpha=4) == 400
        assert cache.clique_size == 100


class TestRegionCache:
    def _region(self, rank, base, nbytes=4096, rid=0):
        return MemoryRegion(rank, base, nbytes, rid)

    def test_lookup_hit_and_miss(self):
        cache = RegionCache(capacity=4, trace=Trace())
        cache.insert(self._region(1, 0x1000))
        assert cache.lookup(1, 0x1800, 64) is not None
        assert cache.lookup(1, 0x9000, 64) is None
        assert cache.lookup(2, 0x1800, 64) is None

    def test_lfu_evicts_least_frequently_used(self):
        cache = RegionCache(capacity=2, trace=Trace())
        hot = self._region(1, 0x1000)
        cold = self._region(2, 0x1000)
        cache.insert(hot)
        cache.insert(cold)
        for _ in range(5):
            assert cache.lookup(1, 0x1000, 8) is not None
        cache.insert(self._region(3, 0x1000))  # evicts cold (freq 1)
        assert len(cache) == 2
        assert cache.lookup(1, 0x1000, 8) is not None
        assert cache.lookup(2, 0x1000, 8) is None

    def test_lfu_tie_breaks_by_age(self):
        cache = RegionCache(capacity=2, trace=Trace())
        first = self._region(1, 0x1000)
        second = self._region(2, 0x1000)
        cache.insert(first)
        cache.insert(second)
        cache.insert(self._region(3, 0x1000))  # tie: evict older (first)
        assert cache.lookup(2, 0x1000, 8) is not None
        assert cache.lookup(1, 0x1000, 8) is None

    def test_duplicate_insert_counts_frequency(self):
        cache = RegionCache(capacity=2, trace=Trace())
        r = self._region(1, 0x1000)
        cache.insert(r)
        cache.insert(r)
        assert len(cache) == 1
        assert cache.frequency(1, 0x1000) == 2

    def test_unbounded_cache_never_evicts(self):
        trace = Trace()
        cache = RegionCache(capacity=None, trace=trace)
        for i in range(100):
            cache.insert(self._region(i, 0x1000))
        assert len(cache) == 100
        assert trace.count("armci.region_cache_evictions") == 0

    def test_space_matches_eq5_term(self):
        cache = RegionCache(capacity=None, trace=Trace())
        for i in range(10):
            cache.insert(self._region(i, 0x1000))
        assert cache.space_bytes(gamma=8) == 80

    def test_invalid_capacity(self):
        with pytest.raises(ArmciError):
            RegionCache(capacity=0, trace=Trace())


class TestHandles:
    def _job(self):
        job = ArmciJob(num_procs=1, procs_per_node=1)
        job.init()
        return job

    def test_handle_completes_when_all_events_fire(self):
        job = self._job()
        rt = job.rt(0)
        h = Handle(rt, "test")
        evs = [job.engine.event() for _ in range(3)]
        for ev in evs:
            h.add_event(ev)
        assert h.num_ops == 3
        assert not h.complete
        for ev in evs:
            ev.succeed()
        assert h.complete

    def test_double_wait_rejected(self):
        job = self._job()
        rt = job.rt(0)
        h = Handle(rt, "test")

        def body(r):
            yield from h.wait()
            yield from h.wait()

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="double wait"):
            job.run(body)

    def test_extend_after_wait_rejected(self):
        job = self._job()
        rt = job.rt(0)
        h = Handle(rt, "test")

        def body(r):
            yield from h.wait()
            return None

        job.run(body)
        with pytest.raises(HandleError, match="extended"):
            h.add_event(job.engine.event())
