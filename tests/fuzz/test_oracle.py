"""Unit tests for the happens-before oracle itself.

The oracle is driven directly with synthetic event streams here — no
simulation — so every classification rule (race vs sync-ordered, missed
vs false-positive fence, strict-sync hazards) is pinned down in
isolation before the fuzz targets rely on it.
"""

import pytest

from repro.armci.config import ArmciConfig
from repro.armci.runtime import ArmciJob
from repro.verify import HappensBeforeOracle, attach_oracle


def make_oracle(n=2, **kw):
    return HappensBeforeOracle(n, **kw)


class TestRaceDetection:
    def test_concurrent_overlapping_writes_race(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 100, 64, "put")
        o.on_write(1, 1, (1, 0), 120, 64, "put")
        assert o.report.data_races == 1
        assert o.report.violations[0].kind == "data_race"

    def test_disjoint_writes_do_not_race(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_write(1, 1, (1, 0), 64, 64, "put")
        assert o.report.data_races == 0

    def test_concurrent_write_read_race(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_read(1, 1, (1, 0), 32, 8, "get")
        assert o.report.data_races == 1

    def test_reads_never_race(self):
        o = make_oracle()
        o.on_read(0, 1, (1, 0), 0, 64, "get")
        o.on_read(1, 1, (1, 0), 0, 64, "get")
        assert o.report.data_races == 0

    def test_accumulates_commute(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "acc")
        o.on_write(1, 1, (1, 0), 0, 64, "acc")
        assert o.report.data_races == 0

    def test_acc_vs_read_races(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "acc")
        o.on_read(1, 1, (1, 0), 0, 8, "get")
        assert o.report.data_races == 1

    def test_same_rank_accesses_never_race(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_read(0, 1, (1, 0), 0, 64, "get")
        assert o.report.data_races == 0

    def test_duplicate_race_deduplicated(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_read(1, 1, (1, 0), 0, 8, "get")
        o.on_read(1, 1, (1, 0), 0, 8, "get")
        # Two distinct read accesses against the same write: two races
        # with distinct access pairs, but re-observing the same pair
        # never double-counts.
        assert o.report.data_races == 2


class TestSyncEdges:
    def test_barrier_orders_accesses(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_fence(0, 1)
        for r in (0, 1):
            o.on_barrier_enter(r)
        for r in (0, 1):
            o.on_barrier_exit(r)
        o.on_read(1, 1, (1, 0), 0, 64, "get")
        assert o.report.data_races == 0

    def test_lock_release_acquire_orders(self):
        o = make_oracle()
        o.on_lock(0, 7)
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_fence(0, 1)
        o.on_unlock(0, 7)
        o.on_lock(1, 7)
        o.on_write(1, 1, (1, 0), 0, 64, "put")
        assert o.report.data_races == 0

    def test_different_mutexes_do_not_order(self):
        o = make_oracle()
        o.on_lock(0, 7)
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_unlock(0, 7)
        o.on_lock(1, 8)
        o.on_write(1, 1, (1, 0), 0, 64, "put")
        assert o.report.data_races == 1

    def test_notify_orders_producer_consumer(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_notify(0, 1)
        o.on_notify_wait(1, 0)
        o.on_read(1, 1, (1, 0), 0, 64, "get")
        assert o.report.data_races == 0

    def test_rmw_chain_orders(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_fence(0, 1)
        o.on_rmw(0, 0, 4096)
        o.on_rmw(1, 0, 4096)
        o.on_read(1, 1, (1, 0), 0, 64, "get")
        assert o.report.data_races == 0

    def test_rmw_different_cells_do_not_order(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_rmw(0, 0, 4096)
        o.on_rmw(1, 0, 8192)
        o.on_read(1, 1, (1, 0), 0, 64, "get")
        assert o.report.data_races == 1

    def test_barrier_prunes_access_history(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_fence(0, 1)
        for r in (0, 1):
            o.on_barrier_enter(r)
        for r in (0, 1):
            o.on_barrier_exit(r)
        assert not o._accesses.get(1)


class TestFenceClassification:
    def test_required_fence(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 4096), 0, 64, "put")
        o.on_fence_decision(0, 1, (1, 4096), fenced=True)
        assert o.report.required_fences == 1
        assert o.report.ok

    def test_missed_fence_flagged(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 4096), 0, 64, "put")
        o.on_fence_decision(0, 1, (1, 4096), fenced=False)
        assert o.report.missed_fences == 1
        assert not o.report.ok

    def test_false_positive_fence_counted_not_flagged(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 4096), 0, 64, "put")
        o.on_fence_decision(0, 1, (1, 8192), fenced=True)
        assert o.report.false_positive_fences == 1
        assert o.report.ok  # overhead, not a violation

    def test_clean_skip(self):
        o = make_oracle()
        o.on_fence_decision(0, 1, (1, 4096), fenced=False)
        assert o.report.clean_skips == 1

    def test_fence_clears_golden_model(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 4096), 0, 64, "put")
        o.on_fence(0, 1)
        o.on_fence_decision(0, 1, (1, 4096), fenced=False)
        assert o.report.clean_skips == 1
        assert o.report.missed_fences == 0


class TestStrictSync:
    def test_unfenced_barrier_ordered_conflict_flagged(self):
        o = make_oracle(strict_sync=True)
        o.on_write(0, 1, (1, 0), 0, 64, "put")  # never fenced
        for r in (0, 1):
            o.on_barrier_enter(r)
        for r in (0, 1):
            o.on_barrier_exit(r)
        o.on_read(1, 1, (1, 0), 0, 64, "get")
        assert o.report.unfenced_syncs == 1

    def test_fence_certified_write_not_flagged(self):
        o = make_oracle(strict_sync=True)
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        o.on_fence(0, 1)
        for r in (0, 1):
            o.on_barrier_enter(r)
        for r in (0, 1):
            o.on_barrier_exit(r)
        o.on_read(1, 1, (1, 0), 0, 64, "get")
        assert o.report.unfenced_syncs == 0

    def test_default_mode_does_not_flag(self):
        o = make_oracle()
        o.on_write(0, 1, (1, 0), 0, 64, "put")
        for r in (0, 1):
            o.on_barrier_enter(r)
        for r in (0, 1):
            o.on_barrier_exit(r)
        o.on_read(1, 1, (1, 0), 0, 64, "get")
        assert o.report.unfenced_syncs == 0


class TestAttach:
    def test_attach_sets_every_rank(self):
        job = ArmciJob(2, config=ArmciConfig(), procs_per_node=2)
        oracle = attach_oracle(job)
        assert all(rt.observer is oracle for rt in job.processes)

    def test_am_service_log_records_dispatch_names(self):
        job = ArmciJob(2, config=ArmciConfig(), procs_per_node=2)
        job.init()
        oracle = attach_oracle(job)

        def body(rt):
            if rt.rank == 0:
                yield from rt.notify(1)
            else:
                yield from rt.notify_wait(0)

        job.run(body)
        assert (1, "notify", 0) in oracle.report.service_log

    def test_observed_job_flags_nothing_on_clean_workload(self):
        job = ArmciJob(2, config=ArmciConfig(), procs_per_node=2)
        job.init()
        oracle = attach_oracle(job)

        def body(rt):
            alloc = yield from rt.malloc(256)
            scratch = yield from rt.malloc(256)
            src = scratch.addr(rt.rank)
            dst = 1 - rt.rank
            yield from rt.put(dst, src, alloc.addr(dst) + rt.rank * 128, 64)
            yield from rt.fence(dst)
            yield from rt.barrier()
            yield from rt.get(dst, src + 128, alloc.addr(dst), 64)
            yield from rt.barrier()

        job.run(body)
        assert oracle.report.ok, oracle.report.summary()
        assert oracle.report.missed_fences == 0
