"""Cross-backend schedule fuzzing: the mpi3 transport under exploration.

The conformance suite proves each ARMCI operation behaves over mpi3;
this file proves the *composition* holds under adversarial scheduling:
the strided dgemm pattern and the SCF application proxy run over
``backend="mpi3"`` across 25 seeds with the
:class:`~repro.verify.oracle.HappensBeforeOracle` attached, and every
schedule must stay violation-free with exact semantics. The mpi3
overheads (origin occupancy, flush round-trips, AM emulation cost)
shift every timing in the schedule, so this explores a genuinely
different schedule space than the PAMI runs in
``test_fuzz_targets.py``.
"""

import os

import pytest

from repro.verify import target_lock, target_scf, target_strided

#: The issue's acceptance gate is 25 seeds; CI can widen or narrow it.
SEEDS = int(os.environ.get("REPRO_BACKEND_FUZZ_SEEDS", "25"))

MPI3 = {"backend": "mpi3"}


class TestMpi3Fuzz:
    def test_strided_25_seeds_zero_violations(self):
        digests = set()
        for seed in range(SEEDS):
            r = target_strided(seed, config_overrides=MPI3)
            assert r.ok, f"strided/mpi3 seed {seed}: {r.failures[:3]}"
            assert not r.oracle.report.violations
            digests.add(r.digest)
        # The exploration must actually explore, not replay one schedule.
        assert len(digests) == SEEDS

    def test_scf_25_seeds_zero_violations(self):
        digests = set()
        for seed in range(SEEDS):
            r = target_scf(seed, config_overrides=MPI3)
            assert r.ok, f"scf/mpi3 seed {seed}: {r.failures[:3]}"
            assert not r.oracle.report.violations
            digests.add(r.digest)
        assert len(digests) == SEEDS

    def test_backend_shifts_schedule_space(self):
        # Same seed, same policy: the mpi3 overheads must perturb the
        # explored schedule (different digest) while staying clean.
        pami = target_strided(0, config_overrides={"backend": "pami"})
        mpi3 = target_strided(0, config_overrides=MPI3)
        assert pami.ok and mpi3.ok
        assert pami.digest != mpi3.digest

    def test_mpi3_counters_reach_fuzz_workloads(self):
        r = target_lock(1, config_overrides=MPI3)
        assert r.ok, r.failures[:3]
        assert r.counters.get("transport.am_emulations", 0) > 0
        assert r.counters.get("transport.flush_syncs", 0) > 0
