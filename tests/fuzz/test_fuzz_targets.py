"""The schedule-exploration acceptance tests.

These are the headline checks: the five workload targets stay clean —
oracle and semantics — on every explored schedule, the harness actually
explores distinct schedules fast enough to live in CI, and the default
engine's behaviour is bit-identical to a FIFO policy.
"""

import os
import time

import pytest

from repro.verify import (
    FUZZ_TARGETS,
    explore,
    make_policy,
    shrink_seed,
    target_chaos,
    target_lock,
    target_scf,
    target_strided,
    target_vector,
    write_divergence_log,
)

#: CI's fuzz-smoke job widens this via the environment; the tier-1 run
#: keeps it small so the suite stays fast.
SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", "5"))


def _fail_with_divergence_log(name, seed, result, policy, tracker):
    """Shrink a failing seed and persist the divergence log (CI uploads
    ``$REPRO_FUZZ_LOG_DIR`` as an artifact) before failing the test."""
    try:
        shrunk = shrink_seed(
            FUZZ_TARGETS[name], seed, policy=policy, tracker=tracker
        )
        path = write_divergence_log(shrunk.log)
    except Exception as exc:  # shrinker itself must never mask the failure
        path = f"<shrink failed: {exc}>"
    pytest.fail(
        f"{name} seed {seed} ({policy}/{tracker}): {result.failures[:3]} "
        f"— divergence log: {path}"
    )


class TestExploration:
    def test_explores_100_distinct_schedules_under_60s(self):
        t0 = time.time()
        results = explore(seeds=10)
        elapsed = time.time() - t0
        digests = {r.digest for r in results}
        failures = [f for r in results for f in r.failures]
        assert not failures, failures[:5]
        assert len(results) >= 100
        assert len(digests) >= 100, (
            f"only {len(digests)} distinct schedules in {len(results)} runs"
        )
        assert elapsed < 60.0, f"exploration took {elapsed:.1f}s"

    def test_same_seed_same_schedule(self):
        a = target_strided(3)
        b = target_strided(3)
        assert a.digest == b.digest
        assert a.counters == b.counters

    def test_different_seeds_differ(self):
        digests = {target_strided(s).digest for s in range(6)}
        assert len(digests) == 6


@pytest.mark.parametrize("name", sorted(FUZZ_TARGETS))
@pytest.mark.parametrize("policy", ["random", "pct"])
class TestTargetsClean:
    def test_cs_mr_clean(self, name, policy):
        for seed in range(SEEDS):
            r = FUZZ_TARGETS[name](seed, policy=policy, tracker="cs_mr")
            if not r.ok:
                _fail_with_divergence_log(name, seed, r, policy, "cs_mr")
            assert r.oracle.report.missed_fences == 0

    def test_cs_tgt_correct_but_overfences(self, name, policy):
        # cs_tgt must also be *correct* on every schedule — its defect is
        # overhead (false positives), never a missed fence.
        r = FUZZ_TARGETS[name](0, policy=policy, tracker="cs_tgt")
        if not r.ok:
            _fail_with_divergence_log(name, 0, r, policy, "cs_tgt")
        assert r.oracle.report.missed_fences == 0


class TestTrackerSeparation:
    def test_strided_target_separates_trackers(self):
        mr = target_strided(0)
        tgt = target_strided(0, tracker="cs_tgt")
        assert mr.oracle.report.false_positive_fences == 0
        assert tgt.oracle.report.false_positive_fences > 0
        assert (
            mr.counters["armci.fences_forced"]
            < tgt.counters["armci.fences_forced"]
        )

    def test_required_fences_still_taken_by_cs_mr(self):
        r = target_strided(0)
        assert r.oracle.report.required_fences > 0


class TestFifoEquivalence:
    def test_fifo_policy_matches_default_engine(self):
        # The explicit FIFO policy must reproduce the no-policy engine's
        # behaviour exactly — every counter identical.
        base = target_strided(0, policy="fifo")
        again = target_strided(99, policy="fifo")  # seed ignored by FIFO
        assert base.counters == again.counters
        assert base.digest == again.digest

    def test_random_limit_zero_is_fifo(self):
        fifo = target_lock(0, policy="fifo")
        limited = target_lock(0, policy="random", limit=0)
        assert limited.counters == fifo.counters

    def test_make_policy_rejects_unknown(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            make_policy("zigzag", 0)
