"""Region-cache pin/evict lifecycle under randomized schedules.

PR-2 added pin/refcount protection so in-flight RDMA handles can't have
their cached region handles evicted under them; until now only the FIFO
schedule exercised it. Here the same invariants must hold on every
explored schedule: pins drain to zero once all handles complete, the
cache never exceeds capacity (absent pinned overflow), and eviction
under a registration budget still frees slots.
"""

import pytest

from repro.armci.config import ArmciConfig
from repro.armci.runtime import ArmciJob
from repro.sim.engine import Engine, RandomTieBreakPolicy

SEEDS = range(8)


def run_cached_workload(seed, capacity=2, budget=None):
    engine = Engine(policy=RandomTieBreakPolicy(seed))
    job = ArmciJob(
        4,
        config=ArmciConfig(
            region_cache_capacity=capacity, memregion_budget=budget
        ),
        procs_per_node=2,
        engine=engine,
    )
    job.init()

    def body(rt):
        allocs = []
        for _ in range(3):  # several structures so the cache must evict
            allocs.append((yield from rt.malloc(512)))
        scratch = yield from rt.malloc(256)
        src = scratch.addr(rt.rank)
        for step in range(1, 4):
            dst = (rt.rank + step) % 4
            for alloc in allocs:
                yield from rt.put(dst, src, alloc.addr(dst) + rt.rank * 64, 64)
                yield from rt.fence(dst)
        yield from rt.barrier()

    job.run(body)
    return job


class TestPinEvictUnderRandomSchedules:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pins_drain_and_capacity_holds(self, seed):
        job = run_cached_workload(seed)
        for rt in job.processes:
            cache = rt.region_cache
            assert not cache._pins, (
                f"rank {rt.rank} leaked pins under seed {seed}: {cache._pins}"
            )
            if (
                cache.capacity is not None
                and job.trace.count("armci.region_cache_pinned_overflow") == 0
            ):
                assert len(cache) <= cache.capacity

    @pytest.mark.parametrize("seed", SEEDS)
    def test_budgeted_cache_still_drains(self, seed):
        job = run_cached_workload(seed, capacity=2, budget=8)
        for rt in job.processes:
            assert not rt.region_cache._pins
        # The cache path was actually exercised under the budget.
        assert job.trace.count("armci.region_cache_misses") > 0

    def test_eviction_happened_under_pressure(self):
        job = run_cached_workload(0)
        assert job.trace.count("armci.region_cache_evictions") > 0

    def test_distinct_schedules_explored(self):
        digests = {run_cached_workload(s).engine.schedule_digest for s in SEEDS}
        assert len(digests) == len(SEEDS)
