"""Equivalence fuzz: shards=1 (oracle) vs shards={2,4} must match exactly.

For every seed and every commutative-safe workload, the single-engine
oracle and the sharded runs must agree on:

- the schedule digest (per-rank delivery streams, order-exact);
- every per-rank workload result — SCF-style energies bit-for-bit,
  transfer checksums, task/ack accounting;
- delivered / dropped event totals.

Most cases run the sharded configuration in inline mode (same protocol
code and serialization as the forked mode, no processes); a smaller set
of seeds exercises the real fork mode end-to-end. ``REPRO_PDES_SEEDS``
scales the seed count (CI smoke uses a reduced value; the acceptance
bar is >= 25).
"""

import os

import pytest

from repro.sim.parallel import ChaosSpec, make_factory, run_program

SEEDS = int(os.environ.get("REPRO_PDES_SEEDS", "25"))
FORK_SEEDS = int(os.environ.get("REPRO_PDES_FORK_SEEDS", "2"))

#: (workload, kwargs, num_ranks, chaos drop_mod or None)
TARGETS = [
    ("clique", dict(ops=4), 48, None),
    ("halo", dict(iters=3), 40, None),
    ("scf_lite", dict(tasks=36), 36, None),
    ("chaos_clique", dict(ops=3), 40, 4),
]


def _run(name, kw, n, drop_mod, seed, shards, mode):
    chaos = None if drop_mod is None else ChaosSpec(drop_mod=drop_mod, salt=seed)
    return run_program(
        make_factory(name, n, seed=seed, **kw),
        n,
        shards=shards,
        mode=mode,
        chaos=chaos,
    )


def _assert_equivalent(base, other, label):
    assert other.schedule_digest == base.schedule_digest, (
        f"{label}: schedule digest diverged "
        f"({base.schedule_digest:#x} vs {other.schedule_digest:#x})"
    )
    assert other.results == base.results, f"{label}: workload results diverged"
    assert other.delivered == base.delivered, f"{label}: delivered count diverged"
    assert other.dropped == base.dropped, f"{label}: dropped count diverged"


@pytest.mark.parametrize("name,kw,n,drop_mod", TARGETS)
def test_shards_match_oracle(name, kw, n, drop_mod):
    for seed in range(SEEDS):
        base = _run(name, kw, n, drop_mod, seed, 1, "single")
        assert base.delivered > 0, f"{name} seed {seed} produced no traffic"
        for shards in (2, 4):
            sharded = _run(name, kw, n, drop_mod, seed, shards, "inline")
            _assert_equivalent(
                base, sharded, f"{name} seed {seed} shards={shards}"
            )


@pytest.mark.parametrize("name,kw,n,drop_mod", TARGETS)
def test_fork_mode_matches_oracle(name, kw, n, drop_mod):
    """Real worker processes + shared-memory rings, a few seeds each."""
    for seed in range(FORK_SEEDS):
        base = _run(name, kw, n, drop_mod, seed, 1, "single")
        sharded = _run(name, kw, n, drop_mod, seed, 2, "fork")
        _assert_equivalent(base, sharded, f"{name} seed {seed} fork shards=2")


def test_digest_is_sensitive():
    """Different seeds must yield different digests (the oracle can see)."""
    digests = {
        _run("clique", dict(ops=4), 48, None, seed, 1, "single").schedule_digest
        for seed in range(5)
    }
    assert len(digests) == 5


def test_scf_energy_bit_exact_across_shard_counts():
    """The headline numeric check: fsum-over-sorted-terms is bit-stable."""
    n, tasks = 36, 60
    energies = set()
    for shards, mode in [(1, "single"), (2, "inline"), (4, "inline"), (2, "fork")]:
        r = run_program(
            make_factory("scf_lite", n, tasks=tasks, seed=11),
            n,
            shards=shards,
            mode=mode,
        )
        tag, energy, terms, done = r.results[0]
        assert tag == "energy" and terms == tasks
        energies.add(energy)
    assert len(energies) == 1, f"energy drifted across shard counts: {energies}"
