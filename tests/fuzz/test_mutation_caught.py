"""Oracle self-test: a deliberately broken tracker must be caught, and
the shrinker must reduce failures to a minimal divergence log."""

import os

import pytest

from repro.armci.config import ArmciConfig
from repro.armci.consistency import is_known_tracker, make_tracker
from repro.sim.engine import Engine, RandomTieBreakPolicy
from repro.verify import (
    BrokenFenceTracker,
    BrokenOnWriteTracker,
    FuzzResult,
    shrink_seed,
    target_strided,
    write_divergence_log,
)


class TestMutantRegistry:
    def test_mutants_registered(self):
        assert is_known_tracker("cs_mr_broken_on_write")
        assert is_known_tracker("cs_mr_broken_fence")
        assert isinstance(
            make_tracker("cs_mr_broken_on_write"), BrokenOnWriteTracker
        )

    def test_mutants_usable_in_config(self):
        cfg = ArmciConfig(consistency_tracker="cs_mr_broken_on_write")
        assert cfg.consistency_tracker == "cs_mr_broken_on_write"


class TestMutantCaught:
    def test_broken_on_write_caught_within_25_seeds(self, tmp_path):
        caught = None
        for seed in range(25):
            r = target_strided(seed, tracker="cs_mr_broken_on_write")
            if not r.ok:
                caught = (seed, r)
                break
        assert caught is not None, "mutant survived 25 seeds"
        seed, r = caught
        assert r.oracle.report.missed_fences > 0
        # Shrink the failure and emit the divergence artifact.
        shrunk = shrink_seed(
            target_strided, seed, tracker="cs_mr_broken_on_write"
        )
        path = write_divergence_log(shrunk.log, str(tmp_path))
        assert os.path.exists(path)
        text = open(path).read()
        assert "missed_fence" in text
        assert f"seed:          {seed}" in text

    def test_broken_fence_is_overhead_not_error(self):
        # The over-fencing mutant must never produce a missed fence —
        # the oracle distinguishes pessimal from broken.
        r = target_strided(0, tracker="cs_mr_broken_fence")
        rep = r.oracle.report
        assert rep.missed_fences == 0
        assert rep.false_positive_fences > 0


def _schedule_sensitive_target(
    seed, policy="random", tracker="cs_mr", limit=None
):
    """Synthetic engine-level target: fails iff the policy reorders one
    specific pair of logically concurrent events.

    Exercises the shrinker's bisection path, which the tracker mutants
    (schedule-independent failures) never reach.
    """
    engine = Engine(policy=RandomTieBreakPolicy(seed, limit=limit))
    order = []
    for i in range(32):
        engine.schedule(1e-6, lambda _a, i=i: order.append(i))
    engine.run()
    failures = []
    if order.index(20) < order.index(4):
        failures.append("event 20 overtook event 4")
    return FuzzResult(
        target="synthetic",
        seed=seed,
        policy=engine.policy.describe(),
        digest=engine.schedule_digest,
        decisions=engine.policy._issued,
        counters={},
        oracle=None,
        failures=failures,
    )


class TestShrinker:
    def test_bisects_schedule_dependent_failure(self):
        failing_seed = next(
            s for s in range(200) if not _schedule_sensitive_target(s).ok
        )
        shrunk = shrink_seed(_schedule_sensitive_target, failing_seed)
        assert not shrunk.failing.ok
        assert 0 < shrunk.minimal_limit <= shrunk.failing.decisions
        # Minimality: one decision fewer passes.
        assert shrunk.passing is not None and shrunk.passing.ok
        assert shrunk.log.render()  # renders without a service log

    def test_shrink_rejects_passing_seed(self):
        passing_seed = next(
            s for s in range(200) if _schedule_sensitive_target(s).ok
        )
        with pytest.raises(ValueError):
            shrink_seed(_schedule_sensitive_target, passing_seed)

    def test_schedule_independent_failure_reports_limit_zero(self):
        shrunk = shrink_seed(
            target_strided, 0, tracker="cs_mr_broken_on_write"
        )
        assert shrunk.minimal_limit == 0
        assert shrunk.passing is None
        assert "schedule-independent" in shrunk.log.note
