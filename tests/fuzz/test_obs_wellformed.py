"""Span-tree well-formedness under schedule fuzzing.

Every explored schedule must yield a clean span DAG: all spans close,
parents start no later than their children (including across the async
AM handoff, where the parent is the sender's flight span), every edge
joins recorded spans, and the target-side ``am_service`` spans agree
with the :class:`~repro.verify.oracle.HappensBeforeOracle`'s independent
service log — the obs subsystem and the oracle watch the same traffic
through different instrumentation, so a disagreement means one of them
dropped or invented a service.
"""

import os
from collections import Counter

import pytest

from repro.armci import ObsConfig
from repro.verify import target_scf, target_strided, target_vector

SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", "5"))

#: Fuzz with tracing on: the obs hot paths ride every perturbed schedule.
OBS_ON = {"obs": ObsConfig(enabled=True)}

TARGETS = {
    "scf": target_scf,
    "strided": target_strided,
    "vector": target_vector,
}

_EPS = 1e-12


def _check_wellformed(result):
    """Assert the run was clean and its span DAG well-formed; return spans."""
    assert not result.failures, result.failures[:3]
    obs = result.obs
    assert obs is not None, "fuzz target did not expose the obs sink"
    assert obs.truncated_spans == 0
    spans = obs.spans
    assert spans, "tracing was enabled but no spans were recorded"
    by_id = {s.span_id: s for s in spans}
    for s in spans:
        assert s.end is not None, f"span {s.span_id} ({s.name}) never closed"
        assert s.end >= s.start - _EPS, (s.name, s.start, s.end)
        if s.parent_id is not None:
            parent = by_id.get(s.parent_id)
            assert parent is not None, (
                f"span {s.span_id} ({s.name}) has unknown parent {s.parent_id}"
            )
            assert parent.start <= s.start + _EPS, (
                f"parent {parent.name} starts after child {s.name}"
            )
    for cause_id, waiter_id in obs.edges:
        assert cause_id in by_id, f"edge cause {cause_id} is not a span"
        assert waiter_id in by_id, f"edge waiter {waiter_id} is not a span"
    return spans


@pytest.mark.parametrize("name", sorted(TARGETS))
def test_span_tree_wellformed(name):
    for seed in range(SEEDS):
        result = TARGETS[name](seed, config_overrides=OBS_ON)
        _check_wellformed(result)


@pytest.mark.parametrize("name", sorted(TARGETS))
def test_cross_rank_am_parents(name):
    """A serviced AM's parent is the *sender's* flight span: the causal
    link survives the header/cookie handoff on every schedule."""
    for seed in range(SEEDS):
        result = TARGETS[name](seed, config_overrides=OBS_ON)
        spans = _check_wellformed(result)
        by_id = {s.span_id: s for s in spans}
        linked = 0
        for s in spans:
            if s.category != "am_service" or s.parent_id is None:
                continue
            parent = by_id[s.parent_id]
            assert parent.category == "am", (s.name, parent.category)
            assert parent.rank == s.attrs["src"], (
                f"{s.name}: flight span on rank {parent.rank}, "
                f"but the AM came from rank {s.attrs['src']}"
            )
            linked += 1
        assert linked > 0, "no cross-rank AM parent links were recorded"


def test_am_service_spans_agree_with_oracle():
    """Per (serving rank, source) counts from the obs ``am_service``
    spans cover the oracle's independently-recorded service log."""
    for seed in range(SEEDS):
        result = target_scf(seed, config_overrides=OBS_ON)
        spans = _check_wellformed(result)
        serviced = Counter(
            (s.rank, s.attrs.get("src"))
            for s in spans
            if s.category == "am_service"
        )
        logged = Counter(
            (rank, src)
            for rank, _name, src in result.oracle.report.service_log
        )
        assert logged, "oracle saw no AM services in the SCF target"
        missing = logged - serviced
        assert not missing, (
            f"oracle logged services with no am_service span: "
            f"{dict(missing)}"
        )
