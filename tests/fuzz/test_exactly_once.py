"""Exactly-once fuzz: accumulate/rmw effects vs a golden model under chaos.

The retry layer's contract is that a transient fault (drop, corruption,
duplicate) never changes *what* was applied — a dropped request never
touched the target, so the retry applies it exactly once, and a
duplicated delivery is discarded by sequence-number dedup. This fuzz
target drives a seeded random program of accumulates and fetch-adds
through a chaotic transport and checks the final state against a pure
Python golden model that applies each logical operation exactly once.

Float accumulates use small integer values so addition is exact and
order-independent — any double-apply or lost update shows up as an
exact mismatch, not a tolerance question.
"""

import random

import numpy as np
import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.chaos import ChaosConfig

P = 4
WORDS = 32  # accumulate target words per rank
OPS_PER_RANK = 20


def _make_job(chaos):
    job = ArmciJob(
        P,
        config=ArmciConfig.async_thread_mode(),
        procs_per_node=1,
        chaos=chaos,
    )
    job.init()
    return job


def _make_program(seed):
    """Per-rank op lists: ("acc", dst, off, words, value) / ("rmw", dst, k)."""
    rng = random.Random(seed)
    program = []
    for _rank in range(P):
        ops = []
        for _i in range(OPS_PER_RANK):
            dst = rng.randrange(P)
            if rng.random() < 0.5:
                off = rng.randrange(WORDS - 4)
                words = rng.randrange(1, 5)
                value = rng.randrange(1, 10)
                ops.append(("acc", dst, off, words, value))
            else:
                ops.append(("rmw", dst, rng.randrange(1, 5)))
        program.append(ops)
    return program


def _golden(program):
    """Final accumulate arrays and counter values, each op applied once."""
    acc = {r: np.zeros(WORDS) for r in range(P)}
    counters = {r: 0 for r in range(P)}
    for ops in program:
        for op in ops:
            if op[0] == "acc":
                _kind, dst, off, words, value = op
                acc[dst][off : off + words] += value
            else:
                counters[op[1]] += op[2]
    return acc, counters


def _run(program, chaos):
    job = _make_job(chaos)
    out = {"acc": {}, "counters": {}, "draws": {r: [] for r in range(P)}}

    def body(rt):
        data = yield from rt.malloc(WORDS * 8)
        counter = yield from rt.malloc(8)
        yield from rt.barrier()
        space = rt.world.space(rt.rank)
        src = space.allocate(8 * 4)
        for op in program[rt.rank]:
            if op[0] == "acc":
                _kind, dst, off, words, value = op
                space.write_f64(src, np.full(words, float(value)))
                yield from rt.acc(
                    dst, src, data.addr(dst) + off * 8, words * 8
                )
            else:
                _kind, dst, k = op
                old = yield from rt.rmw(dst, counter.addr(dst), "fetch_add", k)
                out["draws"][rt.rank].append((dst, old))
        yield from rt.fence_all()
        yield from rt.barrier()
        out["acc"][rt.rank] = space.read_f64(data.addr(rt.rank), WORDS)
        got = yield from rt.rmw(rt.rank, counter.addr(rt.rank), "fetch")
        out["counters"][rt.rank] = got

    job.run(body)
    return out, job


@pytest.mark.parametrize("seed", [3, 17, 92])
def test_chaotic_effects_match_golden_model(seed):
    """Drop + duplicate + jitter injection with retries enabled: every
    accumulate and fetch-add lands exactly once."""
    program = _make_program(seed)
    golden_acc, golden_counters = _golden(program)
    chaos = ChaosConfig(
        seed=seed, drop_prob=0.15, dup_prob=0.15, jitter_prob=0.2,
        jitter_max=2e-6,
    )
    out, job = _run(program, chaos)
    # The dice actually rolled faults (otherwise this test is vacuous).
    assert (
        job.trace.count("chaos.drops") + job.trace.count("chaos.duplicates")
    ) > 0
    assert job.trace.count("armci.transient_retries") > 0
    for rank in range(P):
        np.testing.assert_array_equal(out["acc"][rank], golden_acc[rank])
        assert out["counters"][rank] == golden_counters[rank]


@pytest.mark.parametrize("seed", [5, 41])
def test_chaotic_run_matches_clean_run(seed):
    """The same program through a clean and a chaotic transport produces
    identical state, and per-rank fetch-add draws stay monotonic (the
    counter never goes backwards, so no draw was double-applied)."""
    program = _make_program(seed)
    clean, _ = _run(program, None)
    chaotic, job = _run(
        program, ChaosConfig(seed=seed + 1, drop_prob=0.25, dup_prob=0.1)
    )
    assert job.trace.count("chaos.drops") > 0
    for rank in range(P):
        np.testing.assert_array_equal(clean["acc"][rank], chaotic["acc"][rank])
        assert clean["counters"][rank] == chaotic["counters"][rank]
        per_dst = {}
        for dst, old in chaotic["draws"][rank]:
            assert old >= per_dst.get(dst, 0)
            per_dst[dst] = old
