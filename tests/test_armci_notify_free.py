"""Tests for notify/wait synchronization and collective free."""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.errors import PamiError


def make_job(num_procs=2, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=1,
        **kwargs,
    )
    job.init()
    return job


class TestNotifyWait:
    def test_producer_consumer_sees_data(self):
        """Data put before a notify is visible to the waiting consumer
        without a fence — PAMI's pairwise ordering at work."""
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(64)
                rt.world.space(0).write(src, b"PRODUCED" * 8)
                yield from rt.put(1, src, alloc.addr(1), 64)
                yield from rt.notify(1)
                yield from rt.barrier()
                return None
            yield from rt.notify_wait(0)
            data = rt.world.space(1).read(alloc.addr(1), 8)
            yield from rt.barrier()
            return data

        results = job.run(body)
        assert results[1] == b"PRODUCED"

    def test_notifications_are_counted_not_lost(self):
        """Multiple notifies bank up; each wait consumes exactly one."""
        job = make_job()

        def body(rt):
            yield from rt.barrier()
            if rt.rank == 0:
                for _ in range(3):
                    yield from rt.notify(1)
                yield from rt.barrier()
                return None
            # Let all three arrive before consuming any.
            yield from rt.compute(50e-6)
            for _ in range(3):
                yield from rt.notify_wait(0)
            left = rt.notify_board.pending(0)
            yield from rt.barrier()
            return left

        results = job.run(body)
        assert results[1] == 0
        assert job.trace.count("armci.notifies_sent") == 3
        assert job.trace.count("armci.notifies_consumed") == 3

    def test_wait_blocks_until_notification(self):
        job = make_job()

        def body(rt):
            yield from rt.barrier()
            if rt.rank == 0:
                yield from rt.compute(100e-6)
                yield from rt.notify(1)
                yield from rt.barrier()
                return None
            t0 = rt.engine.now
            yield from rt.notify_wait(0)
            elapsed = rt.engine.now - t0
            yield from rt.barrier()
            return elapsed

        results = job.run(body)
        assert results[1] >= 100e-6

    def test_notifications_from_different_sources_independent(self):
        job = make_job(num_procs=4)

        def body(rt):
            yield from rt.barrier()
            if rt.rank == 2:
                yield from rt.notify_wait(0)
                yield from rt.notify_wait(1)
            elif rt.rank in (0, 1):
                yield from rt.notify(2)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.notifies_consumed") == 2


class TestFree:
    def test_free_releases_memory_and_regions(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            yield from rt.free(alloc)
            return alloc.addr(rt.rank)

        addrs = job.run(body)
        assert job.trace.count("armci.frees") == 2
        for rank, addr in enumerate(addrs):
            with pytest.raises(PamiError):
                job.world.space(rank).read(addr, 1)
            assert job.world.regions[rank].find(addr, 1) is None

    def test_free_invalidates_remote_cache(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(256)
            if rt.rank == 0:
                local = rt.world.space(0).allocate(256)
                yield from rt.get(1, local, alloc.addr(1), 64)  # cache handle
            yield from rt.barrier()
            yield from rt.free(alloc)
            return None

        job.run(body)
        assert len(job.rt(0).region_cache) == 0

    def test_allocate_after_free_reuses_cleanly(self):
        job = make_job()

        def body(rt):
            first = yield from rt.malloc(512)
            yield from rt.free(first)
            second = yield from rt.malloc(512)
            if rt.rank == 0:
                local = rt.world.space(0).allocate(64)
                yield from rt.put(1, local, second.addr(1), 64)
                yield from rt.fence(1)
            yield from rt.barrier()
            return second.alloc_id

        results = job.run(body)
        assert results == [1, 1]
