"""Byte-identity regression gate for the default (PAMI) backend.

The transport refactor's hard promise: routing every ARMCI wire
operation through :class:`repro.transport.pami.PamiTransport` changes
*nothing* — same events, same timings, same counters — for the paper
figures. These tests pin that promise three ways:

1. the committed fig 3/4/8/11 result tables carry the seed md5s,
2. the raw figure sweeps reproduce seed-identical data, and
3. a mixed workload (contiguous/strided/vector/acc/rmw/locks/fences)
   reproduces the seed's exact finish time and counter set in both D
   and AT modes.

All golden constants were captured on the pre-refactor seed tree.
"""

import hashlib
from pathlib import Path

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.armci.vector import IoVector
from repro.types import StridedDescriptor, StridedShape

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

#: md5 of each committed figure table, as produced by the seed tree.
SEED_FIG_MD5 = {
    "fig3_latency.txt": "e5ae856594441ddbf3ab62d0f693867e",
    "fig4_bandwidth.txt": "4d4fb290a764d69c360592e5cf1843cd",
    "fig8_strided.txt": "85846dcb46b3876d63a1d17daac1b7ff",
    "fig11_scf.txt": "0c54ab709faf44042f276828279761a7",
}

#: md5 of ``repr()`` of the raw sweep data feeding each figure.
SEED_SWEEP_MD5 = {
    "fig3": "e6ada42ba7b729198eb0639d8d2501a8",
    "fig4": "d974e91dffb233f58e23bd40f7a3ee56",
    "fig8": "86872ae400de4da368cf06d5d6df69a5",
    "fig11_small": "0485bf6a9bc22aec7f5ae56b55ebc7a4",
}

#: md5 of the mixed workload's (finish time, counters) under each mode.
SEED_WORKLOAD_MD5 = {
    "D": "b9ac0fb0b0aeb3ae4f3cc20d6dac8c66",
    "AT": "72ff5a377e0585f6f68cfad0d901d88f",
}


def _md5(data: bytes) -> str:
    return hashlib.md5(data).hexdigest()


class TestCommittedFigureFiles:
    @pytest.mark.parametrize("name", sorted(SEED_FIG_MD5))
    def test_committed_table_is_seed_identical(self, name):
        path = RESULTS / name
        assert path.exists(), f"{name} missing from benchmarks/results"
        assert _md5(path.read_bytes()) == SEED_FIG_MD5[name], (
            f"{name} drifted from the seed output: the default backend "
            f"must stay byte-identical on the paper figures"
        )


class TestFigureSweeps:
    def test_fig3_latency_sweep(self):
        from repro.bench import contiguous_latency_sweep

        data = (
            contiguous_latency_sweep(op="get"),
            contiguous_latency_sweep(op="put"),
        )
        assert _md5(repr(data).encode()) == SEED_SWEEP_MD5["fig3"]

    def test_fig4_bandwidth_sweep(self):
        from repro.bench import bandwidth_sweep

        data = (bandwidth_sweep(op="put"), bandwidth_sweep(op="get"))
        assert _md5(repr(data).encode()) == SEED_SWEEP_MD5["fig4"]

    def test_fig8_strided_sweep(self):
        from repro.bench import strided_bandwidth_sweep

        data = (
            strided_bandwidth_sweep(op="put"),
            strided_bandwidth_sweep(op="get"),
        )
        assert _md5(repr(data).encode()) == SEED_SWEEP_MD5["fig8"]

    def test_fig11_scf_comparison(self):
        from repro.apps.nwchem import ScfConfig
        from repro.bench.scf import scf_comparison

        scf = ScfConfig(
            nblocks=24, task_time=2e-3, iterations=1, tasks_per_draw=2
        )
        data = scf_comparison(proc_counts=(64,), scf=scf)
        assert _md5(repr(data).encode()) == SEED_SWEEP_MD5["fig11_small"]


def _workload_digest(config: ArmciConfig) -> str:
    """Finish-time + counter digest of a mixed ARMCI workload."""
    job = ArmciJob(4, config=config, procs_per_node=2)
    job.init()

    def main(rt):
        alloc = yield from rt.malloc(8192)
        right = (rt.rank + 1) % 4
        space = rt.world.space(rt.rank)
        src = space.allocate(4096)
        space.write(src, bytes([rt.rank + 1]) * 4096)
        local = space.allocate(4096)
        yield from rt.put(right, src, alloc.addr(right), 1024)
        yield from rt.fence(right)
        yield from rt.get(right, local, alloc.addr(right), 512)
        desc = StridedDescriptor(
            StridedShape(128, (4,)), src_strides=(256,), dst_strides=(256,)
        )
        yield from rt.puts(right, src, alloc.addr(right) + 1024, desc)
        vec = IoVector(
            (src, src + 512),
            (alloc.addr(right) + 4096, alloc.addr(right) + 5120),
            (256, 256),
        )
        yield from rt.putv(right, vec)
        yield from rt.acc(right, src, alloc.addr(right) + 2048, 64)
        yield from rt.rmw(0, alloc.addr(0), "fetch_add", 1)
        yield from rt.lock(3)
        yield from rt.unlock(3)
        yield from rt.fence_all()
        yield from rt.barrier()

    job.run(main)
    lines = [f"t={job.engine.now:.15e}"]
    for key in sorted(job.trace.counters):
        lines.append(f"{key}={job.trace.counters[key]}")
    return _md5("\n".join(lines).encode())


class TestWorkloadDigest:
    def test_default_mode_byte_identical(self):
        cfg = ArmciConfig(backend="pami", strided_protocol="auto")
        assert _workload_digest(cfg) == SEED_WORKLOAD_MD5["D"]

    def test_async_thread_mode_byte_identical(self):
        cfg = ArmciConfig.async_thread_mode(
            backend="pami", strided_protocol="auto"
        )
        assert _workload_digest(cfg) == SEED_WORKLOAD_MD5["AT"]

    def test_default_backend_resolves_to_pami(self):
        job = ArmciJob(2, procs_per_node=2)
        assert job.transport.capabilities.name == "pami"
