"""Unit tests for the BG/Q machine model and torus network timing."""

import pytest

from repro.errors import ReproError
from repro.machine import BGQParams, NodeResources, TorusNetwork
from repro.machine.node import NodeOversubscribedError
from repro.sim import Engine
from repro.topology import RankMapping, Torus, abcdet_mapping


@pytest.fixture
def params():
    return BGQParams()


def make_network(dims=(2, 2, 4, 4, 2), ppn=16):
    eng = Engine()
    mapping = abcdet_mapping(dims, ppn)
    return eng, TorusNetwork(eng, mapping, BGQParams())


class TestBGQParams:
    def test_hardware_threads(self, params):
        assert params.hardware_threads_per_node == 64

    def test_context_create_times_match_table_ii_range(self, params):
        assert params.context_create_time(0) == pytest.approx(3821e-6)
        assert params.context_create_time(1) == pytest.approx(4271e-6)

    def test_context_create_negative_index_rejected(self, params):
        with pytest.raises(ValueError):
            params.context_create_time(-1)

    def test_wire_time_linear(self, params):
        assert params.wire_time(0) == 0.0
        assert params.wire_time(1775) == pytest.approx(1e-6, rel=1e-3)

    def test_wire_time_negative_rejected(self, params):
        with pytest.raises(ValueError):
            params.wire_time(-1)

    def test_alignment_penalty_only_below_256(self, params):
        assert params.alignment_penalty(16) == params.unaligned_penalty
        assert params.alignment_penalty(255) == params.unaligned_penalty
        assert params.alignment_penalty(256) == 0.0
        assert params.alignment_penalty(0) == 0.0

    def test_peak_bandwidth_efficiency_is_99_percent(self, params):
        """1/byte_time vs 1.8 GB/s available: the paper's ~99%."""
        achieved = 1.0 / params.byte_time
        assert achieved / params.link_bandwidth_peak == pytest.approx(0.986, abs=0.01)


class TestNodeResources:
    def test_allocate_within_capacity(self, params):
        node = NodeResources(params)
        node.allocate("p0.main")
        node.allocate("p0.async")
        assert node.allocated == 2
        assert node.free == 62
        assert node.owners() == ("p0.main", "p0.async")

    def test_oversubscription_rejected(self, params):
        node = NodeResources(params)
        node.allocate("procs", count=64)
        with pytest.raises(NodeOversubscribedError):
            node.allocate("extra")

    def test_bad_count_rejected(self, params):
        node = NodeResources(params)
        with pytest.raises(ReproError):
            node.allocate("x", count=0)

    def test_16_procs_with_async_threads_fit(self, params):
        """The paper's configuration: c=16 with one async thread each."""
        node = NodeResources(params)
        for i in range(16):
            node.allocate(f"p{i}", count=2)  # main + async SMT thread
        assert node.free == 32


class TestTorusNetworkCalibration:
    """The headline calibration points from Section IV-B."""

    def test_adjacent_get_16b_raw_path(self):
        """Raw network get = 2.74 us; the ARMCI completion dispatch adds
        ~0.15 us to reach the paper's 2.89 us (checked at ARMCI level in
        the protocol tests)."""
        eng, net = make_network()
        # Rank 16 is one hop away in E from rank 0 (ABCDET, 16 procs/node).
        t = net.get_timing(0, 16, 16)
        assert t.complete == pytest.approx(2.74e-6, rel=0.005)

    def test_put_16b_local_completion_raw_path(self):
        eng, net = make_network()
        t = net.put_timing(0, 16, 16)
        assert t.complete == pytest.approx(2.55e-6, rel=0.005)

    def test_put_remote_delivery_after_injection(self):
        eng, net = make_network()
        t = net.put_timing(0, 16, 1024)
        assert t.deliver > t.inject_done
        assert t.deliver - t.inject_done == pytest.approx(35e-9)

    def test_get_latency_grows_35ns_per_round_trip_hop(self):
        eng, net = make_network()
        base = net.get_timing(0, 16, 16).complete - eng.now
        # Find a rank several hops away and compare.
        far = None
        for r in range(16, net.mapping.num_ranks, 16):
            if net.hops(0, r) == 5:
                far = r
                break
        assert far is not None
        t_far = net.get_timing(0, far, 16).complete - eng.now
        assert t_far - base == pytest.approx((5 - 1) * 2 * 35e-9, rel=1e-6)

    def test_max_get_latency_on_paper_partition(self):
        """Min 2.89us at 1 hop, max ~3.38us at diameter 7 (Fig. 7)."""
        eng, net = make_network()
        worst = max(net.hops(0, r) for r in range(0, 2048))
        assert worst == 7
        t = net.get_timing(0, 16, 16).complete  # 1 hop
        # Reconstruct a 7-hop get time via a rank at distance 7.
        far = next(r for r in range(2048) if net.hops(0, r) == 7)
        eng2, net2 = make_network()
        t7 = net2.get_timing(0, far, 16).complete
        assert t7 - t == pytest.approx(6 * 2 * 35e-9, rel=1e-6)
        # +0.15 us ARMCI dispatch puts this at ~3.31 us end to end,
        # inside the paper's 2.89-3.38 us band.
        assert t7 == pytest.approx(3.16e-6, rel=0.02)

    def test_alignment_drop_at_256_bytes(self):
        """Fig. 3: 256 B latency is *lower* than 128 B latency."""
        eng, net = make_network()
        t128 = net.get_timing(0, 16, 128).complete
        eng2, net2 = make_network()
        t256 = net2.get_timing(0, 16, 256).complete
        assert t256 < t128

    def test_injection_fifo_serializes_messages(self):
        eng, net = make_network()
        a = net.put_timing(0, 16, 65536)
        b = net.put_timing(0, 16, 65536)
        assert b.inject_start == pytest.approx(a.inject_done)

    def test_pipelined_bandwidth_approaches_1775_mbps(self):
        eng, net = make_network()
        n, size = 100, 1024 * 1024
        last = None
        for _ in range(n):
            last = net.put_timing(0, 16, size)
        bw = n * size / last.inject_done / 1e6
        assert bw == pytest.approx(1775, rel=0.01)

    def test_n_half_is_about_2kb(self):
        """Fig. 6: half of 1.8 GB/s peak reached near 2 KB messages."""
        eng, net = make_network()
        size = 2048
        n = 50
        last = None
        for _ in range(n):
            last = net.put_timing(0, 16, size)
        bw = n * size / last.inject_done
        assert bw == pytest.approx(0.5 * 1.8e9, rel=0.1)

    def test_intranode_transfer_bypasses_torus(self):
        eng, net = make_network()
        t = net.put_timing(0, 1, 1024)  # ranks 0,1 share a node
        assert t.inject_start == t.inject_done == eng.now
        assert t.deliver < 1e-6  # well under internode latency

    def test_get_local_roundtrip(self):
        eng, net = make_network()
        t = net.get_timing(0, 1, 64)
        assert t.complete > t.deliver > 0

    def test_control_packet_latency(self):
        eng, net = make_network()
        t = net.packet_arrival(0, 16)
        p = BGQParams()
        assert t == pytest.approx(p.am_send_overhead + p.hop_latency)

    def test_trace_counters_accumulate(self):
        eng, net = make_network()
        net.put_timing(0, 16, 100)
        net.get_timing(0, 16, 200)
        net.packet_arrival(0, 16)
        assert net.trace.count("net.put.messages") == 1
        assert net.trace.count("net.put.bytes") == 100
        assert net.trace.count("net.get.bytes") == 200
        assert net.trace.count("net.control.messages") == 1

    def test_am_payload_serializes_like_put(self):
        eng, net = make_network()
        t1 = net.am_payload_timing(0, 16, 4096)
        t2 = net.am_payload_timing(0, 16, 4096)
        assert t2.inject_start == pytest.approx(t1.inject_done)
        assert t1.deliver == t1.complete
