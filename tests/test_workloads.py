"""Tests for the communication-pattern workload suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import ArmciConfig
from repro.errors import ReproError
from repro.workloads import PATTERNS, PatternConfig, destinations, run_workload
from repro.workloads.patterns import op_kinds


class TestPatternGenerators:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ReproError, match="unknown pattern"):
            PatternConfig("zigzag")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ReproError):
            PatternConfig("uniform", num_ops=0)
        with pytest.raises(ReproError):
            PatternConfig("uniform", msg_size=100)  # not multiple of 8
        with pytest.raises(ReproError):
            PatternConfig("uniform", acc_fraction=1.5)

    def test_needs_two_procs(self):
        with pytest.raises(ReproError):
            destinations(PatternConfig("uniform"), 0, 1)

    @given(
        pattern=st.sampled_from(sorted(PATTERNS)),
        p=st.integers(2, 32),
        rank=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_destinations_valid_and_never_self(self, pattern, p, rank):
        r = rank.draw(st.integers(0, p - 1))
        cfg = PatternConfig(pattern, num_ops=12)
        dsts = destinations(cfg, r, p)
        assert len(dsts) == 12
        assert all(0 <= d < p for d in dsts)
        assert all(d != r for d in dsts)

    def test_deterministic(self):
        cfg = PatternConfig("uniform", num_ops=20, seed=7)
        assert destinations(cfg, 3, 16) == destinations(cfg, 3, 16)
        other = PatternConfig("uniform", num_ops=20, seed=8)
        assert destinations(cfg, 3, 16) != destinations(other, 3, 16)

    def test_hotspot_concentrates_on_rank0(self):
        cfg = PatternConfig("hotspot", num_ops=100)
        dsts = destinations(cfg, 5, 16)
        assert dsts.count(0) > 50

    def test_neighbor_alternates(self):
        cfg = PatternConfig("neighbor", num_ops=4)
        assert destinations(cfg, 5, 16) == [6, 4, 6, 4]

    def test_nwchem_mix_has_both_kinds(self):
        cfg = PatternConfig("nwchem", num_ops=60, acc_fraction=0.4)
        kinds = op_kinds(cfg, 2)
        assert "get" in kinds and "acc" in kinds

    def test_pure_patterns_are_all_gets(self):
        cfg = PatternConfig("uniform", num_ops=10)
        assert op_kinds(cfg, 0) == ["get"] * 10


class TestRunner:
    def test_uniform_workload_end_to_end(self):
        cfg = PatternConfig("uniform", num_ops=6, msg_size=512)
        result = run_workload(8, cfg, ArmciConfig.async_thread_mode())
        assert result.total_ops == 48
        assert result.total_bytes == 48 * 512
        assert result.throughput_mbps > 0
        assert result.comm_time_total > 0

    def test_nwchem_mix_issues_accumulates(self):
        from repro.armci import ArmciJob  # noqa: F401 - import check

        cfg = PatternConfig("nwchem", num_ops=20, msg_size=256, acc_fraction=0.5)
        result = run_workload(4, cfg, ArmciConfig.async_thread_mode())
        assert result.total_ops == 80

    def test_hotspot_slower_than_neighbor(self):
        """The hot server's queue (and its injection FIFO for get replies)
        serializes the hotspot pattern."""
        neighbor = run_workload(
            8, PatternConfig("neighbor", num_ops=8, msg_size=4096),
            ArmciConfig.async_thread_mode(), procs_per_node=1,
        )
        hotspot = run_workload(
            8, PatternConfig("hotspot", num_ops=8, msg_size=4096),
            ArmciConfig.async_thread_mode(), procs_per_node=1,
        )
        assert hotspot.simulated_time > neighbor.simulated_time

    def test_deterministic_results(self):
        cfg = PatternConfig("transpose", num_ops=5, msg_size=256)
        a = run_workload(4, cfg, ArmciConfig.default_mode())
        b = run_workload(4, cfg, ArmciConfig.default_mode())
        assert a == b
