"""Property tests for the consistency trackers (seeded random, no
hypothesis dependency).

Random operation streams are replayed simultaneously through
``CsTgtTracker``, ``CsMrTracker``, and a golden reference model (the set
of region keys each stream has written to each target since its last
fence there). Two containment properties must hold at every fence
decision on every stream:

- **soundness ordering**: cs_mr fences ⊆ cs_tgt fences — the per-region
  tracker never fences where the per-target one would not (it only
  removes false positives, never adds synchronization);
- **correctness floor**: oracle-required fences ⊆ cs_mr fences — every
  real conflict the golden model sees, cs_mr fences.
"""

import random

import pytest

from repro.armci.consistency import (
    CsMrTracker,
    CsTgtTracker,
    make_tracker,
)

NUM_TARGETS = 4
#: Region bases include the unregistered bucket (-1), mirroring the
#: runtime's UNREGISTERED_KEY_BASE fall-back.
REGION_BASES = (-1, 0x1000, 0x2000, 0x3000)


class GoldenModel:
    """Reference semantics: exact outstanding-write sets per target."""

    def __init__(self):
        self.outstanding = {}  # dst -> set of keys

    def on_write(self, dst, key):
        self.outstanding.setdefault(dst, set()).add(key)

    def requires_fence(self, dst, key):
        return key in self.outstanding.get(dst, ())

    def on_fence(self, dst):
        self.outstanding.pop(dst, None)


def random_ops(seed, length=400):
    rng = random.Random(seed)
    for _ in range(length):
        op = rng.choices(("write", "get", "fence"), weights=(5, 5, 2))[0]
        dst = rng.randrange(NUM_TARGETS)
        key = (dst, rng.choice(REGION_BASES))
        yield op, dst, key


@pytest.mark.parametrize("seed", range(20))
def test_fence_containment_properties(seed):
    tgt, mr, golden = CsTgtTracker(), CsMrTracker(), GoldenModel()
    decisions = 0
    for op, dst, key in random_ops(seed):
        if op == "write":
            tgt.on_write(dst, key)
            mr.on_write(dst, key)
            golden.on_write(dst, key)
        elif op == "get":
            need_tgt = tgt.needs_fence(dst, key)
            need_mr = mr.needs_fence(dst, key)
            need_golden = golden.requires_fence(dst, key)
            # cs_mr fences ⊆ cs_tgt fences
            assert not (need_mr and not need_tgt), (
                f"seed {seed}: cs_mr fenced where cs_tgt would not "
                f"(dst={dst}, key={key})"
            )
            # oracle-required fences ⊆ cs_mr fences
            assert not (need_golden and not need_mr), (
                f"seed {seed}: cs_mr missed a required fence "
                f"(dst={dst}, key={key})"
            )
            decisions += 1
            # Decisions are pure queries here: induced fences are
            # tracker-specific actions that would fork the histories,
            # and the containment properties are defined over identical
            # input streams (explicit fences below hit all models).
            tgt.on_get(dst, key)
            mr.on_get(dst, key)
        else:
            tgt.on_fence(dst)
            mr.on_fence(dst)
            golden.on_fence(dst)
    assert decisions > 50  # the stream actually exercised the property


@pytest.mark.parametrize("seed", range(20))
def test_cs_mr_exactly_matches_golden(seed):
    """Stronger than containment: with full key information cs_mr's
    verdict IS the golden verdict (the paper's 'no false positives,
    no missed conflicts' claim, as an invariant)."""
    mr, golden = CsMrTracker(), GoldenModel()
    for op, dst, key in random_ops(seed, length=300):
        if op == "write":
            mr.on_write(dst, key)
            golden.on_write(dst, key)
        elif op == "get":
            assert mr.needs_fence(dst, key) == golden.requires_fence(dst, key)
            mr.on_get(dst, key)
        else:
            mr.on_fence(dst)
            golden.on_fence(dst)


@pytest.mark.parametrize("seed", range(10))
def test_cs_tgt_never_misses(seed):
    """cs_tgt's defect is overhead only: wherever golden requires a
    fence, cs_tgt fences too."""
    tgt, golden = CsTgtTracker(), GoldenModel()
    for op, dst, key in random_ops(seed, length=300):
        if op == "write":
            tgt.on_write(dst, key)
            golden.on_write(dst, key)
        elif op == "get":
            if golden.requires_fence(dst, key):
                assert tgt.needs_fence(dst, key)
            tgt.on_get(dst, key)
        else:
            tgt.on_fence(dst)
            golden.on_fence(dst)


def test_space_accounting():
    """The paper's space trade-off: cs_tgt tracks Theta(zeta) entries,
    cs_mr up to Theta(sigma * zeta)."""
    tgt, mr = CsTgtTracker(), CsMrTracker()
    for dst in range(NUM_TARGETS):
        for base in REGION_BASES:
            tgt.on_write(dst, (dst, base))
            mr.on_write(dst, (dst, base))
    assert tgt.space_entries == NUM_TARGETS
    assert mr.space_entries == NUM_TARGETS * len(REGION_BASES)


def test_registry_round_trip():
    assert isinstance(make_tracker("cs_mr"), CsMrTracker)
    assert isinstance(make_tracker("cs_tgt"), CsTgtTracker)
