"""Transport-layer conformance: capability descriptors, backend
selection, and the MPI-3 semantic deltas (emulated AMs, partial native
AMO set, flush completion, window-attach cost).

The cross-backend *functional* conformance suite is the existing ARMCI
test modules parameterized by the ``backend`` fixture (see
``tests/conftest.py``); this module covers what those tests cannot —
backend-specific counters, capability metadata, and pami-vs-mpi3
behavior comparisons inside one test.
"""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.errors import ArmciError
from repro.transport import (
    BACKENDS,
    Mpi3Transport,
    PamiTransport,
    capability_matrix,
    create_transport,
)
from repro.transport.mpi3 import MPI3_NATIVE_RMW_OPS


def make_job(backend, num_procs=2, config_cls=ArmciConfig, **cfg):
    job = ArmciJob(
        num_procs,
        config=config_cls(backend=backend, **cfg),
        procs_per_node=2,
    )
    job.init()
    return job


def run_put_get_fence(job, nbytes=1024):
    """Each rank puts to its right neighbor, fences, reads it back."""
    results = {}

    def main(rt):
        alloc = yield from rt.malloc(4096)
        right = (rt.rank + 1) % rt.world.num_procs
        space = rt.world.space(rt.rank)
        src = space.allocate(nbytes)
        space.write(src, bytes([rt.rank + 1]) * nbytes)
        local = space.allocate(nbytes)
        yield from rt.put(right, src, alloc.addr(right), nbytes)
        yield from rt.fence(right)
        yield from rt.get(right, local, alloc.addr(right), nbytes)
        yield from rt.barrier()
        results[rt.rank] = bytes(space.view(local, nbytes))

    job.run(main)
    return results


class TestRegistryAndConfig:
    def test_registry_names(self):
        assert set(BACKENDS) == {"pami", "mpi3"}
        assert BACKENDS["pami"] is PamiTransport
        assert BACKENDS["mpi3"] is Mpi3Transport

    def test_unknown_backend_rejected_by_config(self):
        with pytest.raises(ArmciError, match="unknown backend"):
            ArmciConfig(backend="verbs")

    def test_unknown_backend_rejected_by_factory(self):
        with pytest.raises(ArmciError, match="unknown transport backend"):
            create_transport("verbs", None, None)

    def test_explicit_selection_wins_over_default(self, monkeypatch):
        import repro.transport as transport

        monkeypatch.setattr(transport, "DEFAULT_BACKEND", "mpi3")
        job_default = ArmciJob(2, procs_per_node=2)
        job_pinned = ArmciJob(
            2, config=ArmciConfig(backend="pami"), procs_per_node=2
        )
        assert job_default.transport.capabilities.name == "mpi3"
        assert job_pinned.transport.capabilities.name == "pami"

    def test_env_var_seeds_default(self, monkeypatch):
        # DEFAULT_BACKEND is read from the environment at import; the
        # factory resolves the module global at call time, so tests (and
        # the CI matrix) can re-point it without reimporting.
        import repro.transport as transport

        monkeypatch.setattr(transport, "DEFAULT_BACKEND", "mpi3")
        t = create_transport(None, None, None)
        assert isinstance(t, Mpi3Transport)


class TestCapabilityDescriptors:
    def test_matrix_covers_all_backends(self):
        matrix = capability_matrix()
        assert [c.name for c in matrix] == sorted(BACKENDS)

    def test_pami_descriptor(self):
        caps = PamiTransport.capabilities
        assert caps.completion == "counter"
        assert caps.progress == "dedicated_thread"
        assert caps.true_active_messages
        assert caps.native_rmw_ops == frozenset()
        assert caps.rma_origin_overhead == 0.0

    def test_mpi3_descriptor(self):
        caps = Mpi3Transport.capabilities
        assert caps.completion == "flush"
        assert caps.progress == "mpi_calls"
        assert not caps.true_active_messages
        assert caps.native_rmw_ops == MPI3_NATIVE_RMW_OPS
        assert "fetch_max" not in caps.native_rmw_ops
        assert caps.rma_origin_overhead > 0.0
        assert caps.am_emulation_overhead > 0.0

    def test_descriptors_frozen(self):
        with pytest.raises(AttributeError):
            PamiTransport.capabilities.completion = "flush"


class TestCrossBackendSemantics:
    def test_put_get_data_identical_across_backends(self):
        expected = run_put_get_fence(make_job("pami"))
        got = run_put_get_fence(make_job("mpi3"))
        assert got == expected
        assert all(v == bytes([r + 1]) * 1024 for r, v in expected.items())

    def test_mpi3_is_slower_never_wrong(self):
        jobs = {b: make_job(b, num_procs=4) for b in ("pami", "mpi3")}
        for job in jobs.values():
            run_put_get_fence(job)
        # Window bookkeeping + flush round-trips cost simulated time...
        assert jobs["mpi3"].engine.now > jobs["pami"].engine.now
        # ...but the protocol op mix is unchanged.
        for key in ("armci.put_rdma", "armci.get_rdma", "armci.fences"):
            assert (
                jobs["mpi3"].trace.count(key) == jobs["pami"].trace.count(key)
            )

    def test_rmw_values_identical_across_backends(self):
        def run(backend):
            job = make_job(backend, num_procs=4)
            olds = {}

            def main(rt):
                alloc = yield from rt.malloc(64)
                yield from rt.barrier()
                old = yield from rt.rmw(0, alloc.addr(0), "fetch_add", 1)
                mx = yield from rt.rmw(
                    0, alloc.addr(0) + 8, "fetch_max", rt.rank + 1
                )
                yield from rt.barrier()
                olds[rt.rank] = (old,)
                if rt.rank == 0:
                    space = rt.world.space(0)
                    olds["final"] = (
                        space.read_i64(alloc.addr(0)),
                        space.read_i64(alloc.addr(0) + 8),
                    )

            job.run(main)
            return olds

        pami, mpi3 = run("pami"), run("mpi3")
        assert pami["final"] == mpi3["final"] == (4, 4)
        adds = [pami[r][0] for r in range(4)]
        assert sorted(adds) == [0, 1, 2, 3]


class TestMpi3Counters:
    def test_amo_fallback_split(self):
        job = make_job("mpi3", num_procs=2)

        def main(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank == 0:
                yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
                yield from rt.rmw(1, alloc.addr(1), "swap", 7)
                yield from rt.rmw(1, alloc.addr(1) + 8, "fetch_max", 5)
            yield from rt.barrier()

        job.run(main)
        assert job.trace.count("transport.amo_native") == 2
        assert job.trace.count("transport.amo_software_fallbacks") == 1

    def test_pami_never_counts_transport_amos(self):
        job = make_job("pami", num_procs=2)

        def main(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank == 0:
                yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
            yield from rt.barrier()

        job.run(main)
        assert job.trace.count("transport.amo_native") == 0
        assert job.trace.count("transport.amo_software_fallbacks") == 0

    def test_flush_syncs_counted_per_fence(self):
        job = make_job("mpi3", num_procs=2)

        def main(rt):
            alloc = yield from rt.malloc(256)
            right = (rt.rank + 1) % 2
            src = rt.world.space(rt.rank).allocate(64)
            yield from rt.put(right, src, alloc.addr(right), 64)
            yield from rt.fence(right)
            yield from rt.barrier()

        job.run(main)
        assert job.trace.count("transport.flush_syncs") == 2

    def test_win_attach_and_am_emulation_counted(self):
        job = make_job("mpi3", num_procs=2)

        def main(rt):
            alloc = yield from rt.malloc(256)
            yield from rt.barrier()
            if rt.rank == 0:
                yield from rt.lock(0)
                yield from rt.unlock(0)
            yield from rt.barrier()

        job.run(main)
        # One registered segment per rank (malloc), plus lock/unlock AMs.
        assert job.trace.count("transport.win_attach") >= 2
        assert job.trace.count("transport.am_emulations") >= 2


class TestMpi3Report:
    def test_report_labels_backend_and_fallbacks(self):
        from repro.armci.report import runtime_report

        job = make_job("mpi3", num_procs=2)

        def main(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank == 0:
                yield from rt.rmw(1, alloc.addr(1), "fetch_max", 3)
            yield from rt.barrier()

        job.run(main)
        report = runtime_report(job)
        assert "mpi3 (flush completion)" in report
        assert "AMOs emulated in software" in report

    def test_report_labels_pami(self):
        from repro.armci.report import runtime_report

        job = make_job("pami", num_procs=2)

        def main(rt):
            yield from rt.barrier()

        job.run(main)
        report = runtime_report(job)
        assert "pami (counter completion)" in report
