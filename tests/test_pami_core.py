"""Integration tests for PAMI contexts, clients, RMA, AMs, and AMOs."""

import pytest

from repro.errors import PamiError
from repro.machine import BGQParams
from repro.pami import PamiWorld
from repro.pami.activemsg import send_am, send_am_immediate
from repro.pami.atomics import rmw
from repro.pami.context import CompletionItem
from repro.pami.rma import rdma_get, rdma_put
from repro.sim import Delay

from .conftest import build_world, create_contexts, run_ranks


class TestWorldSetup:
    def test_world_builds_default_partition(self):
        world = PamiWorld(num_procs=32, procs_per_node=16)
        assert world.mapping.num_ranks == 32
        assert world.mapping.torus.num_nodes == 2

    def test_world_rejects_zero_procs(self):
        with pytest.raises(PamiError):
            PamiWorld(num_procs=0)

    def test_rank_bounds_checked(self):
        world = PamiWorld(num_procs=2, procs_per_node=1)
        with pytest.raises(PamiError):
            world.client(2)
        with pytest.raises(PamiError):
            world.space(-1)

    def test_context_creation_costs_table_ii_time(self):
        world = PamiWorld(num_procs=1, procs_per_node=1)
        create_contexts(world, rho=2)
        # 3821us for the first + 4271us for the second context.
        assert world.engine.now == pytest.approx(3821e-6 + 4271e-6)
        assert world.clients[0].num_contexts == 2

    def test_progress_context_is_last(self):
        world = build_world(num_procs=1, procs_per_node=1, rho=2)
        client = world.clients[0]
        assert client.progress_context() is client.context(1)

    def test_context_index_errors(self):
        world = build_world(num_procs=1, procs_per_node=1)
        with pytest.raises(PamiError):
            world.clients[0].context(5)

    def test_dispatch_registration(self):
        world = build_world(num_procs=1, procs_per_node=1)
        client = world.clients[0]
        handler = lambda ctx, env: None
        client.register_dispatch(7, handler)
        assert client.handler_for(7) is handler
        with pytest.raises(PamiError):
            client.register_dispatch(7, handler)
        with pytest.raises(PamiError):
            client.handler_for(8)


class TestContextProgress:
    def test_drain_requires_lock(self, world2):
        ctx = world2.clients[0].context(0)
        with pytest.raises(PamiError, match="without holding its lock"):
            list(ctx.drain())

    def test_advance_services_completion_items(self, world2):
        ctx = world2.clients[0].context(0)
        ev = world2.engine.event()
        ctx.post(CompletionItem(ev, "payload"))

        def body():
            n = yield from ctx.advance()
            return (n, ev.triggered, ev.value)

        proc = world2.engine.spawn(body(), name="advancer")
        assert world2.engine.run_until_complete([proc]) == [(1, True, "payload")]

    def test_wait_with_progress_self_services(self, world2):
        """A thread waiting on its own op drains the completion itself."""
        ctx = world2.clients[0].context(0)
        ev = world2.engine.event()
        world2.engine.schedule(1e-6, lambda _: ctx.post(CompletionItem(ev, 42)))

        def body():
            value = yield from ctx.wait_with_progress(ev)
            return value

        proc = world2.engine.spawn(body(), name="waiter")
        assert world2.engine.run_until_complete([proc]) == [42]

    def test_wait_with_progress_event_fired_elsewhere(self, world2):
        """If another thread fires the event, the waiter just returns."""
        ctx = world2.clients[0].context(0)
        ev = world2.engine.event()
        world2.engine.schedule(2e-6, lambda _: ev.succeed("done"))

        def body():
            return (yield from ctx.wait_with_progress(ev))

        proc = world2.engine.spawn(body(), name="waiter")
        assert world2.engine.run_until_complete([proc]) == ["done"]

    def test_advance_max_items_bounds_work(self, world2):
        ctx = world2.clients[0].context(0)
        for i in range(5):
            ctx.post(CompletionItem(world2.engine.event(), i))

        def body():
            n = yield from ctx.advance(max_items=2)
            return n

        proc = world2.engine.spawn(body(), name="advancer")
        assert world2.engine.run_until_complete([proc]) == [2]
        assert len(ctx.queue) == 3


class TestRdma:
    def _alloc(self, world, rank, nbytes, fill=0):
        return world.space(rank).allocate(nbytes, fill=fill)

    def test_put_moves_bytes_end_to_end(self, world2):
        src_addr = self._alloc(world2, 0, 64)
        dst_addr = self._alloc(world2, 1, 64)
        world2.space(0).write(src_addr, b"A" * 64)

        def body():
            ctx = world2.clients[0].context(0)
            op = rdma_put(ctx, 1, src_addr, dst_addr, 64)
            yield from ctx.wait_with_progress(op.local_event)
            return op

        [op] = run_ranks(world2, lambda r: body(), ranks=[0])
        world2.engine.run()
        assert world2.space(1).read(dst_addr, 64) == b"A" * 64

    def test_put_buffer_reuse_semantics(self, world2):
        """Data is captured at post time; later writes don't corrupt it."""
        src_addr = self._alloc(world2, 0, 16)
        dst_addr = self._alloc(world2, 1, 16)
        world2.space(0).write(src_addr, b"ORIGINAL-DATA-XX")

        def body():
            ctx = world2.clients[0].context(0)
            op = rdma_put(ctx, 1, src_addr, dst_addr, 16)
            world2.space(0).write(src_addr, b"CLOBBERED-DATA-X")
            yield from ctx.wait_with_progress(op.local_event)

        run_ranks(world2, lambda r: body(), ranks=[0])
        world2.engine.run()
        assert world2.space(1).read(dst_addr, 16) == b"ORIGINAL-DATA-XX"

    def test_put_local_completion_time_matches_network_model(self, world2):
        src_addr = self._alloc(world2, 0, 16)
        dst_addr = self._alloc(world2, 1, 16)
        t0 = world2.engine.now

        def body():
            ctx = world2.clients[0].context(0)
            op = rdma_put(ctx, 1, src_addr, dst_addr, 16)
            yield from ctx.wait_with_progress(op.local_event)
            return world2.engine.now - t0

        [elapsed] = run_ranks(world2, lambda r: body(), ranks=[0])
        # Completion dispatch adds a small advance cost on top of 2.7us.
        assert elapsed == pytest.approx(2.7e-6, rel=0.15)

    def test_put_remote_ack_for_fence(self, world2):
        src_addr = self._alloc(world2, 0, 16)
        dst_addr = self._alloc(world2, 1, 16)

        def body():
            ctx = world2.clients[0].context(0)
            op = rdma_put(ctx, 1, src_addr, dst_addr, 16, want_remote_ack=True)
            yield from ctx.wait_with_progress(op.remote_ack_event)
            # By ack time the bytes are in target memory.
            return world2.space(1).read(dst_addr, 16)

        [data] = run_ranks(world2, lambda r: body(), ranks=[0])
        assert data == bytes(16)

    def test_get_moves_bytes_and_reads_at_nic_time(self, world2):
        remote = self._alloc(world2, 1, 32, fill=5)
        local = self._alloc(world2, 0, 32)

        def body():
            ctx = world2.clients[0].context(0)
            op = rdma_get(ctx, 1, remote, local, 32)
            yield from ctx.wait_with_progress(op.local_event)
            return world2.space(0).read(local, 32)

        [data] = run_ranks(world2, lambda r: body(), ranks=[0])
        assert data == bytes([5] * 32)

    def test_get_latency_adjacent_16b(self, world2):
        remote = self._alloc(world2, 1, 16)
        local = self._alloc(world2, 0, 16)
        t0 = world2.engine.now

        def body():
            ctx = world2.clients[0].context(0)
            op = rdma_get(ctx, 1, remote, local, 16)
            yield from ctx.wait_with_progress(op.local_event)
            return world2.engine.now - t0

        [elapsed] = run_ranks(world2, lambda r: body(), ranks=[0])
        assert elapsed == pytest.approx(2.89e-6, rel=0.15)

    def test_zero_byte_transfers_rejected(self, world2):
        ctx = world2.clients[0].context(0)
        with pytest.raises(PamiError):
            rdma_put(ctx, 1, 0x1000, 0x1000, 0)
        with pytest.raises(PamiError):
            rdma_get(ctx, 1, 0x1000, 0x1000, 0)

    def test_puts_between_pair_preserve_order(self, world2):
        """Pairwise ordering: a later put never lands before an earlier one."""
        src = self._alloc(world2, 0, 8)
        dst = self._alloc(world2, 1, 8)

        def body():
            ctx = world2.clients[0].context(0)
            ops = []
            for i in range(10):
                world2.space(0).write(src, bytes([i] * 8))
                ops.append(rdma_put(ctx, 1, src, dst, 8))
            for op in ops:
                yield from ctx.wait_with_progress(op.local_event)

        run_ranks(world2, lambda r: body(), ranks=[0])
        world2.engine.run()
        # Final memory reflects the last put; checker saw no violations.
        assert world2.space(1).read(dst, 8) == bytes([9] * 8)
        assert world2.ordering.checked >= 10


class TestActiveMessages:
    def test_am_handler_runs_when_target_advances(self, world2):
        received = []
        world2.clients[1].register_dispatch(
            1, lambda ctx, env: received.append((env.header["x"], env.payload))
        )

        def sender():
            ctx = world2.clients[0].context(0)
            op = send_am(ctx, 1, 1, header={"x": 42}, payload=b"bulk")
            yield from ctx.wait_with_progress(op.local_event)

        def receiver():
            ctx = world2.clients[1].context(0)
            # Advance until the handler has run.
            while not received:
                if len(ctx.queue) == 0:
                    yield ctx.arrival_signal()
                yield from ctx.advance()

        run_ranks(world2, lambda r: sender() if r == 0 else receiver())
        assert received == [(42, b"bulk")]

    def test_am_not_handled_without_progress(self, world2):
        """Fig. 9's root cause: no advance at target => handler never runs."""
        received = []
        world2.clients[1].register_dispatch(1, lambda c, e: received.append(1))

        def sender():
            ctx = world2.clients[0].context(0)
            op = send_am(ctx, 1, 1, header={})
            yield from ctx.wait_with_progress(op.local_event)
            yield Delay(1.0)  # plenty of time; target never advances

        run_ranks(world2, lambda r: sender(), ranks=[0])
        world2.engine.run()
        assert not received
        assert len(world2.clients[1].progress_context().queue) == 1

    def test_am_immediate_blocks_until_injected(self, world2):
        world2.clients[1].register_dispatch(1, lambda c, e: None)

        def sender():
            ctx = world2.clients[0].context(0)
            t0 = world2.engine.now
            yield from send_am_immediate(ctx, 1, 1, header={"k": 1})
            return world2.engine.now - t0

        [elapsed] = run_ranks(world2, lambda r: sender(), ranks=[0])
        assert elapsed > 0

    def test_am_immediate_payload_limit(self, world2):
        ctx = world2.clients[0].context(0)
        with pytest.raises(PamiError, match="512"):
            list(send_am_immediate(ctx, 1, 1, payload=b"x" * 600))

    def test_am_routed_to_explicit_context(self):
        world = build_world(num_procs=2, procs_per_node=1, rho=2)
        world.clients[1].register_dispatch(1, lambda c, e: None)

        def sender():
            ctx = world.clients[0].context(0)
            op = send_am(ctx, 1, 1, header={}, target_context=0)
            yield from ctx.wait_with_progress(op.local_event)

        run_ranks(world, lambda r: sender(), ranks=[0])
        world.engine.run()
        assert len(world.clients[1].context(0).queue) == 1
        assert len(world.clients[1].context(1).queue) == 0


class TestAtomics:
    def test_fetch_add_returns_old_value_and_updates(self, world2):
        counter = world2.space(1).allocate(8)
        world2.space(1).write_i64(counter, 100)

        def initiator():
            ctx = world2.clients[0].context(0)
            op = rmw(ctx, 1, counter, "fetch_add", 5)
            old = yield from ctx.wait_with_progress(op.event)
            return old

        def target():
            ctx = world2.clients[1].context(0)
            while world2.space(1).read_i64(counter) == 100:
                if len(ctx.queue) == 0:
                    yield ctx.arrival_signal()
                yield from ctx.advance()

        results = run_ranks(
            world2, lambda r: initiator() if r == 0 else target()
        )
        assert results[0] == 100
        assert world2.space(1).read_i64(counter) == 105

    def test_unknown_op_rejected(self, world2):
        ctx = world2.clients[0].context(0)
        with pytest.raises(PamiError, match="unknown rmw op"):
            rmw(ctx, 1, 0x1000, "xor", 1)

    def test_compare_swap_semantics(self, world2):
        counter = world2.space(1).allocate(8)
        world2.space(1).write_i64(counter, 7)

        def initiator():
            ctx = world2.clients[0].context(0)
            # Mismatch: no write.
            op = rmw(ctx, 1, counter, "compare_swap", 99, 1)
            old = yield from ctx.wait_with_progress(op.event)
            assert old == 7
            # Match: write 1.
            op = rmw(ctx, 1, counter, "compare_swap", 7, 1)
            old = yield from ctx.wait_with_progress(op.event)
            return old

        def target():
            ctx = world2.clients[1].context(0)
            while world2.space(1).read_i64(counter) != 1:
                if len(ctx.queue) == 0:
                    yield ctx.arrival_signal()
                yield from ctx.advance()

        results = run_ranks(
            world2, lambda r: initiator() if r == 0 else target()
        )
        assert results[0] == 7
        assert world2.space(1).read_i64(counter) == 1

    def test_many_ranks_fetch_add_is_atomic(self):
        """Every rank increments once; all see distinct old values."""
        world = build_world(num_procs=8, procs_per_node=1)
        counter = world.space(0).allocate(8)

        def initiator(rank):
            ctx = world.clients[rank].context(0)
            op = rmw(ctx, 0, counter, "fetch_add", 1)
            old = yield from ctx.wait_with_progress(op.event)
            return old

        def target():
            ctx = world.clients[0].context(0)
            while world.space(0).read_i64(counter) < 7:
                if len(ctx.queue) == 0:
                    yield ctx.arrival_signal()
                yield from ctx.advance()
            return None

        results = run_ranks(
            world, lambda r: target() if r == 0 else initiator(r)
        )
        old_values = sorted(v for v in results if v is not None)
        assert old_values == list(range(7))
        assert world.space(0).read_i64(counter) == 7

    def test_hardware_amo_bypasses_software_progress(self):
        """With NIC AMO support, no target thread is needed at all."""
        world = build_world(num_procs=2, procs_per_node=1, nic_amo_support=True)
        counter = world.space(1).allocate(8)

        def initiator():
            ctx = world.clients[0].context(0)
            op = rmw(ctx, 1, counter, "fetch_add", 3)
            old = yield from ctx.wait_with_progress(op.event)
            return old

        [old] = run_ranks(world, lambda r: initiator(), ranks=[0])
        assert old == 0
        assert world.space(1).read_i64(counter) == 3

    def test_hardware_amo_much_faster_than_unserviced_software(self):
        """Hardware AMO completes in ~us while software AMO waits forever
        if the target never advances (the paper's core observation)."""
        hw = build_world(num_procs=2, procs_per_node=1, nic_amo_support=True)
        counter = hw.space(1).allocate(8)

        def initiator(world, ctr):
            ctx = world.clients[0].context(0)
            op = rmw(ctx, 1, ctr, "fetch_add", 1)
            yield from ctx.wait_with_progress(op.event)
            return world.engine.now

        [t_hw] = run_ranks(hw, lambda r: initiator(hw, counter), ranks=[0])
        assert t_hw - 3821e-6 < 5e-6  # a few microseconds after init

        sw = build_world(num_procs=2, procs_per_node=1)
        counter_sw = sw.space(1).allocate(8)
        proc = sw.engine.spawn(initiator(sw, counter_sw), name="stuck")
        sw.engine.run()
        assert not proc.done.triggered  # blocked: target never advanced
