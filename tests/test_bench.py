"""Tests for the benchmark drivers (small scales; full scale lives in
benchmarks/)."""

import pytest

from repro.armci import ArmciConfig
from repro.bench import (
    bandwidth_sweep,
    contiguous_latency_sweep,
    efficiency_series,
    latency_per_byte,
    n_half,
    strided_bandwidth_sweep,
    table_i_rows,
    table_ii_rows,
)
from repro.bench.amo import amo_latency_run
from repro.bench.rankscan import hop_latency_estimate, rank_latency_scan
from repro.bench.scf import scf_comparison
from repro.apps.nwchem import ScfConfig
from repro.errors import ReproError

SIZES = (16, 256, 4096)


class TestLatencyDrivers:
    def test_latency_sweep_returns_requested_sizes(self):
        rows = contiguous_latency_sweep(sizes=SIZES, op="get")
        assert [s for s, _ in rows] == list(SIZES)
        assert all(t > 0 for _, t in rows)

    def test_put_latency_below_get(self):
        gets = dict(contiguous_latency_sweep(sizes=SIZES, op="get"))
        puts = dict(contiguous_latency_sweep(sizes=SIZES, op="put"))
        assert all(puts[s] < gets[s] for s in SIZES)

    def test_invalid_op_rejected(self):
        with pytest.raises(ReproError):
            contiguous_latency_sweep(sizes=SIZES, op="swap")

    def test_latency_per_byte_decreases(self):
        rows = latency_per_byte(sizes=SIZES)
        values = [v for _, v in rows]
        assert values == sorted(values, reverse=True)


class TestBandwidthDrivers:
    def test_bandwidth_monotone_in_size(self):
        rows = bandwidth_sweep(sizes=SIZES, op="put", window=8)
        values = [b for _, b in rows]
        assert values == sorted(values)

    def test_efficiency_bounded(self):
        rows = efficiency_series(sizes=SIZES)
        assert all(0 < e < 1 for _, e in rows)

    def test_n_half_requires_reaching_half_peak(self):
        with pytest.raises(ReproError):
            n_half([(16, 0.01), (32, 0.02)])
        assert n_half([(16, 0.1), (2048, 0.6)]) == 2048

    def test_strided_sweep_validates_divisibility(self):
        with pytest.raises(ReproError):
            strided_bandwidth_sweep(total_bytes=1000, chunk_sizes=(512,))

    def test_strided_sweep_monotone(self):
        rows = strided_bandwidth_sweep(
            total_bytes=64 * 1024, chunk_sizes=(1024, 8192, 65536)
        )
        values = [b for _, b in rows]
        assert values == sorted(values)


class TestRankScan:
    def test_scan_covers_targets_and_hops(self):
        results = rank_latency_scan(num_procs=32, procs_per_node=16)
        assert len(results) == 31
        assert {r.rank for r in results} == set(range(1, 32))
        # 15 same-node ranks at 0 hops; 16 on the other node at 1 hop.
        assert sum(1 for r in results if r.hops == 0) == 15
        assert sum(1 for r in results if r.hops == 1) == 16

    def test_hop_estimate_on_multinode_job(self):
        results = rank_latency_scan(num_procs=128, procs_per_node=16)
        assert hop_latency_estimate(results) == pytest.approx(35e-9, rel=0.05)

    def test_equal_distance_equal_latency(self):
        results = rank_latency_scan(num_procs=64, procs_per_node=16)
        by_hops = {}
        for r in results:
            if r.hops > 0:
                by_hops.setdefault(r.hops, set()).add(round(r.seconds * 1e12))
        assert all(len(v) == 1 for v in by_hops.values())


class TestAmoDriver:
    def test_unknown_label_rejected(self):
        with pytest.raises(ReproError):
            amo_latency_run(4, "bogus")

    def test_compute_hurts_default_only(self):
        d = amo_latency_run(8, "D", iterations=4, procs_per_node=8)
        dc = amo_latency_run(8, "D+compute", iterations=4, procs_per_node=8)
        atc = amo_latency_run(8, "AT+compute", iterations=4, procs_per_node=8)
        assert dc.mean_latency > d.mean_latency + 200e-6
        assert atc.mean_latency < d.mean_latency * 1.5

    def test_hardware_beats_software(self):
        hw = amo_latency_run(8, "HW+compute", iterations=4, procs_per_node=8)
        at = amo_latency_run(8, "AT+compute", iterations=4, procs_per_node=8)
        assert hw.mean_latency < at.mean_latency


class TestScfDriver:
    def test_comparison_shape(self):
        scf = ScfConfig(nbf_override=32, nblocks=4, task_time=200e-6)
        rows = scf_comparison(proc_counts=(4, 8), scf=scf, procs_per_node=8)
        assert [c.num_procs for c in rows] == [4, 8]
        for cell in rows:
            assert 0 < cell.improvement < 1
            assert cell.counter_time_reduction > 1


class TestTables:
    def test_table_i_rows(self):
        assert len(table_i_rows()) == 13

    def test_table_ii_measured_matches_paper(self):
        rows = {r[1]: r for r in table_ii_rows()}
        assert rows["beta"][3] == "0.30 us"
        assert rows["delta"][3] == "43.0 us"
        assert rows["t_ctx"][3] == "3821 - 4271 us"
