"""Unit tests for collective structures, mutex tables, ordering checker."""

import pytest

from repro.armci.collectives import HardwareBarrier, ReductionBoard
from repro.armci.locks import MutexTable, mutex_owner
from repro.errors import ArmciError, PamiError
from repro.pami.ordering import OrderingChecker
from repro.sim import Delay, Engine

#: Conformance suite: every test in this module runs once per backend
#: (the ``backend`` fixture re-points ``repro.transport.DEFAULT_BACKEND``).
pytestmark = pytest.mark.usefixtures("backend")


class TestHardwareBarrier:
    def test_releases_after_all_arrive(self):
        eng = Engine()
        bar = HardwareBarrier(eng, 3, latency=1e-6)
        times = []

        def body(i):
            yield Delay(i * 1e-6)
            release = bar.arrive()
            yield release
            times.append(eng.now)

        procs = [eng.spawn(body(i), name=f"p{i}") for i in range(3)]
        eng.run_until_complete(procs)
        # All released 1 us after the last (slowest) arrival at 2 us.
        assert times == [3e-6] * 3
        assert bar.rounds_completed == 1

    def test_multiple_rounds(self):
        eng = Engine()
        bar = HardwareBarrier(eng, 2, latency=0.0)

        def body():
            for _ in range(5):
                yield bar.arrive()

        procs = [eng.spawn(body(), name=f"p{i}") for i in range(2)]
        eng.run_until_complete(procs)
        assert bar.rounds_completed == 5

    def test_double_arrival_in_round_detected(self):
        eng = Engine()
        bar = HardwareBarrier(eng, 3, latency=0.0)
        bar.arrive(0)
        bar.arrive(1)
        with pytest.raises(ArmciError, match="twice"):
            bar.arrive(0)

    def test_zero_participants_rejected(self):
        with pytest.raises(ArmciError):
            HardwareBarrier(Engine(), 0, latency=0.0)


class TestReductionBoard:
    def test_rounds_are_independent(self):
        board = ReductionBoard(2)
        r0 = board.deposit(0, 1.0)
        r1 = board.deposit(1, 2.0)
        assert r0 == r1 == 0
        # Rank 0 races ahead into round 1 before rank 1 collects round 0.
        board.deposit(0, 10.0)
        assert board.collect(0, "sum") == 3.0
        assert board.collect(0, "sum") == 3.0  # second collector
        board.deposit(1, 20.0)
        assert board.collect(1, "max") == 20.0

    def test_incomplete_round_rejected(self):
        board = ReductionBoard(2)
        board.deposit(0, 1.0)
        with pytest.raises(ArmciError, match="incomplete"):
            board.collect(0, "sum")

    def test_double_deposit_rejected(self):
        board = ReductionBoard(2)

        class Fake:
            pass

        board.deposit(0, 1.0)
        # Same rank depositing again advances to its round 1 (legal);
        # a direct duplicate within a round is impossible through the
        # API, so check the guard via internal state instead.
        board._rank_round[0] = 0
        with pytest.raises(ArmciError, match="twice"):
            board.deposit(0, 2.0)

    def test_unknown_op_rejected(self):
        board = ReductionBoard(1)
        rnd = board.deposit(0, 1.0)
        with pytest.raises(ArmciError, match="unknown"):
            board.collect(rnd, "median")

    def test_storage_reclaimed_after_all_collect(self):
        board = ReductionBoard(2)
        rnd = board.deposit(0, 1.0)
        board.deposit(1, 2.0)
        board.collect(rnd, "sum")
        board.collect(rnd, "sum")
        assert rnd not in board._rounds


class TestMutexTable:
    def test_owner_mapping_round_robin(self):
        assert mutex_owner(0, 4) == 0
        assert mutex_owner(5, 4) == 1
        with pytest.raises(ArmciError):
            mutex_owner(-1, 4)

    def test_acquire_release_cycle(self):
        table = MutexTable()
        table.host(3)
        assert table.holder(3) is None
        assert table.try_acquire(3, requester=7, grant="g7", reply_ctx=None)
        assert table.holder(3) == 7
        # Second requester queues.
        assert not table.try_acquire(3, requester=8, grant="g8", reply_ctx=None)
        assert table.queue_length(3) == 1
        nxt = table.release(3, releaser=7)
        assert nxt[0] == 8
        assert table.holder(3) == 8
        assert table.release(3, releaser=8) is None
        assert table.holder(3) is None

    def test_release_by_non_holder_rejected(self):
        table = MutexTable()
        table.host(0)
        table.try_acquire(0, 1, "g", None)
        with pytest.raises(ArmciError, match="held by"):
            table.release(0, releaser=2)

    def test_unhosted_mutex_rejected(self):
        table = MutexTable()
        with pytest.raises(ArmciError, match="not hosted"):
            table.holder(9)

    def test_fifo_handoff_order(self):
        table = MutexTable()
        table.host(0)
        table.try_acquire(0, 1, "g1", None)
        table.try_acquire(0, 2, "g2", None)
        table.try_acquire(0, 3, "g3", None)
        assert table.release(0, 1)[0] == 2
        assert table.release(0, 2)[0] == 3


class TestOrderingChecker:
    def test_monotone_deliveries_accepted(self):
        checker = OrderingChecker()
        checker.record(0, 1, 1.0)
        checker.record(0, 1, 1.0)  # equal is fine
        checker.record(0, 1, 2.0)
        assert checker.checked == 3

    def test_reordering_detected(self):
        checker = OrderingChecker()
        checker.record(0, 1, 2.0)
        with pytest.raises(PamiError, match="ordering violated"):
            checker.record(0, 1, 1.0)

    def test_pairs_are_independent(self):
        checker = OrderingChecker()
        checker.record(0, 1, 5.0)
        checker.record(1, 0, 1.0)  # reverse direction, fresh
        checker.record(0, 2, 1.0)  # different target, fresh
        assert checker.checked == 3
