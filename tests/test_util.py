"""Unit tests for units, statistics, and table formatting helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import GB, KB, MB, Summary, bytes_fmt, mbps, render_table, summarize, us
from repro.util.stats import geometric_mean
from repro.util.units import ns


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_us_and_ns(self):
        assert us(2.5e-6) == pytest.approx(2.5)
        assert ns(35e-9) == pytest.approx(35)

    def test_mbps_decimal(self):
        # 1775 MB/s means 1.775e9 bytes per second, decimal MB.
        assert mbps(1.775e9, 1.0) == pytest.approx(1775)

    def test_mbps_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            mbps(100, 0.0)

    def test_bytes_fmt(self):
        assert bytes_fmt(16) == "16B"
        assert bytes_fmt(2048) == "2KB"
        assert bytes_fmt(1 << 20) == "1MB"
        assert bytes_fmt(1536) == "1536B"  # not a whole KB


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_summary_bounds_property(self, xs):
        s = summarize(xs)
        eps = 1e-9 * max(abs(s.minimum), abs(s.maximum), 1.0)
        assert s.minimum - eps <= s.p50 <= s.maximum + eps
        assert s.minimum - eps <= s.mean <= s.maximum + eps

    def test_summary_str(self):
        assert "n=2" in str(summarize([1.0, 2.0]))


class TestFormatting:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [100, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All rows share the same width.
        assert len({len(line) for line in lines}) == 1

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="Title")
        assert out.splitlines()[0] == "Title"

    def test_render_table_column_mismatch_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = render_table(["v"], [[0.123456789]])
        assert "0.1235" in out


class TestAsciiChart:
    def _series(self):
        return {"a": [(2**k, k * 1.0) for k in range(4, 12)]}

    def test_basic_render(self):
        from repro.util import ascii_chart

        out = ascii_chart(self._series(), log_x=True, x_label="x", y_label="y")
        lines = out.splitlines()
        assert lines[0] == "y"
        assert any("o" in line for line in lines)
        assert "o=a" in lines[-1]

    def test_multiple_series_distinct_marks(self):
        from repro.util import ascii_chart

        out = ascii_chart(
            {"up": [(1, 1), (2, 2)], "down": [(1, 2), (2, 1)]}
        )
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_empty_rejected(self):
        from repro.util import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})

    def test_log_x_requires_positive(self):
        from repro.util import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 1), (2, 2)]}, log_x=True)

    def test_flat_series_does_not_crash(self):
        from repro.util import ascii_chart

        out = ascii_chart({"flat": [(1, 5.0), (2, 5.0), (3, 5.0)]})
        assert "o" in out
