"""Tests for resource-exhaustion resilience.

Covers the backpressure / deadline / watchdog / degradation stack end to
end: bounded-FIFO credit flow control with sender-side backpressure,
memory-region budget exhaustion degrading transfers to the AM fall-back,
deadline propagation through every blocking wait (instead of hangs), the
progress watchdog failing over a stalled async thread, quiesce/drain,
the pin/refcount guard on the region cache, and the error taxonomy.
"""

import dataclasses

import numpy as np
import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.armci.config import RetryPolicy
from repro.armci.region_cache import RegionCache
from repro.chaos import ChaosConfig, ChaosError, FaultPlan, ResourceFault
from repro.errors import (
    ArmciError,
    DeadlineExceededError,
    PamiError,
    ProcessFailedError,
    ResourceExhaustedError,
    RetryExhaustedError,
    TransientFaultError,
)
from repro.pami.memregion import MemoryRegion, MemoryRegionRegistry
from repro.sim.trace import Trace


def make_job(num_procs=2, config=None, fault_plan=None, **kw):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig.async_thread_mode(),
        procs_per_node=1,
        fault_plan=fault_plan,
        **kw,
    )
    job.init()
    return job


# ----------------------------------------------------------- error taxonomy


class TestErrorTaxonomy:
    def test_resource_exhausted_is_pami_and_armci(self):
        assert issubclass(ResourceExhaustedError, PamiError)
        assert issubclass(ResourceExhaustedError, ArmciError)

    def test_deadline_exceeded_is_armci(self):
        assert issubclass(DeadlineExceededError, ArmciError)

    def test_deadline_is_not_transient(self):
        """A deadline expiry must escape the retry loop, so it must not be
        classified as a retryable transient fault."""
        assert not issubclass(DeadlineExceededError, TransientFaultError)

    def test_existing_handlers_catch_new_errors(self):
        for exc in (ResourceExhaustedError("x"), DeadlineExceededError("x")):
            try:
                raise exc
            except ArmciError:
                pass


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fifo_depth": 0},
            {"fifo_depth": -4},
            {"memregion_budget": 0},
            {"default_deadline": 0.0},
            {"default_deadline": -1.0},
            {"watchdog_period": 0.0},
            # Watchdog monitors the async thread; meaningless without one.
            {"watchdog_period": 1e-3, "async_thread": False},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ArmciError):
            ArmciConfig(**kwargs)

    def test_knobs_default_off(self):
        cfg = ArmciConfig()
        assert cfg.fifo_depth is None
        assert cfg.memregion_budget is None
        assert cfg.default_deadline is None
        assert cfg.watchdog_period is None


class TestResourceFaultPlan:
    def test_chainable(self):
        plan = (
            FaultPlan()
            .exhaust_memregions(0, at=1e-3)
            .stall_progress(1, at=2e-3)
            .saturate_fifo(2, at=3e-3, amount=16)
        )
        kinds = [f.kind for f in plan.resource_faults]
        assert kinds == ["exhaust_memregions", "stall_progress", "saturate_fifo"]
        assert plan.resource_faults[2].amount == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "melt_nic", "rank": 0, "at": 1e-3},
            {"kind": "stall_progress", "rank": -1, "at": 1e-3},
            {"kind": "stall_progress", "rank": 0, "at": -1e-3},
            {"kind": "saturate_fifo", "rank": 0, "at": 1e-3, "amount": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ChaosError):
            ResourceFault(**kwargs)

    def test_rank_out_of_range_rejected_at_job(self):
        with pytest.raises(ArmciError):
            make_job(2, fault_plan=FaultPlan().stall_progress(5, at=1e-3))


# ------------------------------------------------------- credit flow control


class TestFifoCredits:
    def test_unbounded_context_never_saturates(self):
        job = make_job(2)
        ctx = job.rt(0).client.progress_context()
        assert ctx.capacity is None
        for _i in range(1000):
            assert ctx.try_acquire_credit()
        assert not ctx.saturated

    def test_bounded_context_credit_accounting(self):
        job = make_job(2, config=ArmciConfig.async_thread_mode(fifo_depth=2))
        ctx = job.rt(0).client.progress_context()
        assert ctx.capacity == 2
        assert ctx.try_acquire_credit()
        assert ctx.try_acquire_credit()
        assert ctx.saturated
        assert not ctx.try_acquire_credit()
        assert job.trace.count("pami.fifo_credit_denied") == 1
        ctx.release_credit()
        assert not ctx.saturated
        assert ctx.try_acquire_credit()

    def test_backpressure_under_fifo_saturation(self):
        """A saturate_fifo burst parks senders on the room signal; they
        complete once the noise drains, with the payload intact."""
        n_puts, nbytes, noise = 32, 256, 64
        payload = bytes(range(256))

        def run(fault_plan, fifo_depth):
            cfg = ArmciConfig.async_thread_mode(
                use_rdma=False, fifo_depth=fifo_depth
            )
            job = make_job(2, config=cfg, fault_plan=fault_plan)
            result = {}

            def body(rt):
                alloc = yield from rt.malloc(4096)
                yield from rt.barrier()
                if rt.rank == 0:
                    src = rt.world.space(0).allocate(nbytes)
                    rt.world.space(0).write(src, payload)
                    for _i in range(n_puts):
                        yield from rt.put(1, src, alloc.addr(1), nbytes)
                    yield from rt.fence(1)
                yield from rt.barrier()
                if rt.rank == 1:
                    result["data"] = rt.world.space(1).read(alloc.addr(1), nbytes)

            job.run(body)
            return result["data"], job

        plan = FaultPlan().saturate_fifo(1, at=0.0, amount=noise)
        saturated_data, job = run(plan, fifo_depth=4)
        clean_data, _ = run(None, fifo_depth=None)
        assert saturated_data == clean_data == payload
        assert job.trace.count("chaos.fifo_saturations") == 1
        assert job.trace.count("chaos.fifo_noise_injected") == noise
        assert job.trace.count("chaos.noise_serviced") == noise
        assert job.trace.count("armci.backpressure_stalls") > 0
        assert job.trace.time("armci.backpressure_time") > 0.0

    def test_flow_control_is_timing_neutral_when_unsaturated(self):
        """A FIFO deep enough to never saturate must not change timing —
        the zero-overhead contract for the new machinery."""

        def run(fifo_depth):
            cfg = ArmciConfig.async_thread_mode(
                use_rdma=False, fifo_depth=fifo_depth
            )
            job = make_job(2, config=cfg)

            def body(rt):
                alloc = yield from rt.malloc(2048)
                yield from rt.barrier()
                if rt.rank == 0:
                    src = rt.world.space(0).allocate(512)
                    for _i in range(16):
                        yield from rt.put(1, src, alloc.addr(1), 512)
                        yield from rt.get(1, src, alloc.addr(1), 512)
                    yield from rt.fence(1)
                yield from rt.barrier()

            job.run(body)
            return job.engine.now, job

        t_bounded, job = run(4096)
        t_unbounded, _ = run(None)
        assert t_bounded == t_unbounded
        assert job.trace.count("armci.backpressure_stalls") == 0


# -------------------------------------------- memregion budget / degradation


class TestMemregionBudget:
    def test_exhausted_budget_degrades_to_fallback(self):
        """With the whole budget spent on the malloc'd segment, the put
        source buffer cannot register and transfers take the AM path —
        same numerics, degraded protocol."""
        payload = bytes(range(256)) * 2

        def run(budget):
            cfg = ArmciConfig.async_thread_mode(memregion_budget=budget)
            job = make_job(2, config=cfg)
            result = {}

            def body(rt):
                alloc = yield from rt.malloc(2048)
                yield from rt.barrier()
                if rt.rank == 0:
                    src = rt.world.space(0).allocate(512)
                    rt.world.space(0).write(src, payload)
                    yield from rt.put(1, src, alloc.addr(1), 512)
                    yield from rt.fence(1)
                yield from rt.barrier()
                if rt.rank == 1:
                    result["data"] = rt.world.space(1).read(alloc.addr(1), 512)

            job.run(body)
            return result["data"], job

        degraded, job = run(budget=1)
        clean, clean_job = run(budget=None)
        assert degraded == clean == payload
        assert job.trace.count("armci.local_region_create_failed") > 0
        assert job.trace.count("armci.put_fallback") > 0
        assert clean_job.trace.count("armci.put_fallback") == 0

    def test_cache_eviction_frees_budget_for_local_create(self):
        """Budget pressure evicts a cached remote handle (re-fetchable)
        rather than failing a local registration (not)."""
        cfg = ArmciConfig.async_thread_mode(memregion_budget=3)
        job = make_job(2, config=cfg)

        def body(rt):
            alloc = yield from rt.malloc(1024)  # slot 1: malloc'd segment
            yield from rt.barrier()
            if rt.rank == 0:
                src_a = rt.world.space(0).allocate(256)
                # Slot 2: src_a's segment; slot 3: cached remote handle.
                yield from rt.put(1, src_a, alloc.addr(1), 256)
                src_b = rt.world.space(0).allocate(256)
                # Budget full: registering src_b's segment must reclaim
                # the cache slot instead of falling back.
                yield from rt.put(1, src_b, alloc.addr(1), 256)
                yield from rt.fence(1)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.region_budget_reclaims") > 0
        assert job.trace.count("armci.local_region_create_failed") == 0

    def test_exhaust_memregions_fault_degrades_later_transfers(self):
        """The chaos fault clamps the budget mid-run: registrations made
        before it keep working, new segments degrade to the AM path."""
        fault_at = 500e-6
        cfg = ArmciConfig.async_thread_mode()
        job = make_job(
            2, config=cfg,
            fault_plan=FaultPlan().exhaust_memregions(0, at=fault_at),
        )
        payload = b"R" * 512
        result = {}

        def body(rt):
            alloc = yield from rt.malloc(2048)
            yield from rt.barrier()
            if rt.rank == 0:
                src_a = rt.world.space(0).allocate(512)
                rt.world.space(0).write(src_a, payload)
                yield from rt.put(1, src_a, alloc.addr(1), 512)  # RDMA
                yield from rt.compute(2 * fault_at)  # budget clamps here
                src_b = rt.world.space(0).allocate(512)
                rt.world.space(0).write(src_b, payload)
                yield from rt.put(1, src_b, alloc.addr(1) + 512, 512)
                yield from rt.fence(1)
            yield from rt.barrier()
            if rt.rank == 1:
                result["a"] = rt.world.space(1).read(alloc.addr(1), 512)
                result["b"] = rt.world.space(1).read(alloc.addr(1) + 512, 512)

        job.run(body)
        assert result["a"] == result["b"] == payload
        assert job.trace.count("chaos.memregion_exhaustions") == 1
        assert job.trace.count("armci.put_rdma") > 0
        assert job.trace.count("armci.put_fallback") > 0


class TestRegionCachePins:
    def _region(self, base, rid):
        return MemoryRegion(rank=1, base=base, nbytes=64, region_id=rid)

    def test_pinned_entry_survives_eviction(self):
        cache = RegionCache(capacity=2, trace=Trace())
        a, b, c = (self._region(i * 4096, i) for i in range(3))
        cache.insert(a)
        cache.insert(b)
        cache.pin(a)
        # a is LFU (tie broken by age) but pinned: b must be the victim.
        cache.insert(c)
        assert cache.lookup(1, a.base, 64) is a
        assert cache.lookup(1, b.base, 64) is None
        assert cache.pinned(1, a.base) == 1

    def test_all_pinned_overflows_capacity(self):
        trace = Trace()
        cache = RegionCache(capacity=2, trace=trace)
        a, b, c = (self._region(i * 4096, i) for i in range(3))
        cache.insert(a)
        cache.insert(b)
        cache.pin(a)
        cache.pin(b)
        cache.insert(c)
        assert len(cache) == 3
        assert trace.count("armci.region_cache_pinned_overflow") == 1

    def test_unpin_restores_evictability(self):
        cache = RegionCache(capacity=1, trace=Trace())
        a, b = (self._region(i * 4096, i) for i in range(2))
        cache.insert(a)
        cache.pin(a)
        cache.pin(a)
        cache.unpin(a)
        assert cache.pinned(1, a.base) == 1
        cache.unpin(a)
        cache.insert(b)
        assert cache.lookup(1, a.base, 64) is None
        assert cache.lookup(1, b.base, 64) is b

    def test_budget_bound_insert_leaves_handle_uncached_when_full(self):
        trace = Trace()
        registry = MemoryRegionRegistry(0, create_time=43e-6, max_regions=1)
        assert registry.reserve()  # someone else owns the only slot
        cache = RegionCache(capacity=4, trace=trace, budget_registry=registry)
        cache.insert(self._region(0, 0))
        assert len(cache) == 0
        assert trace.count("armci.region_cache_uncached") == 1

    def test_eviction_releases_budget_slot(self):
        registry = MemoryRegionRegistry(0, create_time=43e-6, max_regions=2)
        cache = RegionCache(capacity=4, trace=Trace(), budget_registry=registry)
        cache.insert(self._region(0, 0))
        cache.insert(self._region(4096, 1))
        assert registry.available == 0
        assert cache.evict_for_budget() == 1
        assert registry.available == 1

    def test_rdma_transfer_pins_are_released_on_completion(self):
        """Integration: the remote region used by an RDMA put is pinned
        for the transfer's lifetime and unpinned when the handle
        completes, so long-lived jobs do not leak pins."""
        cfg = ArmciConfig.async_thread_mode(region_cache_capacity=4)
        job = make_job(2, config=cfg)
        observed = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(256)
                for _i in range(4):
                    yield from rt.put(1, src, alloc.addr(1), 256)
                yield from rt.fence(1)
                observed["pins"] = rt.region_cache.pinned(1, alloc.addr(1))
            yield from rt.barrier()

        job.run(body)
        assert observed["pins"] == 0


# ------------------------------------------------------------------ deadlines


class TestDeadlines:
    def test_get_deadline_on_unresponsive_target(self):
        """Default mode, AM fall-back: the target computes and services
        nothing, so without a deadline this get would hang forever."""

        def run():
            cfg = ArmciConfig.default_mode(use_rdma=False)
            job = make_job(2, config=cfg)
            outcome = {}

            def body(rt):
                alloc = yield from rt.malloc(1024)
                yield from rt.barrier()
                if rt.rank == 1:
                    yield from rt.compute(20e-3)
                    return
                dst_buf = rt.world.space(0).allocate(256)
                try:
                    yield from rt.get(1, dst_buf, alloc.addr(1), 256,
                                      timeout=1e-3)
                except DeadlineExceededError:
                    outcome["raised_at"] = rt.engine.now

            job.run(body)
            return outcome["raised_at"]

        t1, t2 = run(), run()
        assert t1 == t2  # deterministic expiry, not a race

    def test_default_deadline_config_applies_without_timeout_arg(self):
        cfg = ArmciConfig.default_mode(use_rdma=False, default_deadline=1e-3)
        job = make_job(2, config=cfg)
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 1:
                yield from rt.compute(20e-3)
                return
            buf = rt.world.space(0).allocate(256)
            t0 = rt.engine.now
            try:
                yield from rt.get(1, buf, alloc.addr(1), 256)
            except DeadlineExceededError:
                outcome["waited"] = rt.engine.now - t0

        job.run(body)
        assert outcome["waited"] == pytest.approx(1e-3, rel=1e-6)

    def test_rmw_deadline_under_stalled_progress(self):
        """stall_progress with no watchdog: the AMO is never serviced and
        must surface a deadline error instead of hanging the job."""
        cfg = ArmciConfig.async_thread_mode(default_deadline=2e-3)
        job = make_job(
            2, config=cfg, fault_plan=FaultPlan().stall_progress(1, at=100e-6)
        )
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(8)
            yield from rt.barrier()
            if rt.rank == 1:
                yield from rt.compute(10e-3)
                return
            yield from rt.compute(300e-6)  # let the stall land first
            try:
                yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
                outcome["status"] = "ok"
            except DeadlineExceededError:
                outcome["status"] = "deadline"

        job.run(body)
        assert outcome["status"] == "deadline"
        assert job.trace.count("chaos.progress_stalls") == 1

    def test_barrier_timeout(self):
        job = make_job(2, config=ArmciConfig.async_thread_mode())
        outcome = {}

        def body(rt):
            yield from rt.barrier()
            if rt.rank == 1:
                yield from rt.compute(5e-3)  # late to the party
            try:
                yield from rt.barrier(timeout=1e-3)
                outcome[rt.rank] = "ok"
            except DeadlineExceededError:
                outcome[rt.rank] = "deadline"

        job.run(body)
        assert outcome[0] == "deadline"

    def test_notify_wait_timeout(self):
        job = make_job(2, config=ArmciConfig.async_thread_mode())
        outcome = {}

        def body(rt):
            yield from rt.barrier()
            if rt.rank == 1:
                try:
                    # Rank 0 never notifies.
                    yield from rt.notify_wait(0, timeout=500e-6)
                except DeadlineExceededError:
                    outcome["status"] = "deadline"

        job.run(body)
        assert outcome["status"] == "deadline"

    def test_lock_deadline_when_holder_never_releases(self):
        cfg = ArmciConfig.async_thread_mode(default_deadline=1e-3)
        job = make_job(2, config=cfg)
        outcome = {}

        def body(rt):
            yield from rt.barrier()
            if rt.rank == 0:
                yield from rt.lock(0)
                yield from rt.compute(10e-3)  # sits on the mutex
                yield from rt.unlock(0)
            else:
                yield from rt.compute(100e-6)
                try:
                    yield from rt.lock(0)
                except DeadlineExceededError:
                    outcome["status"] = "deadline"

        job.run(body)
        assert outcome["status"] == "deadline"

    def test_no_deadline_zero_overhead(self):
        """With every deadline knob off, no timer events are created and
        timing matches the seed behaviour (same workload, same clock)."""

        def run(cfg):
            job = make_job(2, config=cfg)

            def body(rt):
                alloc = yield from rt.malloc(1024)
                yield from rt.barrier()
                if rt.rank == 0:
                    src = rt.world.space(0).allocate(256)
                    for _i in range(8):
                        yield from rt.put(1, src, alloc.addr(1), 256)
                    yield from rt.fence(1)
                yield from rt.barrier()

            job.run(body)
            return job.engine.now

        base = ArmciConfig.async_thread_mode()
        generous = ArmciConfig.async_thread_mode(default_deadline=10.0)
        assert run(base) == run(generous)


class TestRetryDeadlineInteraction:
    def test_backoff_schedule_is_deterministic_and_analytic(self):
        """The retry backoff is a pure function of the policy: on a
        fully-lossy link the accrued backoff equals the closed-form
        geometric sum, run after run."""
        policy = RetryPolicy(max_retries=4, base_delay=2e-6, multiplier=2.0,
                             max_delay=1e-3)

        def run():
            cfg = dataclasses.replace(
                ArmciConfig.async_thread_mode(), retry=policy
            )
            job = make_job(
                2, config=cfg,
                chaos=ChaosConfig(seed=1, drop_prob=1.0,
                                  links=frozenset({(0, 1)})),
            )

            def body(rt):
                alloc = yield from rt.malloc(1024)
                yield from rt.barrier()
                if rt.rank == 0:
                    buf = rt.world.space(0).allocate(64)
                    with pytest.raises(RetryExhaustedError):
                        yield from rt.get(1, buf, alloc.addr(1), 64)

            job.run(body)
            return job.trace.time("armci.retry_backoff_time"), job

        expected = sum(
            min(policy.base_delay * policy.multiplier**k, policy.max_delay)
            for k in range(policy.max_retries)
        )
        (t1, job1), (t2, _) = run(), run()
        assert t1 == t2 == pytest.approx(expected, rel=1e-9)
        assert job1.trace.count("armci.transient_retries.get") == policy.max_retries

    def test_deadline_wins_over_retry_budget(self):
        """A deadline tighter than the remaining backoff schedule aborts
        the retry loop with DeadlineExceededError — not RetryExhausted."""
        policy = RetryPolicy(max_retries=8, base_delay=500e-6,
                             multiplier=2.0, max_delay=10e-3)
        cfg = dataclasses.replace(
            ArmciConfig.async_thread_mode(), retry=policy
        )
        job = make_job(
            2, config=cfg,
            chaos=ChaosConfig(seed=1, drop_prob=1.0, links=frozenset({(0, 1)})),
        )
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 0:
                buf = rt.world.space(0).allocate(64)
                try:
                    yield from rt.get(1, buf, alloc.addr(1), 64, timeout=1.2e-3)
                except DeadlineExceededError:
                    outcome["error"] = "deadline"
                except RetryExhaustedError:
                    outcome["error"] = "retry_exhausted"

        job.run(body)
        assert outcome["error"] == "deadline"
        assert job.trace.count("armci.retry_deadline_abandoned") == 1
        # The budget was NOT spent: the deadline cut the loop short.
        assert (
            job.trace.count("armci.transient_retries.get") < policy.max_retries
        )


# ------------------------------------------------------------------ watchdog


class TestProgressWatchdog:
    def test_watchdog_fails_over_stalled_thread(self):
        """With the watchdog armed, stall_progress costs a detection
        period and a failover — not liveness: the AMO completes."""
        cfg = ArmciConfig.async_thread_mode(watchdog_period=200e-6)
        job = make_job(
            2, config=cfg, fault_plan=FaultPlan().stall_progress(1, at=100e-6)
        )
        draws = []

        def body(rt):
            alloc = yield from rt.malloc(8)
            yield from rt.barrier()
            if rt.rank == 1:
                yield from rt.compute(20e-3)
                return
            yield from rt.compute(300e-6)
            for _i in range(8):
                old = yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
                draws.append(old)

        job.run(body)
        assert draws == list(range(8))
        assert job.trace.count("chaos.progress_stalls") == 1
        assert job.trace.count("armci.watchdog_failovers") == 1
        assert job.rt(1).progress_failed_over

    def test_watchdog_quiet_on_healthy_thread(self):
        cfg = ArmciConfig.async_thread_mode(watchdog_period=200e-6)
        job = make_job(2, config=cfg)

        def body(rt):
            alloc = yield from rt.malloc(8)
            yield from rt.barrier()
            if rt.rank == 0:
                for _i in range(8):
                    yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.watchdogs_started") == 2
        assert job.trace.count("armci.watchdog_failovers") == 0
        assert not job.rt(0).progress_failed_over

    def test_restart_async_thread_after_failover(self):
        cfg = ArmciConfig.async_thread_mode(watchdog_period=200e-6)
        job = make_job(
            2, config=cfg, fault_plan=FaultPlan().stall_progress(1, at=100e-6)
        )
        result = {}

        def body(rt):
            alloc = yield from rt.malloc(8)
            yield from rt.barrier()
            if rt.rank == 1:
                yield from rt.compute(2e-3)
                yield from rt.quiesce()
                rt.restart_async_thread()
                result["failed_over_after_restart"] = rt.progress_failed_over
                yield from rt.compute(2e-3)
                return
            yield from rt.compute(500e-6)
            for _i in range(4):
                yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)

        job.run(body)
        assert result["failed_over_after_restart"] is False
        assert job.trace.count("armci.async_thread_restarts") == 1


# ------------------------------------------------------------ quiesce/drain


class TestQuiesce:
    def test_quiesce_drains_implicit_handles_and_fences(self):
        job = make_job(2, config=ArmciConfig.async_thread_mode())
        observed = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(256)
                for _i in range(8):
                    yield from rt.nbput(1, src, alloc.addr(1), 256)
                yield from rt.quiesce()
                observed["pending_writes"] = rt.has_pending_writes(1)
                observed["queues"] = [
                    len(ctx.queue) for ctx in rt.client.contexts
                ]
            yield from rt.barrier()

        job.run(body)
        assert observed["pending_writes"] is False
        assert observed["queues"] == [0] * len(observed["queues"])
        assert job.trace.count("armci.quiesces") == 1


# -------------------------------------------------- acceptance: chaos suite


class TestAcceptanceUnderResourceFaults:
    RESILIENT = dict(
        fifo_depth=8,
        memregion_budget=6,
        watchdog_period=200e-6,
        default_deadline=5.0,  # generous: a guard rail, not a tripwire
    )

    def all_faults_plan(self):
        return (
            FaultPlan()
            .exhaust_memregions(1, at=400e-6)
            .stall_progress(1, at=600e-6)
            .saturate_fifo(1, at=800e-6, amount=32)
        )

    def test_strided_and_vector_complete_with_identical_numerics(self):
        from repro.armci.vector import IoVector
        from repro.types import StridedDescriptor, StridedShape

        desc = StridedDescriptor(StridedShape(16, (8,)), (32,), (32,))

        def run(config, fault_plan):
            job = make_job(2, config=config, fault_plan=fault_plan)
            result = {}

            def body(rt):
                alloc = yield from rt.malloc(4096)
                yield from rt.barrier()
                if rt.rank == 1:
                    yield from rt.compute(2e-3)
                if rt.rank == 0:
                    local = rt.world.space(0).allocate(512)
                    rt.world.space(0).write(
                        local, bytes(range(256)) * 2
                    )
                    for _i in range(4):
                        yield from rt.puts(1, local, alloc.addr(1), desc)
                        yield from rt.gets(1, local, alloc.addr(1), desc)
                    vec = IoVector(
                        (local, local + 64),
                        (alloc.addr(1) + 1024, alloc.addr(1) + 2048),
                        (64, 64),
                    )
                    for _i in range(4):
                        yield from rt.putv(1, vec)
                        yield from rt.getv(1, vec)
                    yield from rt.fence(1)
                yield from rt.barrier()
                if rt.rank == 1:
                    result["image"] = rt.world.space(1).read(alloc.addr(1), 4096)

            job.run(body)
            return result["image"], job

        clean_cfg = ArmciConfig.async_thread_mode(strided_protocol="auto")
        chaos_cfg = ArmciConfig.async_thread_mode(
            strided_protocol="auto", **self.RESILIENT
        )
        clean, _ = run(clean_cfg, None)
        chaotic, job = run(chaos_cfg, self.all_faults_plan())
        assert chaotic == clean
        # Every fault actually landed.
        assert job.trace.count("chaos.memregion_exhaustions") == 1
        assert job.trace.count("chaos.progress_stalls") == 1
        assert job.trace.count("chaos.fifo_saturations") == 1
        assert job.trace.count("armci.watchdog_failovers") == 1

    def test_scf_proxy_completes_under_all_faults(self):
        from repro.apps.nwchem import ScfConfig, run_scf

        scf = ScfConfig(nbf_override=32, nblocks=4, task_time=200e-6,
                        iterations=2, num_counters=2)
        clean = run_scf(4, ArmciConfig.async_thread_mode(), scf,
                        procs_per_node=4)
        plan = (
            FaultPlan()
            .exhaust_memregions(2, at=1e-3)
            .stall_progress(3, at=1.5e-3)
            .saturate_fifo(1, at=2e-3, amount=24)
        )
        chaotic = run_scf(
            4,
            ArmciConfig.async_thread_mode(**self.RESILIENT),
            scf,
            procs_per_node=4,
            fault_plan=plan,
        )
        assert chaotic.tasks_done == clean.tasks_done == 16 * 2
        assert chaotic.iterations_run == clean.iterations_run == 2
        assert chaotic.energies == clean.energies

    def test_chaotic_resilient_run_is_deterministic(self):
        from repro.apps.nwchem import ScfConfig, run_scf

        scf = ScfConfig(nbf_override=16, nblocks=2, task_time=100e-6,
                        iterations=1)
        plan_a = FaultPlan().saturate_fifo(0, at=1e-3, amount=16)
        plan_b = FaultPlan().saturate_fifo(0, at=1e-3, amount=16)
        kw = dict(procs_per_node=2)
        cfg = ArmciConfig.async_thread_mode(**self.RESILIENT)
        a = run_scf(2, cfg, scf, fault_plan=plan_a, **kw)
        b = run_scf(2, cfg, scf, fault_plan=plan_b, **kw)
        assert a.total_time == b.total_time
        assert a.energies == b.energies
