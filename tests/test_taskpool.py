"""Tests for task pools: chunked single counter + distributed stealing."""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.errors import ArmciError
from repro.gax import DistributedTaskPool, TaskPool


def make_job(num_procs=4, config=None):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig.async_thread_mode(),
        procs_per_node=min(num_procs, 16),
    )
    job.init()
    return job


def drain_pool(job, create_pool):
    """All ranks drain a freshly created pool; returns per-rank claims."""

    def body(rt):
        pool = yield from create_pool(rt)
        yield from rt.barrier()
        claims = []
        while True:
            r = yield from pool.next_range(rt)
            if r is None:
                break
            claims.append(r)
            yield from rt.compute(20e-6)
        yield from rt.barrier()
        return claims

    return job.run(body)


class TestTaskPool:
    def test_every_task_claimed_once(self):
        job = make_job(4)

        def create(rt):
            return (yield from TaskPool.create(rt, ntasks=23, chunk=3))

        per_rank = drain_pool(job, create)
        covered = sorted(
            t for claims in per_rank for lo, hi in claims for t in range(lo, hi)
        )
        assert covered == list(range(23))

    def test_chunk_boundaries(self):
        job = make_job(2)

        def create(rt):
            return (yield from TaskPool.create(rt, ntasks=10, chunk=4))

        per_rank = drain_pool(job, create)
        ranges = sorted(r for claims in per_rank for r in claims)
        assert ranges == [(0, 4), (4, 8), (8, 10)]

    def test_validation(self):
        from repro.gax.counter import SharedCounter

        counter = SharedCounter(0, 0x1000)
        with pytest.raises(ArmciError):
            TaskPool(counter, ntasks=0)
        with pytest.raises(ArmciError):
            TaskPool(counter, ntasks=5, chunk=0)


class TestDistributedTaskPool:
    def test_every_task_claimed_once_with_stealing(self):
        job = make_job(4)

        def create(rt):
            return (
                yield from DistributedTaskPool.create(
                    rt, ntasks=37, num_counters=4, chunk=2
                )
            )

        per_rank = drain_pool(job, create)
        covered = sorted(
            t for claims in per_rank for lo, hi in claims for t in range(lo, hi)
        )
        assert covered == list(range(37))
        assert job.trace.count("gax.pool_steals") >= 0  # stealing legal

    def test_uneven_shards_fully_drained(self):
        job = make_job(2)

        def create(rt):
            return (
                yield from DistributedTaskPool.create(
                    rt, ntasks=7, num_counters=3, chunk=1
                )
            )

        per_rank = drain_pool(job, create)
        covered = sorted(
            t for claims in per_rank for lo, hi in claims for t in range(lo, hi)
        )
        assert covered == list(range(7))

    def test_counters_spread_over_hosts(self):
        job = make_job(8)
        hosts = {}

        def body(rt):
            pool = yield from DistributedTaskPool.create(
                rt, ntasks=8, num_counters=4
            )
            hosts[rt.rank] = [c.host for c in pool.counters]
            yield from rt.barrier()

        job.run(body)
        assert hosts[0] == [0, 2, 4, 6]

    def test_counters_capped_at_num_procs(self):
        job = make_job(2)

        def body(rt):
            pool = yield from DistributedTaskPool.create(
                rt, ntasks=4, num_counters=16
            )
            return pool.num_counters

        assert job.run(body) == [2, 2]

    def test_single_rank_steals_everything(self):
        """One active rank drains all shards through stealing."""
        job = make_job(4)
        claims = []

        def body(rt):
            pool = yield from DistributedTaskPool.create(
                rt, ntasks=12, num_counters=4
            )
            yield from rt.barrier()
            if rt.rank == 3:
                while True:
                    r = yield from pool.next_range(rt)
                    if r is None:
                        break
                    claims.append(r)
            yield from rt.barrier()

        job.run(body)
        covered = sorted(t for lo, hi in claims for t in range(lo, hi))
        assert covered == list(range(12))
        assert job.trace.count("gax.pool_steals") >= 9  # 3 foreign shards

    def test_validation(self):
        with pytest.raises(ArmciError):
            DistributedTaskPool([], ntasks=4)

    def test_scf_with_distributed_counters(self):
        from repro.apps.nwchem import ScfConfig, run_scf

        cfg = ScfConfig(
            nbf_override=32, nblocks=4, task_time=200e-6, iterations=2,
            num_counters=4,
        )
        res = run_scf(4, ArmciConfig.async_thread_mode(), cfg, procs_per_node=4)
        assert res.tasks_done == 16 * 2  # both iterations complete


class TestDistributedVsSingleCounter:
    def test_distribution_reduces_counter_pressure(self):
        """Near AMO saturation (64 ranks, 20 us tasks, one counter host),
        sharding the counter halves aggregate wait time. Fine-grained
        tasks are needed: an unsaturated counter shows no benefit, and
        the steal-probe tail costs a little total time."""
        from repro.apps.nwchem import ScfConfig, run_scf

        base = dict(nbf_override=64, nblocks=32, task_time=20e-6, iterations=1)
        single = run_scf(
            64, ArmciConfig.async_thread_mode(),
            ScfConfig(**base, num_counters=1), procs_per_node=16,
        )
        sharded = run_scf(
            64, ArmciConfig.async_thread_mode(),
            ScfConfig(**base, num_counters=8), procs_per_node=16,
        )
        assert sharded.counter_time_total < 0.7 * single.counter_time_total
