"""Tests for message aggregation (Fig. 5's application-level remedy)."""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.errors import ArmciError


def make_job(num_procs=2, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=1,
        **kwargs,
    )
    job.init()
    return job


class TestAggregateHandle:
    def test_staged_fragments_all_land(self):
        job = make_job()
        fragments = [bytes([i]) * (8 + i) for i in range(10)]

        def body(rt):
            alloc = yield from rt.malloc(4096)
            result = None
            if rt.rank == 0:
                space = rt.world.space(0)
                agg = rt.aggregate(1)
                offset = 0
                for frag in fragments:
                    src = space.allocate(len(frag))
                    space.write(src, frag)
                    agg.put(src, alloc.addr(1) + offset, len(frag))
                    offset += len(frag) + 16
                assert agg.pending_segments == 10
                yield from agg.flush()
                yield from rt.fence(1)
                got = []
                offset = 0
                for frag in fragments:
                    got.append(rt.world.space(1).read(alloc.addr(1) + offset, len(frag)))
                    offset += len(frag) + 16
                result = got
            yield from rt.barrier()
            return result

        results = job.run(body)
        assert results[0] == fragments
        assert job.trace.count("armci.aggregate_flushes") == 1
        assert job.trace.count("armci.putv_typed") == 1

    def test_buffer_reuse_semantics(self):
        """Sources may be overwritten right after staging."""
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(256)
            result = None
            if rt.rank == 0:
                space = rt.world.space(0)
                src = space.allocate(16)
                agg = rt.aggregate(1)
                space.write(src, b"FIRST-----------")
                agg.put(src, alloc.addr(1), 16)
                space.write(src, b"SECOND----------")
                agg.put(src, alloc.addr(1) + 32, 16)
                space.write(src, b"XXXXXXXXXXXXXXXX")  # post-staging clobber
                yield from agg.flush()
                yield from rt.fence(1)
                result = (
                    rt.world.space(1).read(alloc.addr(1), 16),
                    rt.world.space(1).read(alloc.addr(1) + 32, 16),
                )
            yield from rt.barrier()
            return result

        results = job.run(body)
        assert results[0] == (b"FIRST-----------", b"SECOND----------")

    def test_aggregation_beats_individual_small_puts(self):
        """The Fig. 5 economics: N small puts pay N message overheads;
        one aggregate pays one."""
        job = make_job()
        n, size = 32, 64

        def body(rt):
            alloc = yield from rt.malloc(n * size)
            result = None
            if rt.rank == 0:
                space = rt.world.space(0)
                src = space.allocate(size)
                yield from rt.put(1, src, alloc.addr(1), size)  # warm caches
                yield from rt.fence(1)
                # Warm the aggregation buffer's one-time registration too.
                warm = rt.aggregate(1)
                warm.put(src, alloc.addr(1), size)
                yield from warm.flush()
                yield from rt.fence(1)
                # Individual puts.
                t0 = rt.engine.now
                for i in range(n):
                    yield from rt.nbput(1, src, alloc.addr(1) + i * size, size)
                yield from rt.wait_all()
                individual = rt.engine.now - t0
                yield from rt.fence(1)
                # Aggregated.
                t0 = rt.engine.now
                agg = rt.aggregate(1)
                for i in range(n):
                    agg.put(src, alloc.addr(1) + i * size, size)
                yield from agg.flush()
                aggregated = rt.engine.now - t0
                yield from rt.fence(1)
                result = (individual, aggregated)
            yield from rt.barrier()
            return result

        individual, aggregated = job.run(body)[0]
        assert aggregated < individual / 5

    def test_misuse_rejected(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(256)
            if rt.rank == 0:
                space = rt.world.space(0)
                src = space.allocate(16)
                agg = rt.aggregate(1)
                with pytest.raises(ArmciError, match="positive"):
                    agg.put(src, alloc.addr(1), 0)
                with pytest.raises(ArmciError, match="empty"):
                    yield from agg.flush()
                agg2 = rt.aggregate(1)
                agg2.put(src, alloc.addr(1), 16)
                yield from agg2.flush()
                with pytest.raises(ArmciError, match="already flushed"):
                    agg2.put(src, alloc.addr(1), 16)
            yield from rt.barrier()

        job.run(body)

    def test_pack_path_when_rdma_disabled(self):
        job = make_job(config=ArmciConfig(use_rdma=False))

        def body(rt):
            alloc = yield from rt.malloc(256)
            result = None
            if rt.rank == 0:
                space = rt.world.space(0)
                src = space.allocate(16)
                space.write(src, b"A" * 16)
                agg = rt.aggregate(1)
                agg.put(src, alloc.addr(1), 16)
                yield from agg.flush()
                yield from rt.fence(1)
                result = rt.world.space(1).read(alloc.addr(1), 16)
            yield from rt.barrier()
            return result

        results = job.run(body)
        assert results[0] == b"A" * 16
        assert job.trace.count("armci.putv_pack") == 1
