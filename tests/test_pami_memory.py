"""Unit tests for per-process address spaces and memory regions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PamiError, ResourceExhaustedError
from repro.pami.memory import AddressSpace, BASE_ADDRESS
from repro.pami.memregion import MemoryRegionRegistry
from repro.sim import Engine


class TestAddressSpace:
    def test_allocate_returns_distinct_page_aligned_bases(self):
        space = AddressSpace()
        a = space.allocate(100)
        b = space.allocate(100)
        assert a >= BASE_ADDRESS
        assert a % 4096 == 0 and b % 4096 == 0
        assert b > a + 100

    def test_allocate_rejects_nonpositive(self):
        with pytest.raises(PamiError):
            AddressSpace().allocate(0)

    def test_write_read_roundtrip(self):
        space = AddressSpace()
        base = space.allocate(64)
        space.write(base + 8, b"hello world")
        assert space.read(base + 8, 11) == b"hello world"

    def test_view_is_writable_no_copy(self):
        space = AddressSpace()
        base = space.allocate(16)
        view = space.view(base, 16)
        view[0] = 99
        assert space.read(base, 1) == bytes([99])

    def test_fill_value(self):
        space = AddressSpace()
        base = space.allocate(4, fill=7)
        assert space.read(base, 4) == bytes([7, 7, 7, 7])

    def test_unmapped_address_rejected(self):
        space = AddressSpace()
        with pytest.raises(PamiError, match="not mapped"):
            space.read(0x10, 1)

    def test_overrun_rejected(self):
        space = AddressSpace()
        base = space.allocate(16)
        with pytest.raises(PamiError, match="overruns"):
            space.read(base + 8, 16)

    def test_cross_segment_access_rejected(self):
        space = AddressSpace()
        a = space.allocate(4096)
        space.allocate(4096)
        with pytest.raises(PamiError):
            space.read(a, 2 * 4096 + 8192)

    def test_free_then_access_rejected(self):
        space = AddressSpace()
        base = space.allocate(16)
        space.free(base)
        with pytest.raises(PamiError):
            space.read(base, 1)

    def test_free_unknown_rejected(self):
        with pytest.raises(PamiError):
            AddressSpace().free(12345)

    def test_i64_roundtrip_including_negative(self):
        space = AddressSpace()
        base = space.allocate(16)
        space.write_i64(base, -123456789)
        assert space.read_i64(base) == -123456789

    def test_f64_roundtrip(self):
        space = AddressSpace()
        base = space.allocate(64)
        values = np.array([1.5, -2.25, 3.125])
        space.write_f64(base + 8, values)
        np.testing.assert_array_equal(space.read_f64(base + 8, 3), values)

    @given(st.binary(min_size=1, max_size=256), st.integers(0, 64))
    @settings(max_examples=50, deadline=None)
    def test_write_read_any_bytes_at_any_offset(self, data, offset):
        space = AddressSpace()
        base = space.allocate(512)
        space.write(base + offset, data)
        assert space.read(base + offset, len(data)) == data


class TestMemoryRegionRegistry:
    def _create(self, registry, base, nbytes):
        eng = Engine()
        proc = eng.spawn(registry.create(base, nbytes), name="create")
        results = eng.run_until_complete([proc])
        return results[0], eng.now

    def test_create_costs_delta(self):
        reg = MemoryRegionRegistry(rank=0, create_time=43e-6)
        region, elapsed = self._create(reg, 0x1000, 4096)
        assert elapsed == pytest.approx(43e-6)
        assert region.covers(0x1000, 4096)
        assert region.covers(0x1100, 16)
        assert not region.covers(0x1100, 8192)

    def test_budget_exhaustion_raises_before_time_charged(self):
        reg = MemoryRegionRegistry(rank=0, create_time=43e-6, max_regions=1)
        self._create(reg, 0x1000, 4096)
        with pytest.raises(ResourceExhaustedError):
            # The generator raises at construction-time validation.
            list(reg.create(0x10000, 4096))

    def test_overlap_rejected(self):
        reg = MemoryRegionRegistry(rank=0, create_time=0.0)
        self._create(reg, 0x1000, 4096)
        with pytest.raises(PamiError, match="overlaps"):
            list(reg.create(0x1800, 4096))
        with pytest.raises(PamiError, match="overlaps"):
            list(reg.create(0x800, 4096))

    def test_adjacent_regions_allowed(self):
        reg = MemoryRegionRegistry(rank=0, create_time=0.0)
        self._create(reg, 0x1000, 4096)
        region, _ = self._create(reg, 0x2000, 4096)
        assert len(reg) == 2
        assert region.region_id == 1

    def test_find_exact_and_inner(self):
        reg = MemoryRegionRegistry(rank=0, create_time=0.0)
        self._create(reg, 0x1000, 4096)
        assert reg.find(0x1000, 4096) is not None
        assert reg.find(0x1800, 100) is not None
        assert reg.find(0x1800, 4096) is None
        assert reg.find(0x100, 8) is None

    def test_destroy_frees_slot(self):
        reg = MemoryRegionRegistry(rank=0, create_time=0.0, max_regions=1)
        region, _ = self._create(reg, 0x1000, 4096)
        reg.destroy(region)
        assert len(reg) == 0
        self._create(reg, 0x9000, 128)  # budget available again

    def test_destroy_unknown_rejected(self):
        reg = MemoryRegionRegistry(rank=0, create_time=0.0)
        region, _ = self._create(reg, 0x1000, 4096)
        reg.destroy(region)
        with pytest.raises(PamiError):
            reg.destroy(region)

    def test_nonpositive_size_rejected(self):
        reg = MemoryRegionRegistry(rank=0, create_time=0.0)
        with pytest.raises(PamiError):
            list(reg.create(0x1000, 0))

    def test_negative_budget_rejected(self):
        with pytest.raises(PamiError):
            MemoryRegionRegistry(rank=0, create_time=0.0, max_regions=-1)
