"""Crash-recovery subsystem tests (:mod:`repro.recover`).

Covers the full stack: buddy placement, replication bookkeeping, the
coordinated checkpoint/commit protocol, the fault-tolerant recovery
rendezvous, and the epoch driver surviving repeated rank deaths —
including mid-transfer and mid-checkpoint crashes — with numerics
identical to the fault-free run.

Crash times are placed *inside* a measured run: the simulator is
deterministic, so a clean probe run (same program, same seed) shares an
identical prefix with the crashy run up to the kill, which lets tests
aim a crash at "mid epoch 1" or "2 us before epoch 2's commit" exactly.
"""

import numpy as np
import pytest

from repro.armci import ArmciConfig, ArmciJob, ObsConfig
from repro.armci.config import RetryPolicy
from repro.chaos import ChaosConfig, FaultPlan
from repro.errors import (
    ProcessFailedError,
    ReproError,
    SimulationError,
    UnrecoverableError,
)
from repro.gax import DistributedTaskPool, GlobalArray, Patch
from repro.pami import PamiWorld
from repro.recover import RecoveryConfig, RecoveryManager, choose_buddy
from repro.recover.barrier import RESTART, RecoveryRendezvous
from repro.recover.manager import _dirty_fragments
from repro.sim.engine import Engine
from repro.sim.trace import Trace
from repro.types import StridedDescriptor, StridedShape
from repro.armci.vector import IoVector

P = 4
NBYTES = 512
EPOCHS = 3


def make_job(fault_plan=None, chaos=None, num_procs=P, obs=None, **rkw):
    rkw.setdefault("chunk_bytes", 64)
    overrides = {} if obs is None else {"obs": obs}
    cfg = ArmciConfig.async_thread_mode(
        retry=RetryPolicy(),
        default_deadline=2.0,
        recovery=RecoveryConfig(enabled=True, **rkw),
        **overrides,
    )
    job = ArmciJob(
        num_procs, config=cfg, procs_per_node=1,
        fault_plan=fault_plan, chaos=chaos,
    )
    job.init()
    return job


def probe_run(setup_fn, epoch_fn, epochs=EPOCHS, **jobkw):
    """Clean run capturing commit instants, for aiming crashes.

    Returns ``(results, job, window, commits)`` where ``commits`` are
    the successful commit times relative to run start (baseline first)
    and ``window`` is the whole run's duration.
    """
    job = make_job(**jobkw)
    commits = []
    orig = RecoveryManager._finalize_commit

    def recording(self, epoch):
        pc = self._pending_commit
        fresh = pc is not None and pc["epoch"] == epoch and not pc["done"]
        orig(self, epoch)
        if fresh and pc["done"]:
            commits.append(self.engine.now)

    RecoveryManager._finalize_commit = recording
    t0 = job.engine.now
    try:
        results = job.recovery.run(setup_fn, epoch_fn, epochs=epochs)
    finally:
        RecoveryManager._finalize_commit = orig
    window = job.engine.now - t0
    return results, job, window, [t - t0 for t in commits]


def mid_after(commits, t):
    """Midpoint of the first full inter-commit gap after time ``t`` —
    i.e. squarely inside the epoch that follows the first commit to
    land after ``t`` (all times relative to run start)."""
    post = [c for c in commits if c > t]
    return post[0] + 0.5 * (post[1] - post[0])


# --------------------------------------------------------- epoch apps


def neighbor_setup(rt):
    alloc = yield from rt.malloc(NBYTES)
    yield from rt.job.recovery.protect(rt, alloc)
    rt.world.space(rt.rank).view(alloc.addr(rt.rank), NBYTES)[:] = rt.rank
    return alloc, {"sum": 0.0, "epochs_run": []}


def neighbor_epoch(rt, alloc, state, epoch):
    """Contiguous put/get ring: each rank stamps a slice of the next
    rank's protected region, then reads a slice back into its state."""
    dst = (rt.rank + 1) % P
    space = rt.world.space(rt.rank)
    scratch = space.allocate(64)
    space.view(scratch, 64)[:] = epoch + 1
    yield from rt.put(dst, scratch, alloc.addr(dst) + 64 * (epoch % 4), 64)
    yield from rt.fence(dst)
    yield from rt.get(dst, scratch, alloc.addr(dst), 64)
    state["sum"] += float(space.view(scratch, 64).sum())
    state["epochs_run"] = state["epochs_run"] + [epoch]


def strided_setup(rt):
    alloc = yield from rt.malloc(NBYTES)
    yield from rt.job.recovery.protect(rt, alloc)
    rt.world.space(rt.rank).view(alloc.addr(rt.rank), NBYTES)[:] = 7
    return alloc, {"sum": 0.0}


def strided_epoch(rt, alloc, state, epoch):
    """2D-patch traffic: strided put into the neighbor's protected
    region, strided get back (what was just fenced is deterministic)."""
    dst = (rt.rank + 1) % P
    space = rt.world.space(rt.rank)
    desc = StridedDescriptor(StridedShape(16, (4,)), (32,), (128,))
    local = space.allocate(4 * 32)
    space.view(local, 4 * 32)[:] = 10 * (epoch + 1) + rt.rank
    remote = alloc.addr(dst) + 16 * (epoch % 2)
    yield from rt.puts(dst, local, remote, desc)
    yield from rt.fence(dst)
    back = space.allocate(4 * 32)
    yield from rt.gets(dst, back, remote, desc)
    got = sum(
        float(space.view(back + r * 32, 16).sum()) for r in range(4)
    )
    state["sum"] += got


def vector_setup(rt):
    alloc = yield from rt.malloc(NBYTES)
    yield from rt.job.recovery.protect(rt, alloc)
    rt.world.space(rt.rank).view(alloc.addr(rt.rank), NBYTES)[:] = 0
    return alloc, {"sum": 0.0}


def vector_epoch(rt, alloc, state, epoch):
    """I/O-vector traffic: three scattered segments per epoch."""
    dst = (rt.rank + 1) % P
    space = rt.world.space(rt.rank)
    lengths = (16, 32, 8)
    locals_, remotes = [], []
    off = 0
    for i, ln in enumerate(lengths):
        seg = space.allocate(ln)
        space.view(seg, ln)[:] = epoch + i + 1
        locals_.append(seg)
        remotes.append(alloc.addr(dst) + 96 * (epoch % 3) + off)
        off += 2 * ln
    vec = IoVector(tuple(locals_), tuple(remotes), lengths)
    yield from rt.putv(dst, vec)
    yield from rt.fence(dst)
    back = space.allocate(sum(lengths))
    back_vec = IoVector(
        tuple(back + sum(lengths[:i]) for i in range(len(lengths))),
        tuple(remotes), lengths,
    )
    yield from rt.getv(dst, back_vec)
    state["sum"] += float(space.view(back, sum(lengths)).sum())


NBF = 16
NTASKS = 8


def scf_setup(rt):
    """SCF-shaped resources: density/Fock global arrays plus a sharded
    load-balance pool, all protected (pool counters roll back with the
    data they gated)."""
    mgr = rt.job.recovery
    ga_d = yield from GlobalArray.create(rt, (NBF, NBF), name="density")
    ga_f = yield from GlobalArray.create(rt, (NBF, NBF), name="fock")
    pool = yield from DistributedTaskPool.create(rt, NTASKS, 2, chunk=1)
    yield from mgr.protect(rt, ga_d.alloc)
    yield from mgr.protect(rt, ga_f.alloc)
    for alloc in pool.allocations:
        yield from mgr.protect(rt, alloc)
    ga_d.local_block(rt)[:] = 0.01 * (rt.rank + 1)
    ga_f.fill(rt, 0.0)
    yield from rt.barrier()
    return (ga_d, ga_f, pool), {"energies": []}


def scf_epoch(rt, res, state, epoch):
    """One SCF iteration: zero Fock, dynamically load-balanced 'Fock
    build' (each task accumulates into a disjoint row band, so float
    order cannot differ between runs), energy contraction, damped
    density update, pool reset."""
    ga_d, ga_f, pool = res
    ga_f.fill(rt, 0.0)
    yield from rt.barrier()
    rows_per_task = NBF // NTASKS
    while True:
        rng = yield from pool.next_range(rt)
        if rng is None:
            break
        for t in range(*rng):
            patch = Patch(t * rows_per_task, (t + 1) * rows_per_task, 0, NBF)
            values = np.full(patch.shape, 0.01 * (t + 1) * (epoch + 1))
            yield from ga_f.acc(rt, patch, values)
    yield from rt.fence_all()
    yield from rt.barrier()
    energy = yield from ga_d.dot(rt, ga_f)
    state["energies"] = state["energies"] + [energy]
    d = ga_d.local_block(rt)
    d[:] = 0.5 * d + 0.5 * 0.01 * ga_f.local_block(rt)
    if rt.rank == 0:
        yield from pool.reset(rt)
    else:
        pool.reset_local(rt)
    yield from rt.barrier()


# ------------------------------------------------------------- config


class TestRecoveryConfig:
    def test_defaults_off(self):
        cfg = RecoveryConfig()
        assert not cfg.enabled
        assert cfg.mode == "respawn"

    def test_plain_job_builds_no_manager(self):
        job = ArmciJob(2, config=ArmciConfig(), procs_per_node=1)
        assert job.recovery is None
        assert job.trace.count("recover.regions_protected") == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "migrate"},
            {"chunk_bytes": 0},
            {"min_buddy_hops": -1},
            {"control_latency": -1e-6},
            {"respawn_delay": -1.0},
            {"max_recoveries": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            RecoveryConfig(enabled=True, **kwargs)

    def test_manager_requires_enabled_config(self):
        job = ArmciJob(2, config=ArmciConfig(), procs_per_node=1)
        with pytest.raises(ReproError):
            RecoveryManager(job, RecoveryConfig())

    def test_armci_config_rejects_wrong_type(self):
        with pytest.raises(ReproError):
            ArmciConfig(recovery=42)


class TestChooseBuddy:
    def test_never_self_and_respects_hops(self):
        world = PamiWorld(8, procs_per_node=1)
        for rank in range(8):
            buddy = choose_buddy(world, rank, min_hops=1)
            assert buddy != rank
            assert world.network.hops(rank, buddy) >= 1

    def test_exclude_failed_ranks(self):
        world = PamiWorld(4, procs_per_node=1)
        preferred = choose_buddy(world, 0, min_hops=1)
        rebound = choose_buddy(world, 0, min_hops=1, exclude={preferred})
        assert rebound not in (0, preferred)

    def test_no_candidate_raises(self):
        world = PamiWorld(2, procs_per_node=1)
        with pytest.raises(ReproError):
            choose_buddy(world, 0, min_hops=1, exclude={1})

    def test_deterministic(self):
        world = PamiWorld(8, procs_per_node=1)
        assert choose_buddy(world, 3, 1) == choose_buddy(world, 3, 1)


class TestDirtyFragments:
    def test_clean_region_ships_nothing(self):
        a = np.zeros(256, dtype=np.uint8)
        assert _dirty_fragments(a, a.copy(), 64) == []

    def test_single_chunk(self):
        live = np.zeros(256, dtype=np.uint8)
        committed = live.copy()
        live[70] = 1
        assert _dirty_fragments(live, committed, 64) == [(64, 64)]

    def test_adjacent_chunks_merge_into_one_run(self):
        live = np.zeros(256, dtype=np.uint8)
        committed = live.copy()
        live[10] = 1
        live[100] = 1
        assert _dirty_fragments(live, committed, 64) == [(0, 128)]

    def test_disjoint_runs_stay_split(self):
        live = np.zeros(256, dtype=np.uint8)
        committed = live.copy()
        live[0] = 1
        live[200] = 1
        assert _dirty_fragments(live, committed, 64) == [(0, 64), (192, 64)]

    def test_tail_chunk_clamped(self):
        live = np.zeros(100, dtype=np.uint8)
        committed = live.copy()
        live[99] = 1
        assert _dirty_fragments(live, committed, 64) == [(64, 36)]


class TestRendezvous:
    def _fresh(self, n=2):
        engine = Engine()
        return engine, RecoveryRendezvous(engine, n, 1e-6, Trace())

    def test_release_hands_out_generation(self):
        engine, rv = self._fresh()
        e0 = rv.arrive("gather", 0)
        e1 = rv.arrive("gather", 1)
        engine.run()
        assert e0.value == 0 and e1.value == 0

    def test_death_mid_round_restarts_waiters(self):
        engine, rv = self._fresh()
        e0 = rv.arrive("gather", 0)
        rv.note_rank_failure(1)
        engine.run()
        assert e0.value is RESTART
        assert rv.generation == 1

    def test_stale_generation_bounces_immediately(self):
        engine, rv = self._fresh()
        rv.note_rank_failure(1)  # generation -> 1
        ev = rv.arrive("resume", 0, generation=0)
        assert ev.triggered and ev.value is RESTART

    def test_resume_release_counts_round(self):
        engine, rv = self._fresh()
        rv.arrive("resume", 0)
        rv.arrive("resume", 1)
        engine.run()
        assert rv.rounds_completed == 1

    def test_shrink_removal_releases_waiting_phase(self):
        engine, rv = self._fresh(3)
        e0 = rv.arrive("gather", 0)
        rv.arrive("gather", 1)
        rv.remove(2)
        engine.run()
        assert e0.triggered and e0.value is not RESTART


class TestProcessFailedErrorAttrs:
    def test_barrier_crash_carries_rank_and_op(self):
        job = ArmciJob(
            4, config=ArmciConfig.async_thread_mode(), procs_per_node=1,
            fault_plan=FaultPlan().crash(2, at=150e-6),
        )
        job.init()
        seen = {}

        def body(rt):
            if rt.rank == 2:
                yield from rt.compute(10.0)
                return
            yield from rt.compute(200e-6)
            try:
                yield from rt.barrier()
            except ProcessFailedError as exc:
                seen[rt.rank] = (exc.rank, exc.op)

        job.run(body)
        assert set(seen) == {0, 1, 3}
        for failed_rank, op in seen.values():
            assert failed_rank == 2
            assert isinstance(op, str) and op

    def test_put_to_failed_rank_carries_attrs(self):
        job = ArmciJob(
            2, config=ArmciConfig.async_thread_mode(), procs_per_node=1,
            fault_plan=FaultPlan().crash(1, at=100e-6),
        )
        job.init()
        caught = {}

        def body(rt):
            alloc = yield from rt.malloc(256)
            yield from rt.barrier()
            if rt.rank == 1:
                yield from rt.compute(10.0)
                return
            yield from rt.compute(300e-6)
            try:
                yield from rt.put(1, alloc.addr(0), alloc.addr(1), 64)
                yield from rt.fence(1)
            except ProcessFailedError as exc:
                caught["err"] = exc

        job.run(body)
        exc = caught["err"]
        assert exc.rank == 1
        assert exc.op is not None


# --------------------------------------------------------- replication


class TestReplication:
    def test_protect_is_idempotent(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(NBYTES)
            r1 = yield from rt.job.recovery.protect(rt, alloc)
            r2 = yield from rt.job.recovery.protect(rt, alloc)
            assert r1 is r2

        job.run(body)
        assert job.trace.count("recover.regions_protected") == P

    def test_checkpoints_are_incremental(self):
        """Epoch deltas ship only dirty chunks, not the full image."""
        _results, job, _window, commits = probe_run(
            neighbor_setup, neighbor_epoch
        )
        assert len(commits) == EPOCHS + 1  # baseline + one per epoch
        total = job.trace.count("recover.bytes_replicated")
        full_every_epoch = P * NBYTES * (EPOCHS + 1)
        assert total < full_every_epoch
        assert job.trace.count("recover.epochs_committed") == EPOCHS + 1

    def test_disabled_recovery_run_has_no_replication_traffic(self):
        job = ArmciJob(
            P, config=ArmciConfig.async_thread_mode(), procs_per_node=1
        )
        job.init()

        def body(rt):
            alloc = yield from rt.malloc(NBYTES)
            yield from rt.barrier()
            yield from rt.put(
                (rt.rank + 1) % P, alloc.addr(rt.rank),
                alloc.addr((rt.rank + 1) % P), 64,
            )
            yield from rt.fence_all()

        job.run(body)
        snapshot = job.trace.snapshot()
        assert not any(k.startswith("recover.") for k in snapshot)


# ----------------------------------------------------------- recovery


class TestRespawnRecovery:
    def test_three_crashes_with_repeated_death_match_clean_run(self):
        """Ranks 1, 3, then 1 *again* die — one death per epoch, each
        placed by probing the previous crashy run's commit times — and
        the results match the fault-free run exactly."""
        clean, _job, _w, commits = probe_run(neighbor_setup, neighbor_epoch)
        t1 = commits[0] + 0.25 * (commits[1] - commits[0])
        _r, _j, _w, c1 = probe_run(
            neighbor_setup, neighbor_epoch,
            fault_plan=FaultPlan().crash(1, at=t1),
        )
        t2 = mid_after(c1, t1)
        _r, _j, _w, c2 = probe_run(
            neighbor_setup, neighbor_epoch,
            fault_plan=FaultPlan().crash(1, at=t1).crash(3, at=t2),
        )
        t3 = mid_after(c2, t2)
        plan = (
            FaultPlan().crash(1, at=t1).crash(3, at=t2).crash(1, at=t3)
        )
        job = make_job(fault_plan=plan)
        crashy = job.recovery.run(neighbor_setup, neighbor_epoch, epochs=EPOCHS)
        assert crashy == clean
        assert job.trace.count("pami.ranks_respawned") == 3
        assert job.trace.count("recover.recoveries_completed") == 3
        assert job.trace.count("recover.bytes_restored") > 0
        assert job.trace.count("recover.bytes_rereplicated") > 0
        assert job.trace.time("recover.mttr") > 0

    def test_crashes_in_distinct_epochs_recover_repeatedly(self):
        """Two deaths separated by a full recovery: two rounds complete
        and each replays exactly the aborted epoch."""
        clean, _job, _w, commits = probe_run(neighbor_setup, neighbor_epoch)
        t1 = commits[0] + 0.5 * (commits[1] - commits[0])
        _r, _j, _w, c1 = probe_run(
            neighbor_setup, neighbor_epoch,
            fault_plan=FaultPlan().crash(1, at=t1),
        )
        t2 = mid_after(c1, t1)
        plan = FaultPlan().crash(1, at=t1).crash(2, at=t2)
        job = make_job(fault_plan=plan)
        crashy = job.recovery.run(neighbor_setup, neighbor_epoch, epochs=EPOCHS)
        assert crashy == clean
        assert job.trace.count("recover.recoveries_completed") == 2
        assert job.trace.count("recover.epochs_replayed") == 2
        assert job.trace.count("pami.ranks_respawned") == 2

    def test_crash_mid_checkpoint_commit_stays_atomic(self):
        """A death 2 us before an epoch's commit lands mid-protocol
        (ship or commit barrier); the staged epoch is either discarded
        or atomically committed — never half-applied."""
        clean, _job, _window, commits = probe_run(neighbor_setup, neighbor_epoch)
        plan = FaultPlan().crash(2, at=commits[1] - 2e-6)
        job = make_job(fault_plan=plan)
        crashy = job.recovery.run(neighbor_setup, neighbor_epoch, epochs=EPOCHS)
        assert crashy == clean
        assert job.trace.count("recover.recoveries_completed") >= 1
        # No epoch ran twice and none was skipped.
        for state in crashy.values():
            assert state["epochs_run"] == list(range(EPOCHS))

    def test_crash_mid_transfer_under_chaos(self):
        """Drops + duplicates + a hard mid-epoch crash at once: the
        retry layer absorbs the transient faults, the recovery manager
        the permanent one, and the numerics still match."""
        chaos = dict(seed=11, drop_prob=0.1, dup_prob=0.1)
        clean, _job, _window, commits = probe_run(
            neighbor_setup, neighbor_epoch, chaos=ChaosConfig(**chaos)
        )
        mid_epoch = commits[0] + 0.4 * (commits[1] - commits[0])
        job = make_job(
            chaos=ChaosConfig(**chaos),
            fault_plan=FaultPlan().crash(3, at=mid_epoch),
        )
        crashy = job.recovery.run(neighbor_setup, neighbor_epoch, epochs=EPOCHS)
        assert crashy == clean
        assert job.trace.count("recover.recoveries_completed") >= 1

    def test_strided_epoch_app_survives_crash(self):
        clean, _job, _window, commits = probe_run(strided_setup, strided_epoch)
        mid = commits[0] + 0.5 * (commits[1] - commits[0])
        job = make_job(fault_plan=FaultPlan().crash(1, at=mid))
        crashy = job.recovery.run(strided_setup, strided_epoch, epochs=EPOCHS)
        assert crashy == clean
        assert job.trace.count("recover.recoveries_completed") >= 1

    def test_vector_epoch_app_survives_crash(self):
        clean, _job, _window, commits = probe_run(vector_setup, vector_epoch)
        mid = commits[0] + 0.5 * (commits[1] - commits[0])
        job = make_job(fault_plan=FaultPlan().crash(2, at=mid))
        crashy = job.recovery.run(vector_setup, vector_epoch, epochs=EPOCHS)
        assert crashy == clean
        assert job.trace.count("recover.recoveries_completed") >= 1

    def test_scf_shaped_app_with_taskpool_survives_crashes(self):
        """Global-arrays SCF proxy under dynamic load balancing: two
        deaths, energies bit-identical to the fault-free run."""
        clean, _job, _w, commits = probe_run(
            scf_setup, scf_epoch, epochs=EPOCHS
        )
        t1 = commits[0] + 0.5 * (commits[1] - commits[0])
        _r, _j, _w, c1 = probe_run(
            scf_setup, scf_epoch, fault_plan=FaultPlan().crash(1, at=t1)
        )
        t2 = mid_after(c1, t1)
        plan = FaultPlan().crash(1, at=t1).crash(3, at=t2)
        job = make_job(fault_plan=plan)
        crashy = job.recovery.run(scf_setup, scf_epoch, epochs=EPOCHS)
        assert crashy == clean
        for state in clean.values():
            assert len(state["energies"]) == EPOCHS
        assert job.trace.count("recover.recoveries_completed") >= 1

    def test_death_before_first_checkpoint_is_unrecoverable(self):
        job = make_job(fault_plan=FaultPlan().crash(1, at=20e-6))
        with pytest.raises((UnrecoverableError, SimulationError)):
            job.recovery.run(neighbor_setup, neighbor_epoch, epochs=EPOCHS)

    def test_max_recoveries_cap_aborts(self):
        clean, _job, _w, commits = probe_run(neighbor_setup, neighbor_epoch)
        t1 = commits[0] + 0.5 * (commits[1] - commits[0])
        _r, _j, _w, c1 = probe_run(
            neighbor_setup, neighbor_epoch,
            fault_plan=FaultPlan().crash(1, at=t1),
        )
        t2 = mid_after(c1, t1)
        plan = FaultPlan().crash(1, at=t1).crash(2, at=t2)
        job = make_job(fault_plan=plan, max_recoveries=1)
        with pytest.raises((UnrecoverableError, SimulationError)):
            job.recovery.run(neighbor_setup, neighbor_epoch, epochs=EPOCHS)


def local_setup(rt):
    alloc = yield from rt.malloc(NBYTES)
    yield from rt.job.recovery.protect(rt, alloc)
    rt.world.space(rt.rank).view(alloc.addr(rt.rank), NBYTES)[:] = 0
    return alloc, {"sum": 0.0}


def local_epoch(rt, alloc, state, epoch):
    view = rt.world.space(rt.rank).view(alloc.addr(rt.rank), NBYTES)
    view[epoch % NBYTES] += 1
    state["sum"] = float(view.sum())
    yield from rt.compute(5e-6)


class TestShrinkRecovery:
    def test_survivors_continue_without_the_dead_rank(self):
        clean, _job, _window, commits = probe_run(
            local_setup, local_epoch, mode="shrink"
        )
        mid = commits[0] + 0.5 * (commits[1] - commits[0])
        job = make_job(mode="shrink", fault_plan=FaultPlan().crash(1, at=mid))
        out = job.recovery.run(local_setup, local_epoch, epochs=EPOCHS)
        assert job.trace.count("pami.ranks_respawned") == 0
        assert job.trace.count("recover.recoveries_completed") >= 1
        for rank in (0, 2, 3):
            assert out[rank] == clean[rank]
        # The dead rank reports its last committed epoch, which is
        # strictly before the survivors' final one.
        assert out[1]["sum"] < clean[1]["sum"]

    def test_buddy_of_dead_rank_rebinds(self):
        clean, probe_job, _window, commits = probe_run(
            local_setup, local_epoch, mode="shrink"
        )
        # Kill some rank that is a buddy, so the orphaned store must
        # rebind to a surviving partner and re-replicate onto it.
        victim = probe_job.recovery._stores[0].buddy
        mid = commits[0] + 0.5 * (commits[1] - commits[0])
        job = make_job(
            mode="shrink", fault_plan=FaultPlan().crash(victim, at=mid)
        )
        job.recovery.run(local_setup, local_epoch, epochs=EPOCHS)
        assert job.trace.count("recover.buddies_rebound") >= 1
        assert job.trace.count("recover.bytes_rereplicated") > 0
        store = job.recovery._stores[0]
        assert store.buddy != victim and store.replica_valid


# ------------------------------------------------------ observability


class TestRecoveryObservability:
    def test_spans_and_report(self):
        clean, _job, _window, commits = probe_run(neighbor_setup, neighbor_epoch)
        mid = commits[0] + 0.5 * (commits[1] - commits[0])
        job = make_job(
            fault_plan=FaultPlan().crash(1, at=mid),
            obs=ObsConfig(enabled=True),
        )
        job.recovery.run(neighbor_setup, neighbor_epoch, epochs=EPOCHS)
        categories = {s.category for s in job.obs.spans}
        assert "recovery" in categories
        names = {s.name for s in job.obs.spans if s.category == "recovery"}
        assert {"checkpoint", "recover"} <= names
        report = job.report()
        assert "resilience" in report
        assert "recoveries completed" in report
        assert "mean time to recovery" in report
        assert "bytes re-replicated" in report

    def test_clean_report_has_no_recovery_time_row(self):
        job = ArmciJob(
            2, config=ArmciConfig.async_thread_mode(), procs_per_node=1
        )
        job.init()

        def body(rt):
            yield from rt.barrier()

        job.run(body)
        assert "mean time to recovery" not in job.report()
