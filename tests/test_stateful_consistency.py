"""Randomized cross-protocol consistency checking.

Hypothesis drives random programs of puts, accumulates, strided puts,
vector puts, fences, and gets from one rank against another, alongside a
sequential shadow model. Location consistency (with the automatic
conflicting-access fences) demands every get observe exactly the shadow
state — across protocol boundaries (RDMA puts vs AM accumulates vs
typed/vector paths), which exercises PAMI's pairwise ordering and the
trackers together.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import ArmciConfig, ArmciJob
from repro.armci.vector import IoVector
from repro.types import StridedDescriptor, StridedShape

SEGMENT = 512  # target segment size (bytes); f64 ops use 8-aligned slots


def op_strategy():
    put = st.tuples(
        st.just("put"),
        st.integers(0, SEGMENT - 16),
        st.integers(1, 16),
        st.integers(0, 255),
    )
    acc = st.tuples(
        st.just("acc"),
        st.integers(0, SEGMENT // 8 - 4),  # f64 slot
        st.integers(1, 4),                 # count
        st.integers(-50, 50),              # value
    )
    strided_put = st.tuples(
        st.just("puts"),
        st.integers(0, SEGMENT - 200),     # base offset
        st.integers(2, 4),                 # chunks
        st.integers(8, 16),                # chunk bytes
        st.integers(0, 255),
    )
    vector_put = st.tuples(
        st.just("putv"),
        st.lists(st.integers(0, SEGMENT - 8), min_size=1, max_size=3, unique=True),
        st.integers(1, 8),
        st.integers(0, 255),
    )
    fence = st.tuples(st.just("fence"))
    check = st.tuples(
        st.just("check"),
        st.integers(0, SEGMENT - 32),
        st.integers(1, 32),
    )
    return st.lists(
        st.one_of(put, acc, strided_put, vector_put, fence, check),
        min_size=1,
        max_size=14,
    )


@given(ops=op_strategy(), tracker=st.sampled_from(["cs_tgt", "cs_mr"]))
@settings(max_examples=30, deadline=None)
def test_random_programs_match_shadow_model(ops, tracker):
    job = ArmciJob(
        2, procs_per_node=1, config=ArmciConfig(consistency_tracker=tracker)
    )
    job.init()
    shadow = np.zeros(SEGMENT, dtype=np.uint8)
    mismatches = []

    def body(rt):
        alloc = yield from rt.malloc(SEGMENT)
        yield from rt.barrier()
        if rt.rank == 1:
            yield from rt.barrier()
            return
        space = rt.world.space(0)
        base = alloc.addr(1)
        scratch = space.allocate(SEGMENT)

        for op in ops:
            kind = op[0]
            if kind == "put":
                _, off, length, value = op
                space.write(scratch, bytes([value]) * length)
                yield from rt.put(1, scratch, base + off, length)
                shadow[off : off + length] = value
            elif kind == "acc":
                _, slot, count, value = op
                vals = np.full(count, float(value))
                space.write_f64(scratch, vals)
                yield from rt.acc(1, scratch, base + slot * 8, count * 8)
                view = shadow[slot * 8 : (slot + count) * 8].view(np.float64)
                view += vals
            elif kind == "puts":
                _, off, chunks, chunk_bytes, value = op
                desc = StridedDescriptor(
                    StridedShape(chunk_bytes, (chunks,)),
                    (chunk_bytes,),
                    (chunk_bytes * 2,),
                )
                total = chunks * chunk_bytes
                space.write(scratch, bytes([value]) * total)
                yield from rt.puts(1, scratch, base + off, desc)
                for c in range(chunks):
                    lo = off + c * chunk_bytes * 2
                    shadow[lo : lo + chunk_bytes] = value
            elif kind == "putv":
                _, offsets, length, value = op
                offsets = [min(o, SEGMENT - length) for o in offsets]
                offsets = sorted(set(offsets))
                # Drop overlapping segments (ill-formed vectors).
                pruned = []
                last_end = -1
                for o in offsets:
                    if o > last_end:
                        pruned.append(o)
                        last_end = o + length - 1
                if not pruned:
                    continue
                space.write(scratch, bytes([value]) * length)
                vec = IoVector(
                    tuple([scratch] * len(pruned)),
                    tuple(base + o for o in pruned),
                    tuple([length] * len(pruned)),
                )
                yield from rt.putv(1, vec)
                for o in pruned:
                    shadow[o : o + length] = value
            elif kind == "fence":
                yield from rt.fence(1)
            elif kind == "check":
                _, off, length = op
                back = space.allocate(length)
                yield from rt.get(1, back, base + off, length)
                got = np.frombuffer(space.read(back, length), dtype=np.uint8)
                if not np.array_equal(got, shadow[off : off + length]):
                    mismatches.append((op, got.tobytes(), shadow[off : off + length].tobytes()))
        # Final full check.
        back = space.allocate(SEGMENT)
        yield from rt.get(1, back, base, SEGMENT)
        got = np.frombuffer(space.read(back, SEGMENT), dtype=np.uint8)
        if not np.array_equal(got, shadow):
            mismatches.append(("final", got.tobytes(), shadow.tobytes()))
        yield from rt.barrier()

    job.run(body)
    assert not mismatches, mismatches[0][0]
