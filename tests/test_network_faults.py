"""End-to-end tests for the network-robustness layer.

Covers the full tentpole: scheduled link faults (kill / revive /
degrade / lossy / corrupt), fault-aware rerouting with exact numerics
under repeated mid-run link kills, the link health monitor (suspect →
dead hysteresis, probe-driven recovery, escalation *only* when a rank is
unreachable on every path), and end-to-end payload integrity catching
silent corruption that would otherwise land — on contiguous, strided,
vector, AM fall-back, atomic, and full-SCF traffic.
"""

import dataclasses

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.armci.config import RetryPolicy
from repro.armci.vector import IoVector
from repro.chaos import ChaosConfig, ChaosError, FaultPlan, LinkFault
from repro.errors import (
    ArmciError,
    ProcessFailedError,
    RetryExhaustedError,
    TopologyError,
    TransientFaultError,
)
from repro.machine.health import HealthConfigError, LinkHealthConfig
from repro.pami.integrity import IntegrityConfig, IntegrityError
from repro.topology import Torus, dimension_order_route
from repro.types import StridedDescriptor, StridedShape


def N(a, b, c):
    """Node coordinate in the 8-rank, 1-proc/node layout (dims 1,1,2,2,2)."""
    return (0, 0, a, b, c)


NODE0 = N(0, 0, 0)  # rank 0
NODE1 = N(0, 0, 1)  # rank 1
NODE7 = N(1, 1, 1)  # rank 7

#: The two nodes of a 2-rank, 1-proc/node job (dims 1,1,1,1,2).
PAIR_A = (0, 0, 0, 0, 0)
PAIR_B = (0, 0, 0, 0, 1)

PAYLOAD = bytes(range(256)) * 4  # 1 KiB test pattern


def net_job(num_procs=8, config=None, **kw):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig.default_mode(),
        procs_per_node=1,
        **kw,
    )
    job.init()
    return job


def put_get_body(job, dst=1, nbytes=1024, repeat=8, epochs=None, on_iter=None):
    """Rank 0: ``repeat`` fenced puts to ``dst``, then a get-back.

    ``epochs`` (a list) samples the routing epoch after every fence;
    ``on_iter(i)`` runs before iteration ``i`` — the hook the tests use
    to inject link faults mid-run at deterministic points.
    """
    result = {}

    def body(rt):
        alloc = yield from rt.malloc(8192)
        yield from rt.barrier()
        if rt.rank == 0:
            src = rt.world.space(0).allocate(nbytes)
            rt.world.space(0).write(src, PAYLOAD[:nbytes])
            for _i in range(repeat):
                if on_iter is not None:
                    on_iter(_i)
                yield from rt.put(dst, src, alloc.addr(dst), nbytes)
                yield from rt.fence(dst)
                if epochs is not None:
                    net = rt.world.network
                    epochs.append(net.route_table.view.epoch)
            back = rt.world.space(0).allocate(nbytes)
            yield from rt.get(dst, back, alloc.addr(dst), nbytes)
            result["data"] = rt.world.space(0).read(back, nbytes)
        yield from rt.barrier()

    job.run(body)
    return result


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "bogus"},
            {"a": (0, -1, 0, 0, 0)},
            {"b": "not-a-coord"},
            {"at": -1e-6},
            {"kind": "degrade", "factor": 0.5},
            {"kind": "lossy", "prob": 1.5},
            {"kind": "corrupt", "prob": -0.1},
        ],
    )
    def test_link_fault_validation(self, kwargs):
        base = dict(kind="kill", a=NODE0, b=NODE1, at=0.0)
        base.update(kwargs)
        with pytest.raises(ChaosError):
            LinkFault(**base)

    def test_chaos_config_validation(self):
        with pytest.raises(ChaosError):
            ChaosConfig(corrupt_mode="sideways")
        with pytest.raises(ChaosError):
            ChaosConfig(link_faults=("not a fault",))

    def test_armci_config_type_checks(self):
        with pytest.raises(ArmciError):
            ArmciConfig(integrity=42)
        with pytest.raises(ArmciError):
            ArmciConfig(health="monitor")

    def test_integrity_config_validation(self):
        with pytest.raises(IntegrityError):
            IntegrityConfig(max_retransmits=-1)
        with pytest.raises(IntegrityError):
            IntegrityConfig(retransmit_delay=0.0)

    def test_health_config_validation(self):
        with pytest.raises(HealthConfigError):
            LinkHealthConfig(suspect_after=0)
        with pytest.raises(HealthConfigError):
            LinkHealthConfig(suspect_after=4, dead_after=2)
        with pytest.raises(HealthConfigError):
            LinkHealthConfig(probe_period=0.0)

    def test_fault_plan_bad_link_fails_at_construction(self):
        # (0,0,0,0,0)-(0,0,1,1,1) are not torus neighbors: the job must
        # reject the plan eagerly, not lose transfers mid-run.
        plan = FaultPlan().kill_link(NODE0, NODE7, at=1e-6)
        with pytest.raises(TopologyError):
            ArmciJob(8, ArmciConfig.default_mode(), procs_per_node=1,
                     fault_plan=plan)

    def test_fault_plan_wrong_dimensionality_rejected(self):
        plan = FaultPlan().kill_link((0, 0), (0, 1), at=1e-6)
        with pytest.raises(TopologyError):
            ArmciJob(8, ArmciConfig.default_mode(), procs_per_node=1,
                     fault_plan=plan)


class TestDefaultPathDormant:
    def test_no_knobs_means_no_link_machinery(self):
        job = net_job(2)
        put_get_body(job, dst=1, repeat=2)
        net = job.world.network
        assert net.link_state is None
        assert net.route_table is None
        assert net.health is None
        assert job.integrity is None
        assert job.health is None
        for key in (
            "net.reroutes", "net.route_recomputes", "net.link_drops",
            "net.payload_corruptions", "chaos.link_kills",
            "net.links_suspected", "net.health_probes",
            "armci.integrity.protected", "pami.silent_corruptions",
        ):
            assert job.trace.count(key) == 0

    def test_hop_cost_matches_seed_expression(self):
        job = net_job(8)
        net = job.world.network
        assert net.hop_cost(0, 7) == net.hops(0, 7) * net.params.hop_latency

    def test_healthy_link_mode_times_identically(self):
        """A link-fault-mode run over all-healthy links (and one with a
        factor-1.0 degrade) is time-identical to the seed model: the
        per-link cost sum collapses to hops * hop_latency exactly."""

        def run(plan):
            job = net_job(8, fault_plan=plan)
            result = put_get_body(job, dst=7, repeat=8)
            assert result["data"] == PAYLOAD
            return job.engine.now

        baseline = run(None)
        assert run(FaultPlan().degrade_link(NODE0, NODE1, 0.0, factor=1.0)) == baseline

    def test_integrity_alone_does_not_change_timing(self):
        """With no corruption in flight, the integrity layer verifies
        every transfer without altering completion times."""

        def run(config):
            job = net_job(8, config=config)
            result = put_get_body(job, dst=7, repeat=8)
            assert result["data"] == PAYLOAD
            return job

        baseline = run(ArmciConfig.default_mode())
        protected = run(
            ArmciConfig.default_mode(integrity=IntegrityConfig())
        )
        assert protected.engine.now == baseline.engine.now
        assert protected.trace.count("armci.integrity.protected") > 0
        assert protected.trace.count("armci.integrity.checksum_failures") == 0

    def test_disabled_integrity_config_stays_dormant(self):
        job = net_job(
            2, config=ArmciConfig.default_mode(
                integrity=IntegrityConfig(enabled=False),
                health=LinkHealthConfig(enabled=False),
            )
        )
        assert job.integrity is None
        assert job.health is None


class TestFaultAwareRouting:
    def test_killed_direct_link_detours(self):
        plan = FaultPlan().kill_link(NODE0, NODE1, at=2e-6)
        job = net_job(8, fault_plan=plan)
        result = put_get_body(job, dst=1, repeat=8)
        assert result["data"] == PAYLOAD
        assert job.trace.count("chaos.link_kills") == 1
        assert job.trace.count("net.reroutes") > 0
        # rank 0 -> rank 1 is one hop; every detour costs at least two more.
        assert job.trace.count("net.reroute_extra_hops") >= 2
        # Ground-truth routing reacts instantly: nothing is ever dropped.
        assert job.trace.count("net.link_drops") == 0

    def test_survives_killing_every_dim_order_link(self):
        """The acceptance scenario: every link of the 0 -> 7 dim-order
        path dies mid-run, one at a time; transfers keep completing with
        exact numerics and the route epoch only ever moves forward."""
        torus = Torus((1, 1, 2, 2, 2))
        path = dimension_order_route(torus, NODE0, NODE7)
        assert len(path) == 4  # three hops through dims 2, 3, 4
        kills = {
            6 + 6 * i: (u, v)
            for i, (u, v) in enumerate(zip(path, path[1:]))
        }
        job = net_job(8)
        job.world.enable_link_faults()  # link mode on from the start

        def on_iter(i):
            if i in kills:
                u, v = kills[i]
                job.world.apply_link_fault(LinkFault("kill", u, v, at=0.0))

        epochs = []
        result = put_get_body(
            job, dst=7, repeat=30, epochs=epochs, on_iter=on_iter
        )
        assert result["data"] == PAYLOAD
        assert job.trace.count("chaos.link_kills") == 3
        assert job.world.network.link_state.epoch == 3
        assert job.trace.count("net.reroutes") > 0
        assert job.trace.count("net.link_drops") == 0
        assert epochs == sorted(epochs)  # monotone bumps
        assert set(epochs) == {0, 1, 2, 3}  # every kill observed mid-run

    def test_unreachable_rank_exhausts_retries(self):
        plan = (
            FaultPlan()
            .kill_link(N(0, 1, 1), NODE7, at=1e-6)
            .kill_link(N(1, 0, 1), NODE7, at=1e-6)
            .kill_link(N(1, 1, 0), NODE7, at=1e-6)
        )
        job = net_job(8, fault_plan=plan)
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(256)
                try:
                    yield from rt.put(7, src, alloc.addr(7), 256)
                except RetryExhaustedError:
                    outcome["exhausted"] = True
            yield from rt.barrier()

        job.run(body)
        assert outcome.get("exhausted")
        assert job.trace.count("net.link_drops") > 0
        # Without a health monitor nobody escalates: partition != death.
        assert not job.world.failed_ranks

    def test_revived_link_restores_reachability(self):
        # Revive times are measured from run() start; init's collectives
        # take ~50 us of simulated time, so 600 us lands mid-put-loop.
        plan = FaultPlan().revive_link(N(1, 1, 0), NODE7, at=600e-6)
        cfg = ArmciConfig.default_mode(
            retry=RetryPolicy(max_retries=40, max_delay=20e-6)
        )
        job = net_job(8, config=cfg, fault_plan=plan)

        def on_iter(i):
            if i == 0:  # isolate rank 7 right before the first put
                for nb in (N(0, 1, 1), N(1, 0, 1), N(1, 1, 0)):
                    job.world.apply_link_fault(
                        LinkFault("kill", nb, NODE7, at=0.0)
                    )

        result = put_get_body(job, dst=7, repeat=4, on_iter=on_iter)
        assert result["data"] == PAYLOAD
        assert job.trace.count("chaos.link_kills") == 3
        assert job.trace.count("chaos.link_revives") == 1
        assert job.trace.count("net.link_drops") > 0
        assert job.trace.count("armci.transient_retries") > 0

    def test_degraded_link_slows_but_stays_correct(self):
        def run(plan):
            job = net_job(8, fault_plan=plan)
            result = put_get_body(job, dst=1, repeat=8)
            assert result["data"] == PAYLOAD
            return job

        clean = run(None)
        slow = run(FaultPlan().degrade_link(NODE0, NODE1, 0.0, factor=8.0))
        assert slow.engine.now > clean.engine.now
        assert slow.trace.count("chaos.link_degrades") == 1

    def test_lossy_link_absorbed_by_retries(self):
        plan = FaultPlan().lossy_link(NODE0, NODE1, at=0.0, prob=0.3)
        cfg = ArmciConfig.default_mode(retry=RetryPolicy(max_retries=10))
        job = net_job(8, config=cfg, fault_plan=plan)
        result = put_get_body(job, dst=1, repeat=16)
        assert result["data"] == PAYLOAD
        assert job.trace.count("net.link_drops") > 0
        assert job.trace.count("armci.transient_retries") > 0

    def test_chaos_config_link_faults_are_scheduled_too(self):
        # Link faults ride ChaosConfig as well as FaultPlan.
        chaos = ChaosConfig(
            link_faults=(LinkFault("kill", NODE0, NODE1, at=2e-6),)
        )
        job = net_job(8, chaos=chaos)
        result = put_get_body(job, dst=1, repeat=4)
        assert result["data"] == PAYLOAD
        assert job.trace.count("chaos.link_kills") == 1
        assert job.trace.count("net.reroutes") > 0


class TestHealthMonitor:
    def test_suspect_link_detoured_without_death(self):
        """Two consecutive losses mark the link suspect; routing detours
        and the link is never declared dead — and no rank is failed
        while a path exists (partition != death)."""
        plan = FaultPlan().lossy_link(NODE0, NODE1, at=0.0, prob=1.0)
        cfg = ArmciConfig.default_mode(
            health=LinkHealthConfig(),
            retry=RetryPolicy(max_retries=10),
        )
        job = net_job(8, config=cfg, fault_plan=plan)
        result = put_get_body(job, dst=1, repeat=10)
        assert result["data"] == PAYLOAD
        assert job.trace.count("net.links_suspected") == 1
        assert job.trace.count("net.links_dead") == 0
        assert job.trace.count("net.reroutes") > 0
        assert job.trace.count("net.ranks_unreachable") == 0
        assert not job.world.failed_ranks

    def test_observed_dead_link_reroutes_without_escalation(self):
        """A ground-truth-killed link walks to observed-dead through the
        loss observations; routing detours and nobody is escalated
        because alternative paths exist."""
        plan = FaultPlan().kill_link(NODE0, NODE1, at=0.0)
        cfg = ArmciConfig.default_mode(
            health=LinkHealthConfig(suspect_after=4, dead_after=4),
            retry=RetryPolicy(max_retries=10),
        )
        job = net_job(8, config=cfg, fault_plan=plan)
        result = put_get_body(job, dst=1, repeat=12)
        assert result["data"] == PAYLOAD
        assert job.trace.count("net.links_dead") == 1
        assert job.trace.count("net.reroutes") > 0
        assert job.trace.count("net.ranks_unreachable") == 0
        assert not job.world.failed_ranks

    def test_probes_revive_a_falsely_dead_link(self):
        """A fully lossy link gets declared dead (a false positive: the
        hardware is alive), the monitor's bounded probes notice ground
        truth disagrees, and the link recovers — twice over, since the
        loss mode persists until the plan revives it."""
        plan = (
            FaultPlan()
            .lossy_link(PAIR_A, PAIR_B, at=0.0, prob=1.0)
            .revive_link(PAIR_A, PAIR_B, at=900e-6)
        )
        cfg = ArmciConfig.default_mode(
            health=LinkHealthConfig(escalate=False),
            retry=RetryPolicy(max_retries=50, max_delay=20e-6),
        )
        job = net_job(2, config=cfg, fault_plan=plan)
        result = put_get_body(job, dst=1, repeat=2)
        assert result["data"] == PAYLOAD
        assert job.trace.count("net.links_suspected") >= 1
        assert job.trace.count("net.links_dead") >= 1
        assert job.trace.count("net.health_probes") >= 2
        assert job.trace.count("net.links_revived") >= 1
        assert job.trace.count("net.ranks_unreachable") == 0
        assert not job.world.failed_ranks

    def test_escalates_only_truly_unreachable_rank(self):
        """All three links to rank 7's node die: once the monitor has
        observed each one dead, rank 7 (and only rank 7) is escalated to
        the failure machinery."""
        # AT mode: targets stay passive after the barrier (their async
        # threads service progress), so no trailing collective needs to
        # survive rank 7's death.
        cfg = ArmciConfig.async_thread_mode(
            health=LinkHealthConfig(suspect_after=1, dead_after=1),
            retry=RetryPolicy(max_retries=10),
        )
        job = net_job(8, config=cfg)
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank != 0:
                return
            src = rt.world.space(0).allocate(256)
            # Healthy warm-up put, then isolate rank 7's node.
            yield from rt.put(7, src, alloc.addr(7), 256)
            yield from rt.fence(7)
            for nb in (N(0, 1, 1), N(1, 0, 1), N(1, 1, 0)):
                rt.world.apply_link_fault(LinkFault("kill", nb, NODE7, at=0.0))
            for _i in range(30):
                try:
                    yield from rt.put(7, src, alloc.addr(7), 256)
                except (TransientFaultError, ProcessFailedError) as exc:
                    outcome.setdefault("error", type(exc).__name__)
                    if rt.world.is_failed(7):
                        break

        job.run(body)
        assert "error" in outcome
        assert job.world.failed_ranks == {7}
        assert job.trace.count("net.ranks_unreachable") == 1
        assert job.trace.count("net.links_dead") == 3


class TestEndToEndIntegrity:
    def _corrupt_put_run(self, config, chunks=4, nbytes=256):
        plan = FaultPlan().corrupt_link(NODE0, NODE1, at=0.0, prob=1.0)
        job = net_job(8, config=config, fault_plan=plan)
        result = {}

        def body(rt):
            alloc = yield from rt.malloc(chunks * nbytes)
            yield from rt.barrier()
            if rt.rank == 0:
                blob = (PAYLOAD * chunks)[: chunks * nbytes]
                src = rt.world.space(0).allocate(chunks * nbytes)
                rt.world.space(0).write(src, blob)
                for i in range(chunks):
                    yield from rt.put(
                        1, src + i * nbytes, alloc.addr(1) + i * nbytes, nbytes
                    )
                yield from rt.fence(1)
                result["expected"] = blob
                result["remote"] = rt.world.space(1).read(
                    alloc.addr(1), chunks * nbytes
                )
            yield from rt.barrier()

        job.run(body)
        return result, job

    def test_silent_corruption_lands_without_integrity(self):
        """The bug made real: a corrupting link flips one payload bit
        per transfer and — with no end-to-end protection — the damaged
        bytes land silently."""
        result, job = self._corrupt_put_run(ArmciConfig.default_mode())
        assert result["remote"] != result["expected"]
        # One silent flip per data put; control AMs crossing the same
        # link roll wire corruptions too, so the wire counter is >=.
        assert job.trace.count("pami.silent_corruptions") == 4
        assert job.trace.count("net.payload_corruptions") >= 4
        assert job.trace.count("armci.integrity.protected") == 0

    def test_integrity_catches_and_retransmits(self):
        result, job = self._corrupt_put_run(
            ArmciConfig.default_mode(integrity=IntegrityConfig())
        )
        assert result["remote"] == result["expected"]
        assert job.trace.count("pami.silent_corruptions") == 0
        assert job.trace.count("armci.integrity.checksum_failures") > 0
        assert job.trace.count("armci.integrity.retransmits") > 0
        assert job.trace.count("armci.integrity.retransmit_bytes") > 0

    def test_exhausted_retransmit_budget_fails_the_fence(self):
        """A put's local completion predates the corruption, so a spent
        retransmit budget must surface at the *fence* — certifying the
        write anyway would be silent data loss."""
        plan = FaultPlan().corrupt_link(NODE0, NODE1, at=0.0, prob=1.0)
        cfg = ArmciConfig.default_mode(
            integrity=IntegrityConfig(max_retransmits=0)
        )
        job = net_job(8, config=cfg, fault_plan=plan)
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(256)
                try:
                    yield from rt.put(1, src, alloc.addr(1), 256)
                    yield from rt.fence(1)
                except TransientFaultError:
                    outcome["exhausted"] = True
            yield from rt.barrier()

        job.run(body)
        assert outcome.get("exhausted")
        assert job.trace.count("armci.integrity.aborted") > 0

    def test_get_reply_corruption_is_caught(self):
        plan = FaultPlan().corrupt_link(NODE0, NODE1, at=0.0, prob=1.0)
        cfg = ArmciConfig.default_mode(integrity=IntegrityConfig())
        job = net_job(8, config=cfg, fault_plan=plan)
        result = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            if rt.rank == 1:
                rt.world.space(1).write(alloc.addr(1), PAYLOAD)
            yield from rt.barrier()
            if rt.rank == 0:
                back = rt.world.space(0).allocate(1024)
                yield from rt.get(1, back, alloc.addr(1), 1024)
                result["data"] = rt.world.space(0).read(back, 1024)
            yield from rt.barrier()

        job.run(body)
        assert result["data"] == PAYLOAD
        assert job.trace.count("armci.integrity.checksum_failures") > 0
        assert job.trace.count("pami.silent_corruptions") == 0

    def test_payload_chaos_mode_with_integrity(self):
        """corrupt_mode="payload" turns chaos corruption into real bit
        flips on every transfer path; integrity restores exactness."""

        def run(chaos, config):
            job = net_job(8, config=config, chaos=chaos)
            result = {}

            def body(rt):
                alloc = yield from rt.malloc(4096)
                yield from rt.barrier()
                if rt.rank == 0:
                    src = rt.world.space(0).allocate(4096)
                    rt.world.space(0).write(src, PAYLOAD * 4)
                    for i in range(16):
                        yield from rt.put(
                            1, src + i * 256, alloc.addr(1) + i * 256, 256
                        )
                    yield from rt.fence(1)
                    result["remote"] = rt.world.space(1).read(alloc.addr(1), 4096)
                yield from rt.barrier()

            job.run(body)
            return result, job

        chaos = ChaosConfig(seed=3, corrupt_prob=0.4, corrupt_mode="payload")
        silent, sjob = run(chaos, ArmciConfig.default_mode())
        assert sjob.trace.count("pami.silent_corruptions") > 0
        assert silent["remote"] != PAYLOAD * 4
        caught, cjob = run(
            chaos, ArmciConfig.default_mode(integrity=IntegrityConfig())
        )
        assert caught["remote"] == PAYLOAD * 4
        assert cjob.trace.count("armci.integrity.checksum_failures") > 0
        assert cjob.trace.count("pami.silent_corruptions") == 0

    def test_am_fallback_path_is_protected(self):
        plan = FaultPlan().corrupt_link(NODE0, NODE1, at=0.0, prob=1.0)
        cfg = ArmciConfig.default_mode(
            use_rdma=False, integrity=IntegrityConfig()
        )
        job = net_job(8, config=cfg, fault_plan=plan)
        result = put_get_body(job, dst=1, repeat=6)
        assert result["data"] == PAYLOAD
        assert job.trace.count("armci.put_fallback") > 0
        assert job.trace.count("armci.integrity.retransmits") > 0
        assert job.trace.count("pami.silent_corruptions") == 0

    def test_rmw_operand_corruption(self):
        def run(config):
            plan = FaultPlan().corrupt_link(PAIR_A, PAIR_B, at=0.0, prob=1.0)
            job = net_job(2, config=config, fault_plan=plan)
            draws = []
            out = {}

            def body(rt):
                alloc = yield from rt.malloc(8)
                yield from rt.barrier()
                if rt.rank == 0:
                    for _i in range(16):
                        old = yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
                        draws.append(old)
                yield from rt.barrier()
                if rt.rank == 1:
                    out["cell"] = rt.world.space(1).read(alloc.addr(1), 8)

            job.run(body)
            return draws, out["cell"], job

        draws, cell, job = run(
            ArmciConfig.async_thread_mode(integrity=IntegrityConfig())
        )
        assert draws == list(range(16))
        assert job.trace.count("armci.integrity.checksum_failures") > 0
        assert job.trace.count("pami.silent_corruptions") == 0

        bad_draws, bad_cell, bad_job = run(ArmciConfig.async_thread_mode())
        assert bad_job.trace.count("pami.silent_corruptions") > 0
        assert bad_draws != list(range(16)) or bad_cell != cell


class TestStridedVectorScf:
    def test_strided_and_vector_exact_under_faults(self):
        desc = StridedDescriptor(StridedShape(16, (8,)), (32,), (32,))

        def run(chaos, plan):
            cfg = ArmciConfig.async_thread_mode(
                strided_protocol="auto",
                integrity=IntegrityConfig(),
                health=LinkHealthConfig(),
                retry=RetryPolicy(max_retries=10),
            )
            job = net_job(8, config=cfg, chaos=chaos, fault_plan=plan)
            out = {}

            def body(rt):
                alloc = yield from rt.malloc(8192)
                yield from rt.barrier()
                if rt.rank == 0:
                    local = rt.world.space(0).allocate(512)
                    rt.world.space(0).write(local, bytes(range(128)) * 4)
                    for _i in range(6):
                        yield from rt.puts(1, local, alloc.addr(1), desc)
                        yield from rt.gets(1, local, alloc.addr(1), desc)
                    vec = IoVector(
                        (local, local + 64),
                        (alloc.addr(1) + 512, alloc.addr(1) + 640),
                        (64, 64),
                    )
                    for _i in range(6):
                        yield from rt.putv(1, vec)
                        yield from rt.getv(1, vec)
                    yield from rt.fence(1)
                    out["remote"] = rt.world.space(1).read(alloc.addr(1), 1024)
                    out["local"] = rt.world.space(0).read(local, 512)
                yield from rt.barrier()

            job.run(body)
            return out, job

        clean, _cjob = run(None, None)
        chaos = ChaosConfig(seed=21, corrupt_prob=0.2, corrupt_mode="payload")
        plan = FaultPlan().kill_link(NODE0, NODE1, at=25e-6)
        faulty, job = run(chaos, plan)
        assert faulty == clean
        assert job.trace.count("net.reroutes") > 0
        assert job.trace.count("armci.integrity.checksum_failures") > 0
        assert job.trace.count("pami.silent_corruptions") == 0

    def test_scf_exact_under_link_faults(self):
        """Full-application acceptance: an SCF run over a corrupting
        link plus a mid-run link kill — with integrity and health on —
        completes the same task accounting as the fault-free run."""
        from repro.apps.nwchem import ScfConfig, run_scf

        scf = ScfConfig(
            nbf_override=32, nblocks=4, task_time=200e-6,
            iterations=2, num_counters=2,
        )
        cfg = ArmciConfig.async_thread_mode(
            integrity=IntegrityConfig(),
            health=LinkHealthConfig(),
            retry=RetryPolicy(max_retries=10),
        )
        clean = run_scf(4, cfg, scf, procs_per_node=1)
        plan = (
            FaultPlan()
            .corrupt_link((0, 0, 0, 0, 0), (0, 0, 0, 0, 1), at=0.0, prob=0.1)
            .kill_link((0, 0, 0, 0, 0), (0, 0, 0, 1, 0), at=100e-6)
        )
        chaotic = run_scf(4, cfg, scf, procs_per_node=1, fault_plan=plan)
        assert chaotic.tasks_done == clean.tasks_done == 16 * 2
        assert chaotic.iterations_run == 2


class TestReport:
    def test_report_shows_network_rows(self):
        plan = (
            FaultPlan()
            .kill_link(NODE0, NODE1, at=2e-6)
            .corrupt_link(N(0, 1, 0), N(0, 1, 1), at=0.0, prob=1.0)
        )
        cfg = ArmciConfig.default_mode(
            integrity=IntegrityConfig(), health=LinkHealthConfig()
        )
        job = net_job(8, config=cfg, fault_plan=plan)

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(256)
                yield from rt.put(1, src, alloc.addr(1), 256)
                yield from rt.put(3, src, alloc.addr(3), 256)
                yield from rt.fence_all()
            yield from rt.barrier()

        job.run(body)
        report = job.report()
        assert "links killed" in report
        assert "routes detoured" in report
        assert "checksum failures caught" in report

    def test_clean_report_elides_network_rows(self):
        job = net_job(2)
        put_get_body(job, dst=1, repeat=2)
        report = job.report()
        assert "links killed" not in report
        assert "checksum failures caught" not in report
