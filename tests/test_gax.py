"""Tests for the mini Global Arrays layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import ArmciConfig, ArmciJob
from repro.errors import GlobalArrayError
from repro.gax import BlockDistribution, GlobalArray, Patch, SharedCounter
from repro.gax.dgemm import dgemm_task_list, parallel_dgemm
from repro.gax.distribution import default_process_grid


def make_job(num_procs=4, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=kwargs.pop("procs_per_node", min(num_procs, 16)),
        **kwargs,
    )
    job.init()
    return job


class TestDistribution:
    def test_default_grid_is_near_square(self):
        assert default_process_grid(4) == (2, 2)
        assert default_process_grid(6) == (2, 3)
        assert default_process_grid(1) == (1, 1)
        assert default_process_grid(7) == (1, 7)

    def test_patch_validation(self):
        with pytest.raises(GlobalArrayError):
            Patch(2, 2, 0, 1)  # empty rows
        with pytest.raises(GlobalArrayError):
            Patch(-1, 2, 0, 1)

    def test_patch_intersection(self):
        a = Patch(0, 4, 0, 4)
        b = Patch(2, 6, 3, 8)
        assert a.intersect(b) == Patch(2, 4, 3, 4)
        assert a.intersect(Patch(4, 8, 0, 4)) is None

    def test_owner_blocks_partition_the_array(self):
        dist = BlockDistribution(10, 10, 2, 2)
        covered = np.zeros((10, 10), dtype=int)
        for rank in range(4):
            blk = dist.owner_block(rank)
            covered[blk.row_lo : blk.row_hi, blk.col_lo : blk.col_hi] += 1
        assert (covered == 1).all()

    def test_owner_of_matches_owner_block(self):
        dist = BlockDistribution(7, 9, 2, 3)
        for i in range(7):
            for j in range(9):
                rank = dist.owner_of(i, j)
                blk = dist.owner_block(rank)
                assert blk.row_lo <= i < blk.row_hi
                assert blk.col_lo <= j < blk.col_hi

    def test_owners_of_patch_covers_exactly(self):
        dist = BlockDistribution(8, 8, 2, 2)
        patch = Patch(1, 7, 2, 6)
        covered = np.zeros((8, 8), dtype=int)
        for _rank, sub in dist.owners_of_patch(patch):
            covered[sub.row_lo : sub.row_hi, sub.col_lo : sub.col_hi] += 1
        inside = covered[1:7, 2:6]
        assert (inside == 1).all()
        assert covered.sum() == inside.size

    def test_out_of_bounds_rejected(self):
        dist = BlockDistribution(8, 8, 2, 2)
        with pytest.raises(GlobalArrayError):
            list(dist.owners_of_patch(Patch(0, 9, 0, 4)))
        with pytest.raises(GlobalArrayError):
            dist.owner_of(8, 0)
        with pytest.raises(GlobalArrayError):
            dist.owner_block(4)

    @given(
        rows=st.integers(4, 30),
        cols=st.integers(4, 30),
        gr=st.integers(1, 4),
        gc=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_patch_decomposition_property(self, rows, cols, gr, gc, data):
        if gr > rows or gc > cols:
            return
        dist = BlockDistribution(rows, cols, gr, gc)
        r0 = data.draw(st.integers(0, rows - 1))
        r1 = data.draw(st.integers(r0 + 1, rows))
        c0 = data.draw(st.integers(0, cols - 1))
        c1 = data.draw(st.integers(c0 + 1, cols))
        patch = Patch(r0, r1, c0, c1)
        total = 0
        for rank, sub in dist.owners_of_patch(patch):
            blk = dist.owner_block(rank)
            assert blk.intersect(sub) == sub  # sub inside owner's block
            total += sub.shape[0] * sub.shape[1]
        assert total == patch.shape[0] * patch.shape[1]


class TestGlobalArray:
    def test_put_get_roundtrip_whole_array(self):
        job = make_job(4)
        expected = np.arange(64, dtype=np.float64).reshape(8, 8)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8))
            yield from rt.barrier()
            result = None
            if rt.rank == 0:
                yield from ga.put(rt, Patch(0, 8, 0, 8), expected)
                yield from rt.fence_all()
                result = yield from ga.to_numpy(rt)
            yield from rt.barrier()
            return result

        results = job.run(body)
        np.testing.assert_array_equal(results[0], expected)

    def test_cross_block_patch_get(self):
        job = make_job(4)
        data = np.random.default_rng(42).random((8, 8))

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8))
            yield from rt.barrier()
            result = None
            if rt.rank == 1:
                yield from ga.put(rt, Patch(0, 8, 0, 8), data)
                yield from rt.fence_all()
                # Patch spanning all four blocks.
                result = yield from ga.get(rt, Patch(2, 6, 2, 6))
            yield from rt.barrier()
            return result

        results = job.run(body)
        np.testing.assert_allclose(results[1], data[2:6, 2:6])

    def test_acc_sums_contributions_from_all_ranks(self):
        job = make_job(4)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8))
            ga.fill(rt, 0.0)
            yield from rt.barrier()
            contribution = np.full((4, 4), float(rt.rank + 1))
            yield from ga.acc(rt, Patch(2, 6, 2, 6), contribution)
            yield from rt.fence_all()
            yield from rt.barrier()
            result = None
            if rt.rank == 0:
                result = yield from ga.to_numpy(rt)
            yield from rt.barrier()
            return result

        results = job.run(body)
        expected = np.zeros((8, 8))
        expected[2:6, 2:6] = 1 + 2 + 3 + 4
        np.testing.assert_allclose(results[0], expected)

    def test_local_block_view_is_writable(self):
        job = make_job(4)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8))
            ga.local_block(rt)[:] = float(rt.rank)
            yield from rt.barrier()
            result = None
            if rt.rank == 0:
                result = yield from ga.to_numpy(rt)
            yield from rt.barrier()
            return result

        results = job.run(body)
        full = results[0]
        assert full[0, 0] == 0.0
        assert full[0, 7] == 1.0
        assert full[7, 0] == 2.0
        assert full[7, 7] == 3.0

    def test_shape_mismatch_rejected(self):
        job = make_job(4)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8))
            if rt.rank == 0:
                yield from ga.put(rt, Patch(0, 2, 0, 2), np.zeros((3, 3)))
            yield from rt.barrier()

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="shape"):
            job.run(body)

    def test_patch_out_of_bounds_rejected(self):
        job = make_job(4)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8))
            if rt.rank == 0:
                yield from ga.get(rt, Patch(0, 9, 0, 8))
            yield from rt.barrier()

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="exceeds"):
            job.run(body)

    def test_grid_mismatch_rejected(self):
        job = make_job(4)

        def body(rt):
            yield from GlobalArray.create(rt, (8, 8), grid=(3, 1))

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="distribution needs"):
            job.run(body)


class TestSharedCounter:
    def test_all_draws_distinct_and_dense(self):
        p = 6
        job = make_job(p, procs_per_node=3)

        def body(rt):
            counter = yield from SharedCounter.create(rt)
            yield from rt.barrier()
            draws = []
            for _ in range(4):
                draws.append((yield from counter.next(rt)))
            yield from rt.barrier()
            return draws

        results = job.run(body)
        all_draws = sorted(d for ds in results for d in ds)
        assert all_draws == list(range(4 * p))

    def test_read_and_reset(self):
        job = make_job(2, procs_per_node=2)

        def body(rt):
            counter = yield from SharedCounter.create(rt)
            yield from rt.barrier()
            out = None
            if rt.rank == 1:
                yield from counter.next(rt, stride=10)
                value = yield from counter.read(rt)
                old = yield from counter.reset(rt)
                after = yield from counter.read(rt)
                out = (value, old, after)
            yield from rt.barrier()
            return out

        results = job.run(body)
        assert results[1] == (10, 10, 0)

    def test_invalid_host_rejected(self):
        job = make_job(2, procs_per_node=2)

        def body(rt):
            yield from SharedCounter.create(rt, host=5)

        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            job.run(body)


class TestDgemm:
    def test_task_list_covers_all_blocks(self):
        tasks = dgemm_task_list(8, 4)
        assert len(tasks) == 2 * 2 * 2

    def test_parallel_dgemm_matches_numpy(self):
        p = 4
        job = make_job(p)
        rng = np.random.default_rng(7)
        a = rng.random((8, 8))
        b = rng.random((8, 8))

        def body(rt):
            ga_a = yield from GlobalArray.create(rt, (8, 8), name="A")
            ga_b = yield from GlobalArray.create(rt, (8, 8), name="B")
            ga_c = yield from GlobalArray.create(rt, (8, 8), name="C")
            counter = yield from SharedCounter.create(rt)
            ga_c.fill(rt, 0.0)
            yield from rt.barrier()
            if rt.rank == 0:
                yield from ga_a.put(rt, Patch(0, 8, 0, 8), a)
                yield from ga_b.put(rt, Patch(0, 8, 0, 8), b)
                yield from rt.fence_all()
            yield from rt.barrier()
            done = yield from parallel_dgemm(rt, ga_a, ga_b, ga_c, counter, block=4)
            result = None
            if rt.rank == 0:
                result = yield from ga_c.to_numpy(rt)
            yield from rt.barrier()
            return (done, result)

        results = job.run(body)
        total_tasks = sum(r[0] for r in results)
        assert total_tasks == len(dgemm_task_list(8, 4))
        np.testing.assert_allclose(results[0][1], a @ b, rtol=1e-12)

    def test_dgemm_under_both_trackers_same_result(self):
        rng = np.random.default_rng(3)
        a = rng.random((8, 8))
        b = rng.random((8, 8))
        outputs = {}
        fences = {}
        for tracker in ("cs_tgt", "cs_mr"):
            job = make_job(4, config=ArmciConfig(consistency_tracker=tracker))

            def body(rt):
                ga_a = yield from GlobalArray.create(rt, (8, 8))
                ga_b = yield from GlobalArray.create(rt, (8, 8))
                ga_c = yield from GlobalArray.create(rt, (8, 8))
                counter = yield from SharedCounter.create(rt)
                ga_c.fill(rt, 0.0)
                yield from rt.barrier()
                if rt.rank == 0:
                    yield from ga_a.put(rt, Patch(0, 8, 0, 8), a)
                    yield from ga_b.put(rt, Patch(0, 8, 0, 8), b)
                    yield from rt.fence_all()
                yield from rt.barrier()
                yield from parallel_dgemm(rt, ga_a, ga_b, ga_c, counter, block=4)
                result = None
                if rt.rank == 0:
                    result = yield from ga_c.to_numpy(rt)
                yield from rt.barrier()
                return result

            outputs[tracker] = job.run(body)[0]
            fences[tracker] = job.trace.count("armci.fences_forced")
        np.testing.assert_allclose(outputs["cs_tgt"], outputs["cs_mr"])
        # The proposed tracker issues strictly fewer forced fences.
        assert fences["cs_mr"] < fences["cs_tgt"]


class TestCollectiveAlgebra:
    def test_dot_matches_numpy(self):
        import numpy as np

        job = make_job(4)
        rng = np.random.default_rng(11)
        a = rng.random((8, 8))
        b = rng.random((8, 8))

        def body(rt):
            ga_a = yield from GlobalArray.create(rt, (8, 8))
            ga_b = yield from GlobalArray.create(rt, (8, 8))
            yield from rt.barrier()
            if rt.rank == 0:
                yield from ga_a.put(rt, Patch(0, 8, 0, 8), a)
                yield from ga_b.put(rt, Patch(0, 8, 0, 8), b)
                yield from rt.fence_all()
            yield from rt.barrier()
            return (yield from ga_a.dot(rt, ga_b))

        results = job.run(body)
        assert all(r == pytest.approx(float((a * b).sum())) for r in results)

    def test_dot_distribution_mismatch_rejected(self):
        job = make_job(4)

        def body(rt):
            ga_a = yield from GlobalArray.create(rt, (8, 8), grid=(2, 2))
            ga_b = yield from GlobalArray.create(rt, (8, 8), grid=(4, 1))
            yield from ga_a.dot(rt, ga_b)

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="distributions"):
            job.run(body)

    def test_scale(self):
        import numpy as np

        job = make_job(4)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8))
            ga.fill(rt, 2.0)
            yield from rt.barrier()
            yield from ga.scale(rt, 3.0)
            result = None
            if rt.rank == 0:
                result = yield from ga.to_numpy(rt)
            yield from rt.barrier()
            return result

        results = job.run(body)
        np.testing.assert_allclose(results[0], np.full((8, 8), 6.0))

    def test_symmetrize(self):
        import numpy as np

        job = make_job(4)
        rng = np.random.default_rng(5)
        a = rng.random((8, 8))

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8))
            yield from rt.barrier()
            if rt.rank == 0:
                yield from ga.put(rt, Patch(0, 8, 0, 8), a)
                yield from rt.fence_all()
            yield from rt.barrier()
            yield from ga.symmetrize(rt)
            result = None
            if rt.rank == 0:
                result = yield from ga.to_numpy(rt)
            yield from rt.barrier()
            return result

        results = job.run(body)
        np.testing.assert_allclose(results[0], 0.5 * (a + a.T), rtol=1e-12)

    def test_symmetrize_requires_square(self):
        job = make_job(4)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 4))
            yield from ga.symmetrize(rt)

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="square"):
            job.run(body)


class TestIrregularDistribution:
    def test_from_bounds_geometry(self):
        dist = BlockDistribution.from_bounds((0, 2, 10), (0, 5, 6, 10))
        assert dist.rows == 10 and dist.cols == 10
        assert dist.grid_rows == 2 and dist.grid_cols == 3
        assert dist.owner_block(0) == Patch(0, 2, 0, 5)
        assert dist.owner_block(5) == Patch(2, 10, 6, 10)
        assert dist.block_rows == 8  # largest row block
        assert dist.block_cols == 5

    def test_from_bounds_validation(self):
        with pytest.raises(GlobalArrayError):
            BlockDistribution.from_bounds((0,), (0, 4))
        with pytest.raises(GlobalArrayError):
            BlockDistribution.from_bounds((0, 4, 4), (0, 4))  # not increasing
        with pytest.raises(GlobalArrayError):
            BlockDistribution.from_bounds((1, 4), (0, 4))  # must start at 0

    def test_owner_of_with_irregular_bounds(self):
        dist = BlockDistribution.from_bounds((0, 2, 10), (0, 5, 6, 10))
        assert dist.owner_of(0, 0) == 0
        assert dist.owner_of(1, 5) == 1
        assert dist.owner_of(9, 9) == 5
        blk = dist.owner_block(dist.owner_of(3, 5))
        assert blk.row_lo <= 3 < blk.row_hi
        assert blk.col_lo <= 5 < blk.col_hi

    def test_irregular_global_array_roundtrip(self):
        job = make_job(4)
        dist = BlockDistribution.from_bounds((0, 3, 8), (0, 6, 8))
        data = np.arange(64, dtype=np.float64).reshape(8, 8)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8), dist=dist)
            yield from rt.barrier()
            result = None
            if rt.rank == 0:
                yield from ga.put(rt, Patch(0, 8, 0, 8), data)
                yield from rt.fence_all()
                result = yield from ga.to_numpy(rt)
            yield from rt.barrier()
            return result

        results = job.run(body)
        np.testing.assert_array_equal(results[0], data)

    def test_dist_shape_mismatch_rejected(self):
        job = make_job(4)
        dist = BlockDistribution.from_bounds((0, 3, 8), (0, 6, 8))

        def body(rt):
            yield from GlobalArray.create(rt, (9, 9), dist=dist)

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="shape"):
            job.run(body)


class TestWholeArrayOps:
    def test_duplicate_and_copy(self):
        job = make_job(4)
        data = np.arange(64, dtype=np.float64).reshape(8, 8)

        def body(rt):
            ga = yield from GlobalArray.create(rt, (8, 8), name="orig")
            yield from rt.barrier()
            if rt.rank == 0:
                yield from ga.put(rt, Patch(0, 8, 0, 8), data)
                yield from rt.fence_all()
            yield from rt.barrier()
            dup = yield from ga.duplicate(rt)
            yield from dup.copy_from(rt, ga)
            # Mutating the copy leaves the original untouched.
            dup.local_block(rt)[:] += 1.0
            yield from rt.barrier()
            result = None
            if rt.rank == 0:
                orig = yield from ga.to_numpy(rt)
                copy = yield from dup.to_numpy(rt)
                result = (orig, copy)
            yield from rt.barrier()
            return result

        orig, copy = job.run(body)[0]
        np.testing.assert_array_equal(orig, data)
        np.testing.assert_array_equal(copy, data + 1.0)

    def test_add_arrays(self):
        job = make_job(4)

        def body(rt):
            a = yield from GlobalArray.create(rt, (8, 8))
            b = yield from GlobalArray.create(rt, (8, 8))
            c = yield from GlobalArray.create(rt, (8, 8))
            a.fill(rt, 2.0)
            b.fill(rt, 3.0)
            yield from rt.barrier()
            yield from c.add_arrays(rt, 10.0, a, -1.0, b)
            result = None
            if rt.rank == 0:
                result = yield from c.to_numpy(rt)
            yield from rt.barrier()
            return result

        np.testing.assert_allclose(job.run(body)[0], np.full((8, 8), 17.0))

    def test_mismatched_distribution_rejected(self):
        job = make_job(4)

        def body(rt):
            a = yield from GlobalArray.create(rt, (8, 8), grid=(2, 2))
            b = yield from GlobalArray.create(rt, (8, 8), grid=(4, 1))
            yield from a.copy_from(rt, b)

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="identical distributions"):
            job.run(body)
