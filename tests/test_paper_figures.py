"""Fidelity tests for the paper's illustrative figures (1, 2, 10).

Figures 1, 2, and 10 are diagrams, not measurements; these tests build
their exact setups and check the described behaviour.
"""

import numpy as np
import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.gax import GlobalArray, Patch, SharedCounter
from repro.pami import PamiWorld
from repro.types import StridedDescriptor, StridedShape


class TestFigure1:
    """Fig. 1: three processes — P0 and P2 with two communication
    contexts, P1 with one. Heterogeneous context counts are legal in
    PAMI; each context progresses independently."""

    def test_heterogeneous_context_counts(self):
        world = PamiWorld(3, procs_per_node=3)
        counts = {0: 2, 1: 1, 2: 2}

        def init(client):
            for _ in range(counts[client.rank]):
                yield from client.create_context()

        procs = [
            world.engine.spawn(init(c), name=f"i{c.rank}") for c in world.clients
        ]
        world.engine.run_until_complete(procs)
        assert [c.num_contexts for c in world.clients] == [2, 1, 2]
        # Endpoints address any (rank, context) pair that exists.
        assert world.clients[1].progress_context() is world.clients[1].context(0)
        assert world.clients[0].progress_context() is world.clients[0].context(1)

    def test_contexts_progress_independently(self):
        """Work posted to one context is untouched by advancing another."""
        from repro.pami.context import CompletionItem

        world = PamiWorld(1, procs_per_node=1)

        def init(client):
            yield from client.create_context()
            yield from client.create_context()

        world.engine.run_until_complete(
            [world.engine.spawn(init(world.clients[0]), name="i")]
        )
        c0, c1 = world.clients[0].contexts
        ev0, ev1 = world.engine.event(), world.engine.event()
        c0.post(CompletionItem(ev0))
        c1.post(CompletionItem(ev1))

        def advance_c0_only():
            yield from c0.advance()

        world.engine.run_until_complete(
            [world.engine.spawn(advance_c0_only(), name="a")]
        )
        assert ev0.triggered
        assert not ev1.triggered
        assert len(c1.queue) == 1


class TestFigure2:
    """Fig. 2: process P_i writes rectangular patches from its local
    buffer into four processes P_r, P_s, P_t, P_u with strided puts."""

    def test_one_source_four_destination_patches(self):
        job = ArmciJob(5, procs_per_node=5, config=ArmciConfig())
        job.init()
        # 3 rows x 16 bytes per patch, distinct content per destination.
        desc = StridedDescriptor(StridedShape(16, (3,)), (16,), (64,))

        def body(rt):
            alloc = yield from rt.malloc(512)
            yield from rt.barrier()
            if rt.rank == 0:  # P_i
                space = rt.world.space(0)
                for dst in (1, 2, 3, 4):
                    src = space.allocate(48)
                    space.write(src, bytes([dst * 10]) * 48)
                    yield from rt.puts(dst, src, alloc.addr(dst), desc)
                yield from rt.fence_all()
            yield from rt.barrier()
            if rt.rank != 0:
                # Each destination sees its patch rows at stride 64.
                rows = [
                    rt.world.space(rt.rank).read(alloc.addr(rt.rank) + r * 64, 16)
                    for r in range(3)
                ]
                return rows

        results = job.run(body)
        for dst in (1, 2, 3, 4):
            assert results[dst] == [bytes([dst * 10]) * 16] * 3
        # Zero-copy: 4 destinations x 3 chunks = 12 RDMA puts, no packing.
        assert job.trace.count("pami.rdma_puts") == 12
        assert job.trace.count("armci.puts_strided_pack") == 0


class TestFigure10:
    """Fig. 10: the SCF task loop — SharedCounter draw, gets, do_work,
    accumulate — executed literally, with every task done exactly once
    and the Fock matrix receiving every contribution."""

    def test_algorithm_steps_in_order(self):
        job = ArmciJob(4, procs_per_node=4, config=ArmciConfig.async_thread_mode())
        job.init()
        nbf, nblk = 16, 4
        work_log = []

        def body(rt):
            ga_d = yield from GlobalArray.create(rt, (nbf, nbf), name="D")
            ga_f = yield from GlobalArray.create(rt, (nbf, nbf), name="F")
            counter = yield from SharedCounter.create(rt)
            ga_d.fill(rt, 1.0)
            ga_f.fill(rt, 0.0)
            yield from rt.barrier()
            block = nbf // nblk
            ntasks = nblk * nblk
            task = yield from counter.next(rt)            # SharedCounter
            while task < ntasks:
                i, j = divmod(task, nblk)
                patch = Patch(i * block, (i + 1) * block, j * block, (j + 1) * block)
                d = yield from ga_d.get(rt, patch)        # get
                yield from rt.compute(50e-6)              # do_work
                work_log.append((rt.rank, task))
                yield from ga_f.acc(rt, patch, d)         # accumulate
                task = yield from counter.next(rt)
            yield from rt.fence_all()
            yield from rt.barrier()
            result = None
            if rt.rank == 0:
                result = yield from ga_f.to_numpy(rt)
            yield from rt.barrier()
            return result

        results = job.run(body)
        tasks_done = sorted(t for _r, t in work_log)
        assert tasks_done == list(range(16))              # each exactly once
        # Every Fock element got the density contribution (D was all 1s).
        np.testing.assert_allclose(results[0], np.ones((nbf, nbf)))
        # Dynamic balance: with 4 ranks and 16 uniform tasks, nobody hogs.
        by_rank = {r: sum(1 for rr, _t in work_log if rr == r) for r in range(4)}
        assert max(by_rank.values()) <= 8