"""Tests for processor groups and software tree collectives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import ArmciConfig, ArmciJob
from repro.armci.groups import ProcessGroup
from repro.errors import ArmciError


def make_job(num_procs=8, config=None):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig.async_thread_mode(),
        procs_per_node=min(num_procs, 16),
    )
    job.init()
    return job


class TestProcessGroup:
    def test_membership(self):
        g = ProcessGroup((3, 1, 5))
        assert g.size == 3
        assert g.index_of(1) == 1
        assert g.contains(5)
        assert not g.contains(0)
        with pytest.raises(ArmciError):
            g.index_of(0)

    def test_validation(self):
        with pytest.raises(ArmciError):
            ProcessGroup(())
        with pytest.raises(ArmciError):
            ProcessGroup((1, 1))


class TestGroupCollectives:
    def test_allreduce_sum_over_subset(self):
        job = make_job(8)
        members = (1, 3, 4, 6)

        def body(rt):
            group = rt.group(members)
            if rt.rank in members:
                result = yield from rt.group_allreduce(group, float(rt.rank))
                return result
            yield from rt.compute(1e-3)  # non-members do unrelated work

        results = job.run(body)
        expected = float(sum(members))
        for r in members:
            assert results[r] == expected
        assert results[0] is None

    def test_allreduce_max_min(self):
        job = make_job(4)
        members = (0, 1, 2, 3)

        def body(rt):
            group = rt.group(members)
            mx = yield from rt.group_allreduce(group, float(rt.rank), "max")
            mn = yield from rt.group_allreduce(group, float(rt.rank), "min")
            return (mx, mn)

        assert all(r == (3.0, 0.0) for r in job.run(body))

    def test_unknown_op_rejected(self):
        job = make_job(2)

        def body(rt):
            group = rt.group((0, 1))
            yield from rt.group_allreduce(group, 1.0, "median")

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="unknown reduction"):
            job.run(body)

    def test_broadcast_from_default_root(self):
        job = make_job(8)
        members = (2, 5, 7)

        def body(rt):
            group = rt.group(members)
            if rt.rank in members:
                value = f"payload-from-2" if rt.rank == 2 else None
                return (yield from rt.group_broadcast(group, value))
            return None
            yield  # pragma: no cover

        results = job.run(body)
        for r in members:
            assert results[r] == "payload-from-2"

    def test_broadcast_from_explicit_root(self):
        job = make_job(4)
        members = (0, 1, 2, 3)

        def body(rt):
            group = rt.group(members)
            value = rt.rank * 100
            return (yield from rt.group_broadcast(group, value, root_rank=2))

        assert job.run(body) == [200, 200, 200, 200]

    def test_group_barrier_synchronizes_members_only(self):
        job = make_job(6)
        members = (0, 2, 4)
        times = {}

        def body(rt):
            group = rt.group(members)
            if rt.rank in members:
                yield from rt.compute(rt.rank * 10e-6)
                yield from rt.group_barrier(group)
                times[rt.rank] = rt.engine.now
            else:
                yield from rt.compute(1e-6)

        job.run(body)
        latest_arrival = 4 * 10e-6
        for r in members:
            assert times[r] >= latest_arrival

    def test_consecutive_collectives_do_not_crosstalk(self):
        job = make_job(4)
        members = (0, 1, 2, 3)

        def body(rt):
            group = rt.group(members)
            first = yield from rt.group_allreduce(group, 1.0)
            second = yield from rt.group_allreduce(group, 2.0)
            third = yield from rt.group_allreduce(group, float(rt.rank))
            return (first, second, third)

        assert all(r == (4.0, 8.0, 6.0) for r in job.run(body))

    def test_two_disjoint_groups_run_concurrently(self):
        job = make_job(8)
        g_a, g_b = (0, 1, 2, 3), (4, 5, 6, 7)

        def body(rt):
            members = g_a if rt.rank < 4 else g_b
            group = rt.group(members)
            return (yield from rt.group_allreduce(group, float(rt.rank)))

        results = job.run(body)
        assert results[:4] == [6.0] * 4
        assert results[4:] == [22.0] * 4

    def test_singleton_group(self):
        job = make_job(2)

        def body(rt):
            group = rt.group((rt.rank,))
            return (yield from rt.group_allreduce(group, float(rt.rank + 1)))

        assert job.run(body) == [1.0, 2.0]

    @given(n=st.integers(2, 8), seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_allreduce_any_group_size(self, n, seed):
        import random

        rng = random.Random(seed)
        members = tuple(sorted(rng.sample(range(8), n)))
        job = make_job(8)

        def body(rt):
            group = rt.group(members)
            if rt.rank in members:
                return (yield from rt.group_allreduce(group, float(rt.rank)))
            return None
            yield  # pragma: no cover

        results = job.run(body)
        for r in members:
            assert results[r] == float(sum(members))
