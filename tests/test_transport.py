"""Tests for the subsurface-transport (advection-diffusion) proxy."""

import numpy as np
import pytest

from repro.apps.transport import (
    TransportConfig,
    reference_solve,
    run_transport,
)
from repro.apps.transport.solver import initial_condition
from repro.armci import ArmciConfig
from repro.errors import ReproError


class TestConfig:
    def test_defaults_stable(self):
        TransportConfig()

    def test_tiny_grid_rejected(self):
        with pytest.raises(ReproError):
            TransportConfig(nx=2, ny=10)

    def test_unstable_dt_rejected(self):
        with pytest.raises(ReproError):
            TransportConfig(dt=10.0)

    def test_zero_steps_rejected(self):
        with pytest.raises(ReproError):
            TransportConfig(steps=0)


class TestReference:
    def test_initial_condition_is_normalized_blob(self):
        cfg = TransportConfig(nx=32, ny=32, steps=1)
        u0 = initial_condition(cfg)
        assert u0.shape == (32, 32)
        assert u0.max() == pytest.approx(1.0, abs=0.01)
        assert u0.min() >= 0.0

    def test_diffusion_spreads_and_decays_peak(self):
        cfg = TransportConfig(nx=32, ny=32, vx=0.0, vy=0.0, steps=30)
        u = reference_solve(cfg)
        assert u.max() < initial_condition(cfg).max()
        assert u.min() >= -1e-12  # diffusion never goes negative

    def test_advection_moves_the_blob(self):
        cfg = TransportConfig(
            nx=48, ny=48, diffusivity=0.01, vx=0.8, vy=0.0, steps=40
        )
        u0 = initial_condition(cfg)
        u = reference_solve(cfg)
        # Center of mass moves along +x (rows).
        rows = np.arange(48)
        com0 = (u0.sum(axis=1) * rows).sum() / u0.sum()
        com1 = (u.sum(axis=1) * rows).sum() / u.sum()
        assert com1 > com0 + 1.0


class TestParallelMatchesReference:
    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_exact_match(self, procs):
        cfg = TransportConfig(nx=24, ny=24, steps=8)
        expected = reference_solve(cfg)
        result = run_transport(procs, cfg, procs_per_node=max(1, procs))
        np.testing.assert_allclose(result.final, expected, rtol=1e-13, atol=1e-15)

    def test_halo_gets_counted(self):
        cfg = TransportConfig(nx=24, ny=24, steps=4)
        result = run_transport(4, cfg, procs_per_node=4)
        # 2x2 grid: every rank reads 2 interior strips per step.
        assert result.halo_get_count == 4 * 2 * 4

    def test_runs_under_all_armci_configs(self):
        cfg = TransportConfig(nx=16, ny=16, steps=3)
        expected = reference_solve(cfg)
        for armci in (
            ArmciConfig.default_mode(),
            ArmciConfig.async_thread_mode(),
            ArmciConfig(use_rdma=False),
            ArmciConfig(strided_protocol="pack"),
        ):
            result = run_transport(4, cfg, armci_config=armci, procs_per_node=4)
            np.testing.assert_allclose(result.final, expected, rtol=1e-13)

    def test_mass_nearly_conserved_without_advection(self):
        """Interior diffusion conserves mass until the blob reaches the
        absorbing boundary."""
        cfg = TransportConfig(nx=40, ny=40, vx=0.0, vy=0.0, steps=10)
        result = run_transport(4, cfg, procs_per_node=4)
        assert result.mass_final == pytest.approx(result.mass_initial, rel=0.05)
