"""Unit tests for the LogGP and complexity models (Eqs. 1-9, Tables I/II)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.machine import BGQParams
from repro.model import (
    Attributes,
    ComplexityModel,
    LogGPModel,
    TABLE_I_ROWS,
    table_ii_attributes,
)


class TestLogGP:
    def setup_method(self):
        self.model = LogGPModel(o=1e-6, L=0.5e-6, G=1 / 1.775e9)

    def test_eq7_rdma_closed_form(self):
        m = 1024
        expected = 1e-6 + 0.5e-6 + (m - 1) / 1.775e9
        assert self.model.t_rdma(m) == pytest.approx(expected)

    def test_eq8_fallback_adds_remote_overhead(self):
        m = 1024
        assert self.model.t_fallback(m) - self.model.t_rdma(m) == pytest.approx(1e-6)

    def test_eq9_strided_inverse_in_chunk_size(self):
        m = 1 << 20
        t_small = self.model.t_strided(m, 1024)
        t_large = self.model.t_strided(m, 64 * 1024)
        assert t_small > t_large
        # Chunk-overhead term scales exactly with chunk count.
        assert self.model.t_strided(m, 1024) - m * self.model.G == pytest.approx(
            (m // 1024) * self.model.o
        )

    def test_eq9_contiguous_limit_matches_rdma_asymptote(self):
        """With one chunk, strided cost is o + mG (Eq. 7 minus latency)."""
        m = 1 << 20
        assert self.model.t_strided(m, m) == pytest.approx(self.model.o + m * self.model.G)

    def test_strided_efficiency_bounds(self):
        m = 1 << 20
        eff = self.model.strided_efficiency(m, m)
        assert 0.99 < eff <= 1.0
        assert self.model.strided_efficiency(m, 16) < 0.05

    def test_invalid_message_sizes_rejected(self):
        with pytest.raises(ReproError):
            self.model.t_rdma(0)
        with pytest.raises(ReproError):
            self.model.t_strided(1024, 100)  # not a divisor
        with pytest.raises(ReproError):
            self.model.t_strided(1024, 0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError):
            LogGPModel(o=-1e-6, L=0, G=1e-9)
        with pytest.raises(ReproError):
            LogGPModel(o=0, L=0, G=0)

    @given(
        m_exp=st.integers(4, 20),
        l0_exp=st.integers(0, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_fallback_dominates_rdma_everywhere(self, m_exp, l0_exp):
        """T_fallback in Omega(T_rdma): Eq. 8 >= Eq. 7 for all sizes."""
        m = 1 << m_exp
        assert self.model.t_fallback(m) >= self.model.t_rdma(m)
        if l0_exp <= m_exp:
            l0 = 1 << l0_exp
            # More chunks can never be faster.
            assert self.model.t_strided(m, l0) >= self.model.t_strided(m, m)


class TestComplexity:
    def test_table_i_has_13_rows_with_unique_symbols(self):
        assert len(TABLE_I_ROWS) == 13
        symbols = [row[2] for row in TABLE_I_ROWS]
        assert len(set(symbols)) == 13

    def test_table_ii_defaults_match_paper(self):
        a = table_ii_attributes()
        assert a.alpha == 4
        assert a.beta == pytest.approx(0.3e-6)
        assert a.gamma == 8
        assert a.delta == pytest.approx(43e-6)
        assert a.rho == 1
        assert a.t_ctx == pytest.approx(3821e-6)

    def test_table_ii_second_context_time(self):
        a = table_ii_attributes(rho=2)
        assert a.t_ctx == pytest.approx(4271e-6)

    def test_eq1_eq2_context_complexity(self):
        model = ComplexityModel(table_ii_attributes(rho=2))
        assert model.context_space() == 2 * BGQParams().context_space
        assert model.context_time() == pytest.approx(2 * 4271e-6)

    def test_eq3_eq4_endpoint_complexity(self):
        model = ComplexityModel(table_ii_attributes(zeta=4096, rho=1))
        assert model.endpoint_space() == 4096 * 4
        assert model.endpoint_time() == pytest.approx(4096 * 0.3e-6)

    def test_eq5_eq6_memregion_complexity(self):
        model = ComplexityModel(table_ii_attributes(zeta=1000, sigma=7, tau=3))
        assert model.memregion_space() == 3 * 8 + 7 * 1000 * 8
        assert model.memregion_time() == pytest.approx((3 + 7) * 43e-6)

    def test_strong_scaling_motivates_region_cache(self):
        """At zeta ~ p = 4096 and sigma = 7, cached regions dominate the
        setup footprint — the paper's argument for a bounded LFU cache."""
        full = ComplexityModel(table_ii_attributes(zeta=4096, sigma=7, tau=3))
        # sigma*zeta*gamma = 7*4096*8 dominates: 14x the endpoint table.
        assert full.memregion_space() > 10 * full.endpoint_space()
        # And it grows linearly with p while tau*gamma stays constant.
        half = ComplexityModel(table_ii_attributes(zeta=2048, sigma=7, tau=3))
        assert full.memregion_space() - full.attrs.tau * full.attrs.gamma == 2 * (
            half.memregion_space() - half.attrs.tau * half.attrs.gamma
        )

    def test_totals_are_sums(self):
        model = ComplexityModel(table_ii_attributes(zeta=10, sigma=2, tau=1))
        assert model.total_space() == (
            model.context_space() + model.endpoint_space() + model.memregion_space()
        )
        assert model.total_time() == pytest.approx(
            model.context_time() + model.endpoint_time() + model.memregion_time()
        )

    def test_invalid_attributes_rejected(self):
        with pytest.raises(ReproError):
            Attributes(
                alpha=4, beta=0.3e-6, gamma=8, delta=43e-6, epsilon=1024,
                t_ctx=3821e-6, rho=0, zeta=1, sigma=1, tau=1,
            )
        with pytest.raises(ReproError):
            Attributes(
                alpha=4, beta=0.3e-6, gamma=8, delta=43e-6, epsilon=1024,
                t_ctx=3821e-6, rho=1, zeta=-1, sigma=1, tau=1,
            )

    @given(
        zeta=st.integers(0, 10000),
        sigma=st.integers(0, 7),
        tau=st.integers(0, 3),
        rho=st.integers(1, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_space_monotone_in_every_attribute(self, zeta, sigma, tau, rho):
        base = ComplexityModel(table_ii_attributes(zeta=zeta, sigma=sigma, tau=tau, rho=rho))
        bigger = ComplexityModel(
            table_ii_attributes(zeta=zeta + 1, sigma=sigma + 1, tau=tau + 1, rho=rho)
        )
        assert bigger.total_space() >= base.total_space()
        assert bigger.total_time() >= base.total_time()
