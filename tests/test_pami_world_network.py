"""Additional unit tests: PamiWorld plumbing and network edge cases."""

import pytest

from repro.errors import PamiError
from repro.machine import BGQParams, TorusNetwork
from repro.pami import PamiWorld
from repro.sim import Engine
from repro.topology import RankMapping, Torus

from .conftest import build_world


class TestWorldPlumbing:
    def test_explicit_mapping_must_fit(self):
        small = RankMapping(Torus((2, 1, 1, 1, 1)), 1, order="ABCDET")
        with pytest.raises(PamiError, match="slots"):
            PamiWorld(4, mapping=small)

    def test_nic_amo_slot_serializes(self):
        world = PamiWorld(2, procs_per_node=1)
        first = world.nic_amo_slot(0, arrive=1e-6, service=50e-9)
        second = world.nic_amo_slot(0, arrive=1e-6, service=50e-9)
        assert second == pytest.approx(first + 50e-9)
        # A different rank's NIC is independent.
        other = world.nic_amo_slot(1, arrive=1e-6, service=50e-9)
        assert other == pytest.approx(first)

    def test_small_jobs_shrink_procs_per_node(self):
        # 2 procs at 16/node fit on one node without error.
        world = PamiWorld(2, procs_per_node=16)
        assert world.mapping.num_ranks == 2

    def test_trace_shared_between_network_and_world(self):
        world = build_world(num_procs=2, procs_per_node=1)
        assert world.network.trace is world.trace


class TestNetworkEdgeCases:
    def _net(self, **kwargs):
        eng = Engine()
        mapping = RankMapping(Torus((4, 1, 1, 1, 1)), 1, order="ABCDET")
        return eng, TorusNetwork(eng, mapping, BGQParams(), **kwargs)

    def test_injection_fifo_shared_across_destinations(self):
        """One source's messages to different targets serialize at its
        own NIC."""
        eng, net = self._net()
        a = net.put_timing(0, 1, 65536)
        b = net.put_timing(0, 2, 65536)
        assert b.inject_start == pytest.approx(a.inject_done)

    def test_get_data_serializes_at_target_nic(self):
        """Two ranks getting from the same target share its return path."""
        eng, net = self._net()
        a = net.get_timing(1, 0, 65536)
        b = net.get_timing(2, 0, 65536)
        assert b.inject_start >= a.inject_done

    def test_extra_occupancy_extends_injection(self):
        eng, net = self._net()
        plain = net.put_timing(0, 1, 1024)
        eng2, net2 = self._net()
        typed = net2.put_timing(0, 1, 1024, extra_occupancy=5e-6)
        assert typed.inject_done - typed.inject_start == pytest.approx(
            (plain.inject_done - plain.inject_start) + 5e-6
        )

    def test_idle_gap_resets_pipeline(self):
        """After the FIFO drains, a later message starts immediately."""
        eng, net = self._net()
        a = net.put_timing(0, 1, 65536)
        eng.schedule(a.inject_done + 1e-3, lambda _: None)
        eng.run()
        b = net.put_timing(0, 1, 1024)
        assert b.inject_start == pytest.approx(eng.now)

    def test_route_links_cached(self):
        eng, net = self._net(link_contention=True)
        net.put_timing(0, 2, 1024)
        net.put_timing(0, 2, 1024)
        # (0->1), (1->2) reserved twice each.
        assert net.trace.count("net.link_reservations") == 4

    def test_hops_cache_consistent_with_mapping(self):
        eng, net = self._net()
        for src in range(4):
            for dst in range(4):
                assert net.hops(src, dst) == net.mapping.hops(src, dst)


class TestAsyncProgressAccounting:
    def test_async_thread_counts_serviced_items(self):
        from repro.armci import ArmciConfig, ArmciJob

        job = ArmciJob(2, procs_per_node=1, config=ArmciConfig.async_thread_mode())
        job.init()

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank == 0:
                for _ in range(5):
                    yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
                yield from rt.barrier()
                return
            # Rank 1 computes: only its async thread can service.
            yield from rt.compute(500e-6)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.async_threads_started") == 2
        assert job.trace.count("armci.async_thread_serviced") >= 5
        assert job.world.space(1).read_i64(
            job.directory.allocation(0).addr(1)
        ) == 5

    def test_context_busy_time_accumulates(self):
        world = build_world(num_procs=1, procs_per_node=1)
        ctx = world.clients[0].context(0)
        from repro.pami.context import CompletionItem

        for _ in range(10):
            ctx.post(CompletionItem(world.engine.event()))

        def body():
            yield from ctx.advance()

        world.engine.run_until_complete([world.engine.spawn(body(), name="a")])
        assert ctx.busy_time > 0
