"""Integration tests for the ARMCI communication protocols."""

import numpy as np
import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.errors import ArmciError
from repro.types import StridedDescriptor, StridedShape

#: Conformance suite: every test in this module runs once per backend
#: (the ``backend`` fixture re-points ``repro.transport.DEFAULT_BACKEND``).
pytestmark = pytest.mark.usefixtures("backend")


def make_job(num_procs=2, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=kwargs.pop("procs_per_node", 1),
        **kwargs,
    )
    job.init()
    return job


class TestContiguous:
    def test_blocking_put_get_roundtrip(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(256)
            if rt.rank == 0:
                src = rt.world.space(0).allocate(256)
                rt.world.space(0).write(src, bytes(range(256)))
                yield from rt.put(1, src, alloc.addr(1), 256)
                yield from rt.fence(1)
            yield from rt.barrier()
            if rt.rank == 0:
                back = rt.world.space(0).allocate(256)
                yield from rt.get(1, back, alloc.addr(1), 256)
                return rt.world.space(0).read(back, 256)
            return None

        results = job.run(body)
        assert results[0] == bytes(range(256))

    def test_rdma_path_used_when_registered(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(128)
            if rt.rank == 0:
                src = rt.world.space(0).allocate(128)
                yield from rt.put(1, src, alloc.addr(1), 128)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.put_rdma") == 1
        assert job.trace.count("armci.put_fallback") == 0

    def test_fallback_when_rdma_disabled(self):
        job = make_job(config=ArmciConfig(use_rdma=False))

        def body(rt):
            alloc = yield from rt.malloc(128)
            result = None
            if rt.rank == 0:
                src = rt.world.space(0).allocate(128)
                rt.world.space(0).write(src, b"\xab" * 128)
                yield from rt.put(1, src, alloc.addr(1), 128)
                dst = rt.world.space(0).allocate(128)
                yield from rt.get(1, dst, alloc.addr(1), 128)
                result = rt.world.space(0).read(dst, 128)
            yield from rt.barrier()
            return result

        results = job.run(body)
        assert results[0] == b"\xab" * 128
        assert job.trace.count("armci.put_fallback") == 1
        assert job.trace.count("armci.get_fallback") == 1
        assert job.trace.count("armci.put_rdma") == 0

    def test_fallback_when_region_budget_exhausted(self):
        """Region-create failure at scale triggers the AM fall-back."""
        job = make_job(max_regions=0)

        def body(rt):
            alloc = yield from rt.malloc(128)
            if rt.rank == 0:
                src = rt.world.space(0).allocate(128)
                rt.world.space(0).write(src, b"Z" * 128)
                yield from rt.put(1, src, alloc.addr(1), 128)
                yield from rt.fence(1)
            yield from rt.barrier()
            return rt.world.space(rt.rank).read(alloc.addr(rt.rank), 1)

        results = job.run(body)
        assert results[1] == b"Z"
        assert job.trace.count("armci.put_fallback") == 1
        assert job.trace.count("armci.malloc_region_failed") == 2

    def test_nonblocking_puts_overlap(self):
        """Several nbputs posted back-to-back all complete after wait_all."""
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(1024)
            if rt.rank == 0:
                src = rt.world.space(0).allocate(1024)
                rt.world.space(0).write(src, bytes([7]) * 1024)
                for i in range(4):
                    yield from rt.nbput(1, src + i * 256, alloc.addr(1) + i * 256, 256)
                yield from rt.wait_all()
                yield from rt.fence(1)
            yield from rt.barrier()
            return rt.world.space(rt.rank).read(alloc.addr(rt.rank), 1024)

        results = job.run(body)
        assert results[1] == bytes([7]) * 1024

    def test_get_latency_close_to_paper_adjacent(self):
        """Warmed-up blocking get of 16 B lands near 2.89 us."""
        job = make_job(num_procs=2, procs_per_node=1)

        def body(rt):
            alloc = yield from rt.malloc(64)
            result = None
            if rt.rank == 0:
                local = rt.world.space(0).allocate(64)
                yield from rt.get(1, local, alloc.addr(1), 16)  # warm caches
                t0 = rt.engine.now
                yield from rt.get(1, local, alloc.addr(1), 16)
                result = rt.engine.now - t0
            yield from rt.barrier()
            return result

        results = job.run(body)
        assert results[0] == pytest.approx(2.89e-6, rel=0.2)

    def test_region_query_cached_after_first_use(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(64)
            if rt.rank == 0:
                local = rt.world.space(0).allocate(64)
                for _ in range(5):
                    yield from rt.get(1, local, alloc.addr(1), 16)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.region_cache_misses") == 1
        assert job.trace.count("armci.region_cache_hits") == 4


class TestStrided:
    def _descriptor(self):
        # 4 chunks of 64 B: source packed every 64 B, dest every 256 B.
        return StridedDescriptor(
            StridedShape(64, (4,)), src_strides=(64,), dst_strides=(256,)
        )

    def _run_roundtrip(self, config):
        job = make_job(config=config)
        desc = self._descriptor()

        def body(rt):
            alloc = yield from rt.malloc(2048)
            result = None
            if rt.rank == 0:
                src = rt.world.space(0).allocate(256)
                rt.world.space(0).write(src, bytes(range(256)))
                yield from rt.puts(1, src, alloc.addr(1), desc)
                yield from rt.fence(1)
                back = rt.world.space(0).allocate(256)
                yield from rt.gets(1, back, alloc.addr(1), desc)
                result = rt.world.space(0).read(back, 256)
            yield from rt.barrier()
            return result

        results = job.run(body)
        return job, results[0]

    def test_zero_copy_roundtrip(self):
        job, data = self._run_roundtrip(ArmciConfig(strided_protocol="zero_copy"))
        assert data == bytes(range(256))
        assert job.trace.count("armci.puts_strided_zero_copy") == 1
        assert job.trace.count("pami.rdma_puts") == 4

    def test_pack_roundtrip(self):
        job, data = self._run_roundtrip(ArmciConfig(strided_protocol="pack"))
        assert data == bytes(range(256))
        assert job.trace.count("armci.puts_strided_pack") == 1
        assert job.trace.count("pami.rdma_puts") == 0

    def test_auto_uses_typed_for_tall_skinny(self):
        config = ArmciConfig(strided_protocol="auto", tall_skinny_threshold=128)
        job, data = self._run_roundtrip(config)
        assert data == bytes(range(256))  # 64 B chunks < 128 => typed
        assert job.trace.count("armci.puts_strided_typed") == 1

    def test_auto_uses_zero_copy_for_wide_chunks(self):
        config = ArmciConfig(strided_protocol="auto", tall_skinny_threshold=16)
        job, data = self._run_roundtrip(config)
        assert data == bytes(range(256))
        assert job.trace.count("armci.puts_strided_zero_copy") == 1

    def test_zero_copy_faster_than_pack_for_large_chunks(self):
        """Eq. 9 vs legacy: zero-copy avoids pack/unpack and remote o."""
        desc = StridedDescriptor(
            StridedShape(64 * 1024, (8,)), src_strides=(64 * 1024,),
            dst_strides=(64 * 1024,),
        )
        times = {}
        for proto in ("zero_copy", "pack"):
            job = make_job(config=ArmciConfig(strided_protocol=proto))

            def body(rt, desc=desc):
                alloc = yield from rt.malloc(1024 * 1024)
                result = None
                if rt.rank == 0:
                    src = rt.world.space(0).allocate(512 * 1024)
                    t0 = rt.engine.now
                    yield from rt.puts(1, src, alloc.addr(1), desc)
                    yield from rt.fence(1)
                    result = rt.engine.now - t0
                yield from rt.barrier()
                return result

            times[proto] = job.run(body)[0]
        assert times["zero_copy"] < times["pack"]

    def test_2d_descriptor_roundtrip(self):
        """A 3x2 lattice of 32-byte chunks survives put+get."""
        desc = StridedDescriptor(
            StridedShape(32, (3, 2)),
            src_strides=(32, 96),
            dst_strides=(64, 512),
        )
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(4096)
            result = None
            if rt.rank == 0:
                src = rt.world.space(0).allocate(192)
                rt.world.space(0).write(src, bytes(range(192)))
                yield from rt.puts(1, src, alloc.addr(1), desc)
                yield from rt.fence(1)
                back = rt.world.space(0).allocate(192)
                yield from rt.gets(1, back, alloc.addr(1), desc)
                result = rt.world.space(0).read(back, 192)
            yield from rt.barrier()
            return result

        assert job.run(body)[0] == bytes(range(192))


class TestAccumulate:
    def test_accumulate_adds_scaled_values(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(64)
            if rt.rank == 1:
                rt.world.space(1).write_f64(alloc.addr(1), np.arange(8.0))
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(64)
                rt.world.space(0).write_f64(src, np.ones(8))
                yield from rt.acc(1, src, alloc.addr(1), 64, scale=2.0)
                yield from rt.fence(1)
            yield from rt.barrier()
            if rt.rank == 1:
                return rt.world.space(1).read_f64(alloc.addr(1), 8)

        results = job.run(body)
        np.testing.assert_allclose(results[1], np.arange(8.0) + 2.0)

    def test_concurrent_accumulates_all_land(self):
        """Accumulate atomicity: contributions from all ranks sum exactly."""
        p = 8
        job = make_job(num_procs=p, procs_per_node=4)

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank != 0:
                src = rt.world.space(rt.rank).allocate(64)
                rt.world.space(rt.rank).write_f64(src, np.full(8, float(rt.rank)))
                yield from rt.acc(0, src, alloc.addr(0), 64)
                yield from rt.fence(0)
            yield from rt.barrier()
            if rt.rank == 0:
                return rt.world.space(0).read_f64(alloc.addr(0), 8)

        results = job.run(body)
        expected = float(sum(range(1, p)))
        np.testing.assert_allclose(results[0], np.full(8, expected))

    def test_accumulate_requires_whole_doubles(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(64)
            if rt.rank == 0:
                src = rt.world.space(0).allocate(64)
                yield from rt.acc(1, src, alloc.addr(1), 12)
            yield from rt.barrier()

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="whole float64"):
            job.run(body)


class TestRmwAndLocks:
    def test_rmw_swap(self):
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(64)
            if rt.rank == 1:
                rt.world.space(1).write_i64(alloc.addr(1), 555)
            yield from rt.barrier()
            old = None
            if rt.rank == 0:
                old = yield from rt.rmw(1, alloc.addr(1), "swap", 777)
            yield from rt.barrier()
            return old

        results = job.run(body)
        assert results[0] == 555
        assert job.world.space(1).read_i64(
            job.directory.allocation(0).addr(1)
        ) == 777

    def test_shared_counter_distinct_tickets(self):
        p = 8
        job = make_job(num_procs=p, procs_per_node=4)

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            tickets = []
            for _ in range(3):
                old = yield from rt.rmw(0, alloc.addr(0), "fetch_add", 1)
                tickets.append(old)
            yield from rt.barrier()
            return tickets

        results = job.run(body)
        all_tickets = sorted(t for ts in results for t in ts)
        assert all_tickets == list(range(3 * p))

    def test_mutex_mutual_exclusion(self):
        p = 4
        job = make_job(num_procs=p, procs_per_node=2)
        in_section = {"count": 0, "max": 0}

        def body(rt):
            yield from rt.barrier()
            for _ in range(2):
                yield from rt.lock(0)
                in_section["count"] += 1
                in_section["max"] = max(in_section["max"], in_section["count"])
                yield from rt.compute(5e-6)
                in_section["count"] -= 1
                yield from rt.unlock(0)
            yield from rt.barrier()

        job.run(body)
        assert in_section["max"] == 1
        assert job.trace.count("armci.locks_acquired") == 2 * p
        assert job.trace.count("armci.locks_released") == 2 * p

    def test_unlock_not_held_fails(self):
        job = make_job()

        def body(rt):
            if rt.rank == 0:
                yield from rt.unlock(0)
            yield from rt.barrier()

        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            job.run(body)


class TestCollectives:
    def test_barrier_synchronizes_ranks(self):
        job = make_job(num_procs=4, procs_per_node=2)

        def body(rt):
            yield from rt.compute(rt.rank * 1e-5)
            yield from rt.barrier()
            return rt.engine.now

        results = job.run(body)
        assert len(set(results)) == 1  # all released together

    def test_allreduce_ops(self):
        job = make_job(num_procs=4, procs_per_node=2)

        def body(rt):
            s = yield from rt.allreduce(float(rt.rank + 1), "sum")
            mx = yield from rt.allreduce(float(rt.rank), "max")
            mn = yield from rt.allreduce(float(rt.rank), "min")
            return (s, mx, mn)

        results = job.run(body)
        assert all(r == (10.0, 3.0, 0.0) for r in results)

    def test_malloc_returns_all_addresses(self):
        job = make_job(num_procs=3, procs_per_node=3)

        def body(rt):
            alloc = yield from rt.malloc(128)
            return sorted(alloc.addresses)

        results = job.run(body)
        assert all(r == [0, 1, 2] for r in results)

    def test_malloc_bad_size_rejected(self):
        job = make_job()

        def body(rt):
            yield from rt.malloc(0)

        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="positive"):
            job.run(body, ranks=[0])

    def test_run_before_init_rejected(self):
        job = ArmciJob(num_procs=1, procs_per_node=1)
        with pytest.raises(ArmciError, match="init"):
            job.run(lambda rt: iter(()))

    def test_double_init_rejected(self):
        job = make_job()
        with pytest.raises(ArmciError, match="already"):
            job.init()


class TestRegionRegistrationRegression:
    def test_growing_requests_on_same_buffer_reuse_registration(self):
        """Regression: a request larger than a prior request on the same
        buffer must reuse the segment's registration, never attempt an
        overlapping create (found via the strided local-extent path)."""
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(8192)
            if rt.rank == 0:
                buf = rt.world.space(0).allocate(4096)
                yield from rt.put(1, buf, alloc.addr(1), 16)
                yield from rt.put(1, buf, alloc.addr(1), 4096)  # larger
                yield from rt.fence(1)
            yield from rt.barrier()

        job.run(body)
        # One registration for the user buffer (plus one from malloc).
        assert len(job.world.regions[0]) == 2
