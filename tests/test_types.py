"""Unit tests for strided shapes and descriptors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArmciError
from repro.types import StridedDescriptor, StridedShape


class TestStridedShape:
    def test_contiguous(self):
        s = StridedShape.contiguous(4096)
        assert s.num_chunks == 1
        assert s.total_bytes == 4096
        assert s.ndim == 1

    def test_multidimensional(self):
        s = StridedShape(64, (4, 3))
        assert s.num_chunks == 12
        assert s.total_bytes == 64 * 12
        assert s.ndim == 3

    def test_from_lengths_matches_paper_notation(self):
        # m = l0 * l1 * l2 with l0 the contiguous chunk.
        s = StridedShape.from_lengths([128, 5, 2])
        assert s.chunk_bytes == 128
        assert s.counts == (5, 2)
        assert s.total_bytes == 128 * 10

    def test_from_lengths_empty_rejected(self):
        with pytest.raises(ArmciError):
            StridedShape.from_lengths([])

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ArmciError):
            StridedShape(0)
        with pytest.raises(ArmciError):
            StridedShape(8, (0,))

    @given(
        chunk=st.integers(1, 1024),
        counts=st.lists(st.integers(1, 8), max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_is_product(self, chunk, counts):
        s = StridedShape(chunk, tuple(counts))
        expected = chunk
        for c in counts:
            expected *= c
        assert s.total_bytes == expected


class TestStridedDescriptor:
    def test_contiguous_has_single_zero_offset(self):
        d = StridedDescriptor(StridedShape.contiguous(64), (), ())
        assert d.chunk_offsets("src") == [0]
        assert d.chunk_offsets("dst") == [0]

    def test_1d_offsets(self):
        d = StridedDescriptor(StridedShape(16, (3,)), (32,), (64,))
        assert d.chunk_offsets("src") == [0, 32, 64]
        assert d.chunk_offsets("dst") == [0, 64, 128]

    def test_2d_offsets_row_major(self):
        d = StridedDescriptor(
            StridedShape(8, (2, 2)), (16, 100), (8, 50)
        )
        assert d.chunk_offsets("src") == [0, 16, 100, 116]
        assert d.chunk_offsets("dst") == [0, 8, 50, 58]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ArmciError):
            StridedDescriptor(StridedShape(8, (2,)), (16, 32), (16,))

    def test_overlapping_innermost_stride_rejected(self):
        with pytest.raises(ArmciError):
            StridedDescriptor(StridedShape(64, (4,)), (32,), (64,))

    @given(
        chunk=st.integers(1, 64),
        counts=st.lists(st.integers(1, 5), min_size=1, max_size=3),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_offsets_count_and_uniqueness(self, chunk, counts, data):
        strides = []
        span = chunk
        for c in counts:
            stride = data.draw(st.integers(span, span * 3))
            strides.append(stride)
            span = stride * c
        d = StridedDescriptor(
            StridedShape(chunk, tuple(counts)), tuple(strides), tuple(strides)
        )
        offsets = d.chunk_offsets("src")
        assert len(offsets) == d.shape.num_chunks
        assert len(set(offsets)) == len(offsets)
        # Chunks never overlap under these widely-spaced strides.
        ordered = sorted(offsets)
        assert all(b - a >= chunk for a, b in zip(ordered, ordered[1:]))


def test_nonpositive_strides_rejected():
    with pytest.raises(ArmciError, match="positive"):
        StridedDescriptor(StridedShape(8, (2,)), (0,), (16,))
    with pytest.raises(ArmciError, match="positive"):
        StridedDescriptor(StridedShape(8, (2,)), (16,), (-8,))


def test_strided_metadata_much_smaller_than_iovector():
    """Section III-C.2: the uniformly-strided descriptor costs O(dims)
    metadata while the equivalent general I/O vector costs O(chunks)."""
    from repro.armci.vector import IoVector

    desc = StridedDescriptor(StridedShape(64, (128,)), (64,), (128,))
    vec = IoVector(
        tuple(range(0x1000, 0x1000 + 128 * 64, 64)),
        tuple(range(0x9000, 0x9000 + 128 * 128, 128)),
        tuple([64] * 128),
    )
    assert desc.shape.total_bytes == vec.total_bytes
    assert desc.metadata_bytes() * 50 < vec.metadata_bytes()
