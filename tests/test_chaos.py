"""Tests for chaos injection and the retry/backoff recovery layer.

Covers the fault-injection contract end to end: configuration
validation, zero overhead when disabled, transient faults absorbed by
the ARMCI retry layer with exactly-once semantics, retry-budget
exhaustion, fault-tolerant collectives under scheduled crashes, and a
full NWChem SCF run completing under seeded packet loss.
"""

import dataclasses

import numpy as np
import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.chaos import ChaosConfig, ChaosEngine, ChaosError, FaultPlan, RankCrash
from repro.errors import (
    ProcessFailedError,
    RetryExhaustedError,
    TransientFaultError,
)
from repro.pami.faults import FAULT_DETECT_DELAY


def chaos_job(num_procs=2, config=None, chaos=None, fault_plan=None, **kw):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig.async_thread_mode(),
        procs_per_node=1,
        chaos=chaos,
        fault_plan=fault_plan,
        **kw,
    )
    job.init()
    return job


class TestChaosConfig:
    def test_defaults_disabled(self):
        assert not ChaosConfig().enabled

    def test_enabled_by_any_probability(self):
        assert ChaosConfig(drop_prob=0.1).enabled
        assert ChaosConfig(corrupt_prob=0.1).enabled
        assert ChaosConfig(dup_prob=0.1).enabled
        assert ChaosConfig(jitter_prob=0.1, jitter_max=1e-6).enabled
        # Jitter probability without amplitude injects nothing.
        assert not ChaosConfig(jitter_prob=0.5).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_prob": -0.1},
            {"drop_prob": 1.5},
            {"corrupt_prob": 2.0},
            {"dup_prob": -1.0},
            {"jitter_prob": 1.01},
            {"drop_prob": 0.6, "corrupt_prob": 0.6},
            {"jitter_max": -1e-6},
            {"detect_delay": -1.0},
            {"retransmit_delay": 0.0},
            {"max_retransmits": -1},
            {"links": frozenset({(0, 1, 2)})},
            {"links": frozenset({(-1, 0)})},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ChaosError):
            ChaosConfig(**kwargs)

    def test_rank_crash_validation(self):
        with pytest.raises(ChaosError):
            RankCrash(-1, 1e-3)
        with pytest.raises(ChaosError):
            RankCrash(0, -1e-3)

    def test_fault_plan_chains(self):
        plan = FaultPlan().crash(2, at=1e-3).crash(5, at=2e-3)
        assert [(c.rank, c.at) for c in plan.crashes] == [(2, 1e-3), (5, 2e-3)]

    def test_crash_rank_out_of_range_rejected(self):
        from repro.errors import ArmciError

        with pytest.raises(ArmciError):
            chaos_job(2, fault_plan=FaultPlan().crash(7, at=1e-3))


class TestChaosEngineUnit:
    def test_seed_determinism(self):
        cfg = ChaosConfig(drop_prob=0.3, corrupt_prob=0.1)

        class _Trace:
            def incr(self, *a, **k):
                pass

        rolls = []
        for _rep in range(2):
            eng = ChaosEngine(cfg, _Trace())
            rolls.append(
                [eng.transfer_fault(0, 1, "put") for _i in range(64)]
            )
        assert rolls[0] == rolls[1]

    def test_link_filter(self):
        cfg = ChaosConfig(drop_prob=1.0, links=frozenset({(0, 1)}))

        class _Trace:
            def incr(self, *a, **k):
                pass

        eng = ChaosEngine(cfg, _Trace())
        assert eng.transfer_fault(1, 0, "put") is None
        assert eng.transfer_fault(0, 1, "put") is not None

    def test_ordered_deliver_monotone_per_link(self):
        cfg = ChaosConfig(seed=3, jitter_prob=1.0, jitter_max=50e-6)

        class _Trace:
            def incr(self, *a, **k):
                pass

        eng = ChaosEngine(cfg, _Trace())
        base, last = 1e-3, 0.0
        for i in range(32):
            t = eng.ordered_deliver(0, 1, base + i * 1e-6)
            assert t >= last
            last = t


class TestZeroOverheadWhenDisabled:
    def test_disabled_config_builds_no_engine(self):
        job = chaos_job(2, chaos=ChaosConfig())
        assert job.world.chaos is None

    def test_no_chaos_means_none(self):
        job = chaos_job(2)
        assert job.world.chaos is None
        assert not job.rt(0).chaos_enabled

    def test_timing_identical_with_disabled_chaos(self):
        def run(chaos):
            job = chaos_job(2, chaos=chaos)

            def body(rt):
                alloc = yield from rt.malloc(4096)
                yield from rt.barrier()
                if rt.rank == 0:
                    src = rt.world.space(0).allocate(1024)
                    for _i in range(8):
                        yield from rt.put(1, src, alloc.addr(1), 1024)
                        yield from rt.get(1, src, alloc.addr(1), 1024)
                    yield from rt.fence(1)
                yield from rt.barrier()

            job.run(body)
            return job.engine.now

        assert run(None) == run(ChaosConfig())


class TestTransientRetry:
    def test_put_get_retry_exactly_once(self):
        """Seeded drops are absorbed by retries; remote data is intact."""
        job = chaos_job(2, chaos=ChaosConfig(seed=7, drop_prob=0.3))
        payload = bytes(range(256)) * 4

        def body(rt):
            alloc = yield from rt.malloc(4096)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(1024)
                rt.world.space(0).write(src, payload)
                for _i in range(16):
                    yield from rt.put(1, src, alloc.addr(1), 1024)
                yield from rt.fence(1)
                back = rt.world.space(0).allocate(1024)
                yield from rt.get(1, back, alloc.addr(1), 1024)
                assert rt.world.space(0).read(back, 1024) == payload
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("chaos.drops") > 0
        assert job.trace.count("armci.transient_retries") > 0
        assert job.trace.count("armci.retry_successes") > 0

    def test_accumulate_retry_applies_exactly_once(self):
        """Dropped ACC requests never touched the target, so the retried
        total equals the clean total — the exactly-once audit."""
        n_accs, n_words = 24, 16

        def run(chaos):
            job = chaos_job(2, chaos=chaos)
            result = {}

            def body(rt):
                alloc = yield from rt.malloc(n_words * 8)
                yield from rt.barrier()
                if rt.rank == 0:
                    src = rt.world.space(0).allocate(n_words * 8)
                    rt.world.space(0).write_f64(src, np.ones(n_words))
                    for _i in range(n_accs):
                        yield from rt.acc(1, src, alloc.addr(1), n_words * 8)
                    yield from rt.fence(1)
                yield from rt.barrier()
                if rt.rank == 1:
                    got = rt.world.space(1).read_f64(alloc.addr(1), n_words)
                    result["sum"] = float(got.sum())

            job.run(body)
            return result["sum"], job

        clean, _ = run(None)
        chaotic, job = run(ChaosConfig(seed=11, drop_prob=0.25))
        assert clean == chaotic == n_accs * n_words
        assert job.trace.count("armci.transient_retries.acc") > 0
        assert job.trace.count("armci.accs_applied") == n_accs

    def test_rmw_retry_draws_every_value_once(self):
        """Lost AMO requests never incremented the counter: retried
        fetch_adds still hand out a contiguous range with no gaps."""
        job = chaos_job(2, chaos=ChaosConfig(seed=5, drop_prob=0.3))
        draws = []

        def body(rt):
            alloc = yield from rt.malloc(8)
            yield from rt.barrier()
            if rt.rank == 0:
                for _i in range(32):
                    old = yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
                    draws.append(old)
            yield from rt.barrier()

        job.run(body)
        assert draws == list(range(32))
        assert job.trace.count("armci.transient_retries.rmw") > 0

    def test_strided_and_vector_retry(self):
        from repro.armci.vector import IoVector
        from repro.types import StridedDescriptor, StridedShape

        cfg = dataclasses.replace(
            ArmciConfig.async_thread_mode(), strided_protocol="auto"
        )
        job = chaos_job(2, config=cfg, chaos=ChaosConfig(seed=13, drop_prob=0.3))
        desc = StridedDescriptor(StridedShape(16, (8,)), (32,), (32,))

        def body(rt):
            alloc = yield from rt.malloc(4096)
            yield from rt.barrier()
            if rt.rank == 0:
                local = rt.world.space(0).allocate(512)
                rt.world.space(0).write(local, b"S" * 512)
                for _i in range(8):
                    yield from rt.puts(1, local, alloc.addr(1), desc)
                    yield from rt.gets(1, local, alloc.addr(1), desc)
                vec = IoVector((local, local + 64), (alloc.addr(1), alloc.addr(1) + 64), (64, 64))
                for _i in range(8):
                    yield from rt.putv(1, vec)
                    yield from rt.getv(1, vec)
                yield from rt.fence(1)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.transient_retries") > 0

    def test_backoff_time_accrues(self):
        job = chaos_job(2, chaos=ChaosConfig(seed=7, drop_prob=0.4))

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(256)
                for _i in range(16):
                    yield from rt.put(1, src, alloc.addr(1), 256)
                yield from rt.fence(1)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.time("armci.retry_backoff_time") > 0.0

    def test_retry_budget_exhaustion_raises(self):
        """A link with total loss exhausts the budget and surfaces
        RetryExhaustedError (a TransientFaultError subclass)."""
        job = chaos_job(
            2,
            chaos=ChaosConfig(seed=1, drop_prob=1.0, links=frozenset({(0, 1)})),
        )
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(1024)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(64)
                try:
                    yield from rt.get(1, src, alloc.addr(1), 64)
                except RetryExhaustedError as exc:
                    outcome["error"] = exc
            # No closing barrier: the barrier AM from 0 to 1 would be
            # endlessly dropped on this fully-lossy link.

        job.run(body)
        assert isinstance(outcome["error"], TransientFaultError)
        max_retries = job.rt(0).config.retry.max_retries
        assert job.trace.count("armci.transient_retries.get") == max_retries

    def test_duplicates_are_discarded(self):
        """Duplicated AM deliveries cost handler time but do not change
        semantics (sequence-number dedup)."""
        n_accs, n_words = 16, 8
        job = chaos_job(2, chaos=ChaosConfig(seed=3, dup_prob=0.5))
        result = {}

        def body(rt):
            alloc = yield from rt.malloc(n_words * 8)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(n_words * 8)
                rt.world.space(0).write_f64(src, np.ones(n_words))
                for _i in range(n_accs):
                    yield from rt.acc(1, src, alloc.addr(1), n_words * 8)
                yield from rt.fence(1)
            yield from rt.barrier()
            if rt.rank == 1:
                got = rt.world.space(1).read_f64(alloc.addr(1), n_words)
                result["sum"] = float(got.sum())

        job.run(body)
        assert result["sum"] == n_accs * n_words
        assert job.trace.count("chaos.duplicates") > 0
        assert job.trace.count("pami.am_duplicates_discarded") > 0
        assert job.trace.count("armci.accs_applied") == n_accs

    def test_jitter_preserves_put_ordering(self):
        """Jittered ordered traffic is clamped monotone per link: the
        last put in program order wins, and the OrderingChecker (which
        asserts monotone delivery internally) stays quiet."""
        job = chaos_job(
            2, chaos=ChaosConfig(seed=9, jitter_prob=0.7, jitter_max=40e-6)
        )
        result = {}

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank == 0:
                src = rt.world.space(0).allocate(64)
                for i in range(32):
                    rt.world.space(0).write(src, bytes([i]) * 64)
                    yield from rt.put(1, src, alloc.addr(1), 64)
                yield from rt.fence(1)
            yield from rt.barrier()
            if rt.rank == 1:
                result["data"] = rt.world.space(1).read(alloc.addr(1), 64)

        job.run(body)
        assert result["data"] == bytes([31]) * 64
        assert job.trace.count("chaos.jittered") > 0

    def test_fire_and_forget_retransmit(self):
        """Cookie-less AMs (notify) survive loss via bounded transport
        retransmits instead of initiator-side retry."""
        job = chaos_job(2, chaos=ChaosConfig(seed=2, drop_prob=0.5))

        def body(rt):
            yield from rt.barrier()
            if rt.rank == 0:
                for _i in range(12):
                    yield from rt.notify(1)
            else:
                for _i in range(12):
                    yield from rt.notify_wait(0)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("chaos.retransmits") > 0


class TestFaultPlanCollectives:
    def test_mid_barrier_crash_raises_at_all_survivors(self):
        """A rank crashed mid-barrier surfaces ProcessFailedError at
        every survivor within the detection delay, instead of deadlock."""
        crash_at = 400e-6  # measured from run() start
        job = chaos_job(4, fault_plan=FaultPlan().crash(3, at=crash_at))
        outcomes = {}

        def body(rt):
            start = rt.engine.now
            yield from rt.barrier()
            if rt.rank == 3:
                yield from rt.compute(10.0)  # killed by the plan mid-compute
                return
            yield from rt.compute(100e-6)
            try:
                yield from rt.barrier()
                outcomes[rt.rank] = ("ok", 0.0)
            except ProcessFailedError:
                outcomes[rt.rank] = ("failed", rt.engine.now - start)

        job.run(body)
        assert set(outcomes) == {0, 1, 2}
        for rank, (status, t_detect) in outcomes.items():
            assert status == "failed", f"rank {rank} did not observe the crash"
            assert t_detect >= crash_at
            # Detection latency, not instant knowledge — and bounded.
            assert t_detect <= crash_at + FAULT_DETECT_DELAY + 1e-3

    def test_crash_before_barrier_entry_also_detected(self):
        """Survivors that enter a barrier after the crash still fail it
        (the epoch stays broken; no hang on the missing participant)."""
        job = chaos_job(4, fault_plan=FaultPlan().crash(1, at=50e-6))
        outcomes = {}

        def body(rt):
            if rt.rank == 1:
                yield from rt.compute(10.0)
                return
            yield from rt.compute(200e-6)  # crash happens while computing
            try:
                yield from rt.barrier()
                outcomes[rt.rank] = "ok"
            except ProcessFailedError:
                outcomes[rt.rank] = "failed"

        job.run(body)
        assert all(outcomes[r] == "failed" for r in (0, 2, 3))

    def test_group_reduce_detects_crash(self):
        """Software tree collectives (group reduce) raise at survivors
        via the failure detector instead of waiting forever."""
        job = chaos_job(4, fault_plan=FaultPlan().crash(2, at=300e-6))
        outcomes = {}

        def body(rt):
            yield from rt.barrier()
            if rt.rank == 2:
                yield from rt.compute(10.0)
                return
            yield from rt.compute(500e-6)
            group = rt.group(range(rt.world.num_procs))
            try:
                yield from rt.group_allreduce(group, float(rt.rank))
                outcomes[rt.rank] = "ok"
            except ProcessFailedError:
                outcomes[rt.rank] = "failed"

        job.run(body)
        assert all(v == "failed" for v in outcomes.values())


class TestScfUnderChaos:
    def test_scf_completes_under_seeded_drops(self):
        """The acceptance scenario: a seeded chaos SCF run finishes with
        retries and bit-identical task accounting (run_scf itself raises
        if any task is lost or double-counted)."""
        from repro.apps.nwchem import ScfConfig, run_scf

        cfg = ScfConfig(nbf_override=32, nblocks=4, task_time=200e-6,
                        iterations=2, num_counters=2)
        clean = run_scf(4, ArmciConfig.async_thread_mode(), cfg,
                        procs_per_node=4)
        chaotic = run_scf(
            4, ArmciConfig.async_thread_mode(), cfg, procs_per_node=4,
            chaos=ChaosConfig(seed=17, drop_prob=0.02),
        )
        assert chaotic.tasks_done == clean.tasks_done == 16 * 2
        assert chaotic.iterations_run == 2

    def test_scf_chaos_run_is_deterministic(self):
        from repro.apps.nwchem import ScfConfig, run_scf

        cfg = ScfConfig(nbf_override=16, nblocks=2, task_time=100e-6,
                        iterations=1)
        kw = dict(procs_per_node=2, chaos=ChaosConfig(seed=23, drop_prob=0.05))
        a = run_scf(2, ArmciConfig.async_thread_mode(), cfg, **kw)
        b = run_scf(2, ArmciConfig.async_thread_mode(), cfg, **kw)
        assert a.total_time == b.total_time
        assert a.energies == b.energies
