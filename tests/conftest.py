"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.pami import PamiWorld


def build_world(num_procs: int = 2, rho: int = 1, **kwargs) -> PamiWorld:
    """A PamiWorld with ``rho`` contexts created on every rank."""
    world = PamiWorld(num_procs, **kwargs)
    create_contexts(world, rho)
    return world


def create_contexts(world: PamiWorld, rho: int = 1) -> None:
    """Collectively create ``rho`` contexts per rank (costs simulated time)."""

    def body(client):
        for _ in range(rho):
            yield from client.create_context()

    procs = [
        world.engine.spawn(body(c), name=f"init{c.rank}") for c in world.clients
    ]
    world.engine.run_until_complete(procs)


def run_ranks(world: PamiWorld, body_fn, ranks=None) -> list:
    """Spawn ``body_fn(rank)`` as a process on each rank and run to completion.

    ``body_fn`` must return a generator. Returns per-rank results.
    """
    if ranks is None:
        ranks = range(world.num_procs)
    procs = [
        world.engine.spawn(body_fn(rank), name=f"rank{rank}") for rank in ranks
    ]
    return world.engine.run_until_complete(procs)


@pytest.fixture(params=["pami", "mpi3"], scope="module")
def backend(request):
    """Run the decorated module once per communication backend.

    Re-points :data:`repro.transport.DEFAULT_BACKEND` so every job built
    with ``ArmciConfig(backend=None)`` — i.e. all existing tests,
    unmodified — lands on the parameterized backend. Core ARMCI test
    modules opt in with ``pytestmark = pytest.mark.usefixtures("backend")``,
    turning them into the cross-backend conformance suite. Module scope
    keeps hypothesis-based property tests eligible (function-scoped
    fixtures trip its health check) and batches each module per backend.
    """
    import repro.transport as transport

    mp = pytest.MonkeyPatch()
    mp.setattr(transport, "DEFAULT_BACKEND", request.param)
    yield request.param
    mp.undo()


@pytest.fixture
def world2():
    """Two processes on two adjacent nodes (internode traffic)."""
    return build_world(num_procs=2, procs_per_node=1)


@pytest.fixture
def world4():
    """Four processes on four nodes."""
    return build_world(num_procs=4, procs_per_node=1)
