"""Tests for the two-sided (MPI-like) comparison layer."""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.mpilike import recv, send


def make_job(num_procs=2, config=None):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=1,
    )
    job.init()
    return job


class TestSendRecv:
    def test_basic_roundtrip(self):
        job = make_job()

        def body(rt):
            if rt.rank == 0:
                yield from send(rt, 1, tag=7, payload=b"ping")
                reply = yield from recv(rt, 1, tag=8)
                return reply
            data = yield from recv(rt, 0, tag=7)
            yield from send(rt, 0, tag=8, payload=data + b"-pong")
            return None

        results = job.run(body)
        assert results[0] == b"ping-pong"

    def test_tag_matching_is_exact(self):
        job = make_job()

        def body(rt):
            if rt.rank == 0:
                yield from send(rt, 1, tag=1, payload=b"one")
                yield from send(rt, 1, tag=2, payload=b"two")
                yield from rt.barrier()
                return None
            # Receive out of send order: tag matching sorts it out.
            two = yield from recv(rt, 0, tag=2)
            one = yield from recv(rt, 0, tag=1)
            yield from rt.barrier()
            return (one, two)

        results = job.run(body)
        assert results[1] == (b"one", b"two")

    def test_same_tag_messages_arrive_in_order(self):
        job = make_job()

        def body(rt):
            if rt.rank == 0:
                for i in range(5):
                    yield from send(rt, 1, tag=0, payload=bytes([i]))
                yield from rt.barrier()
                return None
            got = []
            for _ in range(5):
                got.append((yield from recv(rt, 0, tag=0)))
            yield from rt.barrier()
            return got

        results = job.run(body)
        assert results[1] == [bytes([i]) for i in range(5)]

    def test_unexpected_messages_banked(self):
        # AT mode: the async thread runs the delivery handler while the
        # receiver computes, so the message lands in the unexpected bank.
        job = make_job(config=ArmciConfig.async_thread_mode())

        def body(rt):
            if rt.rank == 0:
                yield from send(rt, 1, tag=0, payload=b"early")
                yield from rt.barrier()
                return None
            # Let the message land before any recv is posted.
            yield from rt.compute(100e-6)
            banked = rt._msg_board.unexpected_count()
            data = yield from recv(rt, 0, tag=0)
            yield from rt.barrier()
            return (banked, data)

        results = job.run(body)
        assert results[1] == (1, b"early")

    def test_two_sided_needs_receiver_participation(self):
        """The paper's core contrast: a two-sided transfer from a
        computing receiver stalls until it participates; a one-sided RDMA
        get of the same data completes during the compute."""
        job = make_job(config=ArmciConfig.default_mode())
        times = {}

        def body(rt):
            alloc = yield from rt.malloc(4096)
            yield from rt.barrier()
            local = None
            if rt.rank == 0:
                # Warm caches while rank 1 still progresses (in barrier).
                local = rt.world.space(0).allocate(4096)
                yield from rt.get(1, local, alloc.addr(1), 1024)
            yield from rt.barrier()
            if rt.rank == 0:
                # One-sided: read rank 1's data while it computes.
                t0 = rt.engine.now
                yield from rt.get(1, local, alloc.addr(1), 1024)
                times["one_sided"] = rt.engine.now - t0
                # Two-sided: wait for rank 1 to finally send.
                t0 = rt.engine.now
                yield from recv(rt, 1, tag=0)
                times["two_sided"] = rt.engine.now - t0
                yield from rt.barrier()
                return
            yield from rt.compute(500e-6)  # busy: no sends, no progress
            yield from send(rt, 0, tag=0, payload=b"x" * 1024)
            yield from rt.barrier()

        job.run(body)
        assert times["one_sided"] < 10e-6
        assert times["two_sided"] > 300e-6
