"""Tests for the ``python -m repro.bench`` command-line runner."""

import pytest

from repro.bench.__main__ import COMMANDS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table2" in out

    def test_unknown_target(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Endpoint Creation Time" in out
        assert "beta" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "3821 - 4271 us" in out

    def test_fig9_with_proc_override(self, capsys):
        assert main(["fig9", "--procs", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "D+compute" in out
        assert out.count("\n") >= 4

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--procs", "64"]) == 0
        out = capsys.readouterr().out
        assert "per-hop latency: 35.0 ns" in out

    def test_every_command_is_callable(self):
        # Guard the registry: all names resolvable, no duplicates.
        assert len(COMMANDS) == len(set(COMMANDS))
        for name in ("table1", "table2", "fig3", "fig4", "fig5", "fig6",
                     "fig7", "fig8", "fig9", "fig11"):
            assert name in COMMANDS
