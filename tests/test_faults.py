"""Tests for the fault-tolerance extension: fault injection + detection.

One-sided operations against a failed rank must complete with
ProcessFailedError at the initiator instead of hanging — the property a
fault-tolerant PGAS runtime needs (the resiliency motivation of the
paper's introduction).
"""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.errors import PamiError, ProcessFailedError
from repro.pami.faults import FAULT_DETECT_DELAY, Failure, check_completion


def make_job(num_procs=4, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig.async_thread_mode(),
        procs_per_node=1,
        **kwargs,
    )
    job.init()
    return job


class TestFailureToken:
    def test_check_completion_passthrough(self):
        assert check_completion(42) == 42
        assert check_completion(None) is None

    def test_check_completion_raises(self):
        with pytest.raises(ProcessFailedError, match="rank 3"):
            check_completion(Failure(3))

    def test_fail_rank_validation(self):
        job = make_job()
        with pytest.raises(PamiError):
            job.world.fail_rank(99)

    def test_fail_rank_idempotent_bookkeeping(self):
        job = make_job()
        job.world.fail_rank(2)
        assert job.world.is_failed(2)
        assert not job.world.is_failed(0)


def _fail_then(job, victim, op_body):
    """Rank 1 fails `victim`, then runs op_body; survivors use ranks 0/1."""
    outcome = {}

    def body(rt):
        alloc = yield from rt.malloc(256)
        yield from rt.barrier()
        if rt.rank >= 2:
            # The victim (and bystander 3) compute; victim killed mid-way.
            yield from rt.compute(10.0)
            return
        if rt.rank == 1:
            yield from rt.compute(50e-6)
            rt.world.fail_rank(victim)
            t0 = rt.engine.now
            try:
                yield from op_body(rt, alloc)
                outcome["result"] = "ok"
            except ProcessFailedError as exc:
                outcome["result"] = "failed"
                outcome["detect_time"] = rt.engine.now - t0
                outcome["message"] = str(exc)
        # Ranks 0 and 1 do not barrier again: rank 2 is dead.

    job.run(body, ranks=[0, 1, 2, 3])
    return outcome


class TestOneSidedFaultDetection:
    def test_get_from_failed_rank_raises(self):
        job = make_job()

        def op(rt, alloc):
            local = rt.world.space(1).allocate(64)
            yield from rt.get(2, local, alloc.addr(2), 64)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"
        assert "rank 2" in out["message"]
        assert out["detect_time"] >= FAULT_DETECT_DELAY

    def test_rmw_on_failed_rank_raises(self):
        job = make_job()

        def op(rt, alloc):
            yield from rt.rmw(2, alloc.addr(2), "fetch_add", 1)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"

    def test_put_fence_detects_failure(self):
        job = make_job()

        def op(rt, alloc):
            src = rt.world.space(1).allocate(64)
            yield from rt.put(2, src, alloc.addr(2), 64)
            yield from rt.fence(2)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"

    def test_accumulate_fence_detects_failure(self):
        import numpy as np

        job = make_job()

        def op(rt, alloc):
            src = rt.world.space(1).allocate(64)
            rt.world.space(1).write_f64(src, np.ones(8))
            yield from rt.acc(2, src, alloc.addr(2), 64)
            yield from rt.fence(2)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"

    def test_fallback_get_detects_failure(self):
        job = make_job(config=ArmciConfig(use_rdma=False, async_thread=True,
                                          num_contexts=2))

        def op(rt, alloc):
            local = rt.world.space(1).allocate(64)
            yield from rt.get(2, local, alloc.addr(2), 64)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"

    def test_healthy_pairs_unaffected_by_third_party_failure(self):
        job = make_job()

        def op(rt, alloc):
            # Rank 2 is dead, but rank 1 <-> rank 0 traffic still works.
            src = rt.world.space(1).allocate(64)
            rt.world.space(1).write(src, b"Y" * 64)
            yield from rt.put(0, src, alloc.addr(0), 64)
            yield from rt.fence(0)
            back = rt.world.space(1).allocate(64)
            yield from rt.get(0, back, alloc.addr(0), 64)
            assert rt.world.space(1).read(back, 64) == b"Y" * 64

        out = _fail_then(job, 2, op)
        assert out["result"] == "ok"

    def test_queued_amo_failed_with_host(self):
        """An AMO already queued at a rank that then dies is failed back
        to its initiator (on_dropped), not lost."""
        job = make_job(config=ArmciConfig.default_mode())
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank >= 2:
                # Never advances: incoming AMO sits in its queue.
                yield from rt.compute(200e-6)
                return
            if rt.rank == 1:
                from repro.pami.atomics import rmw as pami_rmw

                pending = pami_rmw(rt.main_context, 2, alloc.addr(2), "fetch_add", 1)
                # Give the request time to arrive at rank 2's queue.
                yield from rt.compute(20e-6)
                rt.world.fail_rank(2)
                value = yield from rt.main_context.wait_with_progress(pending.event)
                try:
                    check_completion(value)
                    outcome["result"] = "ok"
                except ProcessFailedError:
                    outcome["result"] = "failed"

        job.run(body, ranks=[0, 1, 2, 3])
        assert outcome["result"] == "failed"


class TestPoolDegradation:
    def test_sharded_pool_survives_counter_host_failure(self):
        """Survivors keep draining healthy shards when a counter host
        dies; only the dead shard's undrawn tasks are lost."""
        from repro.gax import DistributedTaskPool

        job = make_job(num_procs=4)
        done = []

        def body(rt):
            pool = yield from DistributedTaskPool.create(rt, 16, 4)
            yield from rt.barrier()
            if rt.rank == 2:
                rt.world.fail_rank(2)  # kills shard 2's counter host
                return
            while True:
                try:
                    claimed = yield from pool.next_range(rt)
                except ProcessFailedError:
                    break
                if claimed is None:
                    break
                done.append(claimed)
                yield from rt.compute(20e-6)

        job.run(body)
        covered = set(t for lo, hi in done for t in range(lo, hi))
        # Shard 2 covers tasks 8..11 and is lost; everything else done.
        assert set(range(0, 8)) | set(range(12, 16)) <= covered
        assert covered.isdisjoint(range(8, 12))
        assert job.trace.count("gax.pool_shards_lost") >= 1
