"""Tests for the fault-tolerance extension: fault injection + detection.

One-sided operations against a failed rank must complete with
ProcessFailedError at the initiator instead of hanging — the property a
fault-tolerant PGAS runtime needs (the resiliency motivation of the
paper's introduction).
"""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.errors import PamiError, ProcessFailedError
from repro.pami.faults import FAULT_DETECT_DELAY, Failure, check_completion


def make_job(num_procs=4, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig.async_thread_mode(),
        procs_per_node=1,
        **kwargs,
    )
    job.init()
    return job


class TestFailureToken:
    def test_check_completion_passthrough(self):
        assert check_completion(42) == 42
        assert check_completion(None) is None

    def test_check_completion_raises(self):
        with pytest.raises(ProcessFailedError, match="rank 3"):
            check_completion(Failure(3))

    def test_fail_rank_validation(self):
        job = make_job()
        with pytest.raises(PamiError):
            job.world.fail_rank(99)

    def test_fail_rank_idempotent_bookkeeping(self):
        job = make_job()
        job.world.fail_rank(2)
        assert job.world.is_failed(2)
        assert not job.world.is_failed(0)


def _fail_then(job, victim, op_body):
    """Rank 1 fails `victim`, then runs op_body; survivors use ranks 0/1."""
    outcome = {}

    def body(rt):
        alloc = yield from rt.malloc(256)
        yield from rt.barrier()
        if rt.rank >= 2:
            # The victim (and bystander 3) compute; victim killed mid-way.
            yield from rt.compute(10.0)
            return
        if rt.rank == 1:
            yield from rt.compute(50e-6)
            rt.world.fail_rank(victim)
            t0 = rt.engine.now
            try:
                yield from op_body(rt, alloc)
                outcome["result"] = "ok"
            except ProcessFailedError as exc:
                outcome["result"] = "failed"
                outcome["detect_time"] = rt.engine.now - t0
                outcome["message"] = str(exc)
        # Ranks 0 and 1 do not barrier again: rank 2 is dead.

    job.run(body, ranks=[0, 1, 2, 3])
    return outcome


class TestOneSidedFaultDetection:
    def test_get_from_failed_rank_raises(self):
        job = make_job()

        def op(rt, alloc):
            local = rt.world.space(1).allocate(64)
            yield from rt.get(2, local, alloc.addr(2), 64)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"
        assert "rank 2" in out["message"]
        assert out["detect_time"] >= FAULT_DETECT_DELAY

    def test_rmw_on_failed_rank_raises(self):
        job = make_job()

        def op(rt, alloc):
            yield from rt.rmw(2, alloc.addr(2), "fetch_add", 1)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"

    def test_put_fence_detects_failure(self):
        job = make_job()

        def op(rt, alloc):
            src = rt.world.space(1).allocate(64)
            yield from rt.put(2, src, alloc.addr(2), 64)
            yield from rt.fence(2)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"

    def test_accumulate_fence_detects_failure(self):
        import numpy as np

        job = make_job()

        def op(rt, alloc):
            src = rt.world.space(1).allocate(64)
            rt.world.space(1).write_f64(src, np.ones(8))
            yield from rt.acc(2, src, alloc.addr(2), 64)
            yield from rt.fence(2)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"

    def test_fallback_get_detects_failure(self):
        job = make_job(config=ArmciConfig(use_rdma=False, async_thread=True,
                                          num_contexts=2))

        def op(rt, alloc):
            local = rt.world.space(1).allocate(64)
            yield from rt.get(2, local, alloc.addr(2), 64)

        out = _fail_then(job, 2, op)
        assert out["result"] == "failed"

    def test_healthy_pairs_unaffected_by_third_party_failure(self):
        job = make_job()

        def op(rt, alloc):
            # Rank 2 is dead, but rank 1 <-> rank 0 traffic still works.
            src = rt.world.space(1).allocate(64)
            rt.world.space(1).write(src, b"Y" * 64)
            yield from rt.put(0, src, alloc.addr(0), 64)
            yield from rt.fence(0)
            back = rt.world.space(1).allocate(64)
            yield from rt.get(0, back, alloc.addr(0), 64)
            assert rt.world.space(1).read(back, 64) == b"Y" * 64

        out = _fail_then(job, 2, op)
        assert out["result"] == "ok"

    def test_queued_amo_failed_with_host(self):
        """An AMO already queued at a rank that then dies is failed back
        to its initiator (on_dropped), not lost."""
        job = make_job(config=ArmciConfig.default_mode())
        outcome = {}

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank >= 2:
                # Never advances: incoming AMO sits in its queue.
                yield from rt.compute(200e-6)
                return
            if rt.rank == 1:
                from repro.pami.atomics import rmw as pami_rmw

                pending = pami_rmw(rt.main_context, 2, alloc.addr(2), "fetch_add", 1)
                # Give the request time to arrive at rank 2's queue.
                yield from rt.compute(20e-6)
                rt.world.fail_rank(2)
                value = yield from rt.main_context.wait_with_progress(pending.event)
                try:
                    check_completion(value)
                    outcome["result"] = "ok"
                except ProcessFailedError:
                    outcome["result"] = "failed"

        job.run(body, ranks=[0, 1, 2, 3])
        assert outcome["result"] == "failed"


def _tall_skinny():
    from repro.types import StridedDescriptor, StridedShape

    # chunk 16 B < tall_skinny_threshold (128): "auto" picks typed.
    return StridedDescriptor(StridedShape(16, (8,)), (32,), (32,))


def _run_pair_op(job, body_op, warmup_op=None):
    """Rank 1 optionally warms up against rank 2, fails it, runs body_op."""
    outcome = {}

    def body(rt):
        alloc = yield from rt.malloc(512)
        yield from rt.barrier()
        if rt.rank >= 2:
            yield from rt.compute(10.0)
            return
        if rt.rank == 1:
            if warmup_op is not None:
                yield from warmup_op(rt, alloc)
            rt.world.fail_rank(2)
            try:
                yield from body_op(rt, alloc)
                outcome["result"] = "ok"
            except ProcessFailedError as exc:
                outcome["result"] = "failed"
                outcome["message"] = str(exc)

    job.run(body, ranks=[0, 1, 2, 3])
    return outcome


class TestStridedVectorFaults:
    """Fault detection on the non-contiguous datatype protocols.

    The typed and packed paths bypass both ``rdma_put`` and the generic
    AM machinery's completion plumbing, so they carry their own failure
    hooks — these tests pin them down.
    """

    def _auto_config(self):
        import dataclasses

        return dataclasses.replace(
            ArmciConfig.async_thread_mode(), strided_protocol="auto"
        )

    def test_typed_strided_get_from_failed_rank_raises(self):
        job = make_job(config=self._auto_config())
        desc = _tall_skinny()

        def warmup(rt, alloc):
            local = rt.world.space(1).allocate(512)
            rt._ts_local = local
            # Warms the region cache so the retry hits the typed path
            # directly instead of failing in region resolution.
            yield from rt.gets(2, local, alloc.addr(2), desc)

        def op(rt, alloc):
            yield from rt.gets(2, rt._ts_local, alloc.addr(2), desc)

        out = _run_pair_op(job, op, warmup)
        assert out["result"] == "failed"
        assert "rank 2" in out["message"]

    def test_typed_strided_put_fence_detects_failure(self):
        job = make_job(config=self._auto_config())
        desc = _tall_skinny()

        def warmup(rt, alloc):
            local = rt.world.space(1).allocate(512)
            rt._ts_local = local
            yield from rt.puts(2, local, alloc.addr(2), desc)
            yield from rt.fence(2)

        def op(rt, alloc):
            yield from rt.puts(2, rt._ts_local, alloc.addr(2), desc)
            yield from rt.fence(2)

        out = _run_pair_op(job, op, warmup)
        assert out["result"] == "failed"

    def test_packed_strided_get_from_failed_rank_raises(self):
        import dataclasses

        job = make_job(
            config=dataclasses.replace(
                ArmciConfig.async_thread_mode(), strided_protocol="pack"
            )
        )
        desc = _tall_skinny()

        def op(rt, alloc):
            local = rt.world.space(1).allocate(512)
            yield from rt.gets(2, local, alloc.addr(2), desc)

        out = _run_pair_op(job, op)
        assert out["result"] == "failed"

    def test_packed_vector_put_fence_detects_failure(self):
        from repro.armci.vector import IoVector

        job = make_job(
            config=ArmciConfig(use_rdma=False, async_thread=True, num_contexts=2)
        )

        def op(rt, alloc):
            local = rt.world.space(1).allocate(64)
            vec = IoVector((local, local + 32), (alloc.addr(2), alloc.addr(2) + 32), (32, 32))
            yield from rt.putv(2, vec)
            yield from rt.fence(2)

        out = _run_pair_op(job, op)
        assert out["result"] == "failed"

    def test_packed_vector_get_from_failed_rank_raises(self):
        from repro.armci.vector import IoVector

        job = make_job(
            config=ArmciConfig(use_rdma=False, async_thread=True, num_contexts=2)
        )

        def op(rt, alloc):
            local = rt.world.space(1).allocate(64)
            vec = IoVector((local, local + 32), (alloc.addr(2), alloc.addr(2) + 32), (32, 32))
            yield from rt.getv(2, vec)

        out = _run_pair_op(job, op)
        assert out["result"] == "failed"

    def test_typed_vector_put_fence_detects_failure(self):
        """Aggregate flush (typed vector put) to a failed rank is caught
        by the fence via the typed path's own ack hook."""
        job = make_job()

        def warmup(rt, alloc):
            local = rt.world.space(1).allocate(64)
            rt._ts_local = local
            agg = rt.aggregate(2)
            agg.put(local, alloc.addr(2), 32)
            yield from agg.flush()
            yield from rt.fence(2)

        def op(rt, alloc):
            agg = rt.aggregate(2)
            agg.put(rt._ts_local, alloc.addr(2), 32)
            yield from agg.flush()
            yield from rt.fence(2)

        out = _run_pair_op(job, op, warmup)
        assert out["result"] == "failed"


class TestNestedReplyCookies:
    """Regression: reply cookies buried in forwarded envelopes must be
    failed too, or the forwarding initiator deadlocks."""

    def test_cookie_inside_forwarded_envelope_is_failed(self):
        from repro.pami.activemsg import AmEnvelope
        from repro.pami.faults import fail_reply_cookies

        job = make_job()
        outcome = {}

        def body(rt):
            yield from rt.barrier()
            if rt.rank != 1:
                return
            ctx = rt.main_context
            inner_event = rt.engine.event("inner.reply")
            # Forwarding protocol shape: the original request (with its
            # live reply cookie) rides inside a redirect envelope.
            inner = AmEnvelope(7, 1, 2, {"event": inner_event, "reply_ctx": ctx})
            outer = AmEnvelope(8, 1, 3, {"forward": inner})
            assert fail_reply_cookies(rt.world, outer, Failure(3)) == 1
            value = yield from ctx.wait_with_progress(inner_event)
            try:
                check_completion(value)
                outcome["result"] = "ok"
            except ProcessFailedError:
                outcome["result"] = "failed"

        job.run(body)
        assert outcome["result"] == "failed"

    def test_cookies_in_nested_containers_are_counted(self):
        from repro.pami.activemsg import AmEnvelope
        from repro.pami.faults import _collect_reply_cookies

        job = make_job()
        ctx = object()  # stands in for a reply context
        ev_a = job.engine.event("a")
        ev_b = job.engine.event("b")
        ev_c = job.engine.event("c")
        env = AmEnvelope(
            7, 1, 2,
            {
                "ack": [ev_a, ev_b],
                "meta": {"reply": ev_c},
                "addr": 64,
                "reply_ctx": ctx,
            },
        )
        out = []
        _collect_reply_cookies(env.header, None, out)
        assert {id(ev) for _c, ev in out} == {id(ev_a), id(ev_b), id(ev_c)}

    def test_fire_and_forget_reports_zero(self):
        from repro.pami.activemsg import AmEnvelope
        from repro.pami.faults import fail_reply_cookies

        job = make_job()
        env = AmEnvelope(7, 1, 2, {"addr": 64, "nbytes": 8})
        assert fail_reply_cookies(job.world, env, Failure(2)) == 0


class TestPoolDegradation:
    def test_sharded_pool_fails_over_to_backup_counter(self):
        """Survivors fail a dead shard over to its backup counter and
        recover every undrawn task (at-least-once coverage)."""
        from repro.gax import DistributedTaskPool

        job = make_job(num_procs=4)
        done = []

        def body(rt):
            pool = yield from DistributedTaskPool.create(rt, 16, 4)
            yield from rt.barrier()
            if rt.rank == 2:
                rt.world.fail_rank(2)  # kills shard 2's primary counter host
                return
            while True:
                try:
                    claimed = yield from pool.next_range(rt)
                except ProcessFailedError:
                    break
                if claimed is None:
                    break
                done.append(claimed)
                yield from rt.compute(20e-6)

        job.run(body)
        covered = set(t for lo, hi in done for t in range(lo, hi))
        # Shard 2 (tasks 8..11) is recovered via its backup on rank 3.
        assert covered == set(range(16))
        assert job.trace.count("gax.pool_shards_failed_over") >= 1
        assert job.trace.count("gax.pool_shards_lost") == 0

    def test_sharded_pool_without_backups_loses_dead_shard(self):
        """With fault tolerance off, a dead counter host still only costs
        its own shard; survivors drain the rest (the pre-failover
        degradation behaviour)."""
        from repro.gax import DistributedTaskPool

        job = make_job(num_procs=4)
        done = []

        def body(rt):
            pool = yield from DistributedTaskPool.create(
                rt, 16, 4, fault_tolerant=False
            )
            yield from rt.barrier()
            if rt.rank == 2:
                rt.world.fail_rank(2)
                return
            while True:
                try:
                    claimed = yield from pool.next_range(rt)
                except ProcessFailedError:
                    break
                if claimed is None:
                    break
                done.append(claimed)
                yield from rt.compute(20e-6)

        job.run(body)
        covered = set(t for lo, hi in done for t in range(lo, hi))
        # Shard 2 covers tasks 8..11 and is lost; everything else done.
        assert set(range(0, 8)) | set(range(12, 16)) <= covered
        assert covered.isdisjoint(range(8, 12))
        assert job.trace.count("gax.pool_shards_lost") >= 1
