"""Tests for the NWChem SCF proxy application."""

import pytest

from repro.armci import ArmciConfig
from repro.apps.nwchem import (
    ScfConfig,
    WaterCluster,
    basis_function_count,
    fock_task_list,
    run_scf,
)
from repro.apps.nwchem.scf import ideal_time
from repro.apps.nwchem.tasks import total_work
from repro.errors import ReproError


class TestMolecule:
    def test_cluster_atom_counts(self):
        w = WaterCluster(6)
        assert w.n_atoms == 18
        assert w.n_electrons == 60
        atoms = w.atoms
        assert len(atoms) == 18
        assert sum(1 for a in atoms if a.symbol == "O") == 6
        assert sum(1 for a in atoms if a.symbol == "H") == 12

    def test_cluster_geometry_is_physical(self):
        import numpy as np

        w = WaterCluster(2)
        atoms = w.atoms
        o = np.array(atoms[0].position)
        h1 = np.array(atoms[1].position)
        h2 = np.array(atoms[2].position)
        assert np.linalg.norm(h1 - o) == pytest.approx(0.9572, abs=1e-4)
        assert np.linalg.norm(h2 - o) == pytest.approx(0.9572, abs=1e-4)
        # Molecules don't overlap.
        o2 = np.array(atoms[3].position)
        assert np.linalg.norm(o2 - o) > 2.0

    def test_basis_counts(self):
        w = WaterCluster(6)
        assert w.nbf("aug-cc-pVDZ") == 6 * (23 + 2 * 9)  # 246
        assert w.nbf("6-31G**") == 6 * 25
        assert w.nbf("cc-pVTZ") == 6 * 58

    def test_unknown_basis_rejected(self):
        with pytest.raises(ReproError, match="unknown basis"):
            WaterCluster(1).nbf("nope")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ReproError):
            WaterCluster(0)

    def test_paper_nbf_override(self):
        assert ScfConfig().nbf == 644
        assert ScfConfig(nbf_override=None).nbf == 246


class TestTasks:
    def test_task_count_is_nblocks_squared(self):
        tasks = fock_task_list(64, 8, 1e-3)
        assert len(tasks) == 64
        assert [t.task_id for t in tasks] == list(range(64))

    def test_blocks_partition_nbf(self):
        tasks = fock_task_list(13, 4, 1e-3)
        diag = [t for t in tasks if t.i_blk == t.j_blk]
        covered = []
        for t in diag:
            covered.extend(range(t.row_lo, t.row_hi))
        assert sorted(covered) == list(range(13))

    def test_costs_vary_but_bounded(self):
        tasks = fock_task_list(64, 8, 1e-3)
        costs = [t.cost for t in tasks]
        assert min(costs) >= 0.5e-3
        assert max(costs) <= 1.5e-3
        assert len(set(costs)) > 10  # actual variation

    def test_costs_deterministic(self):
        a = fock_task_list(64, 8, 1e-3)
        b = fock_task_list(64, 8, 1e-3)
        assert [t.cost for t in a] == [t.cost for t in b]

    def test_invalid_params_rejected(self):
        with pytest.raises(ReproError):
            fock_task_list(0, 1, 1e-3)
        with pytest.raises(ReproError):
            fock_task_list(8, 9, 1e-3)
        with pytest.raises(ReproError):
            fock_task_list(8, 2, 0.0)

    def test_total_work_positive(self):
        tasks = fock_task_list(32, 4, 1e-3)
        assert total_work(tasks) == pytest.approx(sum(t.cost for t in tasks))


SMALL = ScfConfig(nbf_override=32, nblocks=4, task_time=200e-6, iterations=1)


class TestScf:
    def test_all_tasks_executed_exactly_once(self):
        res = run_scf(4, ArmciConfig.default_mode(), SMALL, procs_per_node=4)
        assert res.tasks_done == 16

    def test_async_thread_reduces_counter_time(self):
        d = run_scf(8, ArmciConfig.default_mode(), SMALL, procs_per_node=8)
        at = run_scf(8, ArmciConfig.async_thread_mode(), SMALL, procs_per_node=8)
        assert at.counter_time_total < d.counter_time_total / 2
        assert at.total_time < d.total_time

    def test_result_labels(self):
        d = run_scf(2, ArmciConfig.default_mode(), SMALL, procs_per_node=2)
        at = run_scf(2, ArmciConfig.async_thread_mode(), SMALL, procs_per_node=2)
        assert d.config_label == "D"
        assert at.config_label == "AT"

    def test_total_time_bounded_below_by_ideal(self):
        res = run_scf(4, ArmciConfig.async_thread_mode(), SMALL, procs_per_node=4)
        assert res.total_time > ideal_time(SMALL, 4)

    def test_multiple_iterations(self):
        cfg = ScfConfig(nbf_override=16, nblocks=2, task_time=100e-6, iterations=3)
        res = run_scf(2, ArmciConfig.async_thread_mode(), cfg, procs_per_node=2)
        assert res.tasks_done == 4 * 3

    def test_counter_fraction_in_unit_range(self):
        res = run_scf(4, ArmciConfig.default_mode(), SMALL, procs_per_node=4)
        assert 0.0 <= res.counter_fraction < 1.0

    def test_strong_scaling_reduces_total_time(self):
        cfg = ScfConfig(nbf_override=64, nblocks=8, task_time=300e-6, iterations=1)
        small = run_scf(2, ArmciConfig.async_thread_mode(), cfg, procs_per_node=2)
        large = run_scf(16, ArmciConfig.async_thread_mode(), cfg, procs_per_node=16)
        assert large.total_time < small.total_time


class TestScfConvergence:
    def test_energy_series_recorded(self):
        cfg = ScfConfig(nbf_override=16, nblocks=2, task_time=100e-6, iterations=3)
        res = run_scf(2, ArmciConfig.async_thread_mode(), cfg, procs_per_node=2)
        assert len(res.energies) == 3
        assert res.iterations_run == 3
        assert not res.converged

    def test_converges_early_with_loose_tolerance(self):
        cfg = ScfConfig(
            nbf_override=16, nblocks=2, task_time=100e-6, iterations=10,
            converge_tol=1e6,  # any delta passes after two iterations
        )
        res = run_scf(2, ArmciConfig.async_thread_mode(), cfg, procs_per_node=2)
        assert res.converged
        assert res.iterations_run == 2
        assert res.tasks_done == 4 * 2

    def test_damped_density_evolves_energy(self):
        cfg = ScfConfig(nbf_override=16, nblocks=2, task_time=100e-6, iterations=3)
        res = run_scf(2, ArmciConfig.async_thread_mode(), cfg, procs_per_node=2)
        assert len(set(res.energies)) > 1  # density update changes D.F


class TestScreening:
    def test_screening_drops_distant_block_pairs(self):
        dense = fock_task_list(64, 8, 1e-3)
        screened = fock_task_list(64, 8, 1e-3, screening_threshold=0.1)
        assert 0 < len(screened) < len(dense)
        # Diagonal (|i-j| = 0) pairs always survive.
        diag = [t for t in screened if t.i_blk == t.j_blk]
        assert len(diag) == 8
        # Surviving ids stay dense for the shared counter.
        assert [t.task_id for t in screened] == list(range(len(screened)))

    def test_no_screening_keeps_full_square(self):
        assert len(fock_task_list(64, 8, 1e-3, screening_threshold=0.0)) == 64

    def test_screened_tasks_are_cheaper_off_diagonal(self):
        screened = fock_task_list(64, 8, 1e-3, screening_threshold=0.01)
        diag = {t.cost for t in screened if t.i_blk == t.j_blk}
        far = {t.cost for t in screened if abs(t.i_blk - t.j_blk) >= 2}
        if far:
            assert max(far) < max(diag)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ReproError):
            fock_task_list(64, 8, 1e-3, screening_threshold=1.5)

    def test_scf_runs_with_screening(self):
        cfg = ScfConfig(
            nbf_override=32, nblocks=4, task_time=200e-6, iterations=1,
            screening_threshold=0.1,
        )
        res = run_scf(4, ArmciConfig.async_thread_mode(), cfg, procs_per_node=4)
        assert 0 < res.tasks_done < 16


class TestScfDeterminism:
    def test_identical_runs_identical_results(self):
        cfg = ScfConfig(nbf_override=32, nblocks=4, task_time=200e-6, iterations=2)
        a = run_scf(4, ArmciConfig.async_thread_mode(), cfg, procs_per_node=4)
        b = run_scf(4, ArmciConfig.async_thread_mode(), cfg, procs_per_node=4)
        assert a.total_time == b.total_time
        assert a.energies == b.energies
        assert a.counter_time_total == b.counter_time_total
