"""Tests for the optional torus link-contention model (extension).

The paper's evaluation assumes uncongested links; this extension lets the
simulator serialize payloads on shared route links, reproducing incast
hotspots (cf. the authors' earlier hot-spot-avoidance work).
"""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.machine import BGQParams, TorusNetwork
from repro.pami import PamiWorld
from repro.sim import Engine
from repro.topology import RankMapping, Torus


def ring_mapping(nodes: int) -> RankMapping:
    """One rank per node on a 1-D ring embedded in 5 dims."""
    return RankMapping(Torus((nodes, 1, 1, 1, 1)), 1, order="ABCDET")


def make_net(nodes=8, contention=True):
    eng = Engine()
    return eng, TorusNetwork(
        eng, ring_mapping(nodes), BGQParams(), link_contention=contention
    )


class TestLinkModel:
    def test_disjoint_paths_do_not_contend(self):
        eng, net = make_net()
        a = net.put_timing(0, 1, 65536)
        b = net.put_timing(2, 3, 65536)
        # Same start: different sources, disjoint links.
        assert b.inject_start == a.inject_start

    def test_shared_link_serializes(self):
        eng, net = make_net()
        # 1 -> 0 and 2 -> 0 share the link (1,...) -> (0,...).
        a = net.put_timing(1, 0, 65536)
        b = net.put_timing(2, 0, 65536)
        assert b.inject_start >= a.inject_done

    def test_contention_disabled_ignores_shared_links(self):
        eng, net = make_net(contention=False)
        a = net.put_timing(1, 0, 65536)
        b = net.put_timing(2, 0, 65536)
        assert b.inject_start == a.inject_start

    def test_longer_route_holds_all_links(self):
        eng, net = make_net()
        # 3 -> 0 goes through links 3->2, 2->1, 1->0 (shorter direction).
        net.put_timing(3, 0, 65536)
        # A transfer on any of those links must wait.
        t = net.put_timing(2, 1, 65536)
        assert t.inject_start > 0

    def test_opposite_directions_are_independent(self):
        eng, net = make_net()
        a = net.put_timing(1, 0, 65536)
        b = net.put_timing(0, 1, 65536)  # reverse direction, its own link
        assert b.inject_start == a.inject_start

    def test_reservations_counted(self):
        eng, net = make_net()
        net.put_timing(3, 0, 1024)
        assert net.trace.count("net.link_reservations") == 3


class TestIncastEndToEnd:
    def _incast(self, contention: bool) -> float:
        """7 ranks put 64 KB to rank 0 concurrently; return makespan."""
        world = PamiWorld(
            8, procs_per_node=1,
            mapping=ring_mapping(8),
            link_contention=contention,
        )
        job = ArmciJob(8, config=ArmciConfig(), world=world)
        job.init()
        t0 = job.engine.now

        def body(rt):
            alloc = yield from rt.malloc(8 * 65536)
            yield from rt.barrier()
            if rt.rank != 0:
                src = rt.world.space(rt.rank).allocate(65536)
                yield from rt.put(0, src, alloc.addr(0) + rt.rank * 65536, 65536)
                yield from rt.fence(0)
            yield from rt.barrier()

        job.run(body)
        return job.engine.now - t0

    def test_incast_slower_under_contention(self):
        free = self._incast(contention=False)
        congested = self._incast(contention=True)
        # On the 8-ring, 3 of the 7 sources share the 1->0 link and 4
        # share 7->0, so the transfer phase roughly quadruples; barriers
        # and setup dilute the end-to-end ratio.
        assert congested > 1.5 * free

    def test_results_identical_data_either_way(self):
        # Contention changes timing only, never data (checked implicitly:
        # fences complete and the jobs run to completion in both modes).
        assert self._incast(True) > 0
        assert self._incast(False) > 0
