"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Delay, Engine, WaitAll, WaitEvent


def test_engine_starts_at_time_zero():
    assert Engine().now == 0.0


def test_schedule_and_run_orders_by_time():
    eng = Engine()
    order = []
    eng.schedule(2.0, lambda _: order.append("b"))
    eng.schedule(1.0, lambda _: order.append("a"))
    eng.schedule(3.0, lambda _: order.append("c"))
    end = eng.run()
    assert order == ["a", "b", "c"]
    assert end == 3.0


def test_equal_timestamps_run_fifo():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(1.0, lambda _, i=i: order.append(i))
    eng.run()
    assert order == list(range(10))


def test_schedule_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-0.1, lambda _: None)


def test_run_until_stops_before_future_events():
    eng = Engine()
    fired = []
    eng.schedule(5.0, lambda _: fired.append(True))
    eng.run(until=2.0)
    assert not fired
    assert eng.now == 2.0
    eng.run()
    assert fired


def test_run_until_advances_clock_past_last_event():
    eng = Engine()
    eng.schedule(1.0, lambda _: None)
    assert eng.run(until=10.0) == 10.0


def test_simple_process_delays_advance_clock():
    eng = Engine()

    def body():
        yield Delay(1.5)
        yield Delay(2.5)
        return "done"

    proc = eng.spawn(body(), name="p")
    results = eng.run_until_complete([proc])
    assert results == ["done"]
    assert eng.now == 4.0


def test_process_requires_generator():
    eng = Engine()
    with pytest.raises(SimulationError, match="generator"):
        eng.spawn(lambda: None, name="bad")  # type: ignore[arg-type]


def test_process_exception_propagates_from_run():
    eng = Engine()

    def body():
        yield Delay(1.0)
        raise ValueError("boom")

    eng.spawn(body(), name="crasher")
    with pytest.raises(SimulationError, match="crasher"):
        eng.run()


def test_event_wakes_waiting_process_with_value():
    eng = Engine()
    ev = eng.event("ping")
    got = []

    def waiter():
        value = yield WaitEvent(ev)
        got.append((eng.now, value))

    def trigger():
        yield Delay(3.0)
        ev.succeed(42)

    procs = [eng.spawn(waiter(), name="w"), eng.spawn(trigger(), name="t")]
    eng.run_until_complete(procs)
    assert got == [(3.0, 42)]


def test_yield_bare_event_is_waitevent_shorthand():
    eng = Engine()
    ev = eng.event()

    def waiter():
        yield ev
        return eng.now

    def trigger():
        yield Delay(1.0)
        ev.succeed()

    proc = eng.spawn(waiter(), name="w")
    eng.spawn(trigger(), name="t")
    assert eng.run_until_complete([proc]) == [1.0]


def test_wait_on_already_triggered_event_completes():
    eng = Engine()
    ev = eng.event()
    ev.succeed("early")

    def waiter():
        value = yield WaitEvent(ev)
        return value

    proc = eng.spawn(waiter(), name="w")
    assert eng.run_until_complete([proc]) == ["early"]


def test_event_double_succeed_rejected():
    eng = Engine()
    ev = eng.event("once")
    ev.succeed()
    with pytest.raises(SimulationError, match="twice"):
        ev.succeed()


def test_event_value_before_trigger_rejected():
    eng = Engine()
    ev = eng.event("pending")
    with pytest.raises(SimulationError, match="not triggered"):
        _ = ev.value


def test_wait_all_collects_values_in_order():
    eng = Engine()
    evs = [eng.event(str(i)) for i in range(3)]

    def waiter():
        values = yield WaitAll(evs)
        return (eng.now, values)

    def triggers():
        yield Delay(1.0)
        evs[2].succeed("c")
        yield Delay(1.0)
        evs[0].succeed("a")
        yield Delay(1.0)
        evs[1].succeed("b")

    proc = eng.spawn(waiter(), name="w")
    eng.spawn(triggers(), name="t")
    assert eng.run_until_complete([proc]) == [(3.0, ["a", "b", "c"])]


def test_wait_all_empty_completes_immediately():
    eng = Engine()

    def waiter():
        values = yield WaitAll([])
        return values

    proc = eng.spawn(waiter(), name="w")
    assert eng.run_until_complete([proc]) == [[]]


def test_wait_all_with_mix_of_triggered_and_pending():
    eng = Engine()
    done = eng.event()
    done.succeed(1)
    pending = eng.event()

    def waiter():
        values = yield WaitAll([done, pending])
        return values

    def trigger():
        yield Delay(2.0)
        pending.succeed(2)

    proc = eng.spawn(waiter(), name="w")
    eng.spawn(trigger(), name="t")
    assert eng.run_until_complete([proc]) == [[1, 2]]


def test_join_process_via_yield():
    eng = Engine()

    def child():
        yield Delay(2.0)
        return "child-result"

    def parent():
        proc = eng.spawn(child(), name="child")
        yield proc
        return eng.now

    proc = eng.spawn(parent(), name="parent")
    assert eng.run_until_complete([proc]) == [2.0]


def test_deadlock_detected_for_never_triggered_event():
    eng = Engine()
    ev = eng.event("never")

    def waiter():
        yield WaitEvent(ev)

    proc = eng.spawn(waiter(), name="stuck")
    with pytest.raises(DeadlockError, match="stuck"):
        eng.run_until_complete([proc])


def test_unsupported_yield_fails_loudly():
    eng = Engine()

    def body():
        yield 123  # not a command

    eng.spawn(body(), name="bad")
    with pytest.raises(SimulationError, match="unsupported"):
        eng.run()


def test_events_executed_counter_increases():
    eng = Engine()
    for _ in range(5):
        eng.schedule(0.0, lambda _: None)
    eng.run()
    assert eng.events_executed == 5


def test_many_processes_deterministic_completion():
    """Two identical runs produce identical event interleavings."""

    def run_once():
        eng = Engine()
        log = []

        def body(i):
            yield Delay(0.001 * (i % 7))
            log.append((eng.now, i))
            yield Delay(0.002)
            log.append((eng.now, i))

        procs = [eng.spawn(body(i), name=f"p{i}") for i in range(50)]
        eng.run_until_complete(procs)
        return log

    assert run_once() == run_once()


def test_wait_any_returns_first_event():
    from repro.sim import WaitAny

    eng = Engine()
    evs = [eng.event(str(i)) for i in range(3)]

    def waiter():
        idx, value = yield WaitAny(evs)
        return (eng.now, idx, value)

    def trigger():
        yield Delay(2.0)
        evs[1].succeed("middle")
        yield Delay(1.0)
        evs[0].succeed("late")

    proc = eng.spawn(waiter(), name="w")
    eng.spawn(trigger(), name="t")
    assert eng.run_until_complete([proc]) == [(2.0, 1, "middle")]


def test_wait_any_with_already_triggered_prefers_lowest_index():
    from repro.sim import WaitAny

    eng = Engine()
    a, b = eng.event(), eng.event()
    b.succeed("b")
    a.succeed("a")

    def waiter():
        idx, value = yield WaitAny([a, b])
        return (idx, value)

    proc = eng.spawn(waiter(), name="w")
    assert eng.run_until_complete([proc]) == [(0, "a")]


def test_wait_any_empty_rejected():
    from repro.errors import SimulationError
    from repro.sim import WaitAny

    with pytest.raises(SimulationError):
        WaitAny([])


def test_wait_any_other_events_reusable():
    """Events not chosen by WaitAny can still be waited on later."""
    from repro.sim import WaitAny, WaitEvent

    eng = Engine()
    fast, slow = eng.event(), eng.event()

    def waiter():
        idx, _ = yield WaitAny([fast, slow])
        assert idx == 0
        value = yield WaitEvent(slow)
        return (eng.now, value)

    def trigger():
        yield Delay(1.0)
        fast.succeed()
        yield Delay(1.0)
        slow.succeed("done")

    proc = eng.spawn(waiter(), name="w")
    eng.spawn(trigger(), name="t")
    assert eng.run_until_complete([proc]) == [(2.0, "done")]


def test_trace_sample_series():
    from repro.sim import Trace

    # Default: histogram-only (O(1) memory), no raw retention.
    trace = Trace()
    trace.sample("lat", 1.0)
    trace.sample("lat", 2.0)
    assert trace.samples == {}
    summary = trace.sample_summary("lat")
    assert summary["count"] == 2
    assert summary["min"] == 1.0 and summary["max"] == 2.0
    assert summary["sum"] == pytest.approx(3.0)
    trace.clear()
    assert trace.sample_summary("lat") == {}

    # Opt-in raw retention restores exact series access.
    trace = Trace(keep_raw_samples=True)
    trace.sample("lat", 1.0)
    trace.sample("lat", 2.0)
    assert trace.samples["lat"] == [1.0, 2.0]
    trace.clear()
    assert not trace.samples


# ------------------------------------------------- schedule policies


def test_cancelled_timer_subclass_is_skipped():
    # Regression: the run loop used a `type(...) is Timer` check, so a
    # cancelled Timer *subclass* popped from the heap executed as a
    # no-op callback but still advanced the clock to its expiry.
    from repro.sim.engine import Timer

    class DeadlineTimer(Timer):
        pass

    eng = Engine()
    timer = DeadlineTimer(lambda _a: None, None)
    eng._push(5.0, timer, None)
    timer.cancel()
    eng.run()
    assert eng.now == 0.0
    assert eng.events_executed == 0


def test_cancelled_timer_skipped_under_policy():
    from repro.sim.engine import RandomTieBreakPolicy

    eng = Engine(policy=RandomTieBreakPolicy(7))
    fired = []
    t1 = eng.schedule_timer(1.0, lambda _a: fired.append("a"))
    eng.schedule_timer(1.0, lambda _a: fired.append("b"))
    t1.cancel()
    eng.run()
    assert fired == ["b"]
    assert eng.events_executed == 1


def test_non_callable_schedule_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(1.0, "not-a-callback")


def test_fifo_policy_matches_default_order():
    from repro.sim.engine import SchedulePolicy

    def run(engine):
        order = []
        for i in range(20):
            engine.schedule(1e-6, lambda _a, i=i: order.append(i))
        engine.run()
        return order

    assert run(Engine()) == run(Engine(policy=SchedulePolicy()))


def test_random_policy_reorders_equal_timestamps():
    from repro.sim.engine import RandomTieBreakPolicy

    def run(policy):
        eng = Engine(policy=policy)
        order = []
        for i in range(20):
            eng.schedule(1e-6, lambda _a, i=i: order.append(i))
        eng.run()
        return order

    fifo = run(None)
    shuffled = run(RandomTieBreakPolicy(1))
    assert sorted(shuffled) == sorted(fifo)
    assert shuffled != fifo  # seed 1 permutes 20 equal-time events


def test_random_policy_is_deterministic_per_seed():
    from repro.sim.engine import RandomTieBreakPolicy

    def digest(seed):
        eng = Engine(policy=RandomTieBreakPolicy(seed))
        for i in range(50):
            eng.schedule(1e-6, lambda _a: None)
        eng.run()
        return eng.schedule_digest

    assert digest(3) == digest(3)
    assert digest(3) != digest(4)


def test_policy_never_reorders_across_timestamps():
    from repro.sim.engine import RandomTieBreakPolicy

    eng = Engine(policy=RandomTieBreakPolicy(0))
    order = []
    for i in range(10):
        eng.schedule(i * 1e-6, lambda _a, i=i: order.append(i))
    eng.run()
    assert order == list(range(10))


def test_random_policy_limit_bounds_perturbation():
    from repro.sim.engine import RandomTieBreakPolicy

    def run(limit):
        eng = Engine(policy=RandomTieBreakPolicy(5, limit=limit))
        order = []
        for i in range(20):
            eng.schedule(1e-6, lambda _a, i=i: order.append(i))
        eng.run()
        return order

    assert run(0) == list(range(20))  # limit=0 is pure FIFO
    assert run(None) != list(range(20))


def test_pct_policy_demotes_events():
    from repro.sim.engine import PriorityPerturbationPolicy

    eng = Engine(policy=PriorityPerturbationPolicy(2, bands=2, demotions=3,
                                                   horizon=16))
    order = []
    for i in range(16):
        eng.schedule(1e-6, lambda _a, i=i: order.append(i))
    eng.run()
    assert sorted(order) == list(range(16))
    assert order != list(range(16))


def test_record_schedule_log():
    from repro.sim.engine import SchedulePolicy

    eng = Engine(policy=SchedulePolicy(), record_schedule=True)
    eng.schedule(1e-6, lambda _a: None)
    eng.schedule(2e-6, lambda _a: None)
    eng.run()
    assert eng.schedule_log == [(1e-6, 0), (2e-6, 1)]


def test_default_engine_keeps_digest_bookkeeping_off():
    eng = Engine()
    eng.schedule(1e-6, lambda _a: None)
    eng.run()
    assert eng.schedule_digest == 0
    assert eng.schedule_log == []


def test_invalid_policy_type_rejected():
    with pytest.raises(SimulationError):
        Engine(policy="random")


def test_policy_parameter_validation():
    from repro.sim.engine import (
        PriorityPerturbationPolicy,
        RandomTieBreakPolicy,
    )

    with pytest.raises(SimulationError):
        RandomTieBreakPolicy(0, limit=-1)
    with pytest.raises(SimulationError):
        PriorityPerturbationPolicy(0, bands=0)
    with pytest.raises(SimulationError):
        PriorityPerturbationPolicy(0, demotions=-1)
    with pytest.raises(SimulationError):
        PriorityPerturbationPolicy(0, horizon=0)
