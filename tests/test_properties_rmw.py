"""Property-based tests of AMO semantics and accumulate associativity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import ArmciConfig, ArmciJob

#: Conformance suite: every test in this module runs once per backend
#: (the ``backend`` fixture re-points ``repro.transport.DEFAULT_BACKEND``).
pytestmark = pytest.mark.usefixtures("backend")


def make_job(num_procs=2, **kwargs):
    job = ArmciJob(
        num_procs,
        config=kwargs.pop("config", ArmciConfig()),
        procs_per_node=kwargs.pop("procs_per_node", min(num_procs, 16)),
        **kwargs,
    )
    job.init()
    return job


RMW_OP = st.sampled_from(["fetch_add", "swap", "compare_swap", "fetch"])


class TestRmwStateMachine:
    @given(
        ops=st.lists(
            st.tuples(
                RMW_OP,
                st.integers(-1000, 1000),
                st.integers(-1000, 1000),
            ),
            min_size=1,
            max_size=12,
        ),
        initial=st.integers(-1000, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sequential_rmw_matches_reference_model(self, ops, initial):
        """A single initiator's op sequence returns exactly the values a
        sequential reference interpreter produces (AMO atomicity +
        per-initiator ordering)."""
        job = make_job()
        results = {}

        def body(rt):
            alloc = yield from rt.malloc(8)
            if rt.rank == 1:
                rt.world.space(1).write_i64(alloc.addr(1), initial)
            yield from rt.barrier()
            if rt.rank == 0:
                observed = []
                for op, a, b in ops:
                    old = yield from rt.rmw(1, alloc.addr(1), op, a, b)
                    observed.append(old)
                results["observed"] = observed
            yield from rt.barrier()
            if rt.rank == 1:
                results["final"] = rt.world.space(1).read_i64(alloc.addr(1))

        job.run(body)

        # Reference interpreter.
        value = initial
        expected = []
        for op, a, b in ops:
            expected.append(value)
            if op == "fetch_add":
                value += a
            elif op == "swap":
                value = a
            elif op == "compare_swap":
                value = b if value == a else value
        assert results["observed"] == expected
        assert results["final"] == value

    @given(
        increments=st.lists(st.integers(1, 50), min_size=2, max_size=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_concurrent_fetch_add_conserves_sum(self, increments):
        """Concurrent fetch_adds from many ranks: the final value equals
        the sum and the returned old values are consistent with *some*
        serialization (distinct partial sums)."""
        p = len(increments) + 1
        job = make_job(num_procs=p, procs_per_node=min(p, 16))
        olds = {}

        def body(rt):
            alloc = yield from rt.malloc(8)
            yield from rt.barrier()
            if rt.rank > 0:
                old = yield from rt.rmw(
                    0, alloc.addr(0), "fetch_add", increments[rt.rank - 1]
                )
                olds[rt.rank] = old
            yield from rt.barrier()
            if rt.rank == 0:
                return rt.world.space(0).read_i64(alloc.addr(0))

        results = job.run(body)
        assert results[0] == sum(increments)
        # Old values must be distinct prefix-sums of some permutation.
        observed = sorted(olds.values())
        assert observed[0] == 0
        assert len(set(observed)) == len(observed)


class TestAccumulateProperties:
    @given(
        seed=st.integers(0, 2**16),
        n_accs=st.integers(2, 5),
    )
    @settings(max_examples=10, deadline=None)
    def test_accumulate_order_independent_sum(self, seed, n_accs):
        """Accumulates are associative/commutative: any arrival order
        yields the same target values (Section III-E's rationale for not
        ordering them)."""
        rng = np.random.default_rng(seed)
        contributions = rng.integers(-5, 6, size=(n_accs, 8)).astype(float)
        scales = rng.integers(1, 4, size=n_accs).astype(float)
        p = n_accs + 1
        job = make_job(num_procs=p, procs_per_node=min(p, 16))

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank > 0:
                i = rt.rank - 1
                src = rt.world.space(rt.rank).allocate(64)
                rt.world.space(rt.rank).write_f64(src, contributions[i])
                # Stagger posting order pseudo-randomly.
                yield from rt.compute(float(rng.integers(0, 50)) * 1e-6)
                yield from rt.acc(0, src, alloc.addr(0), 64, scale=scales[i])
                yield from rt.fence(0)
            yield from rt.barrier()
            if rt.rank == 0:
                return rt.world.space(0).read_f64(alloc.addr(0), 8)

        results = job.run(body)
        expected = (contributions * scales[:, None]).sum(axis=0)
        np.testing.assert_allclose(results[0], expected)
