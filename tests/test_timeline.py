"""Tests for interval tracing and text Gantt rendering."""

import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.sim.trace import Interval, Trace
from repro.util import render_timeline


class TestTraceIntervals:
    def test_disabled_by_default(self):
        trace = Trace()
        trace.interval("r0", "compute", 0.0, 1.0)
        assert trace.intervals == []

    def test_enabled_records(self):
        trace = Trace(record_intervals=True)
        trace.interval("r0", "compute", 0.0, 1.0)
        trace.interval("r0", "empty", 1.0, 1.0)  # zero-length dropped
        assert len(trace.intervals) == 1
        assert trace.intervals[0] == Interval("r0", "compute", 0.0, 1.0)

    def test_clear_resets(self):
        trace = Trace(record_intervals=True)
        trace.interval("r0", "compute", 0.0, 1.0)
        trace.clear()
        assert trace.intervals == []


class TestRenderTimeline:
    def test_basic_lanes_and_glyphs(self):
        intervals = [
            Interval("r0", "compute", 0.0, 5.0),
            Interval("r1", "counter", 2.0, 4.0),
            Interval("r1", "barrier", 4.0, 5.0),
        ]
        out = render_timeline(intervals, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("r0 ")
        assert "#" in lines[0]
        assert "c" in lines[1] and "|" in lines[1]
        assert ".=idle" in lines[-1]

    def test_empty_renders_placeholder(self):
        # An empty interval list is a normal state (intervals are opt-in),
        # not a caller error.
        assert render_timeline([]) == "(no intervals recorded)"

    def test_zero_span_rejected(self):
        with pytest.raises(ValueError):
            render_timeline([Interval("r0", "x", 1.0, 2.0)], t0=5.0, t1=5.0)

    def test_armci_job_records_when_enabled(self):
        job = ArmciJob(2, procs_per_node=1, config=ArmciConfig())
        job.trace.record_intervals = True
        job.init()

        def body(rt):
            alloc = yield from rt.malloc(64)
            if rt.rank == 0:
                src = rt.world.space(0).allocate(64)
                yield from rt.put(1, src, alloc.addr(1), 64)
                # A non-blocking put leaves its ack outstanding so the
                # fence actually waits (a zero-length fence records no
                # interval).
                yield from rt.nbput(1, src, alloc.addr(1), 64)
                yield from rt.fence(1)
                yield from rt.compute(10e-6)
                yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
            yield from rt.barrier()

        job.run(body)
        labels = {iv.label for iv in job.trace.intervals}
        assert {"put", "fence", "compute", "counter", "barrier"} <= labels
        out = render_timeline(job.trace.intervals)
        assert "r0" in out and "r1" in out

    def test_no_overhead_when_disabled(self):
        job = ArmciJob(2, procs_per_node=1, config=ArmciConfig())
        job.init()

        def body(rt):
            yield from rt.compute(1e-6)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.intervals == []


class TestRuntimeReport:
    def test_report_reflects_activity(self):
        job = ArmciJob(2, procs_per_node=1, config=ArmciConfig())
        job.init()

        def body(rt):
            alloc = yield from rt.malloc(64)
            if rt.rank == 0:
                src = rt.world.space(0).allocate(64)
                yield from rt.put(1, src, alloc.addr(1), 64)
                yield from rt.fence(1)
                yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
            yield from rt.barrier()

        job.run(body)
        report = job.report()
        assert "RDMA puts" in report
        assert "read-modify-writes" in report
        assert "barriers" in report
        assert "payload bytes moved" in report
        assert "D mode" in report

    def test_report_elides_unused_subsystems(self):
        job = ArmciJob(1, procs_per_node=1, config=ArmciConfig())
        job.init()
        job.run(lambda rt: rt.barrier())
        report = job.report()
        assert "strided" not in report
        assert "mutex" not in report


class TestChromeTraceExport:
    def test_events_are_valid_trace_format(self):
        import json

        from repro.util.timeline import to_chrome_trace

        intervals = [
            Interval("r0", "compute", 1e-6, 3e-6),
            Interval("r1", "counter", 2e-6, 4e-6),
        ]
        events = to_chrome_trace(intervals)
        assert len(events) == 2
        assert events[0]["ph"] == "X"
        assert events[0]["ts"] == pytest.approx(1.0)
        assert events[0]["dur"] == pytest.approx(2.0)
        assert events[0]["tid"] != events[1]["tid"]
        json.dumps({"traceEvents": events})  # serializable

    def test_lanes_map_to_stable_tids(self):
        from repro.util.timeline import to_chrome_trace

        intervals = [
            Interval("r0", "a", 0, 1),
            Interval("r1", "b", 0, 1),
            Interval("r0", "c", 1, 2),
        ]
        events = to_chrome_trace(intervals)
        assert events[0]["tid"] == events[2]["tid"]


class TestTimelineWindows:
    def test_explicit_window_clips(self):
        intervals = [
            Interval("r0", "compute", 0.0, 10.0),
            Interval("r0", "counter", 12.0, 14.0),
        ]
        out = render_timeline(intervals, width=10, t0=0.0, t1=10.0)
        row = out.splitlines()[0]
        assert "#" in row

    def test_unknown_label_uses_first_letter(self):
        out = render_timeline([Interval("r0", "zap", 0.0, 1.0)], width=5)
        assert "z" in out.splitlines()[0]
