"""Tests for ``repro.serve``: mailboxes, selectors, termination, KV.

The whole module runs once per communication backend (pami + mpi3) via
the shared ``backend`` fixture — the serve layer sits strictly above
the transport, so every behaviour here must hold on both.
"""

import numpy as np
import pytest

from repro.armci import ArmciConfig, ArmciJob
from repro.chaos import ChaosConfig, FaultPlan
from repro.errors import ArmciError
from repro.serve import (
    Actor,
    ActorSystem,
    ClientLoadConfig,
    FourCounterTermination,
    InboxSpec,
    KIND_PUT,
    KvConfig,
    SLOT_DTYPE,
    generate_requests,
    golden_state,
    merge_watermark,
    run_kv,
    shard_of,
)

pytestmark = pytest.mark.usefixtures("backend")


def make_job(num_procs=2, **kwargs):
    job = ArmciJob(
        num_procs,
        config=kwargs.pop("config", ArmciConfig()),
        procs_per_node=min(num_procs, 16),
        **kwargs,
    )
    job.init()
    return job


def make_records(keys, kind=KIND_PUT, client=0):
    records = np.zeros(len(keys), dtype=SLOT_DTYPE)
    records["kind"] = kind
    records["client"] = client
    records["key"] = keys
    records["value"] = np.asarray(keys, dtype=np.float64)
    return records


class RecordingActor(Actor):
    """Appends every delivered (sender, keys) batch, in order."""

    def __init__(self):
        self.batches = []

    def on_batch(self, system, inbox, sender, records):
        self.batches.append((inbox, sender, records["key"].copy()))

    def keys_from(self, sender):
        chunks = [k for _, s, k in self.batches if s == sender]
        return np.concatenate(chunks) if chunks else np.empty(0, np.uint64)


def run_sink(job, capacity, per_sender, n_inboxes=1):
    """Ranks 1..P-1 each post ``per_sender`` records to a sink on rank 0."""
    sinks = {}

    def body(rt):
        system = ActorSystem(rt)
        sink = RecordingActor() if rt.rank == 0 else None
        if sink is not None:
            sinks[0] = sink
        senders = tuple(range(1, rt.world.num_procs))
        inboxes = tuple(
            InboxSpec(f"in{i}", capacity, senders=senders)
            for i in range(n_inboxes)
        )
        yield from system.register("sink", owner=0, actor=sink, inboxes=inboxes)
        detector = yield from FourCounterTermination.create(rt)
        if rt.rank > 0:
            for i in range(n_inboxes):
                system.post("sink", f"in{i}", make_records(range(per_sender)))
        yield from system.run(detector)

    job.run(body)
    return sinks[0]


class TestMailbox:
    def test_fifo_through_wrap_and_backpressure(self):
        # 100 records through an 8-slot ring: forced wrap-around and
        # head-refresh backpressure, with per-sender FIFO preserved.
        job = make_job(2)
        sink = run_sink(job, capacity=8, per_sender=100)
        np.testing.assert_array_equal(sink.keys_from(1), np.arange(100))
        assert job.trace.count("serve.backpressure_deferrals") > 0
        assert job.trace.count("serve.head_refreshes") > 0
        assert job.trace.count("serve.records_delivered") == 100

    def test_per_sender_lanes_are_independent(self):
        job = make_job(4)
        sink = run_sink(job, capacity=16, per_sender=40)
        for sender in (1, 2, 3):
            np.testing.assert_array_equal(sink.keys_from(sender), np.arange(40))

    def test_loopback_posts_never_touch_the_wire(self):
        job = make_job(2)

        def body(rt):
            system = ActorSystem(rt)
            sink = RecordingActor() if rt.rank == 0 else None
            yield from system.register(
                "sink", owner=0, actor=sink,
                inboxes=(InboxSpec("in0", 16),),
            )
            detector = yield from FourCounterTermination.create(rt)
            if rt.rank == 0:
                system.post("sink", "in0", make_records(range(7)))
            yield from system.run(detector)
            return len(sink.batches) if sink is not None else 0

        job.run(body)
        assert job.trace.count("serve.local_deliveries") == 7
        assert job.trace.count("serve.wire_flushes") == 0

    def test_post_validates_dtype_and_inbox(self):
        job = make_job(2)

        def body(rt):
            system = ActorSystem(rt)
            sink = RecordingActor() if rt.rank == 0 else None
            yield from system.register(
                "sink", owner=0, actor=sink, inboxes=(InboxSpec("in0", 16),)
            )
            detector = yield from FourCounterTermination.create(rt)
            if rt.rank == 1:
                with pytest.raises(ArmciError):
                    system.post("sink", "in0", np.zeros(3, dtype=np.float64))
                with pytest.raises(ArmciError):
                    system.post("sink", "nope", make_records([1]))
            yield from system.run(detector)

        job.run(body)


class GuardedActor(Actor):
    """Selector semantics: ``data`` inbox stays closed until a ``ctl``
    message opens it."""

    def __init__(self):
        self.open = False
        self.order = []

    def guard(self, inbox):
        return inbox != "data" or self.open

    def on_batch(self, system, inbox, sender, records):
        self.order.append(inbox)
        if inbox == "ctl":
            self.open = True


class TestSelector:
    def test_guard_defers_until_enabled(self):
        job = make_job(2)
        actors = {}

        def body(rt):
            system = ActorSystem(rt)
            actor = GuardedActor() if rt.rank == 0 else None
            if actor is not None:
                actors[0] = actor
            # "data" registered first so the poll loop hits the closed
            # guard before anything can open it.
            yield from system.register(
                "sel", owner=0, actor=actor,
                inboxes=(
                    InboxSpec("data", 16, senders=(1,)),
                    InboxSpec("ctl", 16, senders=(1,)),
                ),
            )
            detector = yield from FourCounterTermination.create(rt)
            if rt.rank == 1:
                system.post("sel", "data", make_records(range(5)))
                system.post("sel", "ctl", make_records([0]))
            yield from system.run(detector)

        job.run(body)
        actor = actors[0]
        # ctl delivered strictly before the guarded data batch.
        assert actor.order[0] == "ctl"
        assert "data" in actor.order
        assert job.trace.count("serve.guard_deferrals") > 0


class TestAggregation:
    def test_one_wire_flush_covers_multiple_inboxes(self):
        # Records queued for several inboxes of the same destination go
        # out as a single aggregated vector put.
        job = make_job(2)
        before = job.trace.count("armci.aggregate_flushes")
        sink = run_sink(job, capacity=64, per_sender=10, n_inboxes=3)
        assert sum(len(k) for _, _, k in sink.batches) == 30
        # One serve-layer flush == one armci-layer aggregate flush.
        assert job.trace.count("serve.wire_flushes") == (
            job.trace.count("armci.aggregate_flushes") - before
        )
        assert job.trace.count("serve.wire_flushes") >= 1


class TestTermination:
    def test_merge_watermark_is_fetch_max(self):
        job = make_job(2)
        seen = {}

        def body(rt):
            alloc = yield from rt.malloc(8)
            yield from rt.barrier()
            if rt.rank == 1:
                ok = yield from merge_watermark(rt, 0, alloc.addr(0), 7)
                assert ok
                ok = yield from merge_watermark(rt, 0, alloc.addr(0), 3)
                assert ok
            yield from rt.barrier()
            if rt.rank == 0:
                seen[0] = rt.world.space(0).read_i64(alloc.addr(0))

        job.run(body)
        assert seen[0] == 7  # the lower merge did not regress it

    def test_merge_watermark_reports_dead_host(self):
        job = make_job(2, fault_plan=FaultPlan().crash(1, at=2e-3))
        outcomes = {}

        def body(rt):
            alloc = yield from rt.malloc(8)
            yield from rt.barrier()
            if rt.rank == 0:
                while not rt.world.is_failed(1):
                    yield from rt.progress()
                outcomes[0] = yield from merge_watermark(
                    rt, 1, alloc.addr(1), 5
                )

        job.run(body)
        assert outcomes[0] is False

    def test_quiescent_system_needs_two_waves(self):
        job = make_job(4)
        waves = {}

        def body(rt):
            detector = yield from FourCounterTermination.create(rt)
            n = 0
            while True:
                n += 1
                done = yield from detector.wave((0, 0, True))
                if done:
                    break
            waves[rt.rank] = n

        job.run(body)
        # One balanced snapshot is never enough: the verdict requires
        # two consecutive identical waves.
        assert all(n >= 2 for n in waves.values())
        assert job.trace.count("serve.waves_coordinated") >= 2


def small_load(**overrides):
    base = dict(
        num_clients=512,
        requests_per_client=2,
        num_keys=128,
        put_keys_per_rank=8,
        rate=2e5,
        arrival="poisson",
        deadline=5e-3,
        seed=42,
    )
    base.update(overrides)
    return ClientLoadConfig(**base)


class TestKv:
    def test_clean_run_is_exact(self):
        r = run_kv(4, load=small_load(), kv_config=KvConfig(num_shards=2),
                   procs_per_node=4)
        assert r.exact, f"{r.mismatched_keys} keys diverged"
        assert r.responses == r.requests
        assert r.failovers == 0

    def test_chaos_run_is_exact(self):
        r = run_kv(
            4, load=small_load(arrival="bursty"),
            kv_config=KvConfig(num_shards=2), procs_per_node=4,
            chaos=ChaosConfig.light(7),
        )
        assert r.exact
        assert r.responses == r.requests

    def test_crash_failover_preserves_exactness(self):
        # Rank 1 (shard 1 primary, shard 0 replica host) dies while
        # traffic is in flight; clients fail over to shard 1's replica
        # on rank 0 and the audit must still match the golden model.
        r = run_kv(
            4, load=small_load(num_clients=1024, rate=2e5, seed=3),
            kv_config=KvConfig(num_shards=2), procs_per_node=4,
            fault_plan=FaultPlan().crash(1, at=6e-3),
        )
        assert r.exact
        assert r.failovers >= 1
        assert r.responses <= r.requests

    def test_coordinator_crash_failover(self):
        # Rank 0 is both shard 0's primary and the termination
        # coordinator: its death exercises detector re-aiming too.
        r = run_kv(
            4, load=small_load(num_clients=1024, rate=2e5, seed=5),
            kv_config=KvConfig(num_shards=2), procs_per_node=4,
            fault_plan=FaultPlan().crash(0, at=6e-3),
        )
        assert r.exact
        assert r.failovers >= 1

    def test_without_replication_clean_run_is_exact(self):
        r = run_kv(
            3, load=small_load(num_clients=256),
            kv_config=KvConfig(num_shards=2, replicate=False),
            procs_per_node=3,
        )
        assert r.exact

    def test_needs_at_least_one_client_rank(self):
        with pytest.raises(ArmciError):
            run_kv(2, kv_config=KvConfig(num_shards=2))


class TestClients:
    def test_generation_is_deterministic(self):
        cfg = small_load()
        a = generate_requests(cfg, 0, 2)
        b = generate_requests(cfg, 0, 2)
        np.testing.assert_array_equal(a, b)
        c = generate_requests(cfg, 1, 2)
        assert not np.array_equal(a, c)

    def test_arrivals_sorted_and_keys_in_range(self):
        cfg = small_load(arrival="bursty")
        req = generate_requests(cfg, 0, 2)
        assert (np.diff(req["arrival"]) >= 0).all()
        assert (req["key"] < cfg.total_keys(2)).all()

    def test_golden_state_matches_serial_replay(self):
        cfg = small_load(num_clients=32, num_keys=16, put_keys_per_rank=4)
        n_ranks = 2
        golden = golden_state(cfg, n_ranks)
        state = np.zeros(cfg.total_keys(n_ranks))
        for i in range(n_ranks):
            for r in generate_requests(cfg, i, n_ranks):
                kind, key, value = int(r["kind"]), int(r["key"]), r["value"]
                if kind == 2:  # ACC
                    state[key] += value
                elif kind == 3:  # PUT
                    state[key] = value
        np.testing.assert_array_equal(golden, state)

    def test_shard_of_is_stable_partition(self):
        keys = np.arange(1000, dtype=np.uint64)
        shards = shard_of(keys, 4)
        assert ((shards >= 0) & (shards < 4)).all()
        np.testing.assert_array_equal(shards, shard_of(keys, 4))

    def test_config_validation(self):
        with pytest.raises(ArmciError):
            ClientLoadConfig(get_fraction=0.9, acc_fraction=0.5)
        with pytest.raises(ArmciError):
            ClientLoadConfig(burst_factor=8.0, duty_cycle=0.5)


class TestReport:
    def test_serving_section_present_after_run(self):
        jobs = []
        run_kv(4, load=small_load(num_clients=128), procs_per_node=4,
               kv_config=KvConfig(num_shards=2), on_job=jobs.append)
        text = jobs[0].report()
        assert "serving" in text
        assert "p99" in text
        assert "response throughput" in text

    def test_inert_by_default(self):
        # A job that never touches repro.serve renders no serving rows.
        job = make_job(2)

        def body(rt):
            yield from rt.barrier()

        job.run(body)
        assert job.serve_metrics is None
        assert "serving" not in job.report()
