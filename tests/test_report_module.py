"""Tests for the runtime report layout module."""

from repro.armci import ArmciConfig, ArmciJob
from repro.armci.report import _COUNTER_LAYOUT, runtime_report


class TestCounterLayout:
    def test_layout_keys_unique(self):
        keys = [key for _s, key, _l in _COUNTER_LAYOUT]
        assert len(keys) == len(set(keys))

    def test_labels_unique(self):
        labels = [label for _s, _k, label in _COUNTER_LAYOUT]
        assert len(labels) == len(set(labels))

    def test_sections_are_known(self):
        sections = {s for s, _k, _l in _COUNTER_LAYOUT}
        assert sections <= {
            "protocols", "datapath", "aggregation", "caches",
            "synchronization", "resilience", "progress", "network",
            "serving",
        }


class TestRuntimeReport:
    def test_every_protocol_family_reportable(self):
        """Exercise one op of each family and check its report line."""
        import numpy as np

        from repro.armci.vector import IoVector
        from repro.types import StridedDescriptor, StridedShape

        job = ArmciJob(2, procs_per_node=1, config=ArmciConfig.async_thread_mode())
        job.init()

        def body(rt):
            alloc = yield from rt.malloc(4096)
            yield from rt.barrier()
            if rt.rank == 0:
                space = rt.world.space(0)
                buf = space.allocate(1024)
                yield from rt.put(1, buf, alloc.addr(1), 64)
                yield from rt.get(1, buf, alloc.addr(1), 64)
                desc = StridedDescriptor(StridedShape(32, (2,)), (32,), (64,))
                yield from rt.puts(1, buf, alloc.addr(1), desc)
                yield from rt.putv(
                    1, IoVector((buf,), (alloc.addr(1) + 512,), (32,))
                )
                space.write_f64(buf, np.ones(4))
                yield from rt.acc(1, buf, alloc.addr(1) + 1024, 32)
                yield from rt.rmw(1, alloc.addr(1) + 2048, "fetch_add", 1)
                yield from rt.notify(1)
                yield from rt.lock(0)
                yield from rt.unlock(0)
                agg = rt.aggregate(1)
                agg.put(buf, alloc.addr(1) + 3000, 16)
                yield from agg.flush()
                yield from rt.fence_all()
                yield from rt.barrier()
                return
            yield from rt.notify_wait(0)
            yield from rt.barrier()

        job.run(body)
        report = runtime_report(job)
        for needle in (
            "RDMA puts", "RDMA gets", "strided puts (zero-copy)",
            "vector puts (zero-copy)", "vector puts (typed/aggregated)",
            "accumulates", "read-modify-writes", "fragments staged",
            "endpoints created", "fences", "mutex acquisitions",
            "notifications sent", "items by async threads",
            "payload bytes moved", "simulated clock",
        ):
            assert needle in report, needle
