"""Unit tests for simulated locks, semaphores, and queues."""

import pytest

from repro.errors import SimulationError
from repro.sim import Delay, Engine, Lock, Queue, Semaphore


def test_semaphore_initial_count_available():
    eng = Engine()
    sem = Semaphore(eng, count=3)
    assert sem.available == 3


def test_semaphore_negative_count_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        Semaphore(eng, count=-1)


def test_semaphore_try_acquire():
    eng = Engine()
    sem = Semaphore(eng, count=1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_lock_mutual_exclusion_and_fifo_grant():
    eng = Engine()
    lock = Lock(eng)
    order = []

    def worker(i):
        yield lock.acquire()
        order.append(("in", i, eng.now))
        yield Delay(1.0)
        order.append(("out", i, eng.now))
        lock.release()

    procs = [eng.spawn(worker(i), name=f"w{i}") for i in range(3)]
    eng.run_until_complete(procs)
    # Strictly serialized, FIFO: w0 then w1 then w2.
    assert order == [
        ("in", 0, 0.0),
        ("out", 0, 1.0),
        ("in", 1, 1.0),
        ("out", 1, 2.0),
        ("in", 2, 2.0),
        ("out", 2, 3.0),
    ]


def test_lock_release_when_not_held_rejected():
    eng = Engine()
    lock = Lock(eng)
    with pytest.raises(SimulationError, match="not held"):
        lock.release()


def test_lock_locked_property():
    eng = Engine()
    lock = Lock(eng)
    assert not lock.locked
    assert lock.try_acquire()
    assert lock.locked
    lock.release()
    assert not lock.locked


def test_queue_put_then_get():
    eng = Engine()
    q = Queue(eng)
    q.put("x")
    assert len(q) == 1

    def getter():
        item = yield q.get()
        return item

    proc = eng.spawn(getter(), name="g")
    assert eng.run_until_complete([proc]) == ["x"]
    assert len(q) == 0


def test_queue_get_blocks_until_put():
    eng = Engine()
    q = Queue(eng)

    def getter():
        item = yield q.get()
        return (eng.now, item)

    def putter():
        yield Delay(2.0)
        q.put("late")

    proc = eng.spawn(getter(), name="g")
    eng.spawn(putter(), name="p")
    assert eng.run_until_complete([proc]) == [(2.0, "late")]


def test_queue_fifo_order_across_blocked_getters():
    eng = Engine()
    q = Queue(eng)
    got = []

    def getter(i):
        item = yield q.get()
        got.append((i, item))

    def putter():
        yield Delay(1.0)
        q.put("a")
        q.put("b")

    procs = [eng.spawn(getter(i), name=f"g{i}") for i in range(2)]
    eng.spawn(putter(), name="p")
    eng.run_until_complete(procs)
    assert got == [(0, "a"), (1, "b")]


def test_queue_get_nowait_empty_raises():
    eng = Engine()
    q = Queue(eng)
    with pytest.raises(SimulationError, match="empty"):
        q.get_nowait()


def test_queue_peek_all_preserves_items():
    eng = Engine()
    q = Queue(eng)
    q.put(1)
    q.put(2)
    assert q.peek_all() == (1, 2)
    assert len(q) == 2


def test_semaphore_bounds_concurrency():
    eng = Engine()
    sem = Semaphore(eng, count=2)
    active = [0]
    peak = [0]

    def worker():
        yield sem.acquire()
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield Delay(1.0)
        active[0] -= 1
        sem.release()

    procs = [eng.spawn(worker(), name=f"w{i}") for i in range(6)]
    eng.run_until_complete(procs)
    assert peak[0] == 2
    assert eng.now == 3.0  # 6 workers, 2 at a time, 1s each
