"""Tests for the torus link model and fault-aware routing.

Covers link enumeration (including the size-1 and size-2 wrap edge
cases), canonical link keys, the mutable ``LinkState``, and the
``RouteTable``'s fall-back from dimension-order to shortest-path over
healthy links — with deterministic tie-breaks and epoch-based cache
invalidation.
"""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    LinkState,
    RouteTable,
    Torus,
    dimension_order_route,
    enumerate_links,
    link_key,
)


def expected_link_count(shape):
    """ndim * N for sizes >= 3; size-2 dims contribute N/2; size-1 none."""
    n = 1
    for s in shape:
        n *= s
    total = 0
    for s in shape:
        if s == 1:
            continue
        total += n if s >= 3 else n // 2
    return total


class TestEnumerateLinks:
    @pytest.mark.parametrize(
        "shape",
        [(4,), (3, 3), (4, 2), (2, 2, 2), (3, 1, 4), (1, 1, 1), (5, 2, 1)],
    )
    def test_counts(self, shape):
        links = enumerate_links(Torus(shape))
        assert len(links) == expected_link_count(shape)

    def test_full_torus_count_is_ndim_n(self):
        # All dims >= 3: exactly ndim * N links.
        torus = Torus((3, 4, 3))
        assert len(enumerate_links(torus)) == 3 * 36

    def test_size_two_dims_not_double_counted(self):
        # In a size-2 dim, +1 and -1 reach the same neighbor: one link.
        torus = Torus((2,))
        links = enumerate_links(torus)
        assert len(links) == 1
        assert links[0].a == (0,) and links[0].b == (1,)

    def test_size_one_dims_produce_no_self_links(self):
        torus = Torus((1, 3))
        for link in enumerate_links(torus):
            assert link.a != link.b
            assert link.dim == 1

    def test_links_are_canonical_and_sorted(self):
        links = enumerate_links(Torus((3, 3)))
        assert all(link.a < link.b for link in links)
        assert list(links) == sorted(links)
        assert len(set(links)) == len(links)

    def test_torus_links_method(self):
        torus = Torus((3, 3))
        assert torus.links() == enumerate_links(torus)

    def test_every_link_joins_neighbors(self):
        torus = Torus((3, 2, 3))
        for link in enumerate_links(torus):
            assert link.b in torus.neighbors(link.a)
            assert link.a in torus.neighbors(link.b)


class TestLinkKey:
    def test_canonical_order(self):
        torus = Torus((4, 4))
        k1 = link_key(torus, (0, 0), (0, 1))
        k2 = link_key(torus, (0, 1), (0, 0))
        assert k1 == k2
        assert k1.a < k1.b

    def test_wrap_link(self):
        torus = Torus((4,))
        link = link_key(torus, (3,), (0,))
        assert (link.a, link.b) == ((0,), (3,))

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            link_key(Torus((4, 4)), (1, 1), (1, 1))

    def test_non_neighbor_rejected(self):
        with pytest.raises(TopologyError):
            link_key(Torus((4, 4)), (0, 0), (0, 2))
        with pytest.raises(TopologyError):
            link_key(Torus((4, 4)), (0, 0), (1, 1))


class TestLinkState:
    def make(self, shape=(4, 4)):
        return Torus(shape), LinkState(Torus(shape))

    def test_kill_and_revive(self):
        torus, ls = self.make()
        assert not ls.is_dead((0, 0), (0, 1))
        ls.kill((0, 0), (0, 1))
        assert ls.is_dead((0, 0), (0, 1))
        assert ls.is_dead((0, 1), (0, 0))  # undirected
        ls.revive((0, 0), (0, 1))
        assert not ls.is_dead((0, 0), (0, 1))

    def test_every_mutation_bumps_epoch(self):
        torus, ls = self.make()
        e0 = ls.epoch
        ls.kill((0, 0), (0, 1))
        e1 = ls.epoch
        ls.degrade((1, 0), (1, 1), 4.0)
        e2 = ls.epoch
        ls.set_lossy((2, 0), (2, 1), 0.5)
        e3 = ls.epoch
        ls.revive((0, 0), (0, 1))
        e4 = ls.epoch
        assert e0 < e1 < e2 < e3 < e4

    def test_degrade_changes_latency_factor(self):
        torus, ls = self.make()
        assert ls.latency_factor((0, 0), (0, 1)) == 1.0
        ls.degrade((0, 0), (0, 1), 8.0)
        assert ls.latency_factor((0, 0), (0, 1)) == 8.0
        ls.revive((0, 0), (0, 1))
        assert ls.latency_factor((0, 0), (0, 1)) == 1.0

    def test_dead_links_listing(self):
        torus, ls = self.make()
        ls.kill((0, 0), (0, 1))
        ls.kill((1, 1), (2, 1))
        dead = ls.dead_links()
        assert len(dead) == 2

    def test_invalid_coords_raise(self):
        torus, ls = self.make()
        with pytest.raises(TopologyError):
            ls.kill((0, 0), (2, 2))


class TestRouteTable:
    def make(self, shape=(4, 4)):
        torus = Torus(shape)
        ls = LinkState(torus)
        return torus, ls, RouteTable(torus, ls)

    def test_healthy_route_is_dimension_order(self):
        torus, ls, rt = self.make()
        for dst in [(1, 0), (0, 3), (2, 2), (3, 3)]:
            assert rt.route((0, 0), dst) == dimension_order_route(
                torus, (0, 0), dst
            )

    def test_healthy_path_length_equals_distance(self):
        torus, ls, rt = self.make((3, 4, 2))
        coords = list(torus.coords())
        for src in coords[:4]:
            for dst in coords:
                path = rt.route(src, dst)
                assert len(path) - 1 == torus.distance(src, dst)

    def test_route_is_deterministic(self):
        torus1, ls1, rt1 = self.make()
        torus2, ls2, rt2 = self.make()
        ls1.kill((0, 0), (0, 1))
        ls2.kill((0, 0), (0, 1))
        for dst in [(0, 1), (2, 3), (3, 0)]:
            assert rt1.route((0, 0), dst) == rt2.route((0, 0), dst)

    def test_reroute_around_dead_link(self):
        torus, ls, rt = self.make()
        direct = rt.route((0, 0), (0, 1))
        assert len(direct) == 2
        ls.kill((0, 0), (0, 1))
        detour = rt.route((0, 0), (0, 1))
        assert detour is not None
        assert detour[0] == (0, 0) and detour[-1] == (0, 1)
        for u, v in zip(detour, detour[1:]):
            assert not ls.is_dead(u, v)
        assert len(detour) > 2

    def test_cache_invalidated_by_epoch(self):
        torus, ls, rt = self.make()
        p1 = rt.route((0, 0), (0, 1))
        assert rt.route((0, 0), (0, 1)) is p1  # cached
        ls.kill((0, 0), (0, 1))
        p2 = rt.route((0, 0), (0, 1))
        assert p2 != p1

    def test_unreachable_returns_none(self):
        # Sever every link of node (0,) in a 1D size-2 ring: 1 link total.
        torus = Torus((2,))
        ls = LinkState(torus)
        rt = RouteTable(torus, ls)
        ls.kill((0,), (1,))
        assert rt.route((0,), (1,)) is None

    def test_isolated_node_in_2d(self):
        torus, ls, rt = self.make((3, 3))
        for nb in torus.neighbors((0, 0)):
            ls.kill((0, 0), nb)
        assert rt.route((1, 1), (0, 0)) is None
        # Other pairs still route.
        assert rt.route((1, 1), (2, 2)) is not None

    def test_src_equals_dst(self):
        torus, ls, rt = self.make()
        assert rt.route((1, 1), (1, 1)) == [(1, 1)]

    def test_suspect_links_detoured_when_alternative_exists(self):
        class View:
            def __init__(self, ls):
                self.ls = ls
                self.soft = set()

            @property
            def epoch(self):
                return self.ls.epoch + len(self.soft)

            def hard_blocked(self, u, v):
                return self.ls.is_dead(u, v)

            def soft_blocked(self, u, v):
                return self.ls.key(u, v) in self.soft

        torus = Torus((4, 4))
        ls = LinkState(torus)
        view = View(ls)
        rt = RouteTable(torus, view)
        direct = rt.route((0, 0), (0, 1))
        view.soft.add(ls.key((0, 0), (0, 1)))
        detour = rt.route((0, 0), (0, 1))
        assert detour != direct and len(detour) > 2
        # Soft-blocked everywhere: the suspect link is still usable.
        for nb in torus.neighbors((0, 0)):
            view.soft.add(ls.key((0, 0), nb))
        fallback = rt.route((0, 0), (0, 1))
        assert fallback is not None
