"""Integration tests for the paper's core behavioural claims.

These tests check *mechanisms*, not just data movement: the async-thread
design servicing AMOs under target compute (Fig. 9's cause), the
consistency trackers eliminating false-positive fences (Section III-E),
and the fall-back protocol's dependence on remote progress.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import ArmciConfig, ArmciJob
from repro.types import StridedDescriptor, StridedShape


def make_job(num_procs=2, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=kwargs.pop("procs_per_node", 1),
        **kwargs,
    )
    job.init()
    return job


class TestAsyncThreadMechanism:
    """The Section III-D claim: AMOs on a computing target stall in
    default mode but not with an asynchronous progress thread."""

    def _counter_scenario(self, config, compute_time=300e-6, iters=4):
        """Rank 0 computes; rank 1 hammers a counter at rank 0.

        Returns mean fetch-and-add latency observed by rank 1.
        """
        job = make_job(num_procs=2, config=config)

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank == 0:
                # Compute loop with occasional explicit progress - the
                # default-mode application pattern (Fig. 10's do_work).
                for _ in range(iters):
                    yield from rt.compute(compute_time)
                    yield from rt.progress()
                yield from rt.barrier()
                return None
            latencies = []
            for _ in range(iters):
                t0 = rt.engine.now
                yield from rt.rmw(0, alloc.addr(0), "fetch_add", 1)
                latencies.append(rt.engine.now - t0)
            yield from rt.barrier()
            return sum(latencies) / len(latencies)

        results = job.run(body)
        return results[1]

    def test_default_mode_latency_scales_with_compute(self):
        lat = self._counter_scenario(ArmciConfig.default_mode())
        # Requester waits for rank 0 to emerge from ~300us compute chunks.
        assert lat > 50e-6

    def test_async_thread_latency_independent_of_compute(self):
        lat = self._counter_scenario(ArmciConfig.async_thread_mode())
        assert lat < 10e-6

    def test_async_thread_speedup_factor(self):
        d = self._counter_scenario(ArmciConfig.default_mode())
        at = self._counter_scenario(ArmciConfig.async_thread_mode())
        assert d / at > 10  # the paper's effect, dramatically visible

    def test_single_context_async_contends_on_lock(self):
        """rho=1 + AT works but contends with the main thread's lock."""
        cfg = ArmciConfig(async_thread=True, num_contexts=1)
        lat = self._counter_scenario(cfg)
        assert lat < 50e-6  # still serviced asynchronously

    def test_async_threads_service_accumulates_too(self):
        """Accumulates to a computing target also need the async thread."""

        def acc_scenario(config):
            job = make_job(num_procs=2, config=config)

            def body(rt):
                alloc = yield from rt.malloc(64)
                yield from rt.barrier()
                if rt.rank == 0:
                    yield from rt.compute(300e-6)
                    yield from rt.progress()
                    yield from rt.barrier()
                    return None
                src = rt.world.space(1).allocate(64)
                rt.world.space(1).write_f64(src, np.ones(8))
                t0 = rt.engine.now
                yield from rt.acc(0, src, alloc.addr(0), 64)
                yield from rt.fence(0)
                elapsed = rt.engine.now - t0
                yield from rt.barrier()
                return elapsed

            return job.run(body)[1]

        d = acc_scenario(ArmciConfig.default_mode())
        at = acc_scenario(ArmciConfig.async_thread_mode())
        assert at < d / 5

    def test_fallback_get_needs_remote_progress(self):
        """Eq. 8's hidden cost: a fall-back get from a computing target
        stalls in default mode."""

        def get_scenario(config):
            job = make_job(num_procs=2, config=config, max_regions=0)

            def body(rt):
                alloc = yield from rt.malloc(64)
                yield from rt.barrier()
                if rt.rank == 0:
                    yield from rt.compute(300e-6)
                    yield from rt.progress()
                    yield from rt.barrier()
                    return None
                local = rt.world.space(1).allocate(64)
                t0 = rt.engine.now
                yield from rt.get(0, local, alloc.addr(0), 64)
                elapsed = rt.engine.now - t0
                yield from rt.barrier()
                return elapsed

            return job.run(body)[1]

        d = get_scenario(ArmciConfig.default_mode())
        at = get_scenario(ArmciConfig.async_thread_mode())
        assert d > 100e-6
        assert at < 10e-6

    def test_rdma_get_does_not_need_remote_progress(self):
        """The RDMA counterpoint: a registered-region get from a computing
        target completes at full speed even in default mode."""
        job = make_job(num_procs=2, config=ArmciConfig.default_mode())

        def body(rt):
            alloc = yield from rt.malloc(64)
            yield from rt.barrier()
            if rt.rank == 0:
                yield from rt.compute(300e-6)
                yield from rt.barrier()
                return None
            local = rt.world.space(1).allocate(64)
            yield from rt.get(0, local, alloc.addr(0), 16)  # warm cache
            t0 = rt.engine.now
            yield from rt.get(0, local, alloc.addr(0), 16)
            elapsed = rt.engine.now - t0
            yield from rt.barrier()
            return elapsed

        elapsed = job.run(body)[1]
        assert elapsed == pytest.approx(2.89e-6, rel=0.2)


class TestConsistencyIntegration:
    """Section III-E: cs_mr avoids false-positive fences; both trackers
    preserve location consistency."""

    def _dgemm_like(self, tracker):
        """Writes to structure C, reads from structure A, same target."""
        job = make_job(
            num_procs=2, config=ArmciConfig(consistency_tracker=tracker)
        )

        def body(rt):
            a = yield from rt.malloc(256)   # read-only structure
            c = yield from rt.malloc(256)   # accumulate-only structure
            yield from rt.barrier()
            if rt.rank == 0:
                buf = rt.world.space(0).allocate(256)
                # Outstanding write to C...
                yield from rt.nbput(1, buf, c.addr(1), 128)
                # ...then a get from A: cs_tgt fences, cs_mr does not.
                yield from rt.get(1, buf, a.addr(1), 128)
                yield from rt.fence_all()
            yield from rt.barrier()

        job.run(body)
        return job

    def test_cs_tgt_forces_fence_across_structures(self):
        job = self._dgemm_like("cs_tgt")
        assert job.trace.count("armci.fences_forced") == 1
        assert job.trace.count("armci.fences_avoided") == 0

    def test_cs_mr_avoids_fence_across_structures(self):
        job = self._dgemm_like("cs_mr")
        assert job.trace.count("armci.fences_forced") == 0
        assert job.trace.count("armci.fences_avoided") == 1

    def test_both_trackers_fence_same_structure(self):
        for tracker in ("cs_tgt", "cs_mr"):
            job = make_job(
                num_procs=2, config=ArmciConfig(consistency_tracker=tracker)
            )

            def body(rt):
                a = yield from rt.malloc(256)
                yield from rt.barrier()
                if rt.rank == 0:
                    buf = rt.world.space(0).allocate(256)
                    yield from rt.nbput(1, buf, a.addr(1), 128)
                    yield from rt.get(1, buf, a.addr(1), 128)
                yield from rt.barrier()

            job.run(body)
            assert job.trace.count("armci.fences_forced") == 1, tracker

    def test_location_consistency_read_your_writes(self):
        """A get after an (auto-fenced) put observes the written data."""
        for tracker in ("cs_tgt", "cs_mr"):
            job = make_job(
                num_procs=2, config=ArmciConfig(consistency_tracker=tracker)
            )

            def body(rt):
                a = yield from rt.malloc(256)
                yield from rt.barrier()
                result = None
                if rt.rank == 0:
                    buf = rt.world.space(0).allocate(256)
                    rt.world.space(0).write(buf, b"\x5a" * 256)
                    yield from rt.nbput(1, buf, a.addr(1), 256)
                    back = rt.world.space(0).allocate(256)
                    yield from rt.get(1, back, a.addr(1), 256)
                    result = rt.world.space(0).read(back, 256)
                yield from rt.barrier()
                return result

            results = job.run(body)
            assert results[0] == b"\x5a" * 256, tracker


class TestRegionCacheIntegration:
    def test_bounded_cache_evicts_and_refetches(self):
        """With capacity 1 and two remote structures, alternating access
        thrashes the LFU cache (misses answered by AM each time)."""
        job = make_job(
            num_procs=2, config=ArmciConfig(region_cache_capacity=1)
        )

        def body(rt):
            a = yield from rt.malloc(128)
            b = yield from rt.malloc(128)
            yield from rt.barrier()
            if rt.rank == 0:
                buf = rt.world.space(0).allocate(128)
                for _ in range(3):
                    yield from rt.get(1, buf, a.addr(1), 64)
                    yield from rt.get(1, buf, b.addr(1), 64)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.region_cache_evictions") >= 4
        assert job.trace.count("armci.region_cache_misses") >= 5

    def test_unbounded_cache_single_miss_per_structure(self):
        job = make_job(num_procs=2)

        def body(rt):
            a = yield from rt.malloc(128)
            b = yield from rt.malloc(128)
            yield from rt.barrier()
            if rt.rank == 0:
                buf = rt.world.space(0).allocate(128)
                for _ in range(3):
                    yield from rt.get(1, buf, a.addr(1), 64)
                    yield from rt.get(1, buf, b.addr(1), 64)
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.region_cache_misses") == 2
        assert job.trace.count("armci.region_cache_evictions") == 0


class TestDeterminism:
    def test_identical_jobs_produce_identical_timelines(self):
        def run_once():
            job = make_job(num_procs=4, procs_per_node=2,
                           config=ArmciConfig.async_thread_mode())

            def body(rt):
                alloc = yield from rt.malloc(256)
                yield from rt.barrier()
                for i in range(3):
                    yield from rt.rmw(0, alloc.addr(0), "fetch_add", 1)
                    dst = (rt.rank + 1) % 4
                    src = rt.world.space(rt.rank).allocate(64)
                    yield from rt.put(dst, src, alloc.addr(dst) + 64, 64)
                yield from rt.fence_all()
                yield from rt.barrier()
                return rt.engine.now

            return job.run(body), job.engine.events_executed

        first, second = run_once(), run_once()
        assert first == second


class TestPropertyBased:
    @given(
        chunk=st.integers(8, 64),
        counts=st.lists(st.integers(1, 4), min_size=0, max_size=3),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_strided_put_get_roundtrip_any_shape(self, chunk, counts, data):
        """Any well-formed strided descriptor round-trips its bytes."""
        shape = StridedShape(chunk, tuple(counts))
        src_strides = []
        dst_strides = []
        for _dim in counts:
            src_strides.append(data.draw(st.integers(chunk, chunk * 8)))
            dst_strides.append(data.draw(st.integers(chunk, chunk * 8)))
        # Build non-overlapping lattices by spacing outer dims widely.
        span = chunk
        fixed_src, fixed_dst = [], []
        for count, s in zip(counts, src_strides):
            fixed_src.append(max(s, span))
            span = fixed_src[-1] * count
        span = chunk
        for count, s in zip(counts, dst_strides):
            fixed_dst.append(max(s, span))
            span = fixed_dst[-1] * count
        desc = StridedDescriptor(shape, tuple(fixed_src), tuple(fixed_dst))

        job = make_job(num_procs=2)
        total = shape.total_bytes
        payload = bytes(
            data.draw(st.integers(0, 255)) for _ in range(min(total, 64))
        )
        payload = (payload * (total // len(payload) + 1))[:total]

        src_extent = (
            max(desc.chunk_offsets("src")) + chunk if counts else chunk
        )
        dst_extent = (
            max(desc.chunk_offsets("dst")) + chunk if counts else chunk
        )

        def body(rt, desc=desc, payload=payload):
            alloc = yield from rt.malloc(max(dst_extent, 8))
            result = None
            if rt.rank == 0:
                src = rt.world.space(0).allocate(src_extent)
                # Scatter the payload into the source lattice.
                for i, off in enumerate(desc.chunk_offsets("src")):
                    rt.world.space(0).write(
                        src + off, payload[i * chunk : (i + 1) * chunk]
                    )
                yield from rt.puts(1, src, alloc.addr(1), desc)
                yield from rt.fence(1)
                back = rt.world.space(0).allocate(src_extent)
                yield from rt.gets(1, back, alloc.addr(1), desc)
                got = b"".join(
                    rt.world.space(0).read(back + off, chunk)
                    for off in desc.chunk_offsets("src")
                )
                result = got
            yield from rt.barrier()
            return result

        results = job.run(body)
        assert results[0] == payload

    @given(n_ops=st.integers(1, 12), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_random_put_sequences_match_reference(self, n_ops, data):
        """Random overlapping puts + final fence leave target memory equal
        to applying the same writes sequentially (pairwise ordering)."""
        size = 256
        reference = np.zeros(size, dtype=np.uint8)
        ops = []
        for _ in range(n_ops):
            off = data.draw(st.integers(0, size - 8))
            length = data.draw(st.integers(1, min(32, size - off)))
            value = data.draw(st.integers(0, 255))
            ops.append((off, length, value))

        job = make_job(num_procs=2)

        def body(rt):
            alloc = yield from rt.malloc(size)
            yield from rt.barrier()
            if rt.rank == 0:
                buf = rt.world.space(0).allocate(size)
                for off, length, value in ops:
                    rt.world.space(0).write(buf, bytes([value]) * length)
                    yield from rt.nbput(1, buf, alloc.addr(1) + off, length)
                yield from rt.fence(1)
            yield from rt.barrier()
            if rt.rank == 1:
                return rt.world.space(1).read(alloc.addr(1), size)

        results = job.run(body)
        for off, length, value in ops:
            reference[off : off + length] = value
        assert results[1] == reference.tobytes()
