"""Unit tests for torus geometry, rank mapping, routing, and partitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    KNOWN_PARTITIONS,
    RankMapping,
    Torus,
    abcdet_mapping,
    dimension_order_route,
    partition_shape,
)
from repro.topology.partitions import nodes_for_processes


class TestTorus:
    def test_num_nodes_is_product(self):
        assert Torus((2, 3, 4)).num_nodes == 24

    def test_rejects_empty_dims(self):
        with pytest.raises(TopologyError):
            Torus(())

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(TopologyError):
            Torus((2, 0, 3))

    def test_distance_wraps_around(self):
        t = Torus((8,))
        assert t.distance((0,), (7,)) == 1
        assert t.distance((0,), (4,)) == 4
        assert t.distance((1,), (6,)) == 3

    def test_distance_sums_over_dims(self):
        t = Torus((4, 4))
        assert t.distance((0, 0), (2, 3)) == 2 + 1

    def test_distance_validates_coords(self):
        t = Torus((2, 2))
        with pytest.raises(TopologyError):
            t.distance((0, 0), (0, 2))
        with pytest.raises(TopologyError):
            t.distance((0,), (0, 0))

    def test_paper_partition_diameter_is_7(self):
        """Section IV-B: 128-node 2*2*4*4*2 torus has max distance 7."""
        assert Torus((2, 2, 4, 4, 2)).max_distance() == 7

    def test_coords_enumerates_all_nodes(self):
        t = Torus((2, 3))
        cs = list(t.coords())
        assert len(cs) == 6
        assert len(set(cs)) == 6
        assert cs[0] == (0, 0)
        assert cs[-1] == (1, 2)

    def test_neighbors_counts(self):
        # In a 4x4 torus every node has 4 distinct neighbors.
        t = Torus((4, 4))
        assert len(t.neighbors((1, 2))) == 4
        # Size-2 dims give a single neighbor in that dim (wrap == straight).
        t2 = Torus((2, 4))
        assert len(t2.neighbors((0, 0))) == 3
        # Size-1 dims contribute none.
        t1 = Torus((1, 4))
        assert len(t1.neighbors((0, 0))) == 2

    def test_bisection_links(self):
        assert Torus((4, 2)).bisection_links() == 2 * 8 // 4

    @given(
        st.tuples(*[st.integers(min_value=1, max_value=5)] * 3),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_distance_is_a_metric(self, dims, data):
        t = Torus(dims)
        pick = st.tuples(*[st.integers(0, d - 1) for d in dims])
        a, b, c = data.draw(pick), data.draw(pick), data.draw(pick)
        # Symmetry, identity, triangle inequality.
        assert t.distance(a, b) == t.distance(b, a)
        assert t.distance(a, a) == 0
        assert t.distance(a, c) <= t.distance(a, b) + t.distance(b, c)
        assert t.distance(a, b) <= t.max_distance()


class TestRankMapping:
    def test_abcdet_fills_node_slots_first(self):
        m = abcdet_mapping((2, 2, 4, 4, 2), procs_per_node=16)
        assert m.num_ranks == 2048
        # Ranks 0..15 share node (0,0,0,0,0); T varies fastest.
        for r in range(16):
            coord, slot = m.rank_to_placement(r)
            assert coord == (0, 0, 0, 0, 0)
            assert slot == r
        # Rank 16 moves one step in E (the rightmost torus letter).
        coord, slot = m.rank_to_placement(16)
        assert coord == (0, 0, 0, 0, 1)
        assert slot == 0

    def test_roundtrip_all_ranks_small(self):
        m = RankMapping(Torus((2, 3)), procs_per_node=2, order="ABT")
        seen = set()
        for r in range(m.num_ranks):
            coord, slot = m.rank_to_placement(r)
            assert m.placement_to_rank(coord, slot) == r
            seen.add((coord, slot))
        assert len(seen) == m.num_ranks

    def test_rank_out_of_range(self):
        m = RankMapping(Torus((2, 2)), procs_per_node=1, order="ABT")
        with pytest.raises(TopologyError):
            m.rank_to_placement(4)
        with pytest.raises(TopologyError):
            m.rank_to_placement(-1)

    def test_bad_order_rejected(self):
        with pytest.raises(TopologyError):
            RankMapping(Torus((2, 2)), procs_per_node=1, order="AB")  # no T
        with pytest.raises(TopologyError):
            RankMapping(Torus((2, 2)), procs_per_node=1, order="AAT")

    def test_bad_procs_per_node_rejected(self):
        with pytest.raises(TopologyError):
            RankMapping(Torus((2, 2)), procs_per_node=0, order="ABT")

    def test_same_node_and_hops(self):
        m = abcdet_mapping((2, 2, 4, 4, 2), procs_per_node=16)
        assert m.same_node(0, 15)
        assert not m.same_node(0, 16)
        assert m.hops(0, 5) == 0
        assert m.hops(0, 16) == 1  # adjacent in E

    def test_tedcba_order_varies_a_fastest_after_t(self):
        m = RankMapping(Torus((2, 2, 2, 2, 2)), procs_per_node=1, order="TEDCBA")
        # With T size 1, rank 1 should advance A (rightmost letter).
        coord, _ = m.rank_to_placement(1)
        assert coord == (1, 0, 0, 0, 0)

    def test_abcdet_requires_5d(self):
        with pytest.raises(TopologyError):
            abcdet_mapping((2, 2), procs_per_node=1)  # type: ignore[arg-type]

    @given(st.integers(min_value=0, max_value=2047))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_paper_partition(self, rank):
        m = abcdet_mapping((2, 2, 4, 4, 2), procs_per_node=16)
        coord, slot = m.rank_to_placement(rank)
        assert m.placement_to_rank(coord, slot) == rank


class TestRouting:
    def test_route_endpoints_and_length(self):
        t = Torus((4, 4))
        path = dimension_order_route(t, (0, 0), (2, 3))
        assert path[0] == (0, 0)
        assert path[-1] == (2, 3)
        assert len(path) == t.distance((0, 0), (2, 3)) + 1

    def test_route_is_dimension_ordered(self):
        t = Torus((4, 4))
        path = dimension_order_route(t, (0, 0), (2, 2))
        # First hops move in dim 0 only, then dim 1 only.
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_route_takes_shorter_wrap(self):
        t = Torus((8,))
        path = dimension_order_route(t, (0,), (7,))
        assert path == [(0,), (7,)]

    def test_route_to_self_is_single_node(self):
        t = Torus((3, 3))
        assert dimension_order_route(t, (1, 1), (1, 1)) == [(1, 1)]

    def test_each_hop_is_unit_distance(self):
        t = Torus((3, 4, 5))
        path = dimension_order_route(t, (0, 1, 2), (2, 3, 0))
        for a, b in zip(path, path[1:]):
            assert t.distance(a, b) == 1

    @given(
        st.tuples(*[st.integers(min_value=1, max_value=5)] * 4),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_route_length_matches_distance(self, dims, data):
        t = Torus(dims)
        pick = st.tuples(*[st.integers(0, d - 1) for d in dims])
        a, b = data.draw(pick), data.draw(pick)
        path = dimension_order_route(t, a, b)
        assert len(path) - 1 == t.distance(a, b)
        assert len(set(path)) == len(path)  # no revisits


class TestPartitions:
    def test_all_known_shapes_have_correct_product(self):
        for nodes, shape in KNOWN_PARTITIONS.items():
            product = 1
            for d in shape:
                product *= d
            assert product == nodes, f"{nodes}: {shape}"

    def test_all_known_shapes_are_5d_with_e_at_most_2(self):
        for shape in KNOWN_PARTITIONS.values():
            assert len(shape) == 5
            assert shape[4] <= 2  # E dimension is 2 wide on hardware

    def test_paper_128_node_shape(self):
        assert partition_shape(128) == (2, 2, 4, 4, 2)

    def test_unknown_size_rejected(self):
        with pytest.raises(TopologyError):
            partition_shape(100)

    def test_nodes_for_processes(self):
        assert nodes_for_processes(2048, 16) == 128
        assert nodes_for_processes(4096, 16) == 256
        assert nodes_for_processes(16, 16) == 1

    def test_nodes_for_processes_uneven_rejected(self):
        with pytest.raises(TopologyError):
            nodes_for_processes(100, 16)

    def test_nodes_for_processes_nonpositive_rejected(self):
        with pytest.raises(TopologyError):
            nodes_for_processes(0, 16)
