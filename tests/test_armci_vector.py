"""Tests for the general I/O-vector datatype (ARMCI_PutV / ARMCI_GetV)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import ArmciConfig, ArmciJob
from repro.armci.vector import IoVector
from repro.errors import ArmciError

#: Conformance suite: every test in this module runs once per backend
#: (the ``backend`` fixture re-points ``repro.transport.DEFAULT_BACKEND``).
pytestmark = pytest.mark.usefixtures("backend")


def make_job(num_procs=2, config=None, **kwargs):
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=1,
        **kwargs,
    )
    job.init()
    return job


class TestIoVector:
    def test_properties(self):
        vec = IoVector((0x1000, 0x2000), (0x5000, 0x6000), (16, 32))
        assert vec.total_bytes == 48
        assert vec.num_segments == 2
        assert vec.metadata_bytes() == 48
        lo, extent = vec.remote_extent()
        assert lo == 0x5000
        assert extent == 0x6000 + 32 - 0x5000

    def test_validation(self):
        with pytest.raises(ArmciError):
            IoVector((), (), ())
        with pytest.raises(ArmciError):
            IoVector((1, 2), (3,), (8, 8))
        with pytest.raises(ArmciError):
            IoVector((1,), (2,), (0,))


def _roundtrip(config=None, max_regions=None):
    """Scatter 3 segments into rank 1, read them back, compare."""
    job = make_job(config=config, max_regions=max_regions)
    payloads = [b"alpha---", b"bravo-bravo-1234", b"c" * 32]

    def body(rt):
        alloc = yield from rt.malloc(4096)
        result = None
        if rt.rank == 0:
            space = rt.world.space(0)
            locals_ = []
            for p in payloads:
                addr = space.allocate(len(p))
                space.write(addr, p)
                locals_.append(addr)
            remotes = (alloc.addr(1) + 100, alloc.addr(1) + 700, alloc.addr(1) + 2000)
            vec = IoVector(tuple(locals_), remotes, tuple(len(p) for p in payloads))
            yield from rt.putv(1, vec)
            yield from rt.fence(1)
            backs = tuple(space.allocate(len(p)) for p in payloads)
            back_vec = IoVector(backs, remotes, tuple(len(p) for p in payloads))
            yield from rt.getv(1, back_vec)
            result = [space.read(a, len(p)) for a, p in zip(backs, payloads)]
        yield from rt.barrier()
        return result

    results = job.run(body)
    assert results[0] == payloads
    return job


class TestVectorProtocols:
    def test_zero_copy_roundtrip(self):
        job = _roundtrip()
        assert job.trace.count("armci.putv_zero_copy") == 1
        assert job.trace.count("armci.getv_zero_copy") == 1
        assert job.trace.count("pami.rdma_puts") == 3

    def test_pack_roundtrip_when_rdma_disabled(self):
        job = _roundtrip(config=ArmciConfig(use_rdma=False))
        assert job.trace.count("armci.putv_pack") == 1
        assert job.trace.count("armci.getv_pack") == 1
        assert job.trace.count("pami.rdma_puts") == 0

    def test_pack_fallback_when_regions_unavailable(self):
        job = _roundtrip(max_regions=0)
        assert job.trace.count("armci.putv_pack") == 1
        assert job.trace.count("armci.getv_pack") == 1

    def test_vector_get_fences_conflicting_writes(self):
        """A getv after a putv to the same structure forces a fence."""
        job = make_job()

        def body(rt):
            alloc = yield from rt.malloc(1024)
            if rt.rank == 0:
                space = rt.world.space(0)
                src = space.allocate(64)
                vec = IoVector((src,), (alloc.addr(1),), (64,))
                yield from rt.nbputv(1, vec)
                back = space.allocate(64)
                yield from rt.getv(1, IoVector((back,), (alloc.addr(1),), (64,)))
            yield from rt.barrier()

        job.run(body)
        assert job.trace.count("armci.fences_forced") == 1

    @given(
        n_segments=st.integers(1, 6),
        data=st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_vectors_roundtrip(self, n_segments, data):
        job = make_job()
        lengths = [data.draw(st.integers(1, 64)) for _ in range(n_segments)]
        payloads = [
            bytes(data.draw(st.integers(0, 255)) for _ in range(n))
            for n in lengths
        ]
        # Non-overlapping remote offsets.
        offsets = []
        cursor = 0
        for n in lengths:
            offsets.append(cursor)
            cursor += n + data.draw(st.integers(0, 32))

        def body(rt):
            alloc = yield from rt.malloc(max(cursor, 8))
            result = None
            if rt.rank == 0:
                space = rt.world.space(0)
                locals_ = []
                for p in payloads:
                    a = space.allocate(len(p))
                    space.write(a, p)
                    locals_.append(a)
                remotes = tuple(alloc.addr(1) + off for off in offsets)
                vec = IoVector(tuple(locals_), remotes, tuple(lengths))
                yield from rt.putv(1, vec)
                yield from rt.fence(1)
                result = [
                    rt.world.space(1).read(r, n)
                    for r, n in zip(remotes, lengths)
                ]
            yield from rt.barrier()
            return result

        results = job.run(body)
        assert results[0] == payloads
