"""Unit tests for the repro.obs subsystem: spans, metrics, exporters,
and critical-path analysis."""

import json

import pytest

from repro.armci import ArmciConfig, ArmciJob, ObsConfig
from repro.obs.critical_path import attribution_rows, critical_path
from repro.obs.export import (
    dumps_perfetto,
    perfetto_payload,
    to_trace_events,
    validate_trace_events,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    BUCKET_ANCHOR,
    NUM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper_edge,
)
from repro.obs.span import Obs, Span, context_lane
from repro.sim.engine import Engine
from repro.sim.trace import Trace


class FakeEngine:
    """Just enough engine for Obs: a settable clock."""

    def __init__(self):
        self.now = 0.0


@pytest.fixture
def obs():
    return Obs(FakeEngine())


class TestSpans:
    def test_begin_end_and_ambient_stack(self, obs):
        outer = obs.begin(0, "main", "op", "put")
        assert obs.current(0) == outer
        obs.engine.now = 1.0
        inner = obs.begin(0, "main", "backoff", "retry_sleep")
        assert obs.current(0) == inner
        obs.engine.now = 2.0
        obs.end(inner)
        assert obs.current(0) == outer
        obs.end(outer)
        assert obs.current(0) is None
        spans = obs.finished()
        assert [s.name for s in spans] == ["put", "retry_sleep"]
        assert obs.get(inner).parent_id == outer
        assert obs.get(outer).parent_id is None
        assert obs.get(inner).duration == pytest.approx(1.0)

    def test_per_rank_stacks_are_independent(self, obs):
        a = obs.begin(0, "main", "op", "put")
        b = obs.begin(1, "main", "op", "get")
        assert obs.current(0) == a
        assert obs.current(1) == b

    def test_explicit_parent_and_root(self, obs):
        ambient = obs.begin(0, "main", "op", "put")
        root = obs.begin(0, "main", "op", "detached", parent_id=None)
        child = obs.begin(0, "main", "op", "linked", parent_id=ambient)
        assert obs.get(root).parent_id is None
        assert obs.get(child).parent_id == ambient

    def test_record_skips_the_stack(self, obs):
        ambient = obs.begin(0, "main", "op", "put")
        sid = obs.record(0, "net", "rdma", "rdma_put", 0.5, 1.5, nbytes=64)
        assert obs.current(0) == ambient  # no push
        span = obs.get(sid)
        assert span.end == 1.5
        assert span.parent_id == ambient
        assert span.attrs["nbytes"] == 64

    def test_retroactive_start_and_attrs_on_end(self, obs):
        obs.engine.now = 3.0
        sid = obs.begin(0, "main", "am_service", "svc", start=2.0, src=1)
        obs.engine.now = 4.0
        obs.end(sid, category="amo_service", queue_wait=0.5)
        span = obs.get(sid)
        assert span.start == 2.0 and span.end == 4.0
        assert span.category == "amo_service"
        assert span.attrs == {"src": 1, "queue_wait": 0.5}

    def test_double_end_is_idempotent(self, obs):
        sid = obs.begin(0, "main", "op", "put")
        obs.engine.now = 1.0
        obs.end(sid)
        obs.engine.now = 2.0
        obs.end(sid)
        assert obs.get(sid).end == 1.0

    def test_out_of_order_close_keeps_stack_sane(self, obs):
        outer = obs.begin(0, "main", "op", "outer")
        inner = obs.begin(0, "main", "op", "inner")
        obs.end(outer)  # not the top: removed from mid-stack
        assert obs.current(0) == inner
        obs.end(inner)
        assert obs.current(0) is None

    def test_context_manager(self, obs):
        with obs.span(0, "main", "op", "block") as sid:
            assert obs.current(0) == sid
        assert obs.current(0) is None
        assert obs.get(sid).end is not None

    def test_finalize_truncates_open_spans(self, obs):
        done = obs.begin(0, "main", "op", "done")
        obs.end(done)
        obs.begin(0, "main", "op", "hung")
        obs.engine.now = 5.0
        obs.finalize()
        assert obs.truncated_spans == 1
        hung = [s for s in obs.spans if s.name == "hung"][0]
        assert hung.end == 5.0
        assert hung.attrs["truncated"] is True
        assert obs.current(0) is None

    def test_timeline_labels_emit_trace_intervals(self):
        trace = Trace(record_intervals=True)
        obs = Obs(FakeEngine(), trace=trace)
        sid = obs.begin(0, "main", "op", "put", timeline="put")
        plain = obs.begin(0, "main", "op", "untagged")
        obs.engine.now = 1.0
        obs.end(sid)
        obs.end(plain)
        assert len(trace.intervals) == 1
        iv = trace.intervals[0]
        assert (iv.lane, iv.label, iv.start, iv.end) == ("r0", "put", 0.0, 1.0)

    def test_span_durations_feed_metrics(self, obs):
        sid = obs.begin(0, "main", "fence", "fence")
        obs.engine.now = 2e-6
        obs.end(sid)
        h = obs.metrics.histogram("obs.span.fence")
        assert h.count == 1
        assert h.total == pytest.approx(2e-6)


class TestCausality:
    def test_event_registration(self, obs):
        engine = Engine()
        ev = engine.event("done")
        sid = obs.record(0, "net", "rdma", "rdma_put", 0.0, 1.0)
        assert obs.span_for_event(ev) is None
        obs.register_event(ev, sid)
        assert obs.span_for_event(ev) == sid
        # Unregistered objects (and None ids) stay invisible.
        obs.register_event(engine.event("other"), None)
        assert obs.span_for_event(engine.event("third")) is None

    def test_add_edge_rejects_degenerate(self, obs):
        a = obs.record(0, "net", "rdma", "x", 0.0, 1.0)
        b = obs.record(1, "main", "rdma_wait", "y", 0.0, 1.0)
        obs.add_edge(a, b)
        obs.add_edge(None, b)
        obs.add_edge(a, None)
        obs.add_edge(a, a)
        assert obs.edges == [(a, b)]

    def test_barrier_edge_from_last_arriver(self, obs):
        key = 7
        obs.engine.now = 1.0
        s0 = obs.begin(0, "main", "barrier", "barrier")
        obs.barrier_arrive(key, 0, s0)
        obs.engine.now = 3.0
        s1 = obs.begin(1, "main", "barrier", "barrier")
        obs.barrier_arrive(key, 1, s1)
        obs.engine.now = 3.1
        obs.end(s0)
        obs.barrier_exit(key, 0, s0)
        obs.end(s1)
        obs.barrier_exit(key, 1, s1)
        # Rank 0 waited on rank 1 (the last arriver); rank 1 waited on
        # nobody, so no self-edge is recorded.
        assert obs.edges == [(s1, s0)]

    def test_barrier_rounds_match_by_arrival_count(self, obs):
        key = 7
        sids = {}
        for rnd in range(2):
            for rank in (0, 1):
                obs.engine.now = rnd * 10.0 + rank
                sid = obs.begin(rank, "main", "barrier", "barrier")
                sids[(rnd, rank)] = sid
                obs.barrier_arrive(key, rank, sid)
            for rank in (0, 1):
                obs.end(sids[(rnd, rank)])
                obs.barrier_exit(key, rank, sids[(rnd, rank)])
        assert obs.edges == [
            (sids[(0, 1)], sids[(0, 0)]),
            (sids[(1, 1)], sids[(1, 0)]),
        ]


class TestContextLane:
    def test_lane_assignment(self):
        class Ctx:
            def __init__(self, index, num):
                self.index = index
                self.client = type("C", (), {"num_contexts": num})()

        assert context_lane(Ctx(0, 1)) == "main"
        assert context_lane(Ctx(0, 2)) == "main"
        assert context_lane(Ctx(1, 2)) == "async"


class TestMetrics:
    def test_bucket_scheme(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(BUCKET_ANCHOR) == 0
        assert bucket_index(1.5e-9) == 1
        assert bucket_index(2e-9) == 1  # (1, 2] ns
        assert bucket_index(2.1e-9) == 2
        assert bucket_index(1e30) == NUM_BUCKETS - 1
        assert bucket_upper_edge(0) == BUCKET_ANCHOR
        assert bucket_upper_edge(10) == pytest.approx(1024e-9)
        # Every value lands in the bucket whose upper edge bounds it.
        for v in (3e-9, 1e-6, 0.5, 7.0):
            i = bucket_index(v)
            assert v <= bucket_upper_edge(i)
            assert v > bucket_upper_edge(i - 1)

    def test_counter_and_gauge_per_rank(self):
        c = Counter()
        c.incr()
        c.incr(4, rank=2)
        assert c.total == 5
        assert c.per_rank == {2: 4}
        g = Gauge()
        g.set(1.5, rank=0)
        g.set(2.5)
        assert g.value == 2.5
        assert g.per_rank == {0: 1.5}

    def test_histogram_summary_and_bucket_percentiles(self):
        h = Histogram()
        for v in (1e-6, 2e-6, 3e-6, 100e-6):
            h.record(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == 1e-6 and s["max"] == 100e-6
        assert s["mean"] == pytest.approx(26.5e-6)
        # Bucketed percentiles are deterministic upper edges.
        assert s["p50"] == bucket_upper_edge(bucket_index(2e-6))
        assert s["p99"] == bucket_upper_edge(bucket_index(100e-6))
        assert h.raw == []  # nothing retained by default

    def test_exact_percentiles_with_keep_raw(self):
        h = Histogram(keep_raw=True)
        for v in range(1, 101):
            h.record(v * 1e-6)
        assert h.percentile(50) == pytest.approx(50e-6)
        assert h.percentile(95) == pytest.approx(95e-6)
        assert h.raw[:3] == [1e-6, 2e-6, 3e-6]

    def test_merge_and_per_rank(self):
        a = Histogram()
        b = Histogram()
        a.record(1e-6, rank=0)
        b.record(3e-6, rank=1)
        a.merge(b)
        assert a.count == 2
        assert a.max == 3e-6
        # merge folds per-rank sub-histograms too (shard-merge support)
        assert set(a.per_rank()) == {0, 1}
        assert a.per_rank()[1].count == 1

    def test_registry_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("ops").incr(2, rank=0)
        b.counter("ops").incr(3, rank=5)
        b.counter("only_b").incr(7)
        a.gauge("high").set(1.5)
        b.gauge("high").set(4.5, rank=5)
        a.histogram("lat").record(1e-6)
        b.histogram("lat").record(2e-6)
        a.merge(b)
        assert a.counter("ops").total == 5
        assert a.counter("ops").per_rank == {0: 2, 5: 3}
        assert a.counter("only_b").total == 7
        assert a.gauge("high").value == 4.5
        assert a.histogram("lat").count == 2

    def test_registry_snapshot_is_json_stable(self):
        reg = MetricsRegistry()
        reg.counter("b").incr(2, rank=1)
        reg.counter("a").incr()
        reg.gauge("depth").set(3.0)
        reg.histogram("lat").record(5e-6, rank=1)
        snap = reg.snapshot(per_rank=True)
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["per_rank"]["counters"]["b"] == {"1": 2}
        assert snap["per_rank"]["histograms"]["lat"]["1"]["count"] == 1
        text = json.dumps(snap, sort_keys=True)
        assert json.dumps(reg.snapshot(per_rank=True), sort_keys=True) == text


class TestHistogramShardMerge:
    """Merge-then-percentile round trips — the serving dashboards fold
    one histogram per shard/rank and quote p50/p99/p999 off the result,
    so the merged view must agree with a single histogram that saw every
    observation directly."""

    def test_record_many_equals_record_loop(self):
        import numpy as np

        rng = np.random.default_rng(9)
        values = rng.lognormal(mean=-12.0, sigma=2.0, size=4000)
        one = Histogram()
        many = Histogram()
        for v in values:
            one.record(float(v), rank=int(v * 1e9) % 3)
        many.record_many(values[:1000], rank=0)
        many.record_many(values[1000:2000], rank=1)
        many.record_many(values[2000:], rank=2)
        # Different rank attribution, identical aggregate view.
        assert many.counts == one.counts
        assert many.count == one.count
        assert many.total == pytest.approx(one.total)
        assert many.min == one.min and many.max == one.max
        for p in (50, 95, 99, 99.9):
            assert many.percentile(p) == one.percentile(p)

    def test_record_many_hits_exact_bucket_edges(self):
        # Edge values must land in the same bucket whether recorded
        # scalar or vectorized (the frexp half-open boundary case).
        edges = [BUCKET_ANCHOR, 2e-9, 2.0000001e-9, 1024e-9, 0.5, 1e30, 0.0]
        scalar = Histogram()
        vector = Histogram()
        for v in edges:
            scalar.record(v)
        vector.record_many(edges)
        assert vector.counts == scalar.counts

    def test_merged_shards_match_global_percentiles(self):
        import numpy as np

        rng = np.random.default_rng(17)
        values = rng.gamma(2.0, 40e-6, size=9000)
        whole = Histogram()
        whole.record_many(values)
        merged = Histogram()
        for shard in np.array_split(values, 7):  # uneven shard sizes
            h = Histogram()
            h.record_many(shard)
            merged.merge(h)
        assert merged.counts == whole.counts
        assert merged.summary() == whole.summary()

    def test_summary_includes_p999(self):
        h = Histogram(keep_raw=True)
        h.record_many([float(i) * 1e-6 for i in range(1, 1001)])
        s = h.summary()
        assert s["p999"] == pytest.approx(1000e-6)
        assert s["p999"] >= s["p99"] >= s["p95"] >= s["p50"]

    def test_raw_merge_keeps_exactness(self):
        a = Histogram(keep_raw=True)
        b = Histogram(keep_raw=True)
        a.record_many([1e-6, 2e-6])
        b.record_many([3e-6, 4e-6])
        a.merge(b)
        assert a.keep_raw
        assert a.percentile(50) == pytest.approx(2e-6)

    def test_keep_raw_mismatch_degrades_to_buckets(self):
        # Folding a bucket-only shard into a raw-keeping histogram must
        # NOT keep quoting "exact" percentiles over a partial raw list —
        # that silently drifts from the truth. It degrades to bucket
        # percentiles covering every observation instead.
        raw = Histogram(keep_raw=True)
        raw.record_many([1e-6] * 10)
        buckets_only = Histogram()
        buckets_only.record_many([100e-6] * 90)
        raw.merge(buckets_only)
        assert not raw.keep_raw
        assert raw.count == 100
        # p99 now reflects the bucket truth (dominated by the 100us
        # observations), not the stale 10-value raw list.
        assert raw.percentile(99) >= 100e-6

    def test_empty_bucket_only_merge_preserves_raw(self):
        raw = Histogram(keep_raw=True)
        raw.record(5e-6)
        raw.merge(Histogram())  # empty shard: nothing to mistrust
        assert raw.keep_raw
        assert raw.percentile(50) == pytest.approx(5e-6)


def _sample_spans():
    return [
        Span(1, None, 0, "main", "op", "put", 0.0, 3.0),
        Span(2, 1, 0, "net", "rdma", "rdma_put", 0.5, 2.0, {"nbytes": 8}),
        Span(3, 1, 1, "async", "progress", "drain", 1.0, 1.5),
    ]


class TestExport:
    def test_tracks_and_events(self):
        events = to_trace_events(_sample_spans(), [(2, 1)])
        meta = [e for e in events if e["ph"] == "M"]
        # One process per rank + one thread per (rank, lane) pair.
        assert {(e["name"], e["pid"]) for e in meta} == {
            ("process_name", 0),
            ("process_name", 1),
            ("thread_name", 0),
            ("thread_name", 1),
        }
        lanes = {
            (e["pid"], e["args"]["name"])
            for e in meta
            if e["name"] == "thread_name"
        }
        assert lanes == {(0, "main"), (0, "net"), (1, "async")}
        xs = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["put", "rdma_put", "drain"]
        assert xs[0]["ts"] == 0.0 and xs[0]["dur"] == pytest.approx(3e6)
        assert xs[1]["args"] == {"span_id": 2, "parent_id": 1, "nbytes": 8}
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert len(flows) == 2
        assert flows[0]["id"] == flows[1]["id"]

    def test_payload_validates_and_is_byte_stable(self):
        spans = _sample_spans()
        payload = perfetto_payload(spans, [(2, 1)])
        assert validate_trace_events(payload) == []
        assert dumps_perfetto(spans, [(2, 1)]) == dumps_perfetto(
            list(spans), [(2, 1)]
        )

    def test_open_spans_are_dropped(self):
        spans = _sample_spans() + [Span(4, None, 0, "main", "op", "open", 9.0)]
        names = [e["name"] for e in to_trace_events(spans) if e["ph"] == "X"]
        assert "open" not in names

    def test_validator_flags_bad_events(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"traceEvents": 3}) != []
        bad = {
            "traceEvents": [
                {"ph": "Z", "pid": 0, "tid": 0},
                {"ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": -2.0,
                 "name": "x"},
                {"ph": "s", "pid": 0, "tid": 0, "ts": 1.0},
            ]
        }
        problems = validate_trace_events(bad)
        assert len(problems) == 3

    def test_file_writers(self, tmp_path):
        spans = _sample_spans()
        jsonl = tmp_path / "spans.jsonl"
        write_spans_jsonl(jsonl, spans)
        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert [d["span_id"] for d in lines] == [1, 2, 3]
        reg = MetricsRegistry()
        reg.counter("ops").incr(3)
        mpath = tmp_path / "metrics.json"
        write_metrics_json(mpath, reg)
        assert json.loads(mpath.read_text())["counters"]["ops"] == 3


class TestCriticalPath:
    def test_coverage_is_exact_and_waits_attribute_in_place(self):
        spans = [
            Span(1, None, 0, "main", "op", "get", 0.0, 10.0),
            Span(2, 1, 0, "main", "counter_wait", "rmw.wait", 2.0, 8.0),
            # Remote service work: stays out of the sweep.
            Span(3, None, 1, "main", "amo_service", "rmw", 7.0, 8.0),
        ]
        report = critical_path(spans, [(3, 2)])
        assert report.window == pytest.approx(10.0)
        assert report.coverage == pytest.approx(1.0)
        assert report.attribution["counter_wait"] == pytest.approx(6.0)
        assert report.attribution["op"] == pytest.approx(4.0)
        assert "amo_service" not in report.attribution

    def test_barrier_hop_crosses_ranks(self):
        spans = [
            # Rank 0 computes 1s then dwells at the barrier until t=9.
            Span(1, None, 0, "main", "compute", "work", 0.0, 1.0),
            Span(2, None, 0, "main", "barrier", "barrier", 1.0, 9.0),
            # Rank 1 computes until t=8.9 and sails through the barrier.
            Span(3, None, 1, "main", "compute", "work", 0.0, 8.9),
            Span(4, None, 1, "main", "barrier", "barrier", 8.9, 9.0),
        ]
        report = critical_path(spans, [(4, 2)], start_rank=0)
        # The path hops to rank 1 at its barrier arrival: the window is
        # rank 1's compute plus a sliver of true barrier dwell — not
        # rank 0's full 8-second dwell.
        assert report.coverage == pytest.approx(1.0)
        assert report.attribution["compute"] == pytest.approx(8.9)
        assert report.attribution["barrier"] == pytest.approx(0.1)
        ranks = {seg.rank for seg in report.segments}
        assert ranks == {0, 1}

    def test_idle_gaps_are_attributed(self):
        spans = [
            Span(1, None, 0, "main", "op", "a", 0.0, 2.0),
            Span(2, None, 0, "main", "op", "b", 5.0, 6.0),
        ]
        report = critical_path(spans, [])
        assert report.attribution["idle"] == pytest.approx(3.0)
        assert report.coverage == pytest.approx(1.0)

    def test_attribution_rows_render(self):
        spans = [Span(1, None, 0, "main", "op", "a", 0.0, 2.0)]
        rows = attribution_rows(critical_path(spans, []))
        assert rows == [["op", "2000.000 ms", "100.0%"]]

    def test_empty_input(self):
        report = critical_path([], [])
        assert report.segments == []
        assert report.coverage == pytest.approx(1.0)


class TestJobIntegration:
    def _body(self, rt):
        alloc = yield from rt.malloc(64)
        if rt.rank == 0:
            src = rt.world.space(0).allocate(64)
            yield from rt.put(1, src, alloc.addr(1), 64)
            yield from rt.fence(1)
            yield from rt.rmw(1, alloc.addr(1), "fetch_add", 1)
        yield from rt.barrier()

    def test_disabled_by_default(self):
        job = ArmciJob(2, procs_per_node=2, config=ArmciConfig())
        job.init()
        assert job.obs is None
        job.run(self._body)

    def test_enabled_records_clean_span_tree(self):
        config = ArmciConfig(obs=ObsConfig(enabled=True))
        job = ArmciJob(2, procs_per_node=2, config=config)
        job.init()
        assert job.obs is not None
        job.run(self._body)
        obs = job.obs
        assert obs.truncated_spans == 0
        spans = obs.finished()
        assert len(spans) == len(obs.spans)  # everything closed
        cats = {s.category for s in spans}
        assert {"op", "rdma", "fence", "barrier", "counter_wait"} <= cats
        assert validate_trace_events(perfetto_payload(spans, obs.edges)) == []
        report = job.report()
        assert "spans recorded" in report
        assert "critical path" in report

    def test_same_seed_runs_export_identical_bytes(self):
        payloads = []
        for _ in range(2):
            config = ArmciConfig(obs=ObsConfig(enabled=True))
            job = ArmciJob(2, procs_per_node=2, config=config)
            job.init()
            job.run(self._body)
            payloads.append(
                dumps_perfetto(job.obs.finished(), job.obs.edges)
            )
        assert payloads[0] == payloads[1]
