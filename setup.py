"""Legacy setup shim so `pip install -e .` works without network access.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (the offline environment lacks `wheel`,
which PEP 660 editable installs require).
"""

from setuptools import setup

setup()
