"""Schedule-exploration fuzz targets for the consistency subsystem.

Each target builds one complete simulated job on an
:class:`~repro.sim.engine.Engine` configured with a seeded
:class:`~repro.sim.engine.SchedulePolicy`, attaches the
:class:`~repro.verify.oracle.HappensBeforeOracle` to every rank, runs a
workload whose *semantic* outcome is schedule-independent, and returns a
:class:`FuzzResult` bundling the explored schedule's digest, the
oracle's verdict, and any semantic check failures.

The workloads are engineered to be race-free: concurrent ranks write
disjoint byte ranges (or commuting accumulates) and read structures
nobody writes, with fences/barriers/locks providing exactly the ordering
location consistency requires. Any oracle flag or value mismatch on any
explored schedule is therefore a genuine defect in the runtime or the
active tracker. One modeling caveat: same-(src,dst) write-write ties at
equal delivery times can only arise from chaos jitter clamping, so the
chaos target keeps its accumulate and get traffic on disjoint segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..armci.config import ArmciConfig
from ..armci.runtime import ArmciJob
from ..armci.vector import IoVector
from ..apps.nwchem.scf import ScfConfig, run_scf
from ..chaos import ChaosConfig
from ..errors import ReproError
from ..sim.engine import (
    Engine,
    PriorityPerturbationPolicy,
    RandomTieBreakPolicy,
    SchedulePolicy,
)
from ..types import StridedDescriptor, StridedShape
from .oracle import HappensBeforeOracle, attach_oracle


@dataclass
class FuzzResult:
    """Outcome of one fuzzed run of one target."""

    target: str
    seed: int
    policy: str
    digest: int
    decisions: int  # scheduling decisions the policy perturbed
    counters: dict[str, int]
    oracle: HappensBeforeOracle | None
    #: The job's :class:`~repro.obs.span.Obs` sink when the run was fuzzed
    #: with observability enabled (``config_overrides={"obs": ...}``).
    obs: object | None = None
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def make_policy(
    kind: str, seed: int, limit: int | None = None
) -> SchedulePolicy | None:
    """Build a tie-breaking policy by name (``fifo``/``random``/``pct``)."""
    if kind == "fifo":
        return SchedulePolicy()
    if kind == "random":
        return RandomTieBreakPolicy(seed, limit=limit)
    if kind == "pct":
        return PriorityPerturbationPolicy(seed, limit=limit)
    raise ReproError(f"unknown policy kind {kind!r}")


def _finish(
    name: str,
    seed: int,
    engine: Engine,
    oracle: HappensBeforeOracle,
    trace,
    failures: list[str],
    obs=None,
) -> FuzzResult:
    failures = list(failures)
    for v in oracle.report.violations:
        failures.append(f"oracle:{v.kind}: {v.detail}")
    policy = engine.policy
    return FuzzResult(
        target=name,
        seed=seed,
        policy=policy.describe() if policy is not None else "none",
        digest=engine.schedule_digest,
        decisions=getattr(policy, "_issued", 0),
        counters=trace.snapshot(),
        oracle=oracle,
        obs=obs,
        failures=failures,
    )


def _make_job(
    num_procs: int,
    seed: int,
    policy: str,
    tracker: str,
    limit: int | None,
    chaos: ChaosConfig | None = None,
    config_overrides: dict | None = None,
) -> tuple[ArmciJob, HappensBeforeOracle]:
    engine = Engine(policy=make_policy(policy, seed, limit))
    cfg = dict(consistency_tracker=tracker)
    if config_overrides:
        cfg.update(config_overrides)
    job = ArmciJob(
        num_procs,
        config=ArmciConfig(**cfg),
        procs_per_node=2,
        chaos=chaos,
        engine=engine,
    )
    job.init()
    return job, attach_oracle(job)


def target_strided(
    seed: int,
    policy: str = "random",
    tracker: str = "cs_mr",
    limit: int | None = None,
    config_overrides: dict | None = None,
) -> FuzzResult:
    """Strided puts to disjoint slots of a shared matrix + gets of an
    untouched structure (the dgemm access pattern, miniaturized).

    Each rank strided-puts its own row band of ``C`` on every rank and
    strided-gets blocks of ``A`` (which nobody writes): under ``cs_mr``
    the gets must never fence; the final bands must survive every
    schedule bit-exact.
    """
    p = 4
    chunk = 64
    rows = 2
    band = rows * chunk

    def body(rt):
        a = yield from rt.malloc(p * band)
        c = yield from rt.malloc(p * band)
        space = rt.world.space(rt.rank)
        # Fill the local A segment with a rank-tagged pattern; C's band
        # staging buffer lives in a scratch allocation.
        scratch = yield from rt.malloc(2 * band)
        src = scratch.addr(rt.rank)
        pattern = np.full(band // 8, float(rt.rank + 1))
        space.write_f64(a.addr(rt.rank), np.arange(p * band // 8, dtype=float))
        space.write_f64(src, pattern)
        yield from rt.barrier()
        desc = StridedDescriptor(
            shape=StridedShape(chunk_bytes=chunk, counts=(rows,)),
            src_strides=(chunk,),
            dst_strides=(chunk,),
        )
        for step in range(p):
            dst = (rt.rank + step) % p
            # Disjoint destination: rank r owns band r of C everywhere.
            yield from rt.puts(dst, src, c.addr(dst) + rt.rank * band, desc)
            # Read A (never written): cs_mr must not fence these.
            yield from rt.gets(dst, src + band, a.addr(dst) + rt.rank * band, desc)
        # Read back the band just written: a genuine conflict the tracker
        # MUST fence (a required fence, not a false positive).
        vdst = (rt.rank + 1) % p
        yield from rt.gets(vdst, src + band, c.addr(vdst) + rt.rank * band, desc)
        got_band = space.read_f64(src + band, band // 8)
        if not np.array_equal(got_band, pattern):
            raise AssertionError(
                f"rank {rt.rank}: read-after-write returned stale band"
            )
        # Re-read after the fence: a healthy tracker skips cleanly; an
        # over-fencing one shows up as a false positive here.
        yield from rt.gets(vdst, src + band, c.addr(vdst) + rt.rank * band, desc)
        yield from rt.fence_all()
        yield from rt.barrier()
        # Every band of local C carries its writer's tag.
        got = space.read_f64(c.addr(rt.rank), p * band // 8)
        expect = np.repeat(np.arange(1.0, p + 1), band // 8)
        if not np.array_equal(got, expect):
            raise AssertionError(
                f"rank {rt.rank}: C bands corrupted under fuzzing"
            )
        yield from rt.barrier()

    job, oracle = _make_job(
        p, seed, policy, tracker, limit, config_overrides=config_overrides
    )
    failures: list[str] = []
    try:
        job.run(body)
    except (ReproError, AssertionError) as exc:
        failures.append(f"run:{type(exc).__name__}: {exc}")
    return _finish(
        "strided", seed, job.engine, oracle, job.trace, failures, obs=job.obs
    )


def target_vector(
    seed: int,
    policy: str = "random",
    tracker: str = "cs_mr",
    limit: int | None = None,
    config_overrides: dict | None = None,
) -> FuzzResult:
    """I/O-vector puts to per-rank slots + vector gets of a read-only
    structure, same disjointness discipline as the strided target."""
    p = 4
    seg = 48
    slots = 3
    span = slots * seg

    def body(rt):
        a = yield from rt.malloc(p * span)
        c = yield from rt.malloc(p * span)
        scratch = yield from rt.malloc(2 * span)
        space = rt.world.space(rt.rank)
        src = scratch.addr(rt.rank)
        space.write_f64(a.addr(rt.rank), np.arange(p * span // 8, dtype=float))
        space.write_f64(src, np.full(span // 8, float(rt.rank + 1)))
        yield from rt.barrier()
        for step in range(p):
            dst = (rt.rank + step) % p
            base = c.addr(dst) + rt.rank * span
            vec = IoVector(
                local_addrs=tuple(src + i * seg for i in range(slots)),
                remote_addrs=tuple(base + i * seg for i in range(slots)),
                lengths=(seg,) * slots,
            )
            yield from rt.putv(dst, vec)
            rbase = a.addr(dst) + rt.rank * span
            rvec = IoVector(
                local_addrs=tuple(src + span + i * seg for i in range(slots)),
                remote_addrs=tuple(rbase + i * seg for i in range(slots)),
                lengths=(seg,) * slots,
            )
            yield from rt.getv(dst, rvec)
        yield from rt.fence_all()
        yield from rt.barrier()
        got = space.read_f64(c.addr(rt.rank), p * span // 8)
        expect = np.repeat(np.arange(1.0, p + 1), span // 8)
        if not np.array_equal(got, expect):
            raise AssertionError(
                f"rank {rt.rank}: C slots corrupted under fuzzing"
            )
        yield from rt.barrier()

    job, oracle = _make_job(
        p, seed, policy, tracker, limit, config_overrides=config_overrides
    )
    failures: list[str] = []
    try:
        job.run(body)
    except (ReproError, AssertionError) as exc:
        failures.append(f"run:{type(exc).__name__}: {exc}")
    return _finish(
        "vector", seed, job.engine, oracle, job.trace, failures, obs=job.obs
    )


def target_lock(
    seed: int,
    policy: str = "random",
    tracker: str = "cs_mr",
    limit: int | None = None,
    config_overrides: dict | None = None,
) -> FuzzResult:
    """Mutex-protected shared counter: the classic fetch-update-put
    critical section, fence before unlock.

    Every rank increments a counter on rank 0 ``k`` times under mutex 0.
    The final value must be exactly ``p * k`` on every schedule — a lost
    update means mutual exclusion or the fence-before-release protocol
    broke under reordering.
    """
    p = 4
    k = 3

    def body(rt):
        cell = yield from rt.malloc(16)
        scratch = yield from rt.malloc(16)
        space = rt.world.space(rt.rank)
        if rt.rank == 0:
            space.write_i64(cell.addr(0), 0)
        yield from rt.barrier()
        local = scratch.addr(rt.rank)
        for _ in range(k):
            yield from rt.lock(0)
            yield from rt.get(0, local, cell.addr(0), 8)
            value = rt.world.space(rt.rank).read_i64(local)
            rt.world.space(rt.rank).write_i64(local, value + 1)
            yield from rt.put(0, local, cell.addr(0), 8)
            # Certify the put before releasing: the next holder's get
            # must observe it.
            yield from rt.fence(0)
            yield from rt.unlock(0)
        yield from rt.barrier()
        if rt.rank == 0:
            final = space.read_i64(cell.addr(0))
            if final != p * k:
                raise AssertionError(
                    f"lost update: counter {final}, expected {p * k}"
                )
        yield from rt.barrier()

    job, oracle = _make_job(
        p, seed, policy, tracker, limit, config_overrides=config_overrides
    )
    failures: list[str] = []
    try:
        job.run(body)
    except (ReproError, AssertionError) as exc:
        failures.append(f"run:{type(exc).__name__}: {exc}")
    return _finish("lock", seed, job.engine, oracle, job.trace, failures)


def target_chaos(
    seed: int,
    policy: str = "random",
    tracker: str = "cs_mr",
    limit: int | None = None,
    config_overrides: dict | None = None,
) -> FuzzResult:
    """Accumulates + reads under light chaos injection.

    Ranks accumulate into a shared structure ``F`` (commutative, so
    concurrent accs never conflict) and get from a read-only structure
    ``D``, with drops/dups/jitter active: schedule exploration composed
    with fault injection. The accumulated total must be exact — the
    retry layer must stay exactly-once on every schedule.
    """
    p = 4
    cell = 64

    def body(rt):
        d = yield from rt.malloc(p * cell)
        f = yield from rt.malloc(p * cell)
        scratch = yield from rt.malloc(2 * cell)
        space = rt.world.space(rt.rank)
        src = scratch.addr(rt.rank)
        space.write_f64(f.addr(rt.rank), np.zeros(p * cell // 8))
        space.write_f64(d.addr(rt.rank), np.arange(p * cell // 8, dtype=float))
        space.write_f64(src, np.ones(cell // 8))
        yield from rt.barrier()
        for step in range(p):
            dst = (rt.rank + step) % p
            yield from rt.acc(dst, src, f.addr(dst), cell, scale=1.0)
            yield from rt.get(dst, src + cell, d.addr(dst) + rt.rank * cell, cell)
        yield from rt.fence_all()
        yield from rt.barrier()
        got = space.read_f64(f.addr(rt.rank), cell // 8)
        if not np.allclose(got, float(p)):
            raise AssertionError(
                f"rank {rt.rank}: accumulate total {got[0]}, expected {p}"
            )
        yield from rt.barrier()

    job, oracle = _make_job(
        p, seed, policy, tracker, limit, chaos=ChaosConfig.light(seed),
        config_overrides=config_overrides,
    )
    failures: list[str] = []
    try:
        job.run(body)
    except (ReproError, AssertionError) as exc:
        failures.append(f"run:{type(exc).__name__}: {exc}")
    return _finish("chaos", seed, job.engine, oracle, job.trace, failures)


def target_scf(
    seed: int,
    policy: str = "random",
    tracker: str = "cs_mr",
    limit: int | None = None,
    config_overrides: dict | None = None,
) -> FuzzResult:
    """Miniature NWChem-SCF proxy under the async-thread configuration.

    The full application stack — global arrays, shared-counter load
    balancing, accumulates, fences — on a perturbed schedule. Task
    accounting must stay exact and the oracle must stay clean.
    """
    p = 4
    engine = Engine(policy=make_policy(policy, seed, limit))
    holder: dict[str, object] = {}

    def on_job(job):
        holder["job"] = job
        holder["oracle"] = attach_oracle(job)

    scf = ScfConfig(
        nbf_override=48, nblocks=4, iterations=1, tasks_per_draw=2,
        task_time=1e-6,
    )
    failures: list[str] = []
    try:
        result = run_scf(
            p,
            ArmciConfig.async_thread_mode(
                consistency_tracker=tracker, **(config_overrides or {})
            ),
            scf_config=scf,
            procs_per_node=2,
            engine=engine,
            on_job=on_job,
        )
        expected = scf.ntasks * result.iterations_run
        if result.tasks_done != expected:
            failures.append(
                f"task accounting: {result.tasks_done} done, "
                f"expected {expected}"
            )
    except ReproError as exc:
        failures.append(f"run:{type(exc).__name__}: {exc}")
    oracle = holder.get("oracle")
    if oracle is None:  # init itself failed
        oracle = HappensBeforeOracle(p)
    job = holder.get("job")
    trace = job.trace if job is not None else None

    class _EmptyTrace:
        @staticmethod
        def snapshot() -> dict[str, int]:
            return {}

    return _finish(
        "scf", seed, engine, oracle, trace or _EmptyTrace, failures,
        obs=job.obs if job is not None else None,
    )


def target_kv(
    seed: int,
    policy: str = "random",
    tracker: str = "cs_mr",
    limit: int | None = None,
    config_overrides: dict | None = None,
) -> FuzzResult:
    """Sharded KV serving scenario: actors, rings, chaos, and a crash.

    The full ``repro.serve`` stack — remote-accumulate mailboxes,
    aggregation, guarded inboxes, four-counter termination — under
    transient chaos plus one hard server crash mid-traffic. On every
    explored schedule the run must terminate, the surviving authority
    of each shard must match the golden model *exactly* (the
    exactly-once accumulate audit), and the oracle must stay clean.
    """
    from ..chaos import FaultPlan
    from ..serve import ClientLoadConfig, KvConfig, run_kv

    p = 4
    engine = Engine(policy=make_policy(policy, seed, limit))
    holder: dict[str, object] = {}

    def on_job(job):
        holder["job"] = job
        holder["oracle"] = attach_oracle(job)

    load = ClientLoadConfig(
        num_clients=64, requests_per_client=2, num_keys=64,
        put_keys_per_rank=8, rate=5e4, arrival="bursty", deadline=2e-2,
        seed=seed,
    )
    # Crash rank 1 (a server) well past worst-case setup but inside the
    # ~2.6 ms traffic window, so failover runs while requests fly.
    plan = FaultPlan().crash(1, at=5.5e-3)
    failures: list[str] = []
    try:
        result = run_kv(
            p,
            load=load,
            kv_config=KvConfig(num_shards=2),
            armci_config=ArmciConfig(
                consistency_tracker=tracker, **(config_overrides or {})
            ),
            procs_per_node=2,
            chaos=ChaosConfig.light(seed),
            fault_plan=plan,
            engine=engine,
            on_job=on_job,
        )
        if not result.exact:
            failures.append(
                f"golden mismatch: {result.mismatched_keys} keys diverged"
            )
        if result.responses > result.requests:
            failures.append(
                f"duplicated responses: {result.responses} > {result.requests}"
            )
    except ReproError as exc:
        failures.append(f"run:{type(exc).__name__}: {exc}")
    oracle = holder.get("oracle")
    if oracle is None:  # init itself failed
        oracle = HappensBeforeOracle(p)
    job = holder.get("job")

    class _EmptyTrace:
        @staticmethod
        def snapshot() -> dict[str, int]:
            return {}

    return _finish(
        "kv", seed, engine, oracle,
        job.trace if job is not None else _EmptyTrace, failures,
        obs=job.obs if job is not None else None,
    )


#: The six fuzz targets, keyed by name.
FUZZ_TARGETS: dict[str, Callable[..., FuzzResult]] = {
    "scf": target_scf,
    "strided": target_strided,
    "vector": target_vector,
    "lock": target_lock,
    "chaos": target_chaos,
    "kv": target_kv,
}


def explore(
    targets: dict[str, Callable[..., FuzzResult]] | None = None,
    seeds: int = 10,
    policies: tuple[str, ...] = ("random", "pct"),
    tracker: str = "cs_mr",
    config_overrides: dict | None = None,
) -> list[FuzzResult]:
    """Run every target across ``seeds`` seeds per policy.

    ``config_overrides`` is forwarded to every target (e.g.
    ``{"backend": "mpi3"}`` fuzzes the whole matrix over another
    transport). Returns all results; callers assert on failures and
    count distinct schedules via ``{r.digest for r in results}``.
    """
    results = []
    for name, target in (targets or FUZZ_TARGETS).items():
        for policy in policies:
            for seed in range(seeds):
                results.append(
                    target(
                        seed, policy=policy, tracker=tracker,
                        config_overrides=config_overrides,
                    )
                )
    return results
