"""Happens-before race oracle for the ARMCI consistency subsystem.

The oracle attaches to every rank's :class:`~repro.armci.runtime.
ArmciProcess` through its ``observer`` slot and watches the runtime's
semantic event stream: data movement (put/get/acc in all their
contiguous/strided/vector forms), fences and fence *decisions*, and
every synchronization primitive that creates cross-rank ordering
(barriers, mutexes, notify/wait, read-modify-writes).

It maintains two independent models:

- a **golden conflict model** mirroring the paper's per-(region, target)
  semantics: the set of region keys each rank has written to each target
  since its last fence there. At every fence decision the active
  tracker's verdict is compared against the golden one, classifying the
  decision as a *required* fence, a *missed* fence (golden says fence,
  tracker skipped — a correctness bug), a *false-positive* fence
  (tracker fenced with no conflicting outstanding write — the cs_tgt
  overhead the paper eliminates), or a clean skip. The golden model
  deliberately uses the same region-key resolution the runtime feeds the
  trackers, so a healthy ``cs_mr`` agrees with it by construction and
  any wiring regression or mutant shows up as a divergence.

- a **vector-clock happens-before model**: each rank carries a vector
  clock ticked on every observed event and joined across barrier
  generations, mutex release→acquire edges, notify send→wait edges, and
  rmw release-acquire chains per (target, address). Byte-range accesses
  to each target's memory are checked pairwise (write/write, write/read,
  acc/read, acc/write — never read/read or acc/acc, accumulates being
  associative) and concurrent overlapping pairs are flagged as data
  races. In ``strict_sync`` mode the oracle additionally flags
  *unfenced-sync* hazards: conflicting accesses ordered only by a
  synchronization edge while the earlier write was never certified by a
  fence — ordering of the sync message does not imply remote completion
  of prior RDMA writes, except for PAMI's pairwise-ordered notify, which
  the runtime documents as fence-free (and which is why the mode is
  opt-in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..armci.dispatch import DISPATCH_NAMES

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.runtime import ArmciJob


@dataclass(frozen=True)
class Violation:
    """One oracle finding.

    ``kind`` is one of ``"missed_fence"``, ``"data_race"``, or
    ``"unfenced_sync"`` — false-positive fences are an overhead metric,
    counted but not listed as violations.
    """

    kind: str
    rank: int
    dst: int
    detail: str


@dataclass(frozen=True)
class Access:
    """One recorded byte-range access to a target's memory."""

    rank: int
    dst: int
    lo: int
    hi: int
    kind: str  # "w" (put), "a" (acc), "r" (get)
    op: str  # originating op label ("put", "puts", "acc", ...)
    clock: tuple[int, ...]
    index: int  # per-oracle sequence number, for divergence logs


@dataclass
class OracleReport:
    """Aggregated verdict of one observed run."""

    missed_fences: int = 0
    false_positive_fences: int = 0
    required_fences: int = 0
    clean_skips: int = 0
    data_races: int = 0
    unfenced_syncs: int = 0
    violations: list[Violation] = field(default_factory=list)
    service_log: list[tuple[int, str, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no correctness violation was flagged (false-positive
        fences are overhead, not errors)."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"fences: {self.required_fences} required, "
            f"{self.false_positive_fences} false-positive, "
            f"{self.missed_fences} missed; "
            f"races: {self.data_races}; unfenced-sync: {self.unfenced_syncs}; "
            f"am-services: {len(self.service_log)}"
        )


def _leq(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    """Component-wise vector-clock comparison a <= b."""
    return all(x <= y for x, y in zip(a, b))


class HappensBeforeOracle:
    """Observer implementing the golden model + vector-clock race check.

    Parameters
    ----------
    num_procs:
        Rank count (vector-clock width).
    strict_sync:
        Also flag HB-ordered conflicts whose earlier write was never
        fence-certified (see module docstring). Off by default: workloads
        legitimately using notify's pairwise ordering would be flagged.
    """

    def __init__(self, num_procs: int, strict_sync: bool = False) -> None:
        self.num_procs = num_procs
        self.strict_sync = strict_sync
        self.report = OracleReport()
        self._clock = [[0] * num_procs for _ in range(num_procs)]
        # Golden model: rank -> dst -> set of region keys written since
        # the rank's last fence to dst.
        self._outstanding: list[dict[int, set]] = [{} for _ in range(num_procs)]
        # Race detector: dst -> list of Accesses not yet pruned.
        self._accesses: dict[int, list[Access]] = {}
        self._access_index = 0
        # Fence certification: indices of this rank's uncertified write
        # accesses per dst (stamped certified on fence).
        self._uncertified: list[dict[int, list[Access]]] = [
            {} for _ in range(num_procs)
        ]
        self._certified: set[int] = set()  # access indices
        # Synchronization state.
        self._barrier_count = [0] * num_procs
        self._barrier_enters: dict[int, list[tuple[int, ...]]] = {}
        self._barrier_done: dict[int, int] = {}
        self._lock_release: dict[int, tuple[int, ...]] = {}
        self._notify_chan: dict[tuple[int, int], list[tuple[int, ...]]] = {}
        self._rmw_clock: dict[tuple[int, int], tuple[int, ...]] = {}
        self._seen_violations: set = set()

    # ------------------------------------------------------- clock ops

    def _tick(self, rank: int) -> tuple[int, ...]:
        clock = self._clock[rank]
        clock[rank] += 1
        return tuple(clock)

    def _join(self, rank: int, other: tuple[int, ...]) -> None:
        clock = self._clock[rank]
        for i, v in enumerate(other):
            if v > clock[i]:
                clock[i] = v

    def _flag(self, kind: str, rank: int, dst: int, detail: str, dedup) -> None:
        if dedup in self._seen_violations:
            return
        self._seen_violations.add(dedup)
        self.report.violations.append(Violation(kind, rank, dst, detail))
        if kind == "missed_fence":
            self.report.missed_fences += 1
        elif kind == "data_race":
            self.report.data_races += 1
        elif kind == "unfenced_sync":
            self.report.unfenced_syncs += 1

    # ------------------------------------------------- data movement

    def on_write(
        self, rank: int, dst: int, key, lo: int, nbytes: int, op: str
    ) -> None:
        clock = self._tick(rank)
        self._outstanding[rank].setdefault(dst, set()).add(key)
        kind = "a" if op == "acc" else "w"
        acc = Access(rank, dst, lo, lo + nbytes, kind, op, clock, self._access_index)
        self._access_index += 1
        self._check_races(acc)
        self._accesses.setdefault(dst, []).append(acc)
        self._uncertified[rank].setdefault(dst, []).append(acc)

    def on_read(
        self, rank: int, dst: int, key, lo: int, nbytes: int, op: str
    ) -> None:
        clock = self._tick(rank)
        acc = Access(rank, dst, lo, lo + nbytes, "r", op, clock, self._access_index)
        self._access_index += 1
        self._check_races(acc)
        self._accesses.setdefault(dst, []).append(acc)

    def _conflicts(self, a: Access, b: Access) -> bool:
        if a.rank == b.rank:
            return False
        if a.lo >= b.hi or b.lo >= a.hi:
            return False  # disjoint byte ranges
        if a.kind == "r" and b.kind == "r":
            return False
        if a.kind == "a" and b.kind == "a":
            return False  # accumulates commute
        return True

    def _check_races(self, new: Access) -> None:
        for old in self._accesses.get(new.dst, ()):  # new not yet stored
            if not self._conflicts(new, old):
                continue
            ordered = _leq(old.clock, new.clock) or _leq(new.clock, old.clock)
            if not ordered:
                self._flag(
                    "data_race",
                    new.rank,
                    new.dst,
                    f"{old.op} by r{old.rank} [{old.lo},{old.hi}) races "
                    f"{new.op} by r{new.rank} [{new.lo},{new.hi}) on r{new.dst}",
                    ("race", old.index, new.index),
                )
            elif self.strict_sync:
                first = old if _leq(old.clock, new.clock) else new
                if first.kind in ("w", "a") and first.index not in self._certified:
                    self._flag(
                        "unfenced_sync",
                        new.rank,
                        new.dst,
                        f"{first.op} by r{first.rank} [{first.lo},{first.hi}) "
                        f"ordered before a conflicting access only by "
                        f"synchronization, never fence-certified",
                        ("unfenced", first.index),
                    )

    # --------------------------------------------------------- fences

    def on_fence_decision(self, rank: int, dst: int, key, fenced: bool) -> None:
        required = key in self._outstanding[rank].get(dst, ())
        if required and fenced:
            self.report.required_fences += 1
        elif required and not fenced:
            self._flag(
                "missed_fence",
                rank,
                dst,
                f"get of region {key} on r{dst} with an outstanding write to "
                f"that region, tracker skipped the fence",
                ("missed", rank, dst, key, self._access_index),
            )
        elif fenced:
            self.report.false_positive_fences += 1
        else:
            self.report.clean_skips += 1

    def on_fence(self, rank: int, dst: int) -> None:
        self._tick(rank)
        self._outstanding[rank].pop(dst, None)
        for acc in self._uncertified[rank].pop(dst, ()):
            self._certified.add(acc.index)

    # -------------------------------------------------------- barriers

    def on_barrier_enter(self, rank: int) -> None:
        gen = self._barrier_count[rank]
        self._barrier_enters.setdefault(gen, []).append(self._tick(rank))

    def on_barrier_exit(self, rank: int) -> None:
        gen = self._barrier_count[rank]
        self._barrier_count[rank] += 1
        for entered in self._barrier_enters.get(gen, ()):
            self._join(rank, entered)
        self._tick(rank)
        done = self._barrier_done.get(gen, 0) + 1
        self._barrier_done[gen] = done
        if done == self.num_procs:
            self._prune(gen)

    def _prune(self, gen: int) -> None:
        """Drop accesses ordered before a fully-exited barrier generation.

        Every rank joined the generation's merged enter clock, so any
        later access is happens-after these — races involving them were
        already checked incrementally. Keeps the pairwise race check
        linear in per-epoch traffic instead of quadratic in run length.
        """
        enters = self._barrier_enters.pop(gen, [])
        self._barrier_done.pop(gen, None)
        if len(enters) < self.num_procs:
            return
        floor = tuple(max(vals) for vals in zip(*enters))
        for dst, accs in self._accesses.items():
            # Strict mode keeps uncertified writes alive: the barrier
            # orders them, but only a fence certifies them.
            self._accesses[dst] = [
                a
                for a in accs
                if not _leq(a.clock, floor)
                or (
                    self.strict_sync
                    and a.kind in ("w", "a")
                    and a.index not in self._certified
                )
            ]

    # ----------------------------------------------- locks / notify / rmw

    def on_lock(self, rank: int, mutex_id: int) -> None:
        release = self._lock_release.get(mutex_id)
        if release is not None:
            self._join(rank, release)
        self._tick(rank)

    def on_unlock(self, rank: int, mutex_id: int) -> None:
        self._lock_release[mutex_id] = self._tick(rank)

    def on_notify(self, rank: int, dst: int) -> None:
        self._notify_chan.setdefault((rank, dst), []).append(self._tick(rank))

    def on_notify_wait(self, rank: int, src: int) -> None:
        chan = self._notify_chan.get((src, rank))
        if chan:
            self._join(rank, chan.pop(0))
        self._tick(rank)

    def on_rmw(self, rank: int, dst: int, addr: int) -> None:
        # Read-modify-writes to one cell are serialized by the target's
        # progress engine: each one is release-acquire ordered after the
        # previous (the load-balance counter's correctness argument).
        prev = self._rmw_clock.get((dst, addr))
        if prev is not None:
            self._join(rank, prev)
        self._rmw_clock[(dst, addr)] = self._tick(rank)

    # ------------------------------------------------------ target side

    def on_am_service(self, rank: int, dispatch_id: int, src: int) -> None:
        name = DISPATCH_NAMES.get(dispatch_id, f"dispatch_{dispatch_id}")
        self.report.service_log.append((rank, name, src))


def attach_oracle(
    job: "ArmciJob", strict_sync: bool = False
) -> HappensBeforeOracle:
    """Create an oracle and install it as every rank's observer."""
    oracle = HappensBeforeOracle(job.num_procs, strict_sync=strict_sync)
    for rt in job.processes:
        rt.observer = oracle
    return oracle
