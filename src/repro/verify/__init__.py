"""Schedule-exploration and race-detection subsystem (``repro.verify``).

The paper's location-consistency claim — per-memory-region ``cs_mr``
status words eliminate false-positive fences without admitting real
conflicts — only holds if it survives *every* legal event ordering, not
just the FIFO order the default :class:`~repro.sim.engine.Engine`
produces. This package supplies the three pieces that make the claim
testable:

- schedule exploration: :class:`~repro.sim.engine.SchedulePolicy`
  implementations (seeded random tie-breaking, bounded PCT-style
  priority perturbation) plugged into ``Engine(policy=...)``;
- a :class:`HappensBeforeOracle` observing every put/get/acc/rmw/fence
  through the runtime's observer hooks, maintaining per-rank vector
  clocks plus a golden conflict model, and flagging both *missed*
  fences (correctness bug) and *false-positive* fences (pure overhead,
  the paper's cs_tgt cost, now measurable);
- a fuzz harness (:mod:`repro.verify.fuzz`) replaying five workload
  families across seeds, with seed shrinking to a minimal event-order
  divergence log (:mod:`repro.verify.shrink`).
"""

from .oracle import (
    Access,
    HappensBeforeOracle,
    OracleReport,
    Violation,
    attach_oracle,
)
from .fuzz import (
    FUZZ_TARGETS,
    FuzzResult,
    explore,
    make_policy,
    target_chaos,
    target_lock,
    target_scf,
    target_strided,
    target_vector,
)
from .shrink import DivergenceLog, ShrinkResult, shrink_seed, write_divergence_log
from .mutation import BrokenFenceTracker, BrokenOnWriteTracker

__all__ = [
    "Access",
    "HappensBeforeOracle",
    "OracleReport",
    "Violation",
    "attach_oracle",
    "FUZZ_TARGETS",
    "FuzzResult",
    "explore",
    "make_policy",
    "target_chaos",
    "target_lock",
    "target_scf",
    "target_strided",
    "target_vector",
    "DivergenceLog",
    "ShrinkResult",
    "shrink_seed",
    "write_divergence_log",
    "BrokenFenceTracker",
    "BrokenOnWriteTracker",
]
