"""Deliberately-broken tracker mutants for oracle self-tests.

The oracle is only trustworthy if it actually catches a tracker that
violates location consistency. These mutants are registered in the
normal tracker registry, so a fuzz target run with
``tracker="cs_mr_broken_on_write"`` exercises the full production path —
config validation, ``make_tracker``, every op site — with one seeded
defect the oracle must flag.
"""

from __future__ import annotations

from ..armci.consistency import CsMrTracker, RegionKey, register_tracker


class BrokenOnWriteTracker(CsMrTracker):
    """Mutant: never records writes, so no get ever fences.

    Every get that follows an outstanding write to the same region is a
    missed fence the oracle must report.
    """

    def on_write(self, dst: int, key: RegionKey) -> None:
        self._check_key(key)  # keep the key-validation behaviour


class BrokenFenceTracker(CsMrTracker):
    """Mutant: fences never clear write status.

    Sound but pessimal — every region written once fences forever. The
    oracle reports these as false-positive fences, never as missed
    fences: the overhead/correctness distinction the counters encode.
    """

    def on_fence(self, dst: int) -> None:
        pass


register_tracker("cs_mr_broken_on_write", BrokenOnWriteTracker)
register_tracker("cs_mr_broken_fence", BrokenFenceTracker)
