"""Seed shrinking: reduce a failing fuzz run to a minimal divergence.

A failing ``(target, seed, policy)`` triple is shrunk along the policy's
``limit`` axis: with ``limit=L`` only the first ``L`` scheduling
decisions are perturbed and everything after runs FIFO, so the smallest
failing ``L`` isolates the earliest perturbation window that still
triggers the defect. The last passing run (``limit = L_min - 1``) and
the minimal failing run are then diffed at the protocol level — the
oracle's target-side AM service logs — producing a
:class:`DivergenceLog` that names the first reordered service event.

If the target fails even at ``limit=0`` (pure FIFO) the defect is not
schedule-dependent; the shrinker reports ``minimal_limit=0`` with the
baseline failure, which is exactly what a broken tracker mutant looks
like.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from .fuzz import FuzzResult


@dataclass
class DivergenceLog:
    """Protocol-level diff between the last passing and minimal failing
    runs of a shrunk seed."""

    target: str
    seed: int
    policy: str
    minimal_limit: int
    failures: list[str]
    #: Index of the first differing AM service event (-1 = logs agree or
    #: no passing run exists to diff against).
    first_divergence: int = -1
    #: Context window around the divergence: (index, passing, failing)
    #: rows rendered as strings.
    window: list[tuple[int, str, str]] = field(default_factory=list)
    note: str = ""

    def render(self) -> str:
        """The artifact text written to the divergence-log directory."""
        lines = [
            f"target:        {self.target}",
            f"seed:          {self.seed}",
            f"policy:        {self.policy}",
            f"minimal limit: {self.minimal_limit}",
            "failures:",
        ]
        lines += [f"  - {f}" for f in self.failures] or ["  (none)"]
        if self.note:
            lines.append(f"note: {self.note}")
        if self.first_divergence >= 0:
            lines.append(
                f"first service-log divergence at event {self.first_divergence}:"
            )
            lines.append(f"  {'idx':>6}  {'passing run':<40} failing run")
            for idx, a, b in self.window:
                marker = "*" if a != b else " "
                lines.append(f" {marker}{idx:>6}  {a:<40} {b}")
        else:
            lines.append("service logs agree (divergence is timing-only)")
        return "\n".join(lines) + "\n"


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal failing run + its divergence."""

    minimal_limit: int
    failing: FuzzResult
    passing: FuzzResult | None
    log: DivergenceLog


def _service_lines(result: FuzzResult) -> list[str]:
    if result.oracle is None:
        return []
    return [
        f"r{rank} services {name} from r{src}"
        for rank, name, src in result.oracle.report.service_log
    ]


def _diverge(passing: FuzzResult | None, failing: FuzzResult, log: DivergenceLog,
             context: int = 4) -> None:
    if passing is None:
        return
    a, b = _service_lines(passing), _service_lines(failing)
    n = max(len(a), len(b))
    first = -1
    for i in range(n):
        ai = a[i] if i < len(a) else "(end)"
        bi = b[i] if i < len(b) else "(end)"
        if ai != bi:
            first = i
            break
    log.first_divergence = first
    if first >= 0:
        lo, hi = max(0, first - context), min(n, first + context + 1)
        log.window = [
            (
                i,
                a[i] if i < len(a) else "(end)",
                b[i] if i < len(b) else "(end)",
            )
            for i in range(lo, hi)
        ]


def shrink_seed(
    target: Callable[..., FuzzResult],
    seed: int,
    policy: str = "random",
    tracker: str = "cs_mr",
    max_limit: int | None = None,
) -> ShrinkResult:
    """Bisect the smallest perturbation limit that still fails.

    ``target(seed, policy=..., tracker=..., limit=...)`` must fail at
    ``limit=None`` (unbounded). Returns the minimal failing run, the
    last passing run (``None`` if the baseline itself fails), and the
    rendered divergence log.
    """
    baseline = target(seed, policy=policy, tracker=tracker, limit=0)
    if not baseline.ok:
        log = DivergenceLog(
            target=baseline.target,
            seed=seed,
            policy=baseline.policy,
            minimal_limit=0,
            failures=baseline.failures,
            note=(
                "fails under the unperturbed FIFO schedule too: the defect "
                "is schedule-independent"
            ),
        )
        return ShrinkResult(minimal_limit=0, failing=baseline, passing=None, log=log)

    full = target(seed, policy=policy, tracker=tracker, limit=max_limit)
    if full.ok:
        raise ValueError(
            f"shrink_seed: {full.target} seed {seed} does not fail at the "
            f"full perturbation limit"
        )
    # Bisection invariant: limit=lo passes, limit=hi fails.
    lo, hi = 0, max(1, full.decisions)
    failing, passing = full, baseline
    while hi - lo > 1:
        mid = (lo + hi) // 2
        run = target(seed, policy=policy, tracker=tracker, limit=mid)
        if run.ok:
            lo, passing = mid, run
        else:
            hi, failing = mid, run
    log = DivergenceLog(
        target=failing.target,
        seed=seed,
        policy=failing.policy,
        minimal_limit=hi,
        failures=failing.failures,
    )
    _diverge(passing, failing, log)
    return ShrinkResult(minimal_limit=hi, failing=failing, passing=passing, log=log)


def write_divergence_log(log: DivergenceLog, directory: str | None = None) -> str:
    """Write the divergence artifact; returns its path.

    ``directory`` defaults to ``$REPRO_FUZZ_LOG_DIR`` (or
    ``fuzz-divergence/``) — the path the CI job uploads on failure.
    """
    directory = directory or os.environ.get(
        "REPRO_FUZZ_LOG_DIR", "fuzz-divergence"
    )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"{log.target}-seed{log.seed}-limit{log.minimal_limit}.txt"
    )
    with open(path, "w") as fh:
        fh.write(log.render())
    return path
