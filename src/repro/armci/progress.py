"""Asynchronous progress threads (Section III-D).

BG/Q's 4-way SMT cores leave hardware threads to spare: one per process is
scheduled as an *asynchronous progress thread* that continuously advances
the progress context, servicing AMOs, accumulates, fall-back gets, and
every other software-progressed operation — independent of what the main
thread is doing.

With one context (rho = 1) the async and main threads contend on the same
context lock; with two (rho = 2) the async thread owns the second context
and each thread progresses independently — the paper's recommended
configuration, costing one extra context's space (rho * epsilon).

Correctness hinges on this thread *never stalling*: a wedged async thread
silently turns the AT configuration back into default mode, and every AMO
or fall-back request targeting the rank hangs. The **progress watchdog**
(``watchdog_period`` knob) closes that hole: it samples the progress
context's service epoch and, when pending work sits unserviced for a full
period, declares the thread stalled and fails progress duty over to a
main-thread-driven loop (donating a spare SMT slot of the main thread's
core), with a trace event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..pami.context import PamiContext
from ..sim.primitives import Delay

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


def async_progress_loop(rt: "ArmciProcess", ctx: PamiContext) -> Generator[Any, Any, None]:
    """Body of the asynchronous progress thread (runs as a daemon).

    Sleeps on the context's arrival signal (an SMT thread waiting on a
    wake-up event, not burning the core) and drains everything that lands.
    """
    trace = rt.trace
    while True:
        if len(ctx.queue) == 0:
            yield ctx.arrival_signal()
        # Advance is bounded to the work pending at entry, releasing the
        # context lock between rounds. With rho=1 an unbounded drain under
        # a continuous request stream would hold the lock forever and
        # starve the main thread's local completions — exactly the
        # contention hazard Section III-D describes (and why rho=2 is the
        # recommended configuration).
        serviced = yield from ctx.advance(max_items=max(len(ctx.queue), 1))
        trace.incr("armci.async_thread_serviced", serviced)
        if rt.obs is not None and serviced:
            rt.obs.metrics.counter("obs.async_thread_serviced").incr(
                serviced, rank=rt.rank
            )


def start_async_thread(rt: "ArmciProcess") -> None:
    """Spawn the async progress thread on its context (daemon process)."""
    ctx = rt.client.progress_context()
    rt.async_thread = rt.engine.spawn(
        async_progress_loop(rt, ctx),
        name=f"async.r{rt.rank}",
        daemon=True,
    )
    rt.trace.incr("armci.async_threads_started")


def watchdog_loop(rt: "ArmciProcess", ctx: PamiContext) -> Generator[Any, Any, None]:
    """Body of the progress watchdog (daemon).

    Heartbeat scheme: :attr:`PamiContext.progress_epoch` bumps every time
    a drain services work. The watchdog arms only while the progress
    context has pending items (parking on the arrival signal otherwise,
    so an idle rank schedules nothing); if a full ``watchdog_period``
    passes with pending work and an unchanged epoch, no thread serviced
    the context — the async progress thread is stalled. The watchdog then
    fails over: it marks the stall in the trace and spawns a
    main-thread-driven progress loop so the rank's requesters unblock.
    """
    period = rt.config.watchdog_period
    world = rt.world
    while True:
        if world.is_failed(rt.rank):
            return
        if len(ctx.queue) == 0:
            yield ctx.arrival_signal()
            continue
        epoch = ctx.progress_epoch
        yield Delay(period)
        if world.is_failed(rt.rank):
            return
        if len(ctx.queue) > 0 and ctx.progress_epoch == epoch:
            _fail_over(rt, ctx)


def _fail_over(rt: "ArmciProcess", ctx: PamiContext) -> None:
    """Replace a stalled async progress thread with a fallback loop.

    The fallback runs :func:`async_progress_loop` on behalf of the main
    thread (modelling the main thread's core donating a spare SMT slot
    to progress duty, as the paper's AT design does at init).
    """
    rt.trace.incr("armci.watchdog_failovers")
    if rt.obs is not None:
        rt.obs.metrics.counter("obs.watchdog_failovers").incr(rank=rt.rank)
    rt.progress_failed_over = True
    if rt.async_thread is not None and not rt.async_thread.done.triggered:
        rt.async_thread.kill()
    rt.async_thread = rt.engine.spawn(
        async_progress_loop(rt, ctx),
        name=f"failover.r{rt.rank}",
        daemon=True,
    )


def start_watchdog(rt: "ArmciProcess") -> None:
    """Spawn the progress watchdog (requires async-thread mode)."""
    ctx = rt.client.progress_context()
    rt.watchdog = rt.engine.spawn(
        watchdog_loop(rt, ctx),
        name=f"watchdog.r{rt.rank}",
        daemon=True,
    )
    rt.trace.incr("armci.watchdogs_started")
