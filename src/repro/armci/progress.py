"""Asynchronous progress threads (Section III-D).

BG/Q's 4-way SMT cores leave hardware threads to spare: one per process is
scheduled as an *asynchronous progress thread* that continuously advances
the progress context, servicing AMOs, accumulates, fall-back gets, and
every other software-progressed operation — independent of what the main
thread is doing.

With one context (rho = 1) the async and main threads contend on the same
context lock; with two (rho = 2) the async thread owns the second context
and each thread progresses independently — the paper's recommended
configuration, costing one extra context's space (rho * epsilon).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..pami.context import PamiContext

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


def async_progress_loop(rt: "ArmciProcess", ctx: PamiContext) -> Generator[Any, Any, None]:
    """Body of the asynchronous progress thread (runs as a daemon).

    Sleeps on the context's arrival signal (an SMT thread waiting on a
    wake-up event, not burning the core) and drains everything that lands.
    """
    trace = rt.trace
    while True:
        if len(ctx.queue) == 0:
            yield ctx.arrival_signal()
        # Advance is bounded to the work pending at entry, releasing the
        # context lock between rounds. With rho=1 an unbounded drain under
        # a continuous request stream would hold the lock forever and
        # starve the main thread's local completions — exactly the
        # contention hazard Section III-D describes (and why rho=2 is the
        # recommended configuration).
        serviced = yield from ctx.advance(max_items=max(len(ctx.queue), 1))
        trace.incr("armci.async_thread_serviced", serviced)


def start_async_thread(rt: "ArmciProcess") -> None:
    """Spawn the async progress thread on its context (daemon process)."""
    ctx = rt.client.progress_context()
    rt.async_thread = rt.engine.spawn(
        async_progress_loop(rt, ctx),
        name=f"async.r{rt.rank}",
        daemon=True,
    )
    rt.trace.incr("armci.async_threads_started")
