"""ARMCI runtime configuration knobs.

Every design alternative evaluated in the paper is a switch here, so the
benchmarks can run the same workload under "default (D)" vs "asynchronous
thread (AT)", ``cs_tgt`` vs ``cs_mr``, RDMA vs fall-back, and the strided
protocol variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ArmciError
from ..obs import ObsConfig
from .consistency import is_known_tracker, known_trackers

#: Built-in consistency-tracker names (Section III-E). Additional
#: implementations may be registered via ``consistency.register_tracker``.
TRACKERS = ("cs_tgt", "cs_mr")
#: Valid strided-protocol names (Section III-C.2).
STRIDED_PROTOCOLS = ("zero_copy", "pack", "auto")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry policy for transient transport faults.

    Blocking ARMCI operations that complete with a
    :class:`~repro.errors.TransientFaultError` (chaos injection,
    :mod:`repro.chaos`) are re-issued up to ``max_retries`` times,
    sleeping ``base_delay * multiplier**k`` (capped at ``max_delay``)
    between attempts. A spent budget raises
    :class:`~repro.errors.RetryExhaustedError`; ``max_retries=0``
    disables retries and surfaces the raw fault.
    """

    max_retries: int = 5
    base_delay: float = 2e-6
    multiplier: float = 2.0
    max_delay: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ArmciError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay <= 0:
            raise ArmciError(f"base_delay must be > 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ArmciError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ArmciError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )


@dataclass(frozen=True)
class ArmciConfig:
    """Configuration of one ARMCI job.

    Parameters
    ----------
    backend:
        Communication backend the job runs over: ``"pami"`` (the paper's
        Blue Gene/Q messaging layer) or ``"mpi3"`` (MPI-3 one-sided
        windows — flush completion, limited native AMOs, emulated active
        messages). ``None`` (default) resolves
        :data:`repro.transport.DEFAULT_BACKEND`, itself ``"pami"``
        unless the ``REPRO_ARMCI_BACKEND`` environment variable says
        otherwise.
    async_thread:
        ``True`` = the paper's AT design: a dedicated SMT thread per
        process advances the progress context continuously. ``False`` =
        default (D): progress happens only when the main thread blocks in
        ARMCI calls.
    num_contexts:
        PAMI contexts per process (rho). With ``async_thread`` and
        ``rho=2`` the async thread owns its own context, eliminating lock
        contention with the main thread (Section III-D).
    use_rdma:
        Enable the RDMA fast path. Disabled, every transfer takes the
        active-message fall-back (useful to measure Eq. 7 vs Eq. 8).
    consistency_tracker:
        ``"cs_mr"`` (proposed, per-memory-region) or ``"cs_tgt"`` (naive,
        per-target).
    region_cache_capacity:
        Remote memory-region cache entries per process (LFU replacement).
        ``None`` = unbounded.
    strided_protocol:
        ``"zero_copy"`` (proposed), ``"pack"`` (legacy baseline), or
        ``"auto"`` (zero-copy, switching to the PAMI typed-datatype path
        for tall-skinny chunks).
    tall_skinny_threshold:
        Chunk sizes (bytes) strictly below this use the typed-datatype
        path under ``strided_protocol="auto"``.
    coalesce_chunks:
        Chunk-run coalescing on the zero-copy strided and vector paths:
        adjacent chunks contiguous on *both* sides merge into a single
        RDMA per run (a fully contiguous descriptor collapses to one
        op). ``True``/``False`` force it on/off everywhere; ``None``
        (default) enables it only under ``strided_protocol="auto"``, so
        the paper-figure protocols post exactly one op per chunk
        (byte-identical Eq. 9 accounting) unless explicitly opted in.
    retry:
        :class:`RetryPolicy` applied by blocking operations to transient
        transport faults (only reachable under chaos injection).
    fifo_depth:
        Injection/reception FIFO slots per progress context. ``None`` =
        unbounded (the seed model). Bounded, every request-class active
        message consumes a flow-control credit against the target's
        progress context; senders with no credit park on a room signal
        (sender-side backpressure) instead of queueing unboundedly.
    memregion_budget:
        Per-rank memory-region registration budget (slots shared between
        local registrations and the remote-region cache). Exhaustion
        degrades contiguous/strided transfers to the active-message
        fall-back path (Eqs. 7–8); ``RegionCache`` eviction frees budget
        under pressure. ``None`` = unbounded.
    default_deadline:
        Deadline (seconds of simulated time, relative to each top-level
        blocking call) applied when no explicit ``timeout=`` is given.
        Expiry raises :class:`~repro.errors.DeadlineExceededError`
        instead of hanging. ``None`` = wait forever.
    watchdog_period:
        Heartbeat period of the progress watchdog (requires
        ``async_thread``). If the progress context has pending work and
        its service epoch does not advance for a full period, the async
        progress thread is declared stalled and progress duty fails over
        to a main-thread-driven loop. ``None`` = no watchdog.
    obs:
        :class:`~repro.obs.ObsConfig` observability switches. Disabled
        (the default) every instrumentation site in the stack is a
        single ``obs is None`` test; enabled, the job records causal
        spans/metrics for Perfetto export and critical-path analysis.
    recovery:
        :class:`~repro.recover.RecoveryConfig` crash-recovery switches
        (buddy replication, coordinated checkpoint/restore, respawn).
        ``None`` (the default) or a disabled config keeps every recovery
        code path dormant — paper figures are byte-identical.
    integrity:
        :class:`~repro.pami.integrity.IntegrityConfig` end-to-end payload
        integrity switches (per-transfer CRC32 + sequence numbers,
        verified at delivery, with transparent transport retransmission
        of corrupted transfers). ``None`` (the default) or a disabled
        config keeps the protection off — silent in-flight corruption
        (``corrupt_mode="payload"`` chaos, corrupting links) then lands.
    shards:
        PDES shard count for the job's simulation backend. ``1`` (the
        default) runs the classic single engine and is byte-identical
        to every prior release. Values above 1 attach a
        :class:`~repro.sim.parallel.ShardPlan` (torus-geometry rank
        partition + conservative lookahead) to the job as
        ``job.shard_plan``; scale-hungry drivers hand that plan to
        :func:`repro.sim.parallel.run_program` to execute wire-level
        rank programs across worker processes.
    health:
        :class:`~repro.machine.health.LinkHealthConfig` link health
        monitoring switches. Enabled, the job routes on *observed* link
        state: wire losses/corruptions walk links through
        ``ok -> suspect -> dead`` with hysteresis, rerouting kicks in as
        links are declared bad, and ranks left unreachable on **all**
        paths (and only those) are escalated to the failure machinery.
        ``None`` (the default) routes on ground truth when link faults
        are injected, and not at all otherwise.
    """

    backend: str | None = None
    async_thread: bool = False
    num_contexts: int = 1
    use_rdma: bool = True
    consistency_tracker: str = "cs_mr"
    region_cache_capacity: int | None = None
    strided_protocol: str = "zero_copy"
    tall_skinny_threshold: int = 128
    coalesce_chunks: bool | None = None
    retry: RetryPolicy = RetryPolicy()
    fifo_depth: int | None = None
    memregion_budget: int | None = None
    default_deadline: float | None = None
    watchdog_period: float | None = None
    obs: ObsConfig = ObsConfig()
    recovery: object | None = None
    integrity: object | None = None
    health: object | None = None
    shards: int = 1

    def __post_init__(self) -> None:
        if self.backend is not None:
            from ..transport import BACKENDS, is_known_backend

            if not is_known_backend(self.backend):
                raise ArmciError(
                    f"unknown backend {self.backend!r}; "
                    f"valid: {sorted(BACKENDS)}"
                )
        if not isinstance(self.obs, ObsConfig):
            raise ArmciError(
                f"obs must be an ObsConfig, got {type(self.obs).__name__}"
            )
        if self.recovery is not None:
            from ..recover.config import RecoveryConfig

            if not isinstance(self.recovery, RecoveryConfig):
                raise ArmciError(
                    f"recovery must be a RecoveryConfig or None, got "
                    f"{type(self.recovery).__name__}"
                )
        if self.integrity is not None:
            from ..pami.integrity import IntegrityConfig

            if not isinstance(self.integrity, IntegrityConfig):
                raise ArmciError(
                    f"integrity must be an IntegrityConfig or None, got "
                    f"{type(self.integrity).__name__}"
                )
        if self.health is not None:
            from ..machine.health import LinkHealthConfig

            if not isinstance(self.health, LinkHealthConfig):
                raise ArmciError(
                    f"health must be a LinkHealthConfig or None, got "
                    f"{type(self.health).__name__}"
                )
        if self.num_contexts < 1:
            raise ArmciError(f"need >= 1 context, got {self.num_contexts}")
        if not is_known_tracker(self.consistency_tracker):
            raise ArmciError(
                f"unknown tracker {self.consistency_tracker!r}; "
                f"valid: {known_trackers()}"
            )
        if self.strided_protocol not in STRIDED_PROTOCOLS:
            raise ArmciError(
                f"unknown strided protocol {self.strided_protocol!r}; "
                f"valid: {STRIDED_PROTOCOLS}"
            )
        if self.region_cache_capacity is not None and self.region_cache_capacity < 1:
            raise ArmciError(
                f"region cache capacity must be >= 1 or None, got "
                f"{self.region_cache_capacity}"
            )
        if self.tall_skinny_threshold < 0:
            raise ArmciError(
                f"tall_skinny_threshold must be >= 0, got "
                f"{self.tall_skinny_threshold}"
            )
        if self.coalesce_chunks not in (None, True, False):
            raise ArmciError(
                f"coalesce_chunks must be True, False or None, got "
                f"{self.coalesce_chunks!r}"
            )
        if self.fifo_depth is not None and self.fifo_depth < 1:
            raise ArmciError(
                f"fifo_depth must be >= 1 or None, got {self.fifo_depth}"
            )
        if self.memregion_budget is not None and self.memregion_budget < 1:
            raise ArmciError(
                f"memregion_budget must be >= 1 or None, got "
                f"{self.memregion_budget}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ArmciError(
                f"default_deadline must be > 0 or None, got "
                f"{self.default_deadline}"
            )
        if self.watchdog_period is not None and self.watchdog_period <= 0:
            raise ArmciError(
                f"watchdog_period must be > 0 or None, got "
                f"{self.watchdog_period}"
            )
        if self.shards < 1:
            raise ArmciError(f"shards must be >= 1, got {self.shards}")
        if self.watchdog_period is not None and not self.async_thread:
            raise ArmciError(
                "watchdog_period requires async_thread=True (the watchdog "
                "monitors the async progress thread)"
            )

    @property
    def coalesce_effective(self) -> bool:
        """Resolved chunk-run coalescing switch (tri-state collapsed)."""
        if self.coalesce_chunks is None:
            return self.strided_protocol == "auto"
        return self.coalesce_chunks

    @classmethod
    def default_mode(cls, **overrides) -> "ArmciConfig":
        """The paper's 'D' configuration (no async thread)."""
        return cls(async_thread=False, num_contexts=1, **overrides)

    @classmethod
    def async_thread_mode(cls, **overrides) -> "ArmciConfig":
        """The paper's 'AT' configuration (async thread, two contexts)."""
        return cls(async_thread=True, num_contexts=2, **overrides)
