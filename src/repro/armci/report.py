"""Human-readable runtime reports from a job's trace.

``job.report()`` summarizes what the communication subsystem actually did
— protocol selections, cache behaviour, progress-engine work, fences —
grouped the way the paper discusses them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..util.formatting import render_table
from ..util.units import us

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciJob

#: (section, counter key, human label) rows; zero-valued rows are elided.
_COUNTER_LAYOUT: tuple[tuple[str, str, str], ...] = (
    ("protocols", "armci.put_rdma", "RDMA puts"),
    ("protocols", "armci.get_rdma", "RDMA gets"),
    ("protocols", "armci.put_fallback", "fall-back puts (AM)"),
    ("protocols", "armci.get_fallback", "fall-back gets (AM)"),
    ("protocols", "armci.puts_strided_zero_copy", "strided puts (zero-copy)"),
    ("protocols", "armci.gets_strided_zero_copy", "strided gets (zero-copy)"),
    ("protocols", "armci.puts_strided_typed", "strided puts (typed)"),
    ("protocols", "armci.gets_strided_typed", "strided gets (typed)"),
    ("protocols", "armci.puts_strided_pack", "strided puts (pack)"),
    ("protocols", "armci.gets_strided_pack", "strided gets (pack)"),
    ("protocols", "armci.putv_zero_copy", "vector puts (zero-copy)"),
    ("protocols", "armci.getv_zero_copy", "vector gets (zero-copy)"),
    ("protocols", "armci.putv_typed", "vector puts (typed/aggregated)"),
    ("protocols", "armci.putv_pack", "vector puts (pack)"),
    ("protocols", "armci.getv_pack", "vector gets (pack)"),
    ("protocols", "armci.accs", "accumulates"),
    ("protocols", "armci.rmws", "read-modify-writes"),
    ("datapath", "transport.am_emulations", "active messages emulated (two-sided)"),
    ("datapath", "transport.win_attach", "window attaches (registration)"),
    ("datapath", "transport.amo_native", "AMOs completed natively (NIC)"),
    ("datapath", "armci.strided_rdma_ops", "strided RDMA ops posted"),
    ("datapath", "armci.vector_rdma_ops", "vector RDMA ops posted"),
    ("datapath", "armci.strided_chunks_coalesced", "strided chunks merged into runs"),
    ("datapath", "armci.vector_segments_coalesced", "vector segments merged into runs"),
    ("aggregation", "armci.aggregate_buffer_regrows", "staging buffer regrows"),
    ("aggregation", "armci.aggregate_staged", "fragments staged"),
    ("aggregation", "armci.aggregate_flushes", "aggregate flushes"),
    ("caches", "armci.endpoints_created", "endpoints created"),
    ("caches", "armci.endpoint_cache_hits", "endpoint cache hits"),
    ("caches", "armci.region_cache_hits", "region cache hits"),
    ("caches", "armci.region_cache_misses", "region cache misses"),
    ("caches", "armci.region_cache_evictions", "region cache evictions"),
    ("synchronization", "transport.flush_syncs", "flush round-trips (completion)"),
    ("synchronization", "armci.fences", "fences"),
    ("synchronization", "armci.fences_forced", "fences forced by reads"),
    ("synchronization", "armci.fences_avoided", "fences avoided (cs_mr)"),
    ("synchronization", "armci.barriers", "barriers"),
    ("synchronization", "armci.locks_acquired", "mutex acquisitions"),
    ("synchronization", "armci.notifies_sent", "notifications sent"),
    ("resilience", "transport.amo_software_fallbacks", "AMOs emulated in software"),
    ("resilience", "armci.transient_retries", "transient faults retried"),
    ("resilience", "armci.retry_successes", "retries that succeeded"),
    ("resilience", "recover.failures_detected", "rank failures detected"),
    ("resilience", "pami.ranks_respawned", "ranks respawned"),
    ("resilience", "pami.stale_deliveries_dropped", "stale deliveries dropped"),
    ("resilience", "recover.regions_protected", "regions protected"),
    ("resilience", "recover.epochs_committed", "checkpoint epochs committed"),
    ("resilience", "recover.bytes_replicated", "bytes replicated"),
    ("resilience", "recover.recoveries_completed", "recoveries completed"),
    ("resilience", "recover.epochs_replayed", "epochs replayed"),
    ("resilience", "recover.bytes_restored", "bytes restored"),
    ("resilience", "recover.bytes_rereplicated", "bytes re-replicated"),
    ("resilience", "gax.pool_shards_failed_over", "task-pool shards failed over"),
    ("serving", "serve.actors_registered", "actors registered"),
    ("serving", "serve.records_posted", "actor records posted"),
    ("serving", "serve.records_sent", "actor records sent (wire)"),
    ("serving", "serve.records_delivered", "actor records delivered"),
    ("serving", "serve.local_deliveries", "loopback deliveries"),
    ("serving", "serve.wire_flushes", "aggregated mailbox flushes"),
    ("serving", "serve.head_refreshes", "ring head refreshes (AMO)"),
    ("serving", "serve.backpressure_deferrals", "sends deferred (ring full)"),
    ("serving", "serve.guard_deferrals", "inbox polls deferred (guard)"),
    ("serving", "serve.waves_coordinated", "termination waves coordinated"),
    ("serving", "serve.wave_contributions", "termination wave contributions"),
    ("serving", "serve.watermarks_merged", "standby watermarks merged"),
    ("serving", "serve.termination_failovers", "termination coordinator failovers"),
    ("serving", "serve.peer_deaths", "actor peers discovered dead"),
    ("serving", "serve.records_dropped_dead", "records dropped (dead peer)"),
    ("serving", "kv.requests_applied", "KV requests applied"),
    ("serving", "kv.responses_sent", "KV responses sent"),
    ("serving", "kv.responses_received", "KV responses received"),
    ("serving", "kv.responses_late", "KV responses past deadline"),
    ("serving", "kv.deadline_misses", "KV requests served late"),
    ("serving", "kv.ctl_messages", "KV control messages"),
    ("serving", "kv.shard_failovers", "KV shard failovers"),
    ("progress", "pami.items_serviced", "progress items serviced"),
    ("progress", "armci.async_thread_serviced", "items by async threads"),
    ("progress", "pami.rmw_serviced", "AMOs serviced"),
    ("network", "net.put.messages", "put messages"),
    ("network", "net.get.messages", "get messages"),
    ("network", "net.am.messages", "active messages"),
    ("network", "net.control.messages", "control packets"),
    ("network", "chaos.link_kills", "links killed"),
    ("network", "chaos.link_revives", "links revived (plan)"),
    ("network", "chaos.link_degrades", "links degraded"),
    ("network", "net.reroutes", "routes detoured off dim-order"),
    ("network", "net.route_recomputes", "route recomputations"),
    ("network", "net.reroute_extra_hops", "extra hops from detours"),
    ("network", "net.link_drops", "transfers lost on links"),
    ("network", "net.payload_corruptions", "payloads corrupted in flight"),
    ("network", "net.retransmits", "link-loss retransmits (AM)"),
    ("network", "net.am_undeliverable", "AMs undeliverable (no path)"),
    ("network", "net.health_probes", "link health probes"),
    ("network", "net.links_suspected", "links marked suspect"),
    ("network", "net.links_dead", "links declared dead"),
    ("network", "net.links_revived", "links recovered (observed)"),
    ("network", "net.ranks_unreachable", "ranks escalated (unreachable)"),
    ("network", "pami.silent_corruptions", "corruptions landed silently"),
    ("network", "armci.integrity.protected", "transfers checksummed"),
    ("network", "armci.integrity.checksum_failures", "checksum failures caught"),
    ("network", "armci.integrity.retransmits", "integrity retransmits"),
    ("network", "armci.integrity.retransmit_bytes", "integrity retransmit bytes"),
    ("network", "armci.integrity.duplicates_discarded", "duplicate deliveries discarded"),
    ("network", "armci.integrity.aborted", "integrity budgets exhausted"),
)


def runtime_report(job: "ArmciJob") -> str:
    """Render the job's counters grouped by subsystem."""
    trace = job.trace
    caps = job.transport.capabilities
    rows = [
        [
            "datapath",
            "communication backend",
            f"{caps.name} ({caps.completion} completion)",
        ]
    ]
    for section, key, label in _COUNTER_LAYOUT:
        value = trace.count(key)
        if value:
            rows.append([section, label, value])
    bytes_moved = (
        trace.count("net.put.bytes")
        + trace.count("net.get.bytes")
        + trace.count("net.am.bytes")
    )
    rows.append(["network", "payload bytes moved", bytes_moved])
    rows.append(
        ["time", "rmw wait (all ranks)", f"{us(trace.time('armci.rmw_wait_time')):.1f} us"]
    )
    rows.append(
        ["time", "compute (all ranks)", f"{us(trace.time('armci.compute_time')):.1f} us"]
    )
    if trace.count("recover.recoveries_completed"):
        mttr = trace.time("recover.mttr") / trace.count(
            "recover.recoveries_completed"
        )
        rows.append(["time", "mean time to recovery", f"{us(mttr):.1f} us"])
    rows.append(
        ["time", "simulated clock", f"{us(job.engine.now):.1f} us"]
    )
    metrics = getattr(job, "serve_metrics", None)
    if metrics is not None:
        lat = metrics.histogram("serve.latency")
        if lat.count:
            for label, p in (("p50", 50), ("p99", 99), ("p999", 99.9)):
                rows.append(
                    [
                        "serving",
                        f"request latency {label}",
                        f"{us(lat.percentile(p)):.1f} us",
                    ]
                )
            duration = metrics.gauge("serve.duration").value or job.engine.now
            if duration > 0:
                rows.append(
                    [
                        "serving",
                        "response throughput",
                        f"{lat.count / duration:.0f} req/s",
                    ]
                )
    obs = job.obs
    if obs is not None:
        rows.append(["observability", "spans recorded", len(obs.spans)])
        if obs.truncated_spans:
            rows.append(
                ["observability", "spans truncated at finalize", obs.truncated_spans]
            )
        from ..obs.critical_path import critical_path

        report = critical_path(obs.finished(), obs.edges)
        for category, seconds in report.top_categories(5):
            share = 100.0 * seconds / report.window if report.window else 0.0
            rows.append(
                [
                    "critical path",
                    category,
                    f"{us(seconds):.1f} us ({share:.1f}%)",
                ]
            )
    return render_table(
        ["subsystem", "metric", "value"],
        rows,
        title=f"ARMCI runtime report: {job.num_procs} procs, "
        f"{'AT' if job.config.async_thread else 'D'} mode",
    )
