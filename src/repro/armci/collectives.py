"""Collective synchronization.

Blue Gene/Q integrates a hardware barrier/collective network with the
torus (Section II-A), so barriers do not ride the AM path. ARMCI barrier
semantics additionally require the waiting thread to keep the progress
engine moving — which is exactly how a default-mode (no async thread)
process manages to service remote AMOs while it sits in a barrier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterable

from ..errors import ArmciError
from ..pami.faults import FAULT_DETECT_DELAY, Failure, check_completion
from ..sim.engine import Engine
from ..sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


class HardwareBarrier:
    """The partition's hardware barrier network.

    All ranks must arrive before the release fires, ``latency`` after the
    last arrival. Rounds are implicit: a rank can only re-arrive after
    being released, so one in-flight event per round suffices.

    Fault tolerance (epoch-based liveness): once a participant dies
    (:meth:`note_rank_failure`), the current round — and every later one
    — can never complete. Instead of hanging, the in-flight release
    event fires with a :class:`~repro.pami.faults.Failure` token after
    ``detect_delay`` (the barrier network's hardware liveness sweep),
    and arrivals in later epochs fail the same way. Survivors raise
    :class:`~repro.errors.ProcessFailedError` from their barrier call.
    """

    def __init__(
        self,
        engine: Engine,
        num_procs: int,
        latency: float,
        detect_delay: float = FAULT_DETECT_DELAY,
    ) -> None:
        if num_procs < 1:
            raise ArmciError(f"barrier needs >= 1 participant, got {num_procs}")
        self.engine = engine
        self.num_procs = num_procs
        self.latency = latency
        self.detect_delay = detect_delay
        self._arrived: set[int] = set()
        self._event: Event | None = None
        self.rounds_completed = 0
        self.rounds_broken = 0
        #: Currently-dead participants (empty = barrier healthy).
        self._failed: set[int] = set()
        #: First dead participant (None = barrier healthy).
        self._broken_by: int | None = None

    def note_rank_failure(self, rank: int) -> None:
        """A participant died: break the current and all future rounds."""
        self._failed.add(rank)
        if self._broken_by is None:
            self._broken_by = rank
        event = self._event
        if event is not None and self._arrived:
            self._fail_round(event, rank)

    def note_rank_recovered(self, rank: int) -> None:
        """A dead participant was respawned: future rounds can complete
        again once every dead participant has recovered. No-op for ranks
        that never failed, so healthy paths are unaffected."""
        self._failed.discard(rank)
        self._broken_by = min(self._failed) if self._failed else None

    def remove_participant(self, rank: int) -> None:
        """Shrink the barrier group: ``rank`` stops participating
        (group-shrink recovery). The current round releases if the dead
        rank was the only missing arrival."""
        if self.num_procs <= 1:
            raise ArmciError("cannot shrink barrier below one participant")
        self.num_procs -= 1
        self.note_rank_recovered(rank)
        self._arrived.discard(rank)
        event = self._event
        if (
            event is not None
            and self._broken_by is None
            and len(self._arrived) == self.num_procs
        ):
            self._arrived.clear()
            self._event = None
            self.rounds_completed += 1
            self.engine.schedule(self.latency, lambda _a: event.succeed())

    def _fail_round(self, event: Event, dead_rank: int) -> None:
        self.rounds_broken += 1
        self._arrived.clear()
        self._event = None
        token = Failure(dead_rank)
        self.engine.schedule(
            self.detect_delay,
            lambda _a: None if event.triggered else event.succeed(token),
        )

    def arrive(self, rank: int = -1) -> Event:
        """Register ``rank``'s arrival; wait on the returned event.

        Raises
        ------
        ArmciError
            If the same rank arrives twice in one round (a collective
            protocol violation).
        """
        if not self._arrived:
            self._event = self.engine.event("hw_barrier")
        if rank >= 0 and rank in self._arrived:
            raise ArmciError(
                f"rank {rank} entered the barrier twice in one round"
            )
        self._arrived.add(rank if rank >= 0 else -1 - len(self._arrived))
        event = self._event
        assert event is not None
        if self._broken_by is not None:
            # Broken epoch: the liveness sweep reports the dead rank to
            # every arrival after the detection delay.
            self._fail_round(event, self._broken_by)
            return event
        if len(self._arrived) == self.num_procs:
            self._arrived.clear()
            self.rounds_completed += 1
            self.engine.schedule(self.latency, lambda _a: event.succeed())
        return event


class FailureDetector:
    """Fails watched events when a watched rank dies.

    The ARMCI job registers one detector with the PAMI world's failure
    listeners. Wait paths that block on a peer's *software* action (group
    tree messages, notify waits...) watch their wake-up event against the
    ranks they depend on; if one of those ranks fails, the event fires
    with a :class:`~repro.pami.faults.Failure` token after the detection
    delay instead of never.
    """

    def __init__(self, engine: Engine, detect_delay: float = FAULT_DETECT_DELAY) -> None:
        self.engine = engine
        self.detect_delay = detect_delay
        self._dead: set[int] = set()
        self._watches: list[tuple[Event, frozenset[int]]] = []

    def watch(self, event: Event, ranks: Iterable[int]) -> None:
        """Fail ``event`` if any of ``ranks`` dies before it triggers."""
        members = frozenset(ranks)
        already_dead = members & self._dead
        if already_dead:
            self._fail(event, min(already_dead))
            return
        self._watches.append((event, members))
        if len(self._watches) > 64:
            self._watches = [
                (ev, m) for ev, m in self._watches if not ev.triggered
            ]

    def _fail(self, event: Event, dead_rank: int) -> None:
        token = Failure(dead_rank)
        self.engine.schedule(
            self.detect_delay,
            lambda _a: None if event.triggered else event.succeed(token),
        )

    def note_rank_recovered(self, rank: int) -> None:
        """Stop failing new watches that name a respawned rank."""
        self._dead.discard(rank)

    def note_rank_failure(self, rank: int) -> None:
        self._dead.add(rank)
        keep: list[tuple[Event, frozenset[int]]] = []
        for event, members in self._watches:
            if event.triggered:
                continue
            if rank in members:
                self._fail(event, rank)
            else:
                keep.append((event, members))
        self._watches = keep


def barrier(
    rt: "ArmciProcess", deadline: float | None = None
) -> Generator[Any, Any, None]:
    """ARMCI barrier: hardware sync + progress while waiting.

    Raises :class:`~repro.errors.ProcessFailedError` if a participant
    died — the epoch-based liveness check above — instead of deadlocking,
    and :class:`~repro.errors.DeadlineExceededError` if ``deadline``
    (or the ambient/default deadline when None) passes first.
    """
    if deadline is None:
        deadline = rt._op_deadline(None)
    rt._observe("on_barrier_enter")
    obs = rt.obs
    sid = None
    if obs is not None:
        # The barrier span doubles as this rank's arrival record; the
        # exit draws a wait-for edge from the last arriver's span (the
        # only place critical_path hops ranks).
        sid = obs.begin(rt.rank, "main", "barrier", "barrier", timeline="barrier")
        obs.barrier_arrive(id(rt.job.hw_barrier), rt.rank, sid)
    release = rt.job.hw_barrier.arrive(rt.rank)
    try:
        value = yield from rt.main_context.wait_with_progress(
            release, deadline=deadline
        )
        check_completion(value, op="barrier")
    finally:
        if sid is not None:
            obs.end(sid)
            obs.barrier_exit(id(rt.job.hw_barrier), rt.rank, sid)
    rt._observe("on_barrier_exit")
    rt.trace.incr("armci.barriers")


class ReductionBoard:
    """Software allreduce scratchpad (models the hardware collective net).

    Rounds are explicit: each rank deposits into its current round, a
    barrier guarantees completeness, then every rank collects. A round's
    storage is reclaimed once all ranks have collected it, so back-to-back
    reductions never race.
    """

    def __init__(self, num_procs: int) -> None:
        self.num_procs = num_procs
        self._rounds: dict[int, dict[int, float]] = {}
        self._collected: dict[int, int] = {}
        self._rank_round: dict[int, int] = {}

    def reset(self, num_procs: int | None = None) -> None:
        """Discard every in-flight round and resynchronize round ids.

        Crash recovery calls this at the rollback point: aborted rounds
        must not satisfy post-recovery deposits (survivors and a
        respawned rank could otherwise disagree on round ids and merge a
        replayed reduction with a pre-crash one). Idempotent.
        """
        self._rounds.clear()
        self._collected.clear()
        self._rank_round.clear()
        if num_procs is not None:
            self.num_procs = num_procs

    def deposit(self, rank: int, value: float) -> int:
        """Deposit for this rank's next round; returns the round id."""
        rnd = self._rank_round.get(rank, 0)
        self._rank_round[rank] = rnd + 1
        values = self._rounds.setdefault(rnd, {})
        if rank in values:
            raise ArmciError(f"rank {rank} deposited twice in round {rnd}")
        values[rank] = value
        return rnd

    def collect(self, rnd: int, op: str) -> float:
        """Reduce round ``rnd``; storage reclaimed after the last collector."""
        values = self._rounds.get(rnd)
        if values is None or len(values) != self.num_procs:
            have = 0 if values is None else len(values)
            raise ArmciError(
                f"round {rnd} incomplete: {have}/{self.num_procs} deposits"
            )
        vals = list(values.values())
        if op == "sum":
            result = float(sum(vals))
        elif op == "max":
            result = float(max(vals))
        elif op == "min":
            result = float(min(vals))
        else:
            raise ArmciError(f"unknown reduction op {op!r}")
        self._collected[rnd] = self._collected.get(rnd, 0) + 1
        if self._collected[rnd] == self.num_procs:
            del self._rounds[rnd]
            del self._collected[rnd]
        return result


def allreduce(rt: "ArmciProcess", value: float, op: str = "sum") -> Generator[Any, Any, float]:
    """Allreduce over all ranks (hardware collective network model)."""
    board = rt.job.reduction_board
    rnd = board.deposit(rt.rank, value)
    yield from barrier(rt)
    return board.collect(rnd, op)
