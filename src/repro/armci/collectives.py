"""Collective synchronization.

Blue Gene/Q integrates a hardware barrier/collective network with the
torus (Section II-A), so barriers do not ride the AM path. ARMCI barrier
semantics additionally require the waiting thread to keep the progress
engine moving — which is exactly how a default-mode (no async thread)
process manages to service remote AMOs while it sits in a barrier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import ArmciError
from ..sim.engine import Engine
from ..sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


class HardwareBarrier:
    """The partition's hardware barrier network.

    All ranks must arrive before the release fires, ``latency`` after the
    last arrival. Rounds are implicit: a rank can only re-arrive after
    being released, so one in-flight event per round suffices.
    """

    def __init__(self, engine: Engine, num_procs: int, latency: float) -> None:
        if num_procs < 1:
            raise ArmciError(f"barrier needs >= 1 participant, got {num_procs}")
        self.engine = engine
        self.num_procs = num_procs
        self.latency = latency
        self._arrived: set[int] = set()
        self._event: Event | None = None
        self.rounds_completed = 0

    def arrive(self, rank: int = -1) -> Event:
        """Register ``rank``'s arrival; wait on the returned event.

        Raises
        ------
        ArmciError
            If the same rank arrives twice in one round (a collective
            protocol violation).
        """
        if not self._arrived:
            self._event = self.engine.event("hw_barrier")
        if rank >= 0 and rank in self._arrived:
            raise ArmciError(
                f"rank {rank} entered the barrier twice in one round"
            )
        self._arrived.add(rank if rank >= 0 else -1 - len(self._arrived))
        event = self._event
        assert event is not None
        if len(self._arrived) == self.num_procs:
            self._arrived.clear()
            self.rounds_completed += 1
            self.engine.schedule(self.latency, lambda _a: event.succeed())
        return event


def barrier(rt: "ArmciProcess") -> Generator[Any, Any, None]:
    """ARMCI barrier: hardware sync + progress while waiting."""
    release = rt.job.hw_barrier.arrive(rt.rank)
    yield from rt.main_context.wait_with_progress(release)
    rt.trace.incr("armci.barriers")


class ReductionBoard:
    """Software allreduce scratchpad (models the hardware collective net).

    Rounds are explicit: each rank deposits into its current round, a
    barrier guarantees completeness, then every rank collects. A round's
    storage is reclaimed once all ranks have collected it, so back-to-back
    reductions never race.
    """

    def __init__(self, num_procs: int) -> None:
        self.num_procs = num_procs
        self._rounds: dict[int, dict[int, float]] = {}
        self._collected: dict[int, int] = {}
        self._rank_round: dict[int, int] = {}

    def deposit(self, rank: int, value: float) -> int:
        """Deposit for this rank's next round; returns the round id."""
        rnd = self._rank_round.get(rank, 0)
        self._rank_round[rank] = rnd + 1
        values = self._rounds.setdefault(rnd, {})
        if rank in values:
            raise ArmciError(f"rank {rank} deposited twice in round {rnd}")
        values[rank] = value
        return rnd

    def collect(self, rnd: int, op: str) -> float:
        """Reduce round ``rnd``; storage reclaimed after the last collector."""
        values = self._rounds.get(rnd)
        if values is None or len(values) != self.num_procs:
            have = 0 if values is None else len(values)
            raise ArmciError(
                f"round {rnd} incomplete: {have}/{self.num_procs} deposits"
            )
        vals = list(values.values())
        if op == "sum":
            result = float(sum(vals))
        elif op == "max":
            result = float(max(vals))
        elif op == "min":
            result = float(min(vals))
        else:
            raise ArmciError(f"unknown reduction op {op!r}")
        self._collected[rnd] = self._collected.get(rnd, 0) + 1
        if self._collected[rnd] == self.num_procs:
            del self._rounds[rnd]
            del self._collected[rnd]
        return result


def allreduce(rt: "ArmciProcess", value: float, op: str = "sum") -> Generator[Any, Any, float]:
    """Allreduce over all ranks (hardware collective network model)."""
    board = rt.job.reduction_board
    rnd = board.deposit(rt.rank, value)
    yield from barrier(rt)
    return board.collect(rnd, op)
