"""The ARMCI job and per-process runtime (the public API facade).

:class:`ArmciJob` assembles a simulated job: the PAMI world, one
:class:`ArmciProcess` per rank, the hardware barrier, and the collective
allocation directory. :class:`ArmciProcess` exposes the ARMCI-style API —
``put/get/acc`` (contiguous and strided), ``rmw``, ``fence``, ``barrier``,
``lock/unlock`` — as generators executed by simulated processes::

    job = ArmciJob(num_procs=16, config=ArmciConfig.async_thread_mode())
    job.init()

    def body(rt):
        alloc = yield from rt.malloc(4096)
        yield from rt.put(dst=1, ...)
        old = yield from rt.rmw(0, counter_addr, "fetch_add", 1)

    job.run(body)

Implementation note: active-message headers carry live Event/context
references as reply cookies. On real hardware these are 8-byte handles in
the packet header; the in-process references model exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..errors import (
    ArmciError,
    DeadlineExceededError,
    ProcessFailedError,
    ResourceExhaustedError,
    RetryExhaustedError,
    TransientFaultError,
)
from ..machine.bgq import BGQParams
from ..pami.context import PamiContext, cancel_timer, deadline_timer
from ..pami.faults import TransientFault, check_completion
from ..pami.world import PamiWorld
from ..sim.event import Event
from ..sim.primitives import Delay, WaitAny
from ..transport import create_transport
from ..types import StridedDescriptor
from . import accumulate as _acc
from . import collectives as _coll
from . import contiguous as _cont
from . import dispatch as _disp
from . import groups as _groups
from . import locks as _locks
from . import notify as _notify
from . import strided as _str
from . import vector as _vec
from .config import ArmciConfig
from .consistency import make_tracker
from .endpoints import EndpointCache
from .handles import Handle
from .locks import MutexTable
from .progress import start_async_thread, start_watchdog
from .region_cache import RegionCache

#: Consistency-tracker key for writes/reads on unregistered memory.
UNREGISTERED_KEY_BASE = -1


@dataclass(frozen=True)
class Allocation:
    """Result of a collective ARMCI allocation.

    Attributes
    ----------
    alloc_id:
        Collective allocation sequence number.
    nbytes:
        Per-rank segment size.
    addresses:
        Base address of the segment on every rank.
    registered:
        Per-rank flag: whether RDMA registration succeeded there.
    """

    alloc_id: int
    nbytes: int
    addresses: dict[int, int]
    registered: dict[int, bool]

    def addr(self, rank: int) -> int:
        """Base address of the segment on ``rank``."""
        try:
            return self.addresses[rank]
        except KeyError:
            raise ArmciError(
                f"allocation {self.alloc_id} has no segment on rank {rank}"
            ) from None


class AllocationDirectory:
    """Job-wide record of collective allocations (the address exchange)."""

    def __init__(self, num_procs: int) -> None:
        self.num_procs = num_procs
        self._pending: dict[int, dict[int, tuple[int, bool]]] = {}
        self._sizes: dict[int, int] = {}

    def record(
        self, alloc_id: int, rank: int, addr: int, nbytes: int, registered: bool
    ) -> None:
        entry = self._pending.setdefault(alloc_id, {})
        if rank in entry:
            raise ArmciError(
                f"rank {rank} recorded allocation {alloc_id} twice"
            )
        known = self._sizes.setdefault(alloc_id, nbytes)
        if known != nbytes:
            raise ArmciError(
                f"collective malloc mismatch: allocation {alloc_id} has "
                f"sizes {known} and {nbytes}"
            )
        entry[rank] = (addr, registered)

    def allocation(self, alloc_id: int) -> Allocation:
        entry = self._pending.get(alloc_id)
        if entry is None or len(entry) != self.num_procs:
            have = 0 if entry is None else len(entry)
            raise ArmciError(
                f"allocation {alloc_id} incomplete: {have}/{self.num_procs}"
            )
        return Allocation(
            alloc_id,
            self._sizes[alloc_id],
            {r: a for r, (a, _reg) in entry.items()},
            {r: reg for r, (_a, reg) in entry.items()},
        )


class ArmciJob:
    """One simulated ARMCI job."""

    def __init__(
        self,
        num_procs: int,
        config: ArmciConfig | None = None,
        procs_per_node: int = 16,
        params: BGQParams | None = None,
        world: PamiWorld | None = None,
        max_regions: int | None = None,
        nic_amo_support: bool = False,
        link_contention: bool = False,
        chaos=None,
        fault_plan=None,
        engine=None,
    ) -> None:
        self.config = config if config is not None else ArmciConfig()
        if world is None:
            if max_regions is None:
                max_regions = self.config.memregion_budget
            world = PamiWorld(
                num_procs,
                procs_per_node=procs_per_node,
                params=params,
                max_regions=max_regions,
                nic_amo_support=nic_amo_support,
                link_contention=link_contention,
                chaos=chaos,
                engine=engine,
            )
        elif chaos is not None:
            raise ArmciError("pass chaos to the PamiWorld when supplying one")
        elif engine is not None:
            raise ArmciError("pass the engine to the PamiWorld when supplying one")
        # Crash times in a job-level fault plan are measured from the
        # start of job.run() (application time), not from construction —
        # init's simulated cost must not eat into the schedule. Validate
        # ranks eagerly, schedule lazily.
        self.fault_plan = fault_plan
        self._fault_plan_applied = False
        if fault_plan is not None:
            for crash in fault_plan.crashes:
                if not 0 <= crash.rank < num_procs:
                    raise ArmciError(
                        f"fault plan crashes rank {crash.rank}, job has "
                        f"{num_procs} processes"
                    )
            for fault in getattr(fault_plan, "resource_faults", ()):
                if not 0 <= fault.rank < num_procs:
                    raise ArmciError(
                        f"fault plan targets rank {fault.rank}, job has "
                        f"{num_procs} processes"
                    )
        self.world = world
        if fault_plan is not None and getattr(fault_plan, "link_faults", ()):
            # Link coordinates are validated eagerly (bad plans fail at
            # construction, not mid-run); this also switches the network
            # into link-fault mode so routing is fault-aware from t=0.
            link_state = world.enable_link_faults()
            for lf in fault_plan.link_faults:
                link_state.key(lf.a, lf.b)
        self.engine = world.engine
        self.trace = world.trace
        #: Communication backend (``repro.transport``): every wire-level
        #: primitive the protocol layer issues goes through this object.
        self.transport = create_transport(self.config.backend, world, self.config)
        #: Observability recorder (``repro.obs``), or ``None`` when
        #: ``config.obs.enabled`` is off — every instrumentation site in
        #: the stack is a single ``obs is None`` test in that case.
        if self.config.obs.enabled and world.obs is None:
            from ..obs import Obs

            world.obs = Obs(self.engine, trace=self.trace)
            world.obs.dispatch_names = dict(_disp.DISPATCH_NAMES)
            world.obs.record_progress_spans = self.config.obs.progress_spans
        self.obs = world.obs
        self.hw_barrier = _coll.HardwareBarrier(
            self.engine, num_procs, world.params.collective_barrier_latency
        )
        self.reduction_board = _coll.ReductionBoard(num_procs)
        self.failure_detector = _coll.FailureDetector(self.engine)
        self.directory = AllocationDirectory(num_procs)
        self.processes = [ArmciProcess(self, r) for r in range(num_procs)]
        self._rank_procs: dict[int, list] = {}
        self._initialized = False
        world.on_rank_failed(self._on_rank_failed)
        #: Crash-recovery manager (``repro.recover``), or ``None`` when
        #: ``config.recovery`` is unset/disabled — the default, which
        #: keeps every paper-figure code path untouched. Constructed
        #: after the job's own failure listener so collectives break
        #: before recovery logic observes the death.
        self.recovery = None
        if self.config.recovery is not None and self.config.recovery.enabled:
            from ..recover.manager import RecoveryManager

            self.recovery = RecoveryManager(self, self.config.recovery)
        #: End-to-end payload integrity (``repro.pami.integrity``), or
        #: ``None`` when ``config.integrity`` is unset/disabled — the
        #: default, under which every transfer path pays one ``is None``.
        if self.config.integrity is not None and self.config.integrity.enabled:
            from ..pami.integrity import IntegrityEngine

            world.integrity = IntegrityEngine(
                self.config.integrity, self.trace, obs=world.obs
            )
        self.integrity = world.integrity
        #: Link health monitor (``repro.machine.health``), or ``None``.
        #: Installed, the network routes on *observed* link state and
        #: escalates fully-unreachable ranks to the failure machinery.
        self.health = None
        if self.config.health is not None and self.config.health.enabled:
            self.health = world.install_health_monitor(self.config.health)
        #: PDES shard plan (``repro.sim.parallel``), or ``None`` for the
        #: classic single-engine job (``config.shards == 1``, the
        #: default — byte-identical to prior releases). The plan carries
        #: the torus-geometry rank partition and the conservative
        #: lookahead; sharded drivers hand it (plus the job's mapping
        #: and params) to ``repro.sim.parallel.run_program``.
        self.shard_plan = None
        if self.config.shards > 1:
            from ..sim.parallel import plan_shards

            self.shard_plan = plan_shards(
                world.mapping,
                self.config.shards,
                world.params,
                num_ranks=num_procs,
            )
            self.trace.incr("pdes.shards", self.config.shards)
        #: Serving-tier metrics registry (``repro.obs.metrics``), or
        #: ``None`` until the first ``repro.serve.ActorSystem`` is
        #: constructed on this job — jobs that never touch the serve
        #: layer carry only this untouched attribute.
        self.serve_metrics = None

    @property
    def num_procs(self) -> int:
        """Total process count."""
        return self.world.num_procs

    def rt(self, rank: int) -> "ArmciProcess":
        """Per-rank runtime handle."""
        return self.processes[rank]

    def _on_rank_failed(self, rank: int) -> None:
        """World failure listener: break collectives, stop the rank.

        Runs on every :meth:`PamiWorld.fail_rank` (manual or via a
        :class:`~repro.chaos.FaultPlan`): the hardware barrier and the
        failure detector learn of the death so survivors' collective
        waits raise, and the dead rank's main-thread process and async
        progress thread are killed (a node loss takes all its threads).
        """
        self.hw_barrier.note_rank_failure(rank)
        self.failure_detector.note_rank_failure(rank)
        for proc in self._rank_procs.get(rank, ()):
            proc.kill()
        rt = self.processes[rank]
        if rt.async_thread is not None:
            rt.async_thread.kill()
        if rt.watchdog is not None:
            rt.watchdog.kill()

    def respawn_rank(self, rank: int) -> None:
        """Bring a failed rank back as a fresh incarnation (non-generator).

        The PAMI world replaces the rank's address space, region table,
        and client; the rank's :class:`ArmciProcess` is reset to its
        pre-init state, and the collectives machinery is told the rank
        recovered so future rounds can complete. The caller (normally
        the recovery manager) must then run :meth:`ArmciProcess._reinit_body`
        inside the simulation to recreate contexts and handlers.
        """
        self.world.respawn_rank(rank)
        self.hw_barrier.note_rank_recovered(rank)
        self.failure_detector.note_rank_recovered(rank)
        self.processes[rank].reset_for_respawn()

    def shrink_rank(self, rank: int) -> None:
        """Permanently exclude a dead rank from collectives (non-generator).

        Group-shrink recovery: survivors continue with one fewer
        participant. The dead rank's memory stays lost; only the
        collective machinery shrinks.
        """
        self.hw_barrier.remove_participant(rank)

    def _apply_resource_fault(self, fault) -> None:
        """Inject one scheduled :class:`~repro.chaos.ResourceFault`.

        Non-fatal: the rank stays alive but loses a resource — its
        registration budget, its async progress thread, or its FIFO
        headroom — exercising the degradation paths (AM fall-back,
        watchdog failover, sender backpressure).
        """
        if self.world.is_failed(fault.rank):
            return
        rt = self.processes[fault.rank]
        if fault.kind == "exhaust_memregions":
            budget = self.world.regions[fault.rank].exhaust()
            self.trace.incr("chaos.memregion_exhaustions")
            self.trace.incr("chaos.memregion_budget_clamped", budget)
        elif fault.kind == "stall_progress":
            if rt.async_thread is not None and not rt.async_thread.done.triggered:
                rt.async_thread.kill()
                self.trace.incr("chaos.progress_stalls")
        elif fault.kind == "saturate_fifo":
            from ..chaos import FifoNoiseItem

            ctx = rt.client.progress_context()
            # The burst occupies FIFO slots even past capacity (the NIC
            # already accepted the packets); senders see no room until
            # the noise drains.
            ctx.reserve_credits(fault.amount)
            for _ in range(fault.amount):
                ctx.post(FifoNoiseItem())
            self.trace.incr("chaos.fifo_saturations")
            self.trace.incr("chaos.fifo_noise_injected", fault.amount)

    def init(self) -> None:
        """Collectively initialize every rank (contexts, handlers, threads).

        Runs the initialization inside the simulation, so setup costs
        (Eqs. 1-6) are charged to simulated time.
        """
        if self._initialized:
            raise ArmciError("job already initialized")
        procs = [
            self.engine.spawn(rt._init_body(), name=f"armci.init.r{rt.rank}")
            for rt in self.processes
        ]
        self.engine.run_until_complete(procs)
        self._initialized = True

    def report(self) -> str:
        """Human-readable summary of what the runtime did (non-generator)."""
        from .report import runtime_report

        return runtime_report(self)

    def run(
        self, body_fn: Callable[["ArmciProcess"], Generator], ranks=None
    ) -> list[Any]:
        """Run ``body_fn(rt)`` as the main thread of each listed rank."""
        if not self._initialized:
            raise ArmciError("call job.init() before job.run()")
        if self.fault_plan is not None and not self._fault_plan_applied:
            self._fault_plan_applied = True
            for crash in self.fault_plan.crashes:
                self.engine.schedule(
                    crash.at, lambda _a, r=crash.rank: self.world.fail_rank(r)
                )
            for fault in getattr(self.fault_plan, "resource_faults", ()):
                self.engine.schedule(
                    fault.at, lambda _a, f=fault: self._apply_resource_fault(f)
                )
            for lf in getattr(self.fault_plan, "link_faults", ()):
                self.engine.schedule(
                    lf.at, lambda _a, f=lf: self.world.apply_link_fault(f)
                )
        if ranks is None:
            ranks = range(self.num_procs)
        procs = []
        for r in ranks:
            proc = self.engine.spawn(body_fn(self.processes[r]), name=f"main.r{r}")
            # Tracked so a rank failure (manual or fault-plan) fail-stops
            # its main thread instead of letting a ghost keep computing.
            self._rank_procs.setdefault(r, []).append(proc)
            procs.append(proc)
        try:
            return self.engine.run_until_complete(procs)
        finally:
            if self.obs is not None:
                # Close anything still open (killed ranks, abandoned
                # waits) so every exported span has an end time.
                self.obs.finalize()


class ArmciProcess:
    """Per-rank ARMCI runtime and public API (all methods are generators
    unless documented otherwise)."""

    def __init__(self, job: ArmciJob, rank: int) -> None:
        self.job = job
        self.rank = rank
        self.world = job.world
        self.engine = job.engine
        self.trace = job.trace
        self.config = job.config
        self.transport = job.transport
        self.client = self.world.client(rank)
        params = self.world.params
        self.endpoints = EndpointCache(rank, params.endpoint_create_time, self.trace)
        # With a registration budget, cached remote handles draw from the
        # same slot pool as local registrations, so cache eviction frees
        # budget under pressure (and vice versa).
        budget_registry = (
            self.world.regions[rank]
            if job.config.memregion_budget is not None
            else None
        )
        self.region_cache = RegionCache(
            job.config.region_cache_capacity,
            self.trace,
            budget_registry=budget_registry,
        )
        self.tracker = make_tracker(job.config.consistency_tracker)
        #: Optional verification observer (``repro.verify``): receives
        #: every data-movement and synchronization event on this rank.
        #: ``None`` (the default) keeps the hooks zero-cost.
        self.observer = None
        #: Span recorder (shared job-wide), or ``None`` when obs is off.
        self.obs = job.obs
        self.mutexes = MutexTable()
        self.notify_board = _notify.NotifyBoard()
        self.async_thread = None
        self.watchdog = None
        #: Set by the watchdog once progress duty failed over.
        self.progress_failed_over = False
        #: Ambient absolute deadline inherited by nested waits.
        self._deadline: float | None = None
        # Outstanding remote-completion acks per destination (for fences).
        self._pending_acks: dict[int, list[Event]] = {}
        self._implicit_handles: set[Handle] = set()
        self._next_alloc_id = 0
        #: Replay mode (crash recovery): collective setup calls are
        #: replayed locally — malloc re-maps recorded addresses and
        #: barriers no-op, since the survivors are not re-entering them.
        self._replay_mode = False

    # ------------------------------------------------------------- setup

    @property
    def main_context(self) -> PamiContext:
        """Context 0: the main thread's communication context."""
        return self.client.context(0)

    def _init_body(self) -> Generator[Any, Any, None]:
        for _ in range(self.config.num_contexts):
            yield from self.client.create_context(capacity=self.config.fifo_depth)
        self._register_handlers()
        if self.config.async_thread:
            start_async_thread(self)
            if self.config.watchdog_period is not None:
                start_watchdog(self)
        yield from _coll.barrier(self)

    def reset_for_respawn(self) -> None:
        """Reset per-rank runtime state to pre-init (non-generator).

        Called by :meth:`ArmciJob.respawn_rank` after the PAMI world
        replaced this rank's client: every cached reference into the dead
        incarnation is dropped. :meth:`_reinit_body` must run inside the
        simulation afterwards to recreate contexts and handlers.
        """
        params = self.world.params
        self.client = self.world.client(self.rank)
        self.endpoints = EndpointCache(
            self.rank, params.endpoint_create_time, self.trace
        )
        budget_registry = (
            self.world.regions[self.rank]
            if self.config.memregion_budget is not None
            else None
        )
        self.region_cache = RegionCache(
            self.config.region_cache_capacity,
            self.trace,
            budget_registry=budget_registry,
        )
        self.tracker = make_tracker(self.config.consistency_tracker)
        self.mutexes = MutexTable()
        self.notify_board = _notify.NotifyBoard()
        self.async_thread = None
        self.watchdog = None
        self.progress_failed_over = False
        self._deadline = None
        self._pending_acks = {}
        self._implicit_handles = set()
        self._next_alloc_id = 0
        self._replay_mode = False
        # Cached lazily-allocated staging state points into the dead
        # incarnation's address space.
        for attr in ("_agg_buffer", "_gax_scratch", "_dtp_state"):
            if hasattr(self, attr):
                delattr(self, attr)

    def _reinit_body(self) -> Generator[Any, Any, None]:
        """Re-initialize a respawned rank inside the simulation.

        Same as :meth:`_init_body` minus the trailing collective barrier
        (the survivors are not re-entering init; the recovery rendezvous
        synchronizes instead).
        """
        for _ in range(self.config.num_contexts):
            yield from self.client.create_context(capacity=self.config.fifo_depth)
        self._register_handlers()
        if self.config.async_thread:
            start_async_thread(self)
            if self.config.watchdog_period is not None:
                start_watchdog(self)

    def reset_peer_state(self, dead_ranks) -> None:
        """Drop state referencing dead incarnations (non-generator).

        Survivors call this during recovery: cached region handles for a
        respawned rank's old address space, fence acks that would surface
        stale :class:`~repro.pami.faults.Failure` tokens after the rank
        recovered, and the distributed-task-pool cache (its counters are
        re-read from rolled-back memory on replay).
        """
        for rank in dead_ranks:
            self.region_cache.invalidate_rank(rank)
            self._pending_acks.pop(rank, None)
            self.tracker.on_fence(rank)
        if hasattr(self, "_dtp_state"):
            delattr(self, "_dtp_state")

    def _register_handlers(self) -> None:
        from ..mpilike import msg as _msg

        handlers = {
            _disp.REGION_QUERY:
                lambda ctx, env: _cont.handle_region_query(self, ctx, env),
            _disp.GET_REQUEST:
                lambda ctx, env: _cont.handle_get_request(self, ctx, env),
            _disp.PUT_REQUEST:
                lambda ctx, env: _cont.handle_put_request(self, ctx, env),
            _disp.ACC_REQUEST:
                lambda ctx, env: _acc.handle_acc_request(self, ctx, env),
            _disp.STRIDED_PACKED_PUT:
                lambda ctx, env: _str.handle_strided_packed_put(self, ctx, env),
            _disp.STRIDED_PACKED_GET:
                lambda ctx, env: _str.handle_strided_packed_get(self, ctx, env),
            _disp.LOCK_REQUEST:
                lambda ctx, env: _locks.handle_lock_request(self, ctx, env),
            _disp.UNLOCK_REQUEST:
                lambda ctx, env: _locks.handle_unlock_request(self, ctx, env),
            _disp.VECTOR_PUT:
                lambda ctx, env: _vec.handle_vector_put(self, ctx, env),
            _disp.VECTOR_GET:
                lambda ctx, env: _vec.handle_vector_get(self, ctx, env),
            _disp.NOTIFY:
                lambda ctx, env: _notify.handle_notify(self, ctx, env),
            _disp.GROUP_MESSAGE:
                lambda ctx, env: _groups.handle_group_message(self, ctx, env),
            _disp.MPILIKE_MESSAGE:
                lambda ctx, env: _msg.handle_message(self, ctx, env),
        }
        for dispatch_id, fn in handlers.items():
            self.client.register_dispatch(
                dispatch_id, self._wrap_handler(dispatch_id, fn)
            )

    def _wrap_handler(self, dispatch_id: int, fn):
        """Route one AM handler through the verification observer.

        The observer check is dynamic, so attaching an observer after
        init still sees target-side service events; with none attached
        the wrapper is a single attribute test.
        """

        def handler(ctx, env):
            obs = self.observer
            if obs is not None:
                obs.on_am_service(self.rank, dispatch_id, env.src)
            fn(ctx, env)

        return handler

    def _observe(self, method: str, *args) -> None:
        """Emit one observer event (non-generator; no-op when detached)."""
        obs = self.observer
        if obs is not None:
            getattr(obs, method)(self.rank, *args)

    def _op_span(self, name: str, **kwargs) -> int | None:
        """Open a top-level op span (non-generator; ``None`` if obs off)."""
        if self.obs is None:
            return None
        return self.obs.begin(self.rank, "main", "op", name, **kwargs)

    def _end_span(self, sid: int | None, **kwargs) -> None:
        """Close an op span opened by :meth:`_op_span` (non-generator)."""
        if sid is not None:
            self.obs.end(sid, **kwargs)

    # ----------------------------------------------------------- retry

    @property
    def chaos_enabled(self) -> bool:
        """Whether transient-fault injection is active (non-generator)."""
        return self.world.chaos is not None

    @property
    def flow_enabled(self) -> bool:
        """Whether credit-based flow control is active (non-generator)."""
        return self.config.fifo_depth is not None

    @property
    def coalesce_enabled(self) -> bool:
        """Whether chunk-run coalescing is active (non-generator)."""
        return self.config.coalesce_effective

    def _op_deadline(self, timeout: float | None) -> float | None:
        """Resolve a blocking op's absolute deadline (non-generator).

        Precedence: explicit ``timeout`` (relative, seconds of simulated
        time) > the ambient deadline inherited from an enclosing
        operation > ``config.default_deadline``. ``None`` = no deadline.
        """
        if timeout is not None:
            return self.engine.now + timeout
        if self._deadline is not None:
            return self._deadline
        if self.config.default_deadline is not None:
            return self.engine.now + self.config.default_deadline
        return None

    def _with_retry(
        self, attempt_fn, kind: str, deadline: float | None = None
    ) -> Generator[Any, Any, Any]:
        """Run ``attempt_fn()`` (a generator factory), retrying transient
        faults with exponential backoff per ``config.retry``.

        Transient faults are injected before any target-side effect, so
        a retried attempt applies exactly once. Fail-stop errors
        (:class:`~repro.errors.ProcessFailedError`) pass through — a dead
        target never comes back. A spent budget raises
        :class:`~repro.errors.RetryExhaustedError`.

        ``deadline`` (absolute) is installed as the ambient deadline for
        the attempt's nested waits; the deadline wins over the remaining
        retry budget — a backoff sleep that would cross it raises
        :class:`~repro.errors.DeadlineExceededError` immediately.
        """
        policy = self.config.retry
        delay = policy.base_delay
        attempts = 0
        prev_deadline = self._deadline
        if deadline is not None:
            self._deadline = deadline
        try:
            while True:
                try:
                    result = yield from attempt_fn()
                    if attempts:
                        self.trace.incr("armci.retry_successes")
                    return result
                except RetryExhaustedError:
                    raise  # a nested retry loop already spent its budget
                except TransientFaultError as exc:
                    attempts += 1
                    if attempts > policy.max_retries:
                        raise RetryExhaustedError(
                            f"{kind}: retry budget ({policy.max_retries}) "
                            f"exhausted: {exc}"
                        ) from exc
                    if (
                        deadline is not None
                        and self.engine.now + delay >= deadline
                    ):
                        self.trace.incr("armci.retry_deadline_abandoned")
                        raise DeadlineExceededError(
                            f"{kind}: deadline t={deadline:.6g}s expires "
                            f"during retry backoff ({attempts} attempts made)"
                        ) from exc
                    self.trace.incr("armci.transient_retries")
                    self.trace.incr(f"armci.transient_retries.{kind}")
                    self.trace.add_time("armci.retry_backoff_time", delay)
                    if self.obs is not None:
                        sid = self.obs.begin(
                            self.rank, "main", "backoff",
                            f"backoff.{kind}", attempt=attempts,
                        )
                        yield Delay(delay)
                        self.obs.end(sid)
                    else:
                        yield Delay(delay)
                    delay = min(delay * policy.multiplier, policy.max_delay)
        finally:
            self._deadline = prev_deadline

    # ----------------------------------------------------- flow control

    def _acquire_send_credit(
        self, dst: int, deadline: float | None = None
    ) -> Generator[Any, Any, None]:
        """Claim one FIFO credit on ``dst``'s progress context.

        Sender-side backpressure: while the target FIFO is saturated the
        caller parks on the target's room signal instead of queueing
        unboundedly, still servicing its *own* context meanwhile (so two
        mutually-saturated ranks cannot deadlock). A dead target raises
        :class:`~repro.errors.ProcessFailedError`; an expired deadline
        raises :class:`~repro.errors.DeadlineExceededError`.
        """
        if not self.flow_enabled:
            return
        dst_ctx = self.world.client(dst).progress_context()
        if dst_ctx.try_acquire_credit():
            return
        self.trace.incr("armci.backpressure_stalls")
        t0 = self.engine.now
        sid = (
            self.obs.begin(self.rank, "main", "credit_wait", "credit_wait", dst=dst)
            if self.obs is not None
            else None
        )
        timer = None
        death_watch: Event | None = None
        own_ctx = self.main_context
        try:
            while not dst_ctx.try_acquire_credit():
                if self.world.is_failed(dst):
                    raise ProcessFailedError(
                        f"rank {self.rank}: send credit wait on failed rank "
                        f"{dst}",
                        rank=dst,
                        op="send_credit",
                    )
                if deadline is not None and self.engine.now >= deadline:
                    raise DeadlineExceededError(
                        f"rank {self.rank}: no send credit for rank {dst} by "
                        f"deadline t={deadline:.6g}s"
                    )
                if len(own_ctx.queue):
                    # Keep our own FIFO draining while we wait for theirs.
                    yield from own_ctx.advance(max_items=len(own_ctx.queue))
                    continue
                waits = [dst_ctx.room_signal(), own_ctx.arrival_signal()]
                if deadline is not None:
                    if timer is None:
                        timer = deadline_timer(self.engine, deadline)
                    waits.append(timer)
                if death_watch is None:
                    death_watch = self.engine.event(f"creditwatch.r{self.rank}")
                    self.job.failure_detector.watch(death_watch, [dst])
                waits.append(death_watch)
                yield WaitAny(waits)
        finally:
            cancel_timer(timer)
            if sid is not None:
                self.obs.end(sid)
        self.trace.add_time("armci.backpressure_time", self.engine.now - t0)

    # ------------------------------------------------------ bookkeeping

    def track_write_ack(self, dst: int, ack: Event) -> None:
        """Record an outstanding write's remote-completion ack (non-gen).

        Already-completed acks are pruned opportunistically so a
        long-running producer that rarely fences keeps bounded state.
        """
        acks = self._pending_acks.setdefault(dst, [])
        acks.append(ack)
        if len(acks) > 128:
            self._pending_acks[dst] = [ev for ev in acks if not ev.triggered]

    def has_pending_writes(self, dst: int) -> bool:
        """Whether un-fenced writes to ``dst`` were issued (non-generator).

        Counts writes whose fence has not run yet even if their acks have
        already arrived — this is what a cs_tgt tracker would fence on.
        """
        return bool(self._pending_acks.get(dst))

    def on_handle_complete(self, handle: Handle) -> None:
        """Handle-completion hook (non-generator)."""
        self._implicit_handles.discard(handle)
        handle.release_pins(self.region_cache)

    def _new_handle(self, kind: str) -> Handle:
        handle = Handle(self, kind)
        self._implicit_handles.add(handle)
        return handle

    # ------------------------------------------------------- allocation

    def malloc(self, nbytes: int) -> Generator[Any, Any, Allocation]:
        """Collective allocation: every rank contributes one segment.

        Registers the segment for RDMA (cost delta); registration failure
        is recorded, not fatal — transfers to that rank fall back to AMs.
        """
        if nbytes <= 0:
            raise ArmciError(f"allocation size must be positive, got {nbytes}")
        alloc_id = self._next_alloc_id
        self._next_alloc_id += 1
        if self._replay_mode:
            # Crash recovery replays the (deterministic) setup phase on a
            # respawned rank: the collective already happened, so this
            # rank re-maps its segment at the recorded address and
            # re-registers it — no directory record, no barrier.
            alloc = self.job.directory.allocation(alloc_id)
            if alloc.nbytes != nbytes:
                raise ArmciError(
                    f"replayed malloc {alloc_id} asked {nbytes} bytes, "
                    f"directory has {alloc.nbytes} (non-deterministic setup?)"
                )
            addr = alloc.addr(self.rank)
            self.world.space(self.rank).map_at(addr, nbytes)
            if self.config.use_rdma and alloc.registered.get(self.rank):
                yield from self.transport.register_region(
                    self.world.regions[self.rank], addr, nbytes
                )
            self.trace.incr("armci.mallocs_replayed")
            return alloc
        addr = self.world.space(self.rank).allocate(nbytes)
        registered = False
        if self.config.use_rdma:
            try:
                yield from self.transport.register_region(
                    self.world.regions[self.rank], addr, nbytes
                )
                registered = True
            except ResourceExhaustedError:
                self.trace.incr("armci.malloc_region_failed")
        self.job.directory.record(alloc_id, self.rank, addr, nbytes, registered)
        yield from _coll.barrier(self)
        return self.job.directory.allocation(alloc_id)

    def free(self, alloc: Allocation) -> Generator[Any, Any, None]:
        """Collectively release an allocation (ARMCI_Free).

        Deregisters the local RDMA region, frees the segment, and —
        after the closing barrier — drops any cached remote handles for
        the allocation, so later accesses fail loudly instead of reading
        freed memory.
        """
        addr = alloc.addr(self.rank)
        registry = self.world.regions[self.rank]
        region = registry.find(addr, alloc.nbytes)
        if region is not None:
            registry.destroy(region)
        # Wait until every rank is done using the segment before freeing.
        yield from _coll.barrier(self)
        self.world.space(self.rank).free(addr)
        for rank, base in alloc.addresses.items():
            self.region_cache.invalidate(rank, base)
        self.trace.incr("armci.frees")

    # ------------------------------------------------- contiguous RMA

    def _resolve_regions(
        self, dst: int, local_addr: int, remote_addr: int, nbytes: int
    ) -> Generator[Any, Any, tuple[Any, tuple[int, int]]]:
        """Find RDMA regions; returns (remote_region|None, tracker_key)."""
        remote_region = None
        if self.config.use_rdma:
            local_region = yield from _cont.ensure_local_region(
                self, local_addr, nbytes
            )
            if local_region is not None:
                remote_region = yield from _cont.resolve_remote_region(
                    self, dst, remote_addr, nbytes
                )
        if remote_region is not None:
            key = (dst, remote_region.base)
        else:
            key = (dst, UNREGISTERED_KEY_BASE)
        return remote_region, key

    def nbput(
        self, dst: int, local_addr: int, remote_addr: int, nbytes: int,
        handle: Handle | None = None,
    ) -> Generator[Any, Any, Handle]:
        """Non-blocking contiguous put (RDMA, else AM fall-back)."""
        h = handle if handle is not None else self._new_handle("put")
        yield from self.endpoints.get(dst)
        remote_region, key = yield from self._resolve_regions(
            dst, local_addr, remote_addr, nbytes
        )
        if remote_region is not None:
            h.pin_region(remote_region)
            _cont.nbput_rdma(self, dst, local_addr, remote_addr, nbytes, remote_region, h)
        else:
            yield from self._acquire_send_credit(dst, self._op_deadline(None))
            _cont.nbput_fallback(self, dst, local_addr, remote_addr, nbytes, h)
        self.tracker.on_write(dst, key)
        self._observe("on_write", dst, key, remote_addr, nbytes, "put")
        return h

    def nbget(
        self, dst: int, local_addr: int, remote_addr: int, nbytes: int,
        handle: Handle | None = None,
    ) -> Generator[Any, Any, Handle]:
        """Non-blocking contiguous get.

        Enforces location consistency: an outstanding conflicting write to
        ``dst`` is fenced first. The tracker decides what "conflicting"
        means — per target (``cs_tgt``) or per region (``cs_mr``).
        """
        h = handle if handle is not None else self._new_handle("get")
        yield from self.endpoints.get(dst)
        remote_region, key = yield from self._resolve_regions(
            dst, local_addr, remote_addr, nbytes
        )
        yield from self._fence_if_conflicting(dst, key)
        if remote_region is not None:
            h.pin_region(remote_region)
            _cont.nbget_rdma(self, dst, local_addr, remote_addr, nbytes, remote_region, h)
        else:
            yield from self._acquire_send_credit(dst, self._op_deadline(None))
            _cont.nbget_fallback(self, dst, local_addr, remote_addr, nbytes, h)
        self.tracker.on_get(dst, key)
        self._observe("on_read", dst, key, remote_addr, nbytes, "get")
        return h

    def put(
        self, dst: int, local_addr: int, remote_addr: int, nbytes: int,
        timeout: float | None = None,
    ):
        """Blocking contiguous put (local completion); transient faults
        are retried with backoff. ``timeout`` bounds the whole call."""
        t0 = self.engine.now
        sid = None
        if self.obs is not None:
            sid = self.obs.begin(
                self.rank, "main", "op", "put",
                dst=dst, nbytes=nbytes, timeline="put",
            )

        def attempt():
            h = yield from self.nbput(dst, local_addr, remote_addr, nbytes)
            yield from h.wait()

        try:
            yield from self._with_retry(attempt, "put", self._op_deadline(timeout))
        finally:
            if sid is not None:
                self.obs.end(sid)
        if self.obs is None:
            self.trace.interval(f"r{self.rank}", "put", t0, self.engine.now)

    def get(
        self, dst: int, local_addr: int, remote_addr: int, nbytes: int,
        timeout: float | None = None,
    ):
        """Blocking contiguous get; transient faults are retried."""
        t0 = self.engine.now
        sid = None
        if self.obs is not None:
            sid = self.obs.begin(
                self.rank, "main", "op", "get",
                dst=dst, nbytes=nbytes, timeline="get",
            )

        def attempt():
            h = yield from self.nbget(dst, local_addr, remote_addr, nbytes)
            yield from h.wait()

        try:
            yield from self._with_retry(attempt, "get", self._op_deadline(timeout))
        finally:
            if sid is not None:
                self.obs.end(sid)
        if self.obs is None:
            self.trace.interval(f"r{self.rank}", "get", t0, self.engine.now)

    # --------------------------------------------------- strided RMA

    def nbputs(
        self, dst: int, local_base: int, remote_base: int,
        desc: StridedDescriptor, handle: Handle | None = None,
    ) -> Generator[Any, Any, Handle]:
        """Non-blocking strided put (protocol per config, Section III-C.2)."""
        h = handle if handle is not None else self._new_handle("puts")
        yield from self.endpoints.get(dst)
        protocol = _str.select_strided_protocol(self, desc)
        remote_region, key = None, (dst, UNREGISTERED_KEY_BASE)
        if protocol in ("zero_copy", "typed"):
            extent = max(desc.chunk_offsets("dst")) + desc.shape.chunk_bytes
            remote_region, key = yield from self._resolve_regions(
                dst, local_base, remote_base, extent
            )
            if remote_region is None:
                protocol = "pack"  # regions unavailable: legacy protocol
        if remote_region is not None:
            h.pin_region(remote_region)
        if protocol == "zero_copy":
            _str.nbput_strided_zero_copy(self, dst, local_base, remote_base, desc, h)
        elif protocol == "typed":
            _str.nbput_strided_typed(self, dst, local_base, remote_base, desc, h)
        else:
            yield from self._acquire_send_credit(dst, self._op_deadline(None))
            _str.nbput_strided_pack(self, dst, local_base, remote_base, desc, h)
        self.tracker.on_write(dst, key)
        if self.observer is not None:
            ext = max(desc.chunk_offsets("dst")) + desc.shape.chunk_bytes
            self._observe("on_write", dst, key, remote_base, ext, "puts")
        return h

    def nbgets(
        self, dst: int, local_base: int, remote_base: int,
        desc: StridedDescriptor, handle: Handle | None = None,
    ) -> Generator[Any, Any, Handle]:
        """Non-blocking strided get."""
        h = handle if handle is not None else self._new_handle("gets")
        yield from self.endpoints.get(dst)
        protocol = _str.select_strided_protocol(self, desc)
        remote_region, key = None, (dst, UNREGISTERED_KEY_BASE)
        if protocol in ("zero_copy", "typed"):
            extent = max(desc.chunk_offsets("dst")) + desc.shape.chunk_bytes
            remote_region, key = yield from self._resolve_regions(
                dst, local_base, remote_base, extent
            )
            if remote_region is None:
                protocol = "pack"
        yield from self._fence_if_conflicting(dst, key)
        if remote_region is not None:
            h.pin_region(remote_region)
        if protocol == "zero_copy":
            _str.nbget_strided_zero_copy(self, dst, local_base, remote_base, desc, h)
        elif protocol == "typed":
            _str.nbget_strided_typed(self, dst, local_base, remote_base, desc, h)
        else:
            yield from self._acquire_send_credit(dst, self._op_deadline(None))
            _str.nbget_strided_pack(self, dst, local_base, remote_base, desc, h)
        self.tracker.on_get(dst, key)
        if self.observer is not None:
            ext = max(desc.chunk_offsets("dst")) + desc.shape.chunk_bytes
            self._observe("on_read", dst, key, remote_base, ext, "gets")
        return h

    def puts(
        self, dst, local_base, remote_base, desc: StridedDescriptor,
        timeout: float | None = None,
    ):
        """Blocking strided put; transient faults are retried."""
        sid = self._op_span("puts", dst=dst)

        def attempt():
            h = yield from self.nbputs(dst, local_base, remote_base, desc)
            yield from h.wait()

        try:
            yield from self._with_retry(attempt, "puts", self._op_deadline(timeout))
        finally:
            self._end_span(sid)

    def gets(
        self, dst, local_base, remote_base, desc: StridedDescriptor,
        timeout: float | None = None,
    ):
        """Blocking strided get; transient faults are retried."""
        sid = self._op_span("gets", dst=dst)

        def attempt():
            h = yield from self.nbgets(dst, local_base, remote_base, desc)
            yield from h.wait()

        try:
            yield from self._with_retry(attempt, "gets", self._op_deadline(timeout))
        finally:
            self._end_span(sid)

    # ------------------------------------------------- I/O-vector RMA

    def nbputv(
        self, dst: int, vec: "_vec.IoVector", handle: Handle | None = None
    ) -> Generator[Any, Any, Handle]:
        """Non-blocking general I/O-vector put (ARMCI_PutV)."""
        h = handle if handle is not None else self._new_handle("putv")
        yield from self.endpoints.get(dst)
        remote_region, key = yield from self._resolve_vector_regions(dst, vec)
        if remote_region is not None:
            h.pin_region(remote_region)
            _vec.nbputv_zero_copy(self, dst, vec, h)
        else:
            yield from self._acquire_send_credit(dst, self._op_deadline(None))
            _vec.nbputv_pack(self, dst, vec, h)
        self.tracker.on_write(dst, key)
        if self.observer is not None:
            lo, ext = vec.remote_extent()
            self._observe("on_write", dst, key, lo, ext, "putv")
        return h

    def _resolve_vector_regions(
        self, dst: int, vec: "_vec.IoVector"
    ) -> Generator[Any, Any, tuple[Any, tuple[int, int]]]:
        """Region resolution for I/O vectors: every local segment must be
        registered and one remote region must cover the remote extent."""
        remote_region = None
        if self.config.use_rdma:
            ok = yield from _vec.ensure_local_segments(self, vec)
            if ok:
                lo, extent = vec.remote_extent()
                remote_region = yield from _cont.resolve_remote_region(
                    self, dst, lo, extent
                )
        if remote_region is not None:
            key = (dst, remote_region.base)
        else:
            key = (dst, UNREGISTERED_KEY_BASE)
        return remote_region, key

    def nbgetv(
        self, dst: int, vec: "_vec.IoVector", handle: Handle | None = None
    ) -> Generator[Any, Any, Handle]:
        """Non-blocking general I/O-vector get (ARMCI_GetV)."""
        h = handle if handle is not None else self._new_handle("getv")
        yield from self.endpoints.get(dst)
        remote_region, key = yield from self._resolve_vector_regions(dst, vec)
        yield from self._fence_if_conflicting(dst, key)
        if remote_region is not None:
            h.pin_region(remote_region)
            _vec.nbgetv_zero_copy(self, dst, vec, h)
        else:
            yield from self._acquire_send_credit(dst, self._op_deadline(None))
            _vec.nbgetv_pack(self, dst, vec, h)
        self.tracker.on_get(dst, key)
        if self.observer is not None:
            lo, ext = vec.remote_extent()
            self._observe("on_read", dst, key, lo, ext, "getv")
        return h

    def nbputv_aggregated(
        self, dst: int, vec: "_vec.IoVector", handle: Handle | None = None
    ) -> Generator[Any, Any, Handle]:
        """Vector put as **one** wire message (the aggregation path).

        Used by :class:`~repro.armci.aggregate.AggregateHandle`: pays
        Eq. 7's per-message overhead once for the whole fragment batch
        (typed-datatype transfer when RDMA is usable, packed AM
        otherwise).
        """
        h = handle if handle is not None else self._new_handle("aggputv")
        yield from self.endpoints.get(dst)
        remote_region, key = yield from self._resolve_vector_regions(dst, vec)
        if remote_region is not None:
            h.pin_region(remote_region)
            _vec.nbputv_typed(self, dst, vec, h)
        else:
            yield from self._acquire_send_credit(dst, self._op_deadline(None))
            _vec.nbputv_pack(self, dst, vec, h)
        self.tracker.on_write(dst, key)
        if self.observer is not None:
            # Per-segment observations, not the bounding extent: an
            # aggregate batches writes to scattered addresses (e.g. one
            # mailbox lane per actor inbox), and two ranks' batches
            # routinely interleave in address space while every actual
            # byte range stays disjoint. The bounding box would flag
            # that as a race.
            for ra, nb in zip(vec.remote_addrs, vec.lengths):
                self._observe("on_write", dst, key, ra, nb, "aggputv")
        return h

    def aggregate(self, dst: int):
        """Open an :class:`AggregateHandle` for small puts to ``dst``
        (non-generator; stage with ``.put(...)``, ship with
        ``yield from handle.flush()``)."""
        from .aggregate import AggregateHandle

        return AggregateHandle(self, dst)

    def putv(self, dst: int, vec: "_vec.IoVector", timeout: float | None = None):
        """Blocking I/O-vector put; transient faults are retried."""
        sid = self._op_span("putv", dst=dst)

        def attempt():
            h = yield from self.nbputv(dst, vec)
            yield from h.wait()

        try:
            yield from self._with_retry(attempt, "putv", self._op_deadline(timeout))
        finally:
            self._end_span(sid)

    def getv(self, dst: int, vec: "_vec.IoVector", timeout: float | None = None):
        """Blocking I/O-vector get; transient faults are retried."""
        sid = self._op_span("getv", dst=dst)

        def attempt():
            h = yield from self.nbgetv(dst, vec)
            yield from h.wait()

        try:
            yield from self._with_retry(attempt, "getv", self._op_deadline(timeout))
        finally:
            self._end_span(sid)

    # ------------------------------------------------------ accumulate

    def nbacc(
        self, dst: int, local_addr: int, remote_addr: int, nbytes: int,
        scale: float = 1.0, handle: Handle | None = None,
    ) -> Generator[Any, Any, Handle]:
        """Non-blocking atomic accumulate (float64)."""
        h = handle if handle is not None else self._new_handle("acc")
        yield from self.endpoints.get(dst)
        # Accumulates target registered structures when possible, for the
        # same tracker key a get of that structure would use.
        key = (dst, UNREGISTERED_KEY_BASE)
        if self.config.use_rdma:
            region = self.region_cache.lookup(dst, remote_addr, nbytes)
            if region is None:
                region = yield from _cont.resolve_remote_region(
                    self, dst, remote_addr, nbytes
                )
            if region is not None:
                key = (dst, region.base)
        # Accumulates always ride the AM path (software-applied at the
        # target), so they are always credited under flow control.
        yield from self._acquire_send_credit(dst, self._op_deadline(None))
        _acc.nbacc(self, dst, local_addr, remote_addr, nbytes, scale, h)
        self.tracker.on_write(dst, key)
        self._observe("on_write", dst, key, remote_addr, nbytes, "acc")
        return h

    def acc(
        self, dst, local_addr, remote_addr, nbytes, scale: float = 1.0,
        timeout: float | None = None,
    ):
        """Blocking (locally complete) accumulate; transient faults are
        retried (the lost request never reached the target, so a retry
        applies the update exactly once)."""
        sid = self._op_span("acc", dst=dst, nbytes=nbytes)

        def attempt():
            h = yield from self.nbacc(dst, local_addr, remote_addr, nbytes, scale)
            yield from h.wait()

        try:
            yield from self._with_retry(attempt, "acc", self._op_deadline(timeout))
        finally:
            self._end_span(sid)

    # ------------------------------------------------------------ AMOs

    def rmw(
        self, dst: int, addr: int, op: str, operand: int = 0, operand2: int = 0,
        timeout: float | None = None,
    ) -> Generator[Any, Any, int]:
        """Blocking read-modify-write; returns the old value.

        Serviced by the target's progress engine (no NIC AMOs on BG/Q) —
        the primitive behind load-balance counters, and the reason the
        asynchronous-thread design exists.
        """
        yield from self.endpoints.get(dst, self.world.client(dst).num_contexts - 1)
        t0 = self.engine.now
        obs = self.obs
        sid = None
        if obs is not None:
            # The whole blocking call is counter dwell (the post itself
            # is free): the paper's Fig. 9/11 "waiting on the counter"
            # quantity, directly comparable between D and AT modes.
            sid = obs.begin(
                self.rank, "main", "counter_wait", "rmw",
                dst=dst, rmw_op=op, timeline="counter",
            )
        # Natively-serviced AMOs bypass context queues, so they take no
        # FIFO credit.
        credited = self.flow_enabled and not self.transport.rmw_is_native(op)

        def attempt():
            if credited:
                yield from self._acquire_send_credit(dst, self._op_deadline(None))
            pending = self.transport.rmw(
                self.main_context, dst, addr, op, operand, operand2,
                credited=credited,
            )
            value = yield from self.main_context.wait_with_progress(
                pending.event, deadline=self._op_deadline(None)
            )
            check_completion(value, op="rmw")
            if obs is not None:
                # Why the wait ended: the target-side service span
                # registered itself against our reply event.
                obs.add_edge(obs.span_for_event(pending.event), sid)
            return value

        # Retry-safe: a transient fault means the request was lost before
        # the op was applied, so re-issuing never double-counts.
        try:
            old = yield from self._with_retry(
                attempt, "rmw", self._op_deadline(timeout)
            )
        finally:
            if sid is not None:
                obs.end(sid)
        self.trace.add_time("armci.rmw_wait_time", self.engine.now - t0)
        if obs is None:
            self.trace.interval(f"r{self.rank}", "counter", t0, self.engine.now)
        self.trace.incr("armci.rmws")
        self._observe("on_rmw", dst, addr)
        return old

    # ------------------------------------------------- synchronization

    def _fence_if_conflicting(self, dst: int, key) -> Generator[Any, Any, None]:
        fenced = self.tracker.needs_fence(dst, key)
        self._observe("on_fence_decision", dst, key, fenced)
        if fenced:
            self.trace.incr("armci.fences_forced")
            yield from self.fence(dst)
        elif self.has_pending_writes(dst):
            # Outstanding writes exist but touch other structures: the
            # cs_mr tracker's win over cs_tgt.
            self.trace.incr("armci.fences_avoided")

    def fence(self, dst: int, timeout: float | None = None) -> Generator[Any, Any, None]:
        """Wait until all writes to ``dst`` are remotely complete."""
        t0 = self.engine.now
        sid = None
        if self.obs is not None:
            sid = self.obs.begin(
                self.rank, "main", "fence", "fence", dst=dst, timeline="fence"
            )
        deadline = self._op_deadline(timeout)
        acks = self._pending_acks.pop(dst, [])
        ctx = self.main_context
        try:
            for i, ack in enumerate(acks):
                if not ack.triggered:
                    try:
                        yield from ctx.wait_with_progress(ack, deadline=deadline)
                    except DeadlineExceededError:
                        # Unfenced writes stay tracked: a later fence (or a
                        # longer deadline) can still certify them.
                        self._pending_acks[dst] = (
                            acks[i:] + self._pending_acks.get(dst, [])
                        )
                        raise
                if isinstance(ack.value, TransientFault):
                    if ack.value.reason == "integrity_exhausted":
                        # The write's retransmit budget died to repeated
                        # corruption *after* local completion: nothing
                        # surfaced this loss yet, so the fence must
                        # refuse to certify it rather than skip it.
                        self._pending_acks[dst] = (
                            acks[i + 1:] + self._pending_acks.get(dst, [])
                        )
                        raise ack.value.to_exception()
                    # A transiently-lost write already surfaced (and was
                    # retried) at its own completion wait; the fence only
                    # certifies writes that actually reached the target.
                    self.trace.incr("armci.fence_skipped_transient")
                    continue
                check_completion(ack.value, op="fence")
        finally:
            if sid is not None:
                self.obs.end(sid, acks=len(acks))
        # Backends with flush completion (not per-op counters) pay their
        # completion synchronization here; PAMI's is an empty generator.
        yield from self.transport.fence_extra(self, dst)
        self.tracker.on_fence(dst)
        self._observe("on_fence", dst)
        self.trace.incr("armci.fences")
        if self.obs is None:
            self.trace.interval(f"r{self.rank}", "fence", t0, self.engine.now)

    def fence_all(self, timeout: float | None = None) -> Generator[Any, Any, None]:
        """Fence every destination with outstanding writes."""
        deadline = self._op_deadline(timeout)
        prev = self._deadline
        if deadline is not None:
            self._deadline = deadline
        try:
            for dst in list(self._pending_acks):
                yield from self.fence(dst)
        finally:
            self._deadline = prev

    def wait_all(self, timeout: float | None = None) -> Generator[Any, Any, None]:
        """Wait for local completion of all implicit non-blocking requests."""
        deadline = self._op_deadline(timeout)
        prev = self._deadline
        if deadline is not None:
            self._deadline = deadline
        try:
            for handle in list(self._implicit_handles):
                if not handle.complete:
                    yield from handle.wait()
                else:
                    self.on_handle_complete(handle)
        finally:
            self._deadline = prev

    def barrier(self, timeout: float | None = None) -> Generator[Any, Any, None]:
        """Collective barrier (hardware network + progress while waiting)."""
        if self._replay_mode:
            # Setup replay on a respawned rank: the survivors already
            # passed this barrier, so re-arriving would wedge the round.
            return
        t0 = self.engine.now
        yield from _coll.barrier(self, deadline=self._op_deadline(timeout))
        if self.obs is None:
            # With obs on, the barrier span (collectives.py) emits the
            # equivalent timeline interval itself.
            self.trace.interval(f"r{self.rank}", "barrier", t0, self.engine.now)

    def allreduce(self, value: float, op: str = "sum") -> Generator[Any, Any, float]:
        """Collective allreduce over all ranks."""
        return (yield from _coll.allreduce(self, value, op))

    # ----------------------------------------------------------- groups

    def group(self, members) -> "_groups.ProcessGroup":
        """Create a processor-group handle (non-generator)."""
        return _groups.ProcessGroup(tuple(members))

    def group_barrier(self, group) -> Generator[Any, Any, None]:
        """Software tree barrier over a processor group."""
        yield from _groups.group_barrier(self, group)

    def group_allreduce(
        self, group, value: float, op: str = "sum"
    ) -> Generator[Any, Any, float]:
        """Software tree allreduce over a processor group."""
        return (yield from _groups.group_reduce_tree(self, group, value, op))

    def group_broadcast(self, group, value, root_rank: int | None = None):
        """Binomial broadcast over a processor group."""
        return (yield from _groups.group_broadcast(self, group, value, root_rank))

    # ----------------------------------------------------- notify/wait

    def notify(self, dst: int) -> Generator[Any, Any, None]:
        """Notify ``dst``; delivered after all prior puts to ``dst``."""
        # Observed at send initiation: the send precedes delivery, so the
        # observer's send event always lands before the matching wait.
        self._observe("on_notify", dst)
        yield from _notify.notify(self, dst)

    def notify_wait(
        self, src: int, timeout: float | None = None
    ) -> Generator[Any, Any, None]:
        """Wait for (and consume) one notification from ``src``."""
        yield from _notify.notify_wait(self, src, deadline=self._op_deadline(timeout))
        self._observe("on_notify_wait", src)

    # ------------------------------------------------------------ locks

    def lock(
        self, mutex_id: int, timeout: float | None = None
    ) -> Generator[Any, Any, None]:
        """Acquire a distributed ARMCI mutex.

        A transiently-lost LOCK_REQUEST is retried (the owner never saw
        the lost request, so re-sending cannot double-acquire).
        """
        sid = None
        if self.obs is not None:
            sid = self.obs.begin(
                self.rank, "main", "lock_wait", "lock", mutex=mutex_id
            )
        try:
            yield from self._with_retry(
                lambda: _locks.lock(self, mutex_id), "lock",
                self._op_deadline(timeout),
            )
        finally:
            if sid is not None:
                self.obs.end(sid)
        self._observe("on_lock", mutex_id)

    def unlock(self, mutex_id: int) -> Generator[Any, Any, None]:
        """Release a distributed ARMCI mutex."""
        # Observed at release *initiation*: the release strictly precedes
        # the owner granting the mutex to the next waiter, so the
        # observer sees release -> acquire in happens-before order even
        # when the releaser's completion reply races the grant message.
        self._observe("on_unlock", mutex_id)
        yield from _locks.unlock(self, mutex_id)

    # --------------------------------------------------------- progress

    def progress(self) -> Generator[Any, Any, int]:
        """One explicit progress call (default-mode apps sprinkle these
        between compute chunks).

        Services the work pending *at entry* — like one
        ``PAMI_Context_advance`` invocation — and returns to the caller
        even if new requests keep arriving meanwhile. This boundedness is
        why explicit progress cannot substitute for an async thread: the
        queue refills during the next compute chunk (Fig. 9).
        """
        ctx = self.main_context
        pending = len(ctx.queue)
        return (yield from ctx.advance(max_items=max(pending, 1)))

    # -------------------------------------------------- quiesce / drain

    def quiesce(self, timeout: float | None = None) -> Generator[Any, Any, None]:
        """Drain this rank to a quiescent state (teardown/restart point).

        Three phases: (1) locally complete every implicit non-blocking
        request; (2) fence every destination, so all our writes are
        remotely complete; (3) service this rank's context queues until
        empty, so no remote request is stranded here. Afterwards the
        rank holds no in-flight communication state and its progress
        machinery can be torn down or restarted safely
        (:meth:`restart_async_thread`).

        A ``timeout`` (or inherited deadline) bounds the whole drain;
        expiry raises :class:`~repro.errors.DeadlineExceededError` with
        the rank *partially* drained.
        """
        deadline = self._op_deadline(timeout)
        prev = self._deadline
        if deadline is not None:
            self._deadline = deadline
        try:
            yield from self.wait_all()
            yield from self.fence_all()
            for ctx in self.client.contexts:
                while len(ctx.queue):
                    if deadline is not None and self.engine.now >= deadline:
                        raise DeadlineExceededError(
                            f"rank {self.rank}: quiesce deadline "
                            f"t={deadline:.6g}s expired with "
                            f"{len(ctx.queue)} items queued"
                        )
                    yield from ctx.advance(max_items=len(ctx.queue))
        finally:
            self._deadline = prev
        self.trace.incr("armci.quiesces")

    def restart_async_thread(self) -> None:
        """Tear down and respawn the async progress thread (non-generator).

        Intended after :meth:`quiesce`: a wedged (or failed-over) progress
        thread is killed and a fresh one started on the progress context.
        No-op in default mode (nothing to restart).
        """
        if not self.config.async_thread:
            return
        if self.async_thread is not None and not self.async_thread.done.triggered:
            self.async_thread.kill()
        self.progress_failed_over = False
        start_async_thread(self)
        self.trace.incr("armci.async_thread_restarts")

    def compute(self, seconds: float) -> Generator[Any, Any, None]:
        """Model local computation: the main thread leaves the runtime.

        In default mode *nothing* services this process's progress context
        during compute — the exact pathology of Figs. 9 and 11.
        """
        if seconds < 0:
            raise ArmciError(f"compute time must be >= 0, got {seconds}")
        t0 = self.engine.now
        sid = None
        if self.obs is not None:
            sid = self.obs.begin(
                self.rank, "main", "compute", "compute", timeline="compute"
            )
        yield Delay(seconds)
        if sid is not None:
            self.obs.end(sid)
        self.trace.add_time("armci.compute_time", seconds)
        if self.obs is None:
            self.trace.interval(f"r{self.rank}", "compute", t0, self.engine.now)
