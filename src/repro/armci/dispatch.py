"""Active-message dispatch ids used by the ARMCI protocols."""

from __future__ import annotations

#: Remote memory-region cache miss service (Section III-B).
REGION_QUERY = 1
#: Contiguous get fall-back: request data from the target (Section III-C.1).
GET_REQUEST = 2
#: Contiguous put fall-back: deliver payload through the progress engine.
PUT_REQUEST = 3
#: Atomic accumulate (associative, serviced by the progress engine).
ACC_REQUEST = 4
#: Strided pack/unpack legacy protocol: packed payload + unpack directive.
STRIDED_PACKED_PUT = 5
#: Strided pack/unpack legacy protocol: get request (target packs).
STRIDED_PACKED_GET = 6
#: Mutex acquire request (queued at the owner).
LOCK_REQUEST = 7
#: Mutex release.
UNLOCK_REQUEST = 8
#: General I/O-vector packed put.
VECTOR_PUT = 9
#: General I/O-vector packed get request.
VECTOR_GET = 10
#: Pairwise notify (ordered behind prior puts).
NOTIFY = 11
#: Software tree-collective message (process groups).
GROUP_MESSAGE = 12
#: Two-sided tag-matched message (repro.mpilike comparison layer).
MPILIKE_MESSAGE = 13

#: Reverse map id -> name, for protocol-level service logs (repro.verify)
#: and debug output.
DISPATCH_NAMES = {
    REGION_QUERY: "region_query",
    GET_REQUEST: "get_request",
    PUT_REQUEST: "put_request",
    ACC_REQUEST: "acc_request",
    STRIDED_PACKED_PUT: "strided_packed_put",
    STRIDED_PACKED_GET: "strided_packed_get",
    LOCK_REQUEST: "lock_request",
    UNLOCK_REQUEST: "unlock_request",
    VECTOR_PUT: "vector_put",
    VECTOR_GET: "vector_get",
    NOTIFY: "notify",
    GROUP_MESSAGE: "group_message",
    MPILIKE_MESSAGE: "mpilike_message",
}
