"""Active-message dispatch ids used by the ARMCI protocols."""

from __future__ import annotations

#: Remote memory-region cache miss service (Section III-B).
REGION_QUERY = 1
#: Contiguous get fall-back: request data from the target (Section III-C.1).
GET_REQUEST = 2
#: Contiguous put fall-back: deliver payload through the progress engine.
PUT_REQUEST = 3
#: Atomic accumulate (associative, serviced by the progress engine).
ACC_REQUEST = 4
#: Strided pack/unpack legacy protocol: packed payload + unpack directive.
STRIDED_PACKED_PUT = 5
#: Strided pack/unpack legacy protocol: get request (target packs).
STRIDED_PACKED_GET = 6
#: Mutex acquire request (queued at the owner).
LOCK_REQUEST = 7
#: Mutex release.
UNLOCK_REQUEST = 8
#: General I/O-vector packed put.
VECTOR_PUT = 9
#: General I/O-vector packed get request.
VECTOR_GET = 10
#: Pairwise notify (ordered behind prior puts).
NOTIFY = 11
#: Software tree-collective message (process groups).
GROUP_MESSAGE = 12
#: Two-sided tag-matched message (repro.mpilike comparison layer).
MPILIKE_MESSAGE = 13
