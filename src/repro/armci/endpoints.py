"""Endpoint cache.

Endpoints are created lazily as the communication clique (zeta) grows
during the application's lifetime and cached forever: alpha = 4 bytes and
beta = 0.3 us each (Eqs. 3-4), cheap enough to keep one per destination
even at full scale.
"""

from __future__ import annotations

from typing import Any, Generator

from ..pami.endpoint import Endpoint
from ..sim.primitives import Delay
from ..sim.trace import Trace


class EndpointCache:
    """Per-process endpoint table, filled on first use of a destination."""

    def __init__(
        self, owner_rank: int, create_time: float, trace: Trace
    ) -> None:
        self.owner_rank = owner_rank
        self.create_time = create_time
        self.trace = trace
        self._cache: dict[tuple[int, int], Endpoint] = {}

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def clique_size(self) -> int:
        """Distinct destination ranks contacted so far (zeta)."""
        return len({target for target, _ctx in self._cache})

    def get(
        self, target_rank: int, context_index: int = 0
    ) -> Generator[Any, Any, Endpoint]:
        """Endpoint for ``(target_rank, context_index)``; creates on miss.

        Endpoint creation is local (no communication) but costs beta.
        """
        key = (target_rank, context_index)
        endpoint = self._cache.get(key)
        if endpoint is None:
            yield Delay(self.create_time)
            endpoint = Endpoint(self.owner_rank, target_rank, context_index)
            self._cache[key] = endpoint
            self.trace.incr("armci.endpoints_created")
        else:
            self.trace.incr("armci.endpoint_cache_hits")
        return endpoint

    def space_bytes(self, alpha: int) -> int:
        """Space used by the cache: entries * alpha (Eq. 3)."""
        return len(self._cache) * alpha
