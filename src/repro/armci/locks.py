"""ARMCI mutexes (lock/unlock primitives).

Mutexes are distributed round-robin across ranks; acquiring one sends a
LOCK_REQUEST active message to the owner, whose progress engine either
grants immediately or queues the requester FIFO. Like every AM-serviced
primitive on BG/Q, mutex throughput depends on owner-side progress.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from ..errors import ArmciError
from ..pami.activemsg import AmEnvelope
from ..pami.context import CompletionItem, PamiContext

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


class MutexTable:
    """Owner-side state of the mutexes a rank hosts."""

    def __init__(self) -> None:
        # mutex id -> holder rank (None = free).
        self._holder: dict[int, int | None] = {}
        # mutex id -> FIFO of (requester rank, grant event, reply ctx).
        self._waiters: dict[int, deque] = {}

    def host(self, mutex_id: int) -> None:
        """Start hosting a mutex (free)."""
        self._holder.setdefault(mutex_id, None)
        self._waiters.setdefault(mutex_id, deque())

    def holder(self, mutex_id: int) -> int | None:
        """Current holder rank, or None if free."""
        self._check(mutex_id)
        return self._holder[mutex_id]

    def queue_length(self, mutex_id: int) -> int:
        """Number of queued waiters."""
        self._check(mutex_id)
        return len(self._waiters[mutex_id])

    def _check(self, mutex_id: int) -> None:
        if mutex_id not in self._holder:
            raise ArmciError(f"mutex {mutex_id} not hosted here")

    def try_acquire(self, mutex_id: int, requester: int, grant, reply_ctx) -> bool:
        """Grant if free; otherwise queue. Returns True if granted now."""
        self._check(mutex_id)
        if self._holder[mutex_id] is None:
            self._holder[mutex_id] = requester
            return True
        self._waiters[mutex_id].append((requester, grant, reply_ctx))
        return False

    def release(self, mutex_id: int, releaser: int):
        """Release; returns the next ``(rank, grant, reply_ctx)`` or None.

        Raises
        ------
        ArmciError
            If the releaser does not hold the mutex.
        """
        self._check(mutex_id)
        if self._holder[mutex_id] != releaser:
            raise ArmciError(
                f"rank {releaser} released mutex {mutex_id} held by "
                f"{self._holder[mutex_id]}"
            )
        if self._waiters[mutex_id]:
            nxt = self._waiters[mutex_id].popleft()
            self._holder[mutex_id] = nxt[0]
            return nxt
        self._holder[mutex_id] = None
        return None


def mutex_owner(mutex_id: int, num_procs: int) -> int:
    """Round-robin placement of mutexes on ranks."""
    if mutex_id < 0:
        raise ArmciError(f"mutex id must be >= 0, got {mutex_id}")
    return mutex_id % num_procs


def lock(rt: "ArmciProcess", mutex_id: int) -> Generator[Any, Any, None]:
    """Blocking acquire of a distributed mutex."""
    owner = mutex_owner(mutex_id, rt.world.num_procs)
    ctx = rt.main_context
    deadline = rt._op_deadline(None)
    yield from rt._acquire_send_credit(owner, deadline)
    grant = rt.engine.event(f"lock.{mutex_id}.r{rt.rank}")
    header = {"mutex": mutex_id, "grant": grant, "reply_ctx": ctx}
    if rt.flow_enabled:
        header["_credit"] = True
    rt.transport.send_am(ctx, owner, _LOCK_REQUEST_ID, header=header)
    granted = yield from ctx.wait_with_progress(grant, deadline=deadline)
    from ..pami.faults import check_completion

    check_completion(granted, op="lock")
    if rt.obs is not None:
        # The grant cookie was registered to the owner-side service span;
        # point the ambient lock_wait span (begun in runtime.lock) at it.
        rt.obs.add_edge(rt.obs.span_for_event(grant), rt.obs.current(rt.rank))
    rt.trace.incr("armci.locks_acquired")


def unlock(rt: "ArmciProcess", mutex_id: int) -> Generator[Any, Any, None]:
    """Release a distributed mutex (fire-and-forget AM to the owner)."""
    owner = mutex_owner(mutex_id, rt.world.num_procs)
    ctx = rt.main_context
    op = rt.transport.send_am(
        ctx, owner, _UNLOCK_REQUEST_ID, header={"mutex": mutex_id}
    )
    yield from ctx.wait_with_progress(op.local_event)
    rt.trace.incr("armci.locks_released")


_LOCK_REQUEST_ID = 7
_UNLOCK_REQUEST_ID = 8


def _send_grant(rt: "ArmciProcess", to_rank: int, grant, reply_ctx: PamiContext) -> None:
    hops = rt.world.network.hops(rt.rank, to_rank)
    rt.engine.schedule(
        hops * rt.world.params.hop_latency,
        lambda _a: reply_ctx.post(CompletionItem(grant)),
    )


def handle_lock_request(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Owner-side LOCK_REQUEST handler."""
    h = env.header
    rt.mutexes.host(h["mutex"])
    if rt.mutexes.try_acquire(h["mutex"], env.src, h["grant"], h["reply_ctx"]):
        _send_grant(rt, env.src, h["grant"], h["reply_ctx"])


def handle_unlock_request(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Owner-side UNLOCK_REQUEST handler: pass the mutex to the next waiter."""
    nxt = rt.mutexes.release(env.header["mutex"], env.src)
    if nxt is not None:
        requester, grant, reply_ctx = nxt
        _send_grant(rt, requester, grant, reply_ctx)
