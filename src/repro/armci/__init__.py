"""ARMCI on Blue Gene/Q — the paper's core contribution.

The Aggregate Remote Memory Copy Interface re-implemented over the
simulated PAMI layer, with every design element of Section III:

- contiguous get/put mapped to RDMA through a memory-region cache with LFU
  replacement and active-message miss service, plus an AM fall-back when
  regions are unavailable (III-B, III-C.1);
- uniformly non-contiguous (strided) transfers as lists of non-blocking
  RDMA ops (zero-copy), with the legacy pack/unpack protocol as a baseline
  and a typed-datatype path for tall-skinny patches (III-C.2);
- asynchronous progress threads servicing AMOs, accumulates, and non-RDMA
  gets, with a second PAMI context to avoid lock contention (III-D);
- location consistency with either the naive per-target tracker
  (``cs_tgt``) or the proposed per-memory-region tracker (``cs_mr``)
  (III-E).

Entry point: :class:`ArmciJob` builds a simulated job;
:class:`ArmciProcess` is the per-rank API (all calls are generators run as
simulated processes).
"""

from ..obs import ObsConfig
from .config import ArmciConfig
from .handles import Handle
from .runtime import ArmciJob, ArmciProcess

__all__ = ["ArmciConfig", "ArmciJob", "ArmciProcess", "Handle", "ObsConfig"]
