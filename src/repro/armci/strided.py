"""Uniformly non-contiguous (strided) datatype protocols (Section III-C.2).

Three implementations:

- **zero_copy** (proposed): post one non-blocking RDMA per contiguous
  chunk, exploiting the network's messaging rate — Eq. 9,
  ``T ~ o * m/l0 + m G``. No intermediate buffering, no flow control, no
  remote progress.
- **pack** (legacy baseline): pack chunks into a contiguous bounce buffer,
  ship one active message, unpack in the target's progress engine.
  Requires remote progress and double-copies every byte.
- **typed** (for tall-skinny patches under ``strided_protocol="auto"``):
  a single PAMI typed-datatype transfer whose NIC walks the chunk list;
  per-chunk cost is a descriptor fetch, far below a full message overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ArmciError
from ..pami import faults as _flt
from ..pami.activemsg import AmEnvelope
from ..pami.context import CompletionItem, PamiContext, WorkItem
from ..pami.memory import as_u8
from ..types import StridedDescriptor
from .handles import Handle

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


def _gather(space, base: int, desc: StridedDescriptor, side: str) -> np.ndarray:
    """Pack all chunks of one side into one private contiguous buffer.

    Staging buffer is allocated once and filled by view-assigns — no
    per-chunk ``bytes`` objects, no ``b"".join`` reallocation.
    """
    chunk = desc.shape.chunk_bytes
    out = np.empty(desc.shape.total_bytes, dtype=np.uint8)
    pos = 0
    for off in desc.chunk_offsets(side):
        out[pos : pos + chunk] = space.view(base + off, chunk)
        pos += chunk
    return out


def _scatter(space, base: int, desc: StridedDescriptor, side: str, data) -> None:
    """Unpack a contiguous buffer into the chunk lattice of one side.

    ``data`` may be bytes or a uint8 ndarray; each chunk lands via a
    single view-assign from a zero-copy slice of the packed buffer.
    """
    chunk = desc.shape.chunk_bytes
    buf = as_u8(data)
    for i, off in enumerate(desc.chunk_offsets(side)):
        space.write_into(base + off, buf[i * chunk : (i + 1) * chunk])


def _rdma_ops(rt: "ArmciProcess", desc: StridedDescriptor) -> list[tuple[int, int, int]]:
    """The (src_off, dst_off, nbytes) list of RDMA ops for one transfer.

    With coalescing off this is exactly one op per chunk (the paper's
    Eq. 9 accounting); on, doubly-contiguous chunk runs merge and the
    merge count is recorded in ``armci.strided_chunks_coalesced``.
    """
    chunk = desc.shape.chunk_bytes
    if rt.coalesce_enabled:
        runs = desc.coalesced_runs()
        merged = desc.shape.num_chunks - len(runs)
        if merged:
            rt.trace.incr("armci.strided_chunks_coalesced", merged)
        return runs
    return [
        (s, d, chunk)
        for s, d in zip(desc.chunk_offsets("src"), desc.chunk_offsets("dst"))
    ]


# -------------------------------------------------------------- zero-copy


def nbput_strided_zero_copy(
    rt: "ArmciProcess",
    dst: int,
    local_base: int,
    remote_base: int,
    desc: StridedDescriptor,
    handle: Handle,
) -> Handle:
    """One non-blocking RDMA put per chunk run (the proposed protocol)."""
    ctx = rt.main_context
    ops = _rdma_ops(rt, desc)
    for src_off, dst_off, nbytes in ops:
        op = rt.transport.rdma_put(
            ctx, dst, local_base + src_off, remote_base + dst_off, nbytes,
            want_remote_ack=True,
        )
        handle.add_event(op.local_event)
        rt.track_write_ack(dst, op.remote_ack_event)
    rt.trace.incr("armci.strided_rdma_ops", len(ops))
    rt.trace.incr("armci.puts_strided_zero_copy")
    return handle


def nbget_strided_zero_copy(
    rt: "ArmciProcess",
    dst: int,
    local_base: int,
    remote_base: int,
    desc: StridedDescriptor,
    handle: Handle,
) -> Handle:
    """One non-blocking RDMA get per chunk run."""
    ctx = rt.main_context
    ops = _rdma_ops(rt, desc)
    for src_off, dst_off, nbytes in ops:
        op = rt.transport.rdma_get(
            ctx, dst, remote_base + dst_off, local_base + src_off, nbytes
        )
        handle.add_event(op.local_event)
    rt.trace.incr("armci.strided_rdma_ops", len(ops))
    rt.trace.incr("armci.gets_strided_zero_copy")
    return handle


# ------------------------------------------------------------------ typed


def nbput_strided_typed(
    rt: "ArmciProcess",
    dst: int,
    local_base: int,
    remote_base: int,
    desc: StridedDescriptor,
    handle: Handle,
) -> Handle:
    """Single typed-datatype transfer for tall-skinny patches.

    The NIC walks the chunk descriptors: one message overhead total plus a
    small per-chunk descriptor cost, instead of a full message per chunk.
    """
    world = rt.world
    total = desc.shape.total_bytes
    extra = (
        desc.shape.num_chunks * world.params.typed_descriptor_time
        + rt.transport.rma_extra_occupancy
    )
    data = _gather(world.space(rt.rank), local_base, desc, "src")
    timing = world.network.put_timing(rt.rank, dst, total, extra_occupancy=extra)
    engine = world.engine
    now = engine.now
    done = engine.event(f"typedput.{rt.rank}->{dst}")
    ack = engine.event(f"typedput.ack.{rt.rank}->{dst}")
    ctx = rt.main_context

    chaos = world.chaos
    deliver_at = timing.deliver
    fault = None
    if chaos is not None:
        fault = chaos.transfer_fault(rt.rank, dst, "put")
        deliver_at = chaos.ordered_deliver(rt.rank, dst, timing.deliver)
    world.ordering.record(rt.rank, dst, deliver_at)

    def deliver(_a) -> None:
        if fault is None and not world.is_failed(dst):
            _scatter(world.space(dst), remote_base, desc, "dst", data)

    engine.schedule(deliver_at - now, deliver)
    if fault is not None:
        engine.schedule(
            timing.complete + chaos.config.detect_delay - now,
            lambda _a: ctx.post(CompletionItem(done, fault)),
        )
    else:
        engine.schedule(
            timing.complete - now, lambda _a: ctx.post(CompletionItem(done))
        )
    hops = world.network.hops(rt.rank, dst)

    def ack_cb(_a) -> None:
        if world.is_failed(dst):
            engine.schedule(
                _flt.FAULT_DETECT_DELAY,
                lambda _b: ctx.post(CompletionItem(ack, _flt.Failure(dst))),
            )
        else:
            ctx.post(CompletionItem(ack))

    engine.schedule(deliver_at + hops * world.params.hop_latency - now, ack_cb)
    handle.add_event(done)
    rt.track_write_ack(dst, ack)
    rt.trace.incr("armci.puts_strided_typed")
    obs = world.obs
    if obs is not None:
        # The typed path times itself (no rma.py call), so it records
        # its own wire span.
        sid = obs.record(
            rt.rank, "net", "rdma", "typed_put", now, timing.complete,
            dst=dst, nbytes=total, chunks=desc.shape.num_chunks,
        )
        obs.register_event(done, sid)
        obs.register_event(ack, sid)
    return handle


def nbget_strided_typed(
    rt: "ArmciProcess",
    dst: int,
    local_base: int,
    remote_base: int,
    desc: StridedDescriptor,
    handle: Handle,
) -> Handle:
    """Single typed-datatype get for tall-skinny patches."""
    world = rt.world
    total = desc.shape.total_bytes
    extra = (
        desc.shape.num_chunks * world.params.typed_descriptor_time
        + rt.transport.rma_extra_occupancy
    )
    timing = world.network.get_timing(rt.rank, dst, total, extra_occupancy=extra)
    engine = world.engine
    now = engine.now
    done = engine.event(f"typedget.{rt.rank}<-{dst}")
    ctx = rt.main_context
    snapshot: list[np.ndarray] = []

    chaos = world.chaos
    fault = None
    extra_latency = 0.0
    if chaos is not None:
        fault = chaos.transfer_fault(rt.rank, dst, "get")
        extra_latency = (
            chaos.unordered_deliver(rt.rank, dst, timing.deliver) - timing.deliver
        )

    def read_remote(_a) -> None:
        if fault is None and not world.is_failed(dst):
            snapshot.append(_gather(world.space(dst), remote_base, desc, "dst"))

    def complete(_a) -> None:
        if not snapshot:
            if fault is not None:
                token, delay = fault, chaos.config.detect_delay
            else:
                token, delay = _flt.Failure(dst), _flt.FAULT_DETECT_DELAY
            engine.schedule(
                delay, lambda _b: ctx.post(CompletionItem(done, token))
            )
            return
        _scatter(world.space(rt.rank), local_base, desc, "src", snapshot[0])
        ctx.post(CompletionItem(done))

    engine.schedule(timing.deliver + extra_latency - now, read_remote)
    engine.schedule(timing.complete + extra_latency - now, complete)
    handle.add_event(done)
    rt.trace.incr("armci.gets_strided_typed")
    obs = world.obs
    if obs is not None:
        sid = obs.record(
            rt.rank, "net", "rdma", "typed_get", now,
            timing.complete + extra_latency,
            dst=dst, nbytes=total, chunks=desc.shape.num_chunks,
        )
        obs.register_event(done, sid)
    return handle


# ------------------------------------------------------------------- pack


def nbput_strided_pack(
    rt: "ArmciProcess",
    dst: int,
    local_base: int,
    remote_base: int,
    desc: StridedDescriptor,
    handle: Handle,
) -> Handle:
    """Legacy pack/unpack put: pack locally, one AM, unpack remotely."""
    world = rt.world
    total = desc.shape.total_bytes
    data = _gather(world.space(rt.rank), local_base, desc, "src")
    ctx = rt.main_context
    ack = world.engine.event(f"packput.ack.{rt.rank}->{dst}")
    unpack_cost = total * world.params.pack_byte_time
    header = {
        "remote_base": remote_base,
        "desc": desc,
        "ack": ack,
        "reply_ctx": ctx,
        "_cost": unpack_cost,
    }
    if rt.flow_enabled:
        header["_credit"] = True
    op = rt.transport.send_am(
        ctx,
        dst,
        _STRIDED_PACKED_PUT_ID,
        header=header,
        payload=data,
    )
    handle.add_event(op.local_event)
    if rt.chaos_enabled:
        # Surfaces a transiently-lost packed put at its own wait (the ack
        # cookie carries the fault token), making it retryable.
        handle.add_event(ack)
    # The local pack cost stalls the caller; charged via a pack event
    # resolved immediately by the handle machinery.
    pack_done = world.engine.event()
    world.engine.schedule(
        total * world.params.pack_byte_time, lambda _a: ctx.post(CompletionItem(pack_done))
    )
    handle.add_event(pack_done)
    rt.track_write_ack(dst, ack)
    rt.trace.incr("armci.puts_strided_pack")
    return handle


_STRIDED_PACKED_PUT_ID = 5


def handle_strided_packed_put(
    rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope
) -> None:
    """Target side of the legacy put: unpack inside the progress engine."""
    h = env.header
    _scatter(rt.world.space(rt.rank), h["remote_base"], h["desc"], "dst", env.payload)
    hops = rt.world.network.hops(rt.rank, env.src)
    reply_ctx: PamiContext = h["reply_ctx"]
    rt.engine.schedule(
        hops * rt.world.params.hop_latency,
        lambda _a: reply_ctx.post(CompletionItem(h["ack"])),
    )


class _PackedGetReplyItem(WorkItem):
    """Legacy get reply: unpack at the initiator inside its progress."""

    __slots__ = ("data", "local_base", "desc", "event")

    def __init__(self, data, local_base: int, desc: StridedDescriptor, event) -> None:
        self.data = data
        self.local_base = local_base
        self.desc = desc
        self.event = event

    def cost(self, ctx: PamiContext) -> float:
        p = ctx.params
        return (
            p.am_handler_time
            + len(self.data) * p.shm_byte_time
            + len(self.data) * p.pack_byte_time  # unpack
        )

    def execute(self, ctx: PamiContext) -> None:
        space = ctx.client.world.space(ctx.client.rank)
        _scatter(space, self.local_base, self.desc, "src", self.data)
        self.event.succeed()


def nbget_strided_pack(
    rt: "ArmciProcess",
    dst: int,
    local_base: int,
    remote_base: int,
    desc: StridedDescriptor,
    handle: Handle,
) -> Handle:
    """Legacy pack/unpack get: target packs and streams back one message."""
    ctx = rt.main_context
    done = rt.engine.event(f"packget.{rt.rank}<-{dst}")
    header = {
        "remote_base": remote_base,
        "local_base": local_base,
        "desc": desc,
        "event": done,
        "reply_ctx": ctx,
    }
    if rt.flow_enabled:
        header["_credit"] = True
    rt.transport.send_am(
        ctx,
        dst,
        _STRIDED_PACKED_GET_ID,
        header=header,
    )
    handle.add_event(done)
    rt.trace.incr("armci.gets_strided_pack")
    return handle


_STRIDED_PACKED_GET_ID = 6


def handle_strided_packed_get(
    rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope
) -> None:
    """Target side of the legacy get: pack inside the progress engine."""
    h = env.header
    desc: StridedDescriptor = h["desc"]
    data = _gather(rt.world.space(rt.rank), h["remote_base"], desc, "dst")
    total = len(data)
    # Pack cost is paid by the target progress engine before injecting.
    pack_cost = total * rt.world.params.pack_byte_time
    timing = rt.world.network.am_payload_timing(rt.rank, env.src, total)
    reply_ctx: PamiContext = h["reply_ctx"]
    rt.engine.schedule(
        timing.deliver + pack_cost - rt.engine.now,
        lambda _a: reply_ctx.post(
            _PackedGetReplyItem(data, h["local_base"], desc, h["event"])
        ),
    )


# -------------------------------------------------------------- selection


def select_strided_protocol(rt: "ArmciProcess", desc: StridedDescriptor) -> str:
    """Pick the protocol per config and patch shape.

    ``auto`` uses the typed path for tall-skinny patches (many chunks,
    each below the threshold), matching the paper's remedy for
    ``T_strided``'s inverse dependence on l0.
    """
    mode = rt.config.strided_protocol
    if mode == "pack":
        return "pack"
    if mode == "auto":
        if (
            desc.shape.num_chunks > 1
            and desc.shape.chunk_bytes < rt.config.tall_skinny_threshold
        ):
            return "typed"
        return "zero_copy"
    if mode == "zero_copy":
        return "zero_copy"
    raise ArmciError(f"unknown strided protocol {mode!r}")
