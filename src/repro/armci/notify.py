"""Pairwise notify/wait synchronization (armci_notify / armci_notify_wait).

A producer writes data with puts, then notifies the consumer; PAMI's
pairwise ordering (deterministic routing) guarantees the notification is
delivered after every earlier put from the same source has landed, so the
consumer may read the data without a full fence — the classic
producer-consumer idiom ARMCI supports on ordered networks.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from ..pami.activemsg import AmEnvelope
from ..pami.context import PamiContext

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess

NOTIFY_ID = 11


class NotifyBoard:
    """Per-process inbox of notifications, keyed by source rank."""

    def __init__(self) -> None:
        self._available: dict[int, int] = {}
        self._waiters: dict[int, deque] = {}

    def deliver(self, src: int) -> None:
        """A notification from ``src`` arrived; wake one waiter or bank it."""
        waiters = self._waiters.get(src)
        if waiters:
            waiters.popleft().succeed()
        else:
            self._available[src] = self._available.get(src, 0) + 1

    def consume_or_wait(self, src: int, engine):
        """Take one banked notification, or return an Event to wait on."""
        if self._available.get(src, 0) > 0:
            self._available[src] -= 1
            return None
        event = engine.event(f"notify.from.{src}")
        self._waiters.setdefault(src, deque()).append(event)
        return event

    def pending(self, src: int) -> int:
        """Banked (unconsumed) notifications from ``src``."""
        return self._available.get(src, 0)


def notify(rt: "ArmciProcess", dst: int) -> Generator[Any, Any, None]:
    """Send one notification to ``dst``, ordered after prior puts there."""
    ctx = rt.main_context
    op = rt.transport.send_am(ctx, dst, NOTIFY_ID, header={})
    yield from ctx.wait_with_progress(op.local_event)
    rt.trace.incr("armci.notifies_sent")


def notify_wait(
    rt: "ArmciProcess", src: int, deadline: float | None = None
) -> Generator[Any, Any, None]:
    """Block until one notification from ``src`` arrives (consuming it).

    Raises :class:`~repro.errors.DeadlineExceededError` if ``deadline``
    (or the ambient/default deadline when None) passes first.
    """
    if deadline is None:
        deadline = rt._op_deadline(None)
    event = rt.notify_board.consume_or_wait(src, rt.engine)
    if event is not None:
        yield from rt.main_context.wait_with_progress(event, deadline=deadline)
    rt.trace.incr("armci.notifies_consumed")


def handle_notify(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Target-side notification delivery."""
    rt.notify_board.deliver(env.src)
