"""Non-blocking request handles.

ARMCI supports explicit handles (user waits on a specific request) and
implicit handles (the runtime tracks them; ``wait_all``/fence completes
them), with MPI-style buffer-reuse semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import HandleError
from ..pami.faults import check_completion
from ..sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


class Handle:
    """Tracks local completion of one non-blocking ARMCI request.

    A request may expand to several PAMI operations (strided transfers
    post one per chunk); the handle completes when all do.
    """

    def __init__(self, owner: "ArmciProcess", kind: str) -> None:
        self.owner = owner
        self.kind = kind
        self._events: list[Event] = []
        self._waited = False
        self._pinned_regions: list = []

    def add_event(self, event: Event) -> None:
        """Attach one PAMI local-completion event."""
        if self._waited:
            raise HandleError(f"{self.kind} handle extended after wait")
        self._events.append(event)

    def pin_region(self, region) -> None:
        """Pin a cached remote region for this request's lifetime.

        The region cache refuses to evict pinned entries, so a long
        non-blocking transfer cannot have its RDMA handle deregistered
        out from under it. Unpinned via :meth:`release_pins` when the
        owner's completion hook runs.
        """
        self.owner.region_cache.pin(region)
        self._pinned_regions.append(region)

    def release_pins(self, cache) -> None:
        """Drop every pin this handle holds (idempotent)."""
        regions, self._pinned_regions = self._pinned_regions, []
        for region in regions:
            cache.unpin(region)

    @property
    def num_ops(self) -> int:
        """Number of underlying PAMI operations."""
        return len(self._events)

    @property
    def complete(self) -> bool:
        """Whether every underlying operation locally completed."""
        return all(ev.triggered for ev in self._events)

    def wait(self, timeout: float | None = None):
        """Generator: block (with progress) until local completion.

        Inherits the owner's ambient deadline (or takes an explicit
        ``timeout``); expiry raises
        :class:`~repro.errors.DeadlineExceededError` and abandons the
        request (the handle is spent, its pins are released).

        Raises
        ------
        HandleError
            If waited twice (handles are single-use, as in ARMCI).
        """
        if self._waited:
            raise HandleError(f"double wait on {self.kind} handle")
        self._waited = True
        ctx = self.owner.main_context
        deadline = self.owner._op_deadline(timeout)
        obs = self.owner.obs
        sid = None
        if obs is not None and self._events:
            sid = obs.begin(
                self.owner.rank, "main", "handle_wait",
                f"{self.kind}.wait", ops=len(self._events),
            )
        try:
            for ev in self._events:
                if not ev.triggered:
                    yield from ctx.wait_with_progress(ev, deadline=deadline)
                # Failure tokens surface as ProcessFailedError (FT extension).
                check_completion(ev.value, op=self.kind)
        finally:
            if sid is not None:
                # Edge to each registered cause; refine the category when
                # the causes agree (rdma_wait / am_wait read better in
                # the critical-path attribution than the generic label).
                cats: set = set()
                for ev in self._events:
                    cause = obs.span_for_event(ev)
                    if cause is not None:
                        obs.add_edge(cause, sid)
                        span = obs.get(cause)
                        if span is not None:
                            cats.add(span.category)
                if cats == {"rdma"}:
                    obs.end(sid, category="rdma_wait")
                elif cats and cats <= {"am", "am_service"}:
                    obs.end(sid, category="am_wait")
                else:
                    obs.end(sid)
            self.owner.on_handle_complete(self)
