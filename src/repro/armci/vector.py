"""General I/O-vector datatype (ARMCI_PutV / ARMCI_GetV).

ARMCI's third datatype class (Section II-B): an explicit list of
(source address, destination address, length) segments, used when the
transfer pattern has no uniform stride. The paper notes strided
descriptors cost far less metadata *when applicable*; the vector
interface is the general fall-back.

Protocols mirror the strided ones: one non-blocking RDMA per segment
(zero-copy) when regions are available, or a packed active message
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ArmciError
from ..pami import faults as _flt
from ..pami.activemsg import AmEnvelope
from ..pami.context import CompletionItem, PamiContext, WorkItem
from ..pami.memory import as_u8
from .handles import Handle

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


@dataclass(frozen=True)
class IoVector:
    """One I/O-vector: parallel lists of segment addresses and lengths."""

    local_addrs: tuple[int, ...]
    remote_addrs: tuple[int, ...]
    lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.lengths)
        if n == 0:
            raise ArmciError("I/O vector must have at least one segment")
        if len(self.local_addrs) != n or len(self.remote_addrs) != n:
            raise ArmciError(
                f"I/O vector arity mismatch: {len(self.local_addrs)} local, "
                f"{len(self.remote_addrs)} remote, {n} lengths"
            )
        if any(length <= 0 for length in self.lengths):
            raise ArmciError(f"segment lengths must be positive: {self.lengths}")

    @property
    def total_bytes(self) -> int:
        """Total payload across all segments."""
        return sum(self.lengths)

    @property
    def num_segments(self) -> int:
        return len(self.lengths)

    def metadata_bytes(self) -> int:
        """Descriptor size: 3 words per segment (vs 2 ints + strides for
        the uniformly-strided descriptor — the paper's 'very little
        memory' comparison)."""
        return 24 * self.num_segments

    def remote_extent(self) -> tuple[int, int]:
        """(min address, bytes) covering all remote segments."""
        lo = min(self.remote_addrs)
        hi = max(a + n for a, n in zip(self.remote_addrs, self.lengths))
        return lo, hi - lo

    def coalesced_segments(self) -> list[tuple[int, int, int]]:
        """Merge segments adjacent on *both* sides into maximal runs.

        Walks segments in posting order and extends the current run when
        the next segment starts exactly at the run's end locally *and*
        remotely. Returns ``(local_addr, remote_addr, nbytes)`` triples;
        a vector of back-to-back segments collapses to one RDMA.
        """
        runs: list[list[int]] = []
        for laddr, raddr, length in zip(
            self.local_addrs, self.remote_addrs, self.lengths
        ):
            if (
                runs
                and runs[-1][0] + runs[-1][2] == laddr
                and runs[-1][1] + runs[-1][2] == raddr
            ):
                runs[-1][2] += length
            else:
                runs.append([laddr, raddr, length])
        return [(l, r, n) for l, r, n in runs]


def ensure_local_segments(rt: "ArmciProcess", vec: IoVector):
    """Register every distinct local segment the vector touches.

    Generator returning ``True`` when all registrations hold (RDMA is
    usable) and ``False`` if any failed (callers fall back to packing).
    """
    from .contiguous import ensure_local_region

    seen: set[int] = set()
    space = rt.world.space(rt.rank)
    for addr, length in zip(vec.local_addrs, vec.lengths):
        base, _nbytes = space.segment_bounds(addr)
        if base in seen:
            continue
        seen.add(base)
        region = yield from ensure_local_region(rt, addr, length)
        if region is None:
            return False
    return True


def _vector_ops(rt: "ArmciProcess", vec: IoVector) -> list[tuple[int, int, int]]:
    """The (local, remote, nbytes) RDMA op list for one vector transfer.

    Coalescing off: exactly one op per segment. On: doubly-adjacent
    segment runs merge, recorded in ``armci.vector_segments_coalesced``.
    """
    if rt.coalesce_enabled:
        runs = vec.coalesced_segments()
        merged = vec.num_segments - len(runs)
        if merged:
            rt.trace.incr("armci.vector_segments_coalesced", merged)
        return runs
    return list(zip(vec.local_addrs, vec.remote_addrs, vec.lengths))


def nbputv_zero_copy(
    rt: "ArmciProcess", dst: int, vec: IoVector, handle: Handle
) -> Handle:
    """One non-blocking RDMA put per vector segment run."""
    ctx = rt.main_context
    ops = _vector_ops(rt, vec)
    for laddr, raddr, length in ops:
        op = rt.transport.rdma_put(
            ctx, dst, laddr, raddr, length, want_remote_ack=True
        )
        handle.add_event(op.local_event)
        rt.track_write_ack(dst, op.remote_ack_event)
    rt.trace.incr("armci.vector_rdma_ops", len(ops))
    rt.trace.incr("armci.putv_zero_copy")
    return handle


def nbgetv_zero_copy(
    rt: "ArmciProcess", dst: int, vec: IoVector, handle: Handle
) -> Handle:
    """One non-blocking RDMA get per vector segment run."""
    ctx = rt.main_context
    ops = _vector_ops(rt, vec)
    for laddr, raddr, length in ops:
        op = rt.transport.rdma_get(ctx, dst, raddr, laddr, length)
        handle.add_event(op.local_event)
    rt.trace.incr("armci.vector_rdma_ops", len(ops))
    rt.trace.incr("armci.getv_zero_copy")
    return handle


def nbputv_typed(
    rt: "ArmciProcess", dst: int, vec: IoVector, handle: Handle
) -> Handle:
    """Single typed-datatype message carrying all vector segments.

    The aggregation path (Fig. 5's remedy for many small messages): one
    message overhead for the whole vector plus a small per-segment NIC
    descriptor cost, with the NIC scattering fragments at the target.
    """
    world = rt.world
    space = world.space(rt.rank)
    data = [
        space.snapshot(a, n) for a, n in zip(vec.local_addrs, vec.lengths)
    ]
    extra = (
        vec.num_segments * world.params.typed_descriptor_time
        + rt.transport.rma_extra_occupancy
    )
    timing = world.network.put_timing(
        rt.rank, dst, vec.total_bytes, extra_occupancy=extra
    )
    engine = world.engine
    now = engine.now

    chaos = world.chaos
    deliver_at = timing.deliver
    fault = None
    if chaos is not None:
        fault = chaos.transfer_fault(rt.rank, dst, "put")
        deliver_at = chaos.ordered_deliver(rt.rank, dst, timing.deliver)
    world.ordering.record(rt.rank, dst, deliver_at)
    done = engine.event(f"typedputv.{rt.rank}->{dst}")
    ack = engine.event(f"typedputv.ack.{rt.rank}->{dst}")
    ctx = rt.main_context

    def deliver(_a) -> None:
        if fault is not None or world.is_failed(dst):
            return
        target = world.space(dst)
        for addr, payload in zip(vec.remote_addrs, data):
            target.write_into(addr, payload)

    engine.schedule(deliver_at - now, deliver)
    if fault is not None:
        engine.schedule(
            timing.complete + chaos.config.detect_delay - now,
            lambda _a: ctx.post(CompletionItem(done, fault)),
        )
    else:
        engine.schedule(
            timing.complete - now,
            lambda _a: ctx.post(CompletionItem(done)),
        )
    hops = world.network.hops(rt.rank, dst)

    def ack_cb(_a) -> None:
        if world.is_failed(dst):
            engine.schedule(
                _flt.FAULT_DETECT_DELAY,
                lambda _b: ctx.post(CompletionItem(ack, _flt.Failure(dst))),
            )
        else:
            ctx.post(CompletionItem(ack))

    engine.schedule(deliver_at + hops * world.params.hop_latency - now, ack_cb)
    handle.add_event(done)
    rt.track_write_ack(dst, ack)
    rt.trace.incr("armci.putv_typed")
    obs = world.obs
    if obs is not None:
        # Hand-rolled timing (no rma.py call): record the wire span here.
        sid = obs.record(
            rt.rank, "net", "rdma", "typed_putv", now, timing.complete,
            dst=dst, nbytes=vec.total_bytes, segments=vec.num_segments,
        )
        obs.register_event(done, sid)
        obs.register_event(ack, sid)
    return handle


# ------------------------------------------------------------- fall-back


def _gather_segments(space, addrs, lengths, total: int) -> np.ndarray:
    """Pack segments into one private staging buffer via view-assigns."""
    out = np.empty(total, dtype=np.uint8)
    offset = 0
    for addr, length in zip(addrs, lengths):
        out[offset : offset + length] = space.view(addr, length)
        offset += length
    return out


def _scatter_segments(space, addrs, lengths, data) -> None:
    """Unpack a contiguous buffer into segments, one view-assign each."""
    buf = as_u8(data)
    offset = 0
    for addr, length in zip(addrs, lengths):
        space.write_into(addr, buf[offset : offset + length])
        offset += length


def nbputv_pack(
    rt: "ArmciProcess", dst: int, vec: IoVector, handle: Handle
) -> Handle:
    """Packed-AM vector put for unregistered targets."""
    world = rt.world
    space = world.space(rt.rank)
    data = _gather_segments(space, vec.local_addrs, vec.lengths, vec.total_bytes)
    ctx = rt.main_context
    ack = world.engine.event(f"putv.ack.{rt.rank}->{dst}")
    header = {
        "addrs": vec.remote_addrs,
        "lengths": vec.lengths,
        "ack": ack,
        "reply_ctx": ctx,
        "_cost": vec.total_bytes * world.params.pack_byte_time,
    }
    if rt.flow_enabled:
        header["_credit"] = True
    op = rt.transport.send_am(
        ctx,
        dst,
        _VECTOR_PUT_ID,
        header=header,
        payload=data,
    )
    handle.add_event(op.local_event)
    if rt.chaos_enabled:
        # Surfaces a transiently-lost packed vector put at its own wait.
        handle.add_event(ack)
    rt.track_write_ack(dst, ack)
    rt.trace.incr("armci.putv_pack")
    return handle


_VECTOR_PUT_ID = 9
_VECTOR_GET_ID = 10


def handle_vector_put(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Target side of packed vector put: scatter segments, ack."""
    h = env.header
    space = rt.world.space(rt.rank)
    _scatter_segments(space, h["addrs"], h["lengths"], env.payload)
    hops = rt.world.network.hops(rt.rank, env.src)
    reply_ctx: PamiContext = h["reply_ctx"]
    rt.engine.schedule(
        hops * rt.world.params.hop_latency,
        lambda _a: reply_ctx.post(CompletionItem(h["ack"])),
    )


class _VectorGetReplyItem(WorkItem):
    """Packed vector-get reply: scatter into local segments, complete."""

    __slots__ = ("data", "local_addrs", "lengths", "event")

    def __init__(self, data, local_addrs, lengths, event) -> None:
        self.data = data
        self.local_addrs = local_addrs
        self.lengths = lengths
        self.event = event

    def cost(self, ctx: PamiContext) -> float:
        p = ctx.params
        return (
            p.am_handler_time
            + len(self.data) * (p.shm_byte_time + p.pack_byte_time)
        )

    def execute(self, ctx: PamiContext) -> None:
        space = ctx.client.world.space(ctx.client.rank)
        _scatter_segments(space, self.local_addrs, self.lengths, self.data)
        self.event.succeed()


def nbgetv_pack(
    rt: "ArmciProcess", dst: int, vec: IoVector, handle: Handle
) -> Handle:
    """Packed-AM vector get: target gathers and streams one message."""
    ctx = rt.main_context
    done = rt.engine.event(f"getv.{rt.rank}<-{dst}")
    header = {
        "remote_addrs": vec.remote_addrs,
        "local_addrs": vec.local_addrs,
        "lengths": vec.lengths,
        "event": done,
        "reply_ctx": ctx,
    }
    if rt.flow_enabled:
        header["_credit"] = True
    rt.transport.send_am(
        ctx,
        dst,
        _VECTOR_GET_ID,
        header=header,
    )
    handle.add_event(done)
    rt.trace.incr("armci.getv_pack")
    return handle


def handle_vector_get(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Target side of packed vector get: gather and reply."""
    h = env.header
    space = rt.world.space(rt.rank)
    data = _gather_segments(
        space, h["remote_addrs"], h["lengths"], sum(h["lengths"])
    )
    pack_cost = len(data) * rt.world.params.pack_byte_time
    timing = rt.world.network.am_payload_timing(rt.rank, env.src, len(data))
    reply_ctx: PamiContext = h["reply_ctx"]
    rt.engine.schedule(
        timing.deliver + pack_cost - rt.engine.now,
        lambda _a: reply_ctx.post(
            _VectorGetReplyItem(data, h["local_addrs"], h["lengths"], h["event"])
        ),
    )
