"""Message aggregation over aggregate handles.

Figure 5's point: below ~4 KB the per-message overhead dominates, so
applications issuing many small writes should aggregate them. ARMCI's
aggregate handles do exactly that: puts posted under an open aggregate
are buffered as I/O-vector segments and shipped as one combined message
at flush — paying Eq. 7's ``o`` once instead of once per fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from ..errors import ArmciError
from .handles import Handle
from .vector import IoVector

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


def _aggregation_buffer(rt: "ArmciProcess", nbytes: int) -> int:
    """The rank's staging buffer for aggregation flushes.

    Grows geometrically; a regrow frees the outgrown segment (and drops
    its NIC registration, returning the budget slot) instead of leaking
    it. Safe at this point: the previous flush snapshots its payload at
    post time and has completed locally before the next flush stages.
    """
    state = getattr(rt, "_agg_buffer", None)
    if state is None or nbytes > state[1]:
        size = max(nbytes, 64 * 1024, 0 if state is None else 2 * state[1])
        space = rt.world.space(rt.rank)
        addr = space.allocate(size)
        if state is not None:
            old_addr, old_size = state
            registry = rt.world.regions[rt.rank]
            region = registry.find(old_addr, old_size)
            if region is not None:
                registry.destroy(region)
            space.free(old_addr)
            rt.trace.incr("armci.aggregate_buffer_regrows")
        state = (addr, size)
        rt._agg_buffer = state
    return state[0]


@dataclass
class AggregateHandle:
    """Buffers small puts to one destination until :meth:`flush`.

    Data is staged eagerly (buffer-reuse semantics hold for each
    ``put`` call), so callers may immediately overwrite their source
    buffers.
    """

    owner: "ArmciProcess"
    dst: int
    #: Optional observer called as ``on_flush(total_bytes, segments)``
    #: after each successful flush — the serve layer's batching
    #: dashboards hang off this without touching the hot path (``None``,
    #: the default, costs one test).
    on_flush: Any = None
    _staged: list[tuple[int, Any]] = field(default_factory=list)
    _flushed: bool = False

    @property
    def pending_segments(self) -> int:
        """Number of buffered fragments."""
        return len(self._staged)

    @property
    def pending_bytes(self) -> int:
        """Total buffered payload."""
        return sum(len(d) for _a, d in self._staged)

    def put(self, local_addr: int, remote_addr: int, nbytes: int) -> None:
        """Stage one fragment (non-generator: staging is a local copy).

        Raises
        ------
        ArmciError
            If the aggregate was already flushed.
        """
        if self._flushed:
            raise ArmciError("aggregate handle already flushed")
        if nbytes <= 0:
            raise ArmciError(f"fragment size must be positive, got {nbytes}")
        data = self.owner.world.space(self.owner.rank).snapshot(local_addr, nbytes)
        self._staged.append((remote_addr, data))
        self.owner.trace.incr("armci.aggregate_staged")

    def flush_if_pending(self) -> Generator[Any, Any, Handle | None]:
        """Flush when fragments are staged; no-op (``None``) otherwise.

        The replication shipper uses this: an epoch with no dirty chunks
        toward one buddy must not pay (or crash on) an empty flush.
        """
        if not self._staged:
            self._flushed = True
            return None
        return (yield from self.flush())

    def flush(self) -> Generator[Any, Any, Handle]:
        """Ship all staged fragments as one combined vector put.

        Returns the underlying non-blocking :class:`Handle` after local
        completion (the combined message is on the wire; fence for
        remote completion as usual).
        """
        if self._flushed:
            raise ArmciError("aggregate handle already flushed")
        self._flushed = True
        if not self._staged:
            raise ArmciError("flush of an empty aggregate")
        rt = self.owner
        # Stage the combined payload in the rank's persistent aggregation
        # buffer: registered once, reused across flushes (a fresh buffer
        # per flush would pay a 43 us region registration every time).
        space = rt.world.space(rt.rank)
        total = sum(len(d) for _a, d in self._staged)
        scratch = _aggregation_buffer(rt, total)
        local_addrs = []
        offset = 0
        for _addr, data in self._staged:
            space.write_into(scratch + offset, data)
            local_addrs.append(scratch + offset)
            offset += len(data)
        vec = IoVector(
            tuple(local_addrs),
            tuple(a for a, _d in self._staged),
            tuple(len(d) for _a, d in self._staged),
        )
        def attempt() -> Generator[Any, Any, Handle]:
            h = yield from rt.nbputv_aggregated(self.dst, vec)
            yield from h.wait()
            return h

        sid = None
        if rt.obs is not None:
            sid = rt.obs.begin(
                rt.rank, "main", "op", "aggregate_flush",
                dst=self.dst, nbytes=total, fragments=vec.num_segments,
            )
        try:
            handle = yield from rt._with_retry(attempt, "aggregate_flush")
        finally:
            if sid is not None:
                rt.obs.end(sid)
        rt.trace.incr("armci.aggregate_flushes")
        if self.on_flush is not None:
            self.on_flush(total, vec.num_segments)
        return handle
