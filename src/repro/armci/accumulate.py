"""Atomic accumulate (``dst += scale * src``) on float64 data.

Accumulates are associative — ordering among updates is not required
(Section III-E) — but they must be *atomic* with respect to each other.
With no NIC support, the target's progress engine applies them serially,
which makes accumulate another beneficiary of the asynchronous-thread
design: a computing target in default mode delays every incoming update.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ArmciError
from ..pami.activemsg import AmEnvelope
from ..pami.context import CompletionItem, PamiContext
from ..pami.memory import as_u8
from .handles import Handle

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


def nbacc(
    rt: "ArmciProcess",
    dst: int,
    local_addr: int,
    remote_addr: int,
    nbytes: int,
    scale: float,
    handle: Handle,
) -> Handle:
    """Post a non-blocking accumulate of ``nbytes`` of float64 data."""
    if nbytes % 8 != 0:
        raise ArmciError(f"accumulate needs whole float64s, got {nbytes} bytes")
    world = rt.world
    data = world.space(rt.rank).snapshot(local_addr, nbytes)
    ctx = rt.main_context
    ack = world.engine.event(f"acc.ack.{rt.rank}->{dst}")
    flops_cost = (nbytes // 8) * world.params.acc_flop_time
    header = {
        "addr": remote_addr,
        "scale": scale,
        "ack": ack,
        "reply_ctx": ctx,
        "_cost": flops_cost,
    }
    if rt.flow_enabled:
        header["_credit"] = True
    op = rt.transport.send_am(
        ctx,
        dst,
        _ACC_REQUEST_ID,
        header=header,
        payload=data,
    )
    handle.add_event(op.local_event)
    if rt.chaos_enabled:
        # A lost ACC_REQUEST is reported on the ack cookie; waiting it at
        # the handle surfaces the transient loss at the accumulate itself
        # so the retry layer can re-issue it.
        handle.add_event(ack)
    rt.track_write_ack(dst, ack)
    rt.trace.incr("armci.accs")
    return handle


_ACC_REQUEST_ID = 4


def handle_acc_request(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Target-side accumulate: apply update atomically, ack for fences.

    Runs inside the progress engine while holding the context lock, which
    is what makes concurrent accumulates atomic.
    """
    h = env.header
    space = rt.world.space(rt.rank)
    update = as_u8(env.payload).view(np.float64)
    view = space.view(h["addr"], update.size * 8).view(np.float64)
    view += h["scale"] * update
    rt.trace.incr("armci.accs_applied")
    hops = rt.world.network.hops(rt.rank, env.src)
    reply_ctx: PamiContext = h["reply_ctx"]
    rt.engine.schedule(
        hops * rt.world.params.hop_latency,
        lambda _a: reply_ctx.post(CompletionItem(h["ack"])),
    )
