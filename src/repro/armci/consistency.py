"""Conflicting-memory-access tracking for location consistency.

ARMCI provides location consistency (Gao & Sarkar): reads from a process
must observe that process's memory after all of the reader's own
outstanding writes to it. Concretely, an outstanding write (put or
accumulate) to a target must be *fenced* before a read (get) is serviced
from that target (Section III-E).

Two trackers implement the check:

- :class:`CsTgtTracker` — the naive design: one read/write status per
  target rank, Theta(zeta) space. Suffers **false positives**: a get from
  matrix ``A`` on rank r forces a fence even when the only outstanding
  writes to r touch matrix ``C`` (the paper's dgemm example).
- :class:`CsMrTracker` — the proposed design: an 8-bit status per
  (memory region, target) pair, Theta(sigma * zeta) space. Reads of one
  distributed structure never fence writes to another. Accumulates are
  associative, so ordering among them is never enforced.

The dgemm ablation benchmark counts fences under each tracker.
"""

from __future__ import annotations

from ..errors import ArmciError

#: Status bits (stored in an 8-bit field per entry, as in the paper).
READ_BIT = 0x01
WRITE_BIT = 0x02

#: A region key identifies one distributed structure's segment on one
#: target: (target_rank, region_base_address).
RegionKey = tuple[int, int]


class ConsistencyTracker:
    """Interface: subclass and implement the three hooks."""

    def on_get(self, dst: int, key: RegionKey) -> None:
        """Record a read (get) from ``key`` on ``dst``."""
        raise NotImplementedError

    def on_write(self, dst: int, key: RegionKey) -> None:
        """Record a write (put/accumulate) to ``key`` on ``dst``."""
        raise NotImplementedError

    def needs_fence(self, dst: int, key: RegionKey) -> bool:
        """Whether a get from ``key`` on ``dst`` must fence first."""
        raise NotImplementedError

    def on_fence(self, dst: int) -> None:
        """All outstanding writes to ``dst`` have remotely completed."""
        raise NotImplementedError


class CsTgtTracker(ConsistencyTracker):
    """Naive per-target status (``cs_tgt``): Theta(zeta) space."""

    def __init__(self) -> None:
        self._status: dict[int, int] = {}

    def on_get(self, dst: int, key: RegionKey) -> None:
        self._status[dst] = self._status.get(dst, 0) | READ_BIT

    def on_write(self, dst: int, key: RegionKey) -> None:
        self._status[dst] = self._status.get(dst, 0) | WRITE_BIT

    def needs_fence(self, dst: int, key: RegionKey) -> bool:
        # Any outstanding write to the target forces a fence — even if it
        # touched a different distributed structure (false positive).
        return bool(self._status.get(dst, 0) & WRITE_BIT)

    def on_fence(self, dst: int) -> None:
        self._status.pop(dst, None)

    @property
    def space_entries(self) -> int:
        """Tracked entries (Theta(zeta))."""
        return len(self._status)


class CsMrTracker(ConsistencyTracker):
    """Proposed per-(region, target) status (``cs_mr``).

    Theta(sigma * zeta) space — a slight increase the paper accepts to
    eliminate false-positive synchronization.
    """

    def __init__(self) -> None:
        self._status: dict[RegionKey, int] = {}

    @staticmethod
    def _check_key(key: RegionKey) -> None:
        if key is None:
            raise ArmciError("cs_mr tracker requires a region key")

    def on_get(self, dst: int, key: RegionKey) -> None:
        self._check_key(key)
        self._status[key] = self._status.get(key, 0) | READ_BIT

    def on_write(self, dst: int, key: RegionKey) -> None:
        self._check_key(key)
        self._status[key] = self._status.get(key, 0) | WRITE_BIT

    def needs_fence(self, dst: int, key: RegionKey) -> bool:
        # Only a write outstanding on the *same* region forces the fence.
        self._check_key(key)
        return bool(self._status.get(key, 0) & WRITE_BIT)

    def on_fence(self, dst: int) -> None:
        # A fence completes every outstanding write to that target, across
        # all regions.
        for key in [k for k in self._status if k[0] == dst]:
            if self._status[key] & WRITE_BIT:
                self._status[key] &= ~WRITE_BIT
                if not self._status[key]:
                    del self._status[key]

    @property
    def space_entries(self) -> int:
        """Tracked entries (Theta(sigma * zeta))."""
        return len(self._status)


#: Registry of tracker factories keyed by ArmciConfig name. The two
#: paper designs are built in; the verification harness registers
#: deliberately-broken mutants here so they flow through the normal
#: ArmciConfig -> make_tracker path.
_TRACKER_REGISTRY: dict[str, type[ConsistencyTracker]] = {
    "cs_tgt": CsTgtTracker,
    "cs_mr": CsMrTracker,
}


def register_tracker(name: str, factory: type[ConsistencyTracker]) -> None:
    """Register (or replace) a tracker implementation under ``name``."""
    _TRACKER_REGISTRY[name] = factory


def is_known_tracker(name: str) -> bool:
    """Whether ``name`` resolves in the tracker registry."""
    return name in _TRACKER_REGISTRY


def known_trackers() -> tuple[str, ...]:
    """Registered tracker names (for error messages)."""
    return tuple(sorted(_TRACKER_REGISTRY))


def make_tracker(name: str) -> ConsistencyTracker:
    """Factory keyed by :class:`~repro.armci.config.ArmciConfig` names."""
    factory = _TRACKER_REGISTRY.get(name)
    if factory is None:
        raise ArmciError(
            f"unknown consistency tracker {name!r} (known: {known_trackers()})"
        )
    return factory()
