"""Processor groups and software tree collectives.

Global Arrays exposes processor groups (NWChem partitions its ranks into
groups for independent sub-calculations); group collectives cannot use
the partition-wide hardware barrier/collective network, so they run as
**software trees over active messages** — log2(n) rounds of AMs.

Delivered tree messages are *banked* by the AM handler (so they need the
receiver's progress engine only to land), but forwarding happens inside
the member's own collective call: like any collective, a tree stalls on
late-arriving participants regardless of asynchronous progress threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from ..errors import ArmciError
from ..pami.activemsg import AmEnvelope
from ..pami.context import CompletionItem, PamiContext
from ..pami.faults import check_completion

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess

GROUP_MSG_ID = 12


@dataclass(frozen=True)
class ProcessGroup:
    """An ordered subset of the job's ranks.

    All group collectives are identified by ``(tag, sequence)`` so
    concurrent groups and repeated rounds never cross-talk.
    """

    members: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ArmciError("a group needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise ArmciError(f"duplicate ranks in group: {self.members}")

    @property
    def size(self) -> int:
        return len(self.members)

    def index_of(self, rank: int) -> int:
        """Group index of a world rank.

        Raises
        ------
        ArmciError
            If the rank is not a member.
        """
        try:
            return self.members.index(rank)
        except ValueError:
            raise ArmciError(f"rank {rank} not in group {self.members}") from None

    def contains(self, rank: int) -> bool:
        return rank in self.members


@dataclass
class _GroupState:
    """Per-rank collective state: messages received, keyed by round tag."""

    inbox: dict[tuple, list] = field(default_factory=dict)
    waiters: dict[tuple, Any] = field(default_factory=dict)
    sequence: dict[tuple[int, ...], int] = field(default_factory=dict)


def _state(rt: "ArmciProcess") -> _GroupState:
    state = getattr(rt, "_group_state", None)
    if state is None:
        state = _GroupState()
        rt._group_state = state
    return state


def handle_group_message(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Deliver a tree-collective message; wake the local waiter if any."""
    state = _state(rt)
    key = tuple(env.header["key"])
    state.inbox.setdefault(key, []).append(env.header["value"])
    waiter = state.waiters.pop(key, None)
    if waiter is not None and not waiter.triggered:
        waiter.succeed()


def _await_messages(
    rt: "ArmciProcess", key: tuple, count: int, members: tuple[int, ...] = ()
) -> Generator[Any, Any, list]:
    """Block (with progress) until ``count`` messages arrive for ``key``.

    Group collectives are all-or-nothing: the wait is watched against
    every other group member, so a participant dying mid-collective
    raises :class:`~repro.errors.ProcessFailedError` here after the
    detection delay instead of hanging the tree.
    """
    state = _state(rt)
    peers = [m for m in members if m != rt.rank]
    while len(state.inbox.get(key, [])) < count:
        event = rt.engine.event(f"group.{key}")
        state.waiters[key] = event
        if len(state.inbox.get(key, [])) >= count:  # raced with delivery
            state.waiters.pop(key, None)
            continue
        if peers:
            rt.job.failure_detector.watch(event, peers)
        value = yield from rt.main_context.wait_with_progress(event)
        check_completion(value, op="group")
    return state.inbox.pop(key)


def _send(rt: "ArmciProcess", dst: int, key: tuple, value) -> Generator[Any, Any, None]:
    op = rt.transport.send_am(
        rt.main_context, dst, GROUP_MSG_ID,
        header={"key": list(key), "value": value},
    )
    yield from rt.main_context.wait_with_progress(op.local_event)


def _sequence(rt: "ArmciProcess", group: ProcessGroup, kind: str) -> int:
    state = _state(rt)
    seq_key = (kind,) + group.members
    seq = state.sequence.get(seq_key, 0)
    state.sequence[seq_key] = seq + 1
    return seq


def group_reduce_tree(
    rt: "ArmciProcess", group: ProcessGroup, value: float, op: str = "sum"
) -> Generator[Any, Any, float]:
    """Binomial-tree allreduce over the group; returns the reduction.

    log2(n) up-sweep to the group root (member 0), then a log2(n)
    broadcast down — 2·log2(n) AM latencies, every hop needing the
    receiver's progress engine.
    """
    if op not in ("sum", "max", "min"):
        raise ArmciError(f"unknown reduction op {op!r}")
    me = group.index_of(rt.rank)
    n = group.size
    seq = _sequence(rt, group, f"allreduce.{op}")
    acc = value

    # Up-sweep: at round k, members with index % 2^(k+1) == 2^k send to
    # index - 2^k.
    k = 1
    while k < n:
        if me % (2 * k) == k:
            parent = group.members[me - k]
            yield from _send(rt, parent, ("up", seq, me) + group.members, acc)
            break
        if me % (2 * k) == 0 and me + k < n:
            values = yield from _await_messages(
                rt, ("up", seq, me + k) + group.members, 1, group.members
            )
            incoming = values[0]
            if op == "sum":
                acc += incoming
            elif op == "max":
                acc = max(acc, incoming)
            else:
                acc = min(acc, incoming)
        k *= 2

    # Down-sweep broadcast of the final value from the root.
    result = acc
    if me != 0:
        values = yield from _await_messages(
            rt, ("down", seq, me) + group.members, 1, group.members
        )
        result = values[0]
    k = 1
    while k < n:
        k *= 2
    k //= 2
    while k >= 1:
        if me % (2 * k) == 0 and me + k < n:
            yield from _send(
                rt, group.members[me + k], ("down", seq, me + k) + group.members, result
            )
        k //= 2
    rt.trace.incr("armci.group_allreduces")
    return result


def group_barrier(
    rt: "ArmciProcess", group: ProcessGroup
) -> Generator[Any, Any, None]:
    """Software tree barrier over the group (an allreduce of nothing)."""
    yield from group_reduce_tree(rt, group, 0.0, "sum")
    rt.trace.incr("armci.group_barriers")


def group_broadcast(
    rt: "ArmciProcess", group: ProcessGroup, value, root_rank: int | None = None
) -> Generator[Any, Any, Any]:
    """Binomial broadcast of ``value`` from the group root.

    ``root_rank`` defaults to the first member; non-root callers pass
    any placeholder and receive the root's value.
    """
    root = group.index_of(root_rank) if root_rank is not None else 0
    me = group.index_of(rt.rank)
    n = group.size
    # Rotate indices so the root is virtual index 0.
    virt = (me - root) % n
    seq = _sequence(rt, group, "bcast")
    result = value
    if virt != 0:
        values = yield from _await_messages(
            rt, ("bc", seq, me) + group.members, 1, group.members
        )
        result = values[0]
    k = 1
    while k < n:
        k *= 2
    k //= 2
    while k >= 1:
        if virt % (2 * k) == 0 and virt + k < n:
            dst_virt = virt + k
            dst = group.members[(dst_virt + root) % n]
            dst_idx = group.index_of(dst)
            yield from _send(rt, dst, ("bc", seq, dst_idx) + group.members, result)
        k //= 2
    rt.trace.incr("armci.group_broadcasts")
    return result
