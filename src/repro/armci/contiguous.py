"""Contiguous-datatype get/put protocols (Section III-C.1).

The preferred path is RDMA: both sides' memory regions are found (local
registry, remote LFU cache with AM miss service) and the transfer maps to
a single zero-copy NIC operation — Eq. 7.

When regions are unavailable (registration failed at scale, or RDMA is
disabled), the **fall-back protocol** runs over active messages — Eq. 8 —
and inherits its fatal flaw: it requires the *remote* progress engine, so
a busy remote main thread stalls it unless an asynchronous thread exists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import ResourceExhaustedError
from ..pami.activemsg import AmEnvelope
from ..pami.context import CompletionItem, PamiContext, WorkItem
from ..pami.memregion import MemoryRegion
from .handles import Handle

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import ArmciProcess


# --------------------------------------------------------------- regions


def ensure_local_region(
    rt: "ArmciProcess", addr: int, nbytes: int
) -> Generator[Any, Any, MemoryRegion | None]:
    """Find or create a local region covering the buffer.

    Returns ``None`` (instead of raising) when the registration budget is
    exhausted — the caller then takes the fall-back protocol, exactly as
    the paper prescribes for failed ``PAMI_Memregion_create`` at scale.
    """
    registry = rt.world.regions[rt.rank]
    # Regions cover whole segments, never sub-ranges: look up and create
    # by the containing segment's bounds so repeated use of one buffer —
    # at any request size — always resolves to the same registration.
    base, seg_bytes = rt.world.space(rt.rank).segment_bounds(addr)
    region = registry.find(base, seg_bytes)
    if region is not None:
        return region
    try:
        region = yield from rt.transport.register_region(registry, base, seg_bytes)
    except ResourceExhaustedError:
        # Under pressure, cached remote handles are expendable: evicting
        # one frees a budget slot for this (local) registration.
        if rt.region_cache.evict_for_budget():
            try:
                region = yield from rt.transport.register_region(
                    registry, base, seg_bytes
                )
            except ResourceExhaustedError:
                rt.trace.incr("armci.local_region_create_failed")
                return None
            return region
        rt.trace.incr("armci.local_region_create_failed")
        return None
    return region


def resolve_remote_region(
    rt: "ArmciProcess", dst: int, addr: int, nbytes: int
) -> Generator[Any, Any, MemoryRegion | None]:
    """Find the remote region handle for an RDMA target.

    Cache hit is free; a miss sends a REGION_QUERY active message to the
    owner (whose progress engine must answer) and caches the result with
    LFU replacement.
    """
    region = rt.region_cache.lookup(dst, addr, nbytes)
    if region is not None:
        return region
    obs = rt.obs
    sid = None
    reply = None
    if obs is not None:
        sid = obs.begin(rt.rank, "main", "region_miss", "region_query", dst=dst)
    try:
        ctx = rt.main_context
        deadline = rt._op_deadline(None)
        yield from rt._acquire_send_credit(dst, deadline)
        reply = rt.engine.event(f"regionq.{rt.rank}->{dst}")
        header = {"addr": addr, "nbytes": nbytes, "reply": reply, "reply_ctx": ctx}
        if rt.flow_enabled:
            header["_credit"] = True
        op = rt.transport.send_am(ctx, dst, _REGION_QUERY_ID, header=header)
        found = yield from ctx.wait_with_progress(reply, deadline=deadline)
        from ..pami.faults import check_completion

        check_completion(found, op="region_query")
    finally:
        if sid is not None:
            if reply is not None:
                obs.add_edge(obs.span_for_event(reply), sid)
            obs.end(sid)
    if found is None:
        rt.trace.incr("armci.remote_region_unavailable")
        return None
    rt.region_cache.insert(found)
    return found


# Set by runtime registration to the real dispatch ids (avoids an import
# cycle while keeping handlers next to the protocol they serve).
_REGION_QUERY_ID = 1


def handle_region_query(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Target-side REGION_QUERY handler: look up the region, reply."""
    region = rt.world.regions[rt.rank].find(env.header["addr"], env.header["nbytes"])
    hops = rt.world.network.hops(rt.rank, env.src)
    latency = hops * rt.world.params.hop_latency
    reply_ctx: PamiContext = env.header["reply_ctx"]
    rt.engine.schedule(
        latency,
        lambda _a: reply_ctx.post(CompletionItem(env.header["reply"], region)),
    )


# ----------------------------------------------------------------- RDMA


def nbput_rdma(
    rt: "ArmciProcess",
    dst: int,
    local_addr: int,
    remote_addr: int,
    nbytes: int,
    remote_region: MemoryRegion,
    handle: Handle,
) -> Handle:
    """Post the RDMA put; remote ack is tracked for fences."""
    op = rt.transport.rdma_put(
        rt.main_context, dst, local_addr, remote_addr, nbytes, want_remote_ack=True
    )
    handle.add_event(op.local_event)
    rt.track_write_ack(dst, op.remote_ack_event)
    rt.trace.incr("armci.put_rdma")
    return handle


def nbget_rdma(
    rt: "ArmciProcess",
    dst: int,
    local_addr: int,
    remote_addr: int,
    nbytes: int,
    remote_region: MemoryRegion,
    handle: Handle,
) -> Handle:
    """Post the RDMA get: truly one-sided, Eq. 7."""
    op = rt.transport.rdma_get(rt.main_context, dst, remote_addr, local_addr, nbytes)
    handle.add_event(op.local_event)
    rt.trace.incr("armci.get_rdma")
    return handle


# ------------------------------------------------------------- fall-back


class _GetReplyItem(WorkItem):
    """Fall-back get reply landing at the initiator: write + complete."""

    __slots__ = ("data", "local_addr", "event")

    def __init__(self, data, local_addr: int, event) -> None:
        self.data = data
        self.local_addr = local_addr
        self.event = event

    def cost(self, ctx: PamiContext) -> float:
        p = ctx.params
        return p.am_handler_time + len(self.data) * p.shm_byte_time

    def execute(self, ctx: PamiContext) -> None:
        ctx.client.world.space(ctx.client.rank).write_into(self.local_addr, self.data)
        self.event.succeed()


def nbget_fallback(
    rt: "ArmciProcess",
    dst: int,
    local_addr: int,
    remote_addr: int,
    nbytes: int,
    handle: Handle,
) -> Handle:
    """AM-based get (Eq. 8): the target's progress engine reads and
    returns the data. Pays the extra remote ``o`` and, critically, stalls
    whenever the target makes no progress."""
    ctx = rt.main_context
    done = rt.engine.event(f"fbget.{rt.rank}<-{dst}")
    header = {
        "addr": remote_addr,
        "nbytes": nbytes,
        "local_addr": local_addr,
        "event": done,
        "reply_ctx": ctx,
    }
    if rt.flow_enabled:
        header["_credit"] = True
    rt.transport.send_am(ctx, dst, _GET_REQUEST_ID, header=header)
    handle.add_event(done)
    rt.trace.incr("armci.get_fallback")
    return handle


_GET_REQUEST_ID = 2


def handle_get_request(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Target-side fall-back get: read memory, stream the data back."""
    h = env.header
    data = rt.world.space(rt.rank).snapshot(h["addr"], h["nbytes"])
    timing = rt.world.network.am_payload_timing(rt.rank, env.src, h["nbytes"])
    reply_ctx: PamiContext = h["reply_ctx"]
    rt.engine.schedule(
        timing.deliver - rt.engine.now,
        lambda _a: reply_ctx.post(_GetReplyItem(data, h["local_addr"], h["event"])),
    )


def nbput_fallback(
    rt: "ArmciProcess",
    dst: int,
    local_addr: int,
    remote_addr: int,
    nbytes: int,
    handle: Handle,
) -> Handle:
    """PAMI default (non-RDMA) put: payload rides an active message and is
    written by the target's progress engine. Local completion keeps put's
    buffer-reuse semantics, so no extra protocol is needed (the paper's
    observation that put needs no fall-back *handshake*)."""
    ctx = rt.main_context
    ack = rt.engine.event(f"fbput.ack.{rt.rank}->{dst}")
    data = rt.world.space(rt.rank).snapshot(local_addr, nbytes)
    header = {"addr": remote_addr, "ack": ack, "reply_ctx": ctx}
    if rt.flow_enabled:
        header["_credit"] = True
    op = rt.transport.send_am(ctx, dst, _PUT_REQUEST_ID, header=header, payload=data)
    handle.add_event(op.local_event)
    if rt.chaos_enabled:
        # Under chaos a lost PUT_REQUEST is reported on the ack cookie;
        # waiting it at the handle makes the loss visible (and retryable)
        # at the put itself rather than silently skipped by the fence.
        handle.add_event(ack)
    rt.track_write_ack(dst, ack)
    rt.trace.incr("armci.put_fallback")
    return handle


_PUT_REQUEST_ID = 3


def handle_put_request(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Target-side fall-back put: write payload, ack for fences."""
    rt.world.space(rt.rank).write_into(env.header["addr"], env.payload)
    hops = rt.world.network.hops(rt.rank, env.src)
    latency = hops * rt.world.params.hop_latency
    reply_ctx: PamiContext = env.header["reply_ctx"]
    ack = env.header["ack"]
    rt.engine.schedule(
        latency, lambda _a: reply_ctx.post(CompletionItem(ack))
    )
