"""Remote memory-region cache with LFU replacement.

Caching a remote region handle for every (structure, peer) pair costs
``sigma * zeta * gamma`` bytes (Eq. 5) — prohibitive under strong scaling
where zeta approaches p on a memory-limited machine. The proposed design
bounds the cache and serves misses with an active message to the region's
owner, evicting the **least frequently used** entry (Section III-B).
"""

from __future__ import annotations

from ..errors import ArmciError
from ..pami.memregion import MemoryRegion
from ..sim.trace import Trace

#: Cache key: (owner_rank, any address inside the region is resolved by
#: the owner; we key on the region's base address).
CacheKey = tuple[int, int]


class RegionCache:
    """Bounded LFU cache of remote :class:`MemoryRegion` handles."""

    def __init__(self, capacity: int | None, trace: Trace) -> None:
        if capacity is not None and capacity < 1:
            raise ArmciError(f"cache capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.trace = trace
        # owner rank -> {base address -> region}; regions per owner rarely
        # exceed sigma (1-7, Table II), so the per-owner scan is short.
        self._by_owner: dict[int, dict[int, MemoryRegion]] = {}
        self._size = 0
        self._freq: dict[CacheKey, int] = {}
        # Monotone insertion counter for deterministic LFU tie-breaking.
        self._age: dict[CacheKey, int] = {}
        self._clock = 0

    def __len__(self) -> int:
        return self._size

    def lookup(self, owner: int, addr: int, nbytes: int) -> MemoryRegion | None:
        """Cached region of ``owner`` covering ``[addr, addr+nbytes)``."""
        regions = self._by_owner.get(owner)
        if regions:
            for region in regions.values():
                if region.covers(addr, nbytes):
                    self._freq[(owner, region.base)] += 1
                    self.trace.incr("armci.region_cache_hits")
                    return region
        self.trace.incr("armci.region_cache_misses")
        return None

    def insert(self, region: MemoryRegion) -> None:
        """Add a region handle fetched from its owner, evicting LFU."""
        key = (region.rank, region.base)
        regions = self._by_owner.setdefault(region.rank, {})
        if region.base in regions:
            self._freq[key] += 1
            return
        if self.capacity is not None and self._size >= self.capacity:
            self._evict()
        regions[region.base] = region
        self._size += 1
        self._freq[key] = 1
        self._clock += 1
        self._age[key] = self._clock

    def _evict(self) -> None:
        victim = min(self._freq, key=lambda k: (self._freq[k], self._age[k]))
        owner, base = victim
        # Keep empty per-owner dicts: an in-flight insert may still hold a
        # reference to one.
        del self._by_owner[owner][base]
        self._size -= 1
        del self._freq[victim]
        del self._age[victim]
        self.trace.incr("armci.region_cache_evictions")

    def invalidate(self, owner: int, base: int) -> None:
        """Drop a cached handle (the region was destroyed at its owner)."""
        regions = self._by_owner.get(owner)
        if regions is not None and base in regions:
            del regions[base]
            self._size -= 1
            del self._freq[(owner, base)]
            del self._age[(owner, base)]

    def frequency(self, owner: int, base: int) -> int:
        """Access count of a cached entry (0 if absent)."""
        return self._freq.get((owner, base), 0)

    def space_bytes(self, gamma: int) -> int:
        """Current cache footprint: entries * gamma (Eq. 5 second term)."""
        return self._size * gamma
