"""Remote memory-region cache with LFU replacement.

Caching a remote region handle for every (structure, peer) pair costs
``sigma * zeta * gamma`` bytes (Eq. 5) — prohibitive under strong scaling
where zeta approaches p on a memory-limited machine. The proposed design
bounds the cache and serves misses with an active message to the region's
owner, evicting the **least frequently used** entry (Section III-B).

Two robustness refinements on the paper's scheme:

- entries with outstanding RDMA operations are *pinned* (refcounted) and
  never evicted, preventing use-after-evict during long non-blocking
  strided lists;
- the cache may be bound to the rank's registration budget
  (:class:`~repro.pami.memregion.MemoryRegionRegistry`), so cached remote
  handles draw from the same slot pool as local registrations and
  eviction frees budget under pressure.
"""

from __future__ import annotations

from ..errors import ArmciError
from ..pami.memregion import MemoryRegion, MemoryRegionRegistry
from ..sim.trace import Trace

#: Cache key: (owner_rank, any address inside the region is resolved by
#: the owner; we key on the region's base address).
CacheKey = tuple[int, int]


class RegionCache:
    """Bounded LFU cache of remote :class:`MemoryRegion` handles."""

    def __init__(
        self,
        capacity: int | None,
        trace: Trace,
        budget_registry: MemoryRegionRegistry | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ArmciError(f"cache capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.trace = trace
        self.budget_registry = budget_registry
        # owner rank -> {base address -> region}; regions per owner rarely
        # exceed sigma (1-7, Table II), so the per-owner scan is short.
        self._by_owner: dict[int, dict[int, MemoryRegion]] = {}
        self._size = 0
        self._freq: dict[CacheKey, int] = {}
        # Monotone insertion counter for deterministic LFU tie-breaking.
        self._age: dict[CacheKey, int] = {}
        self._clock = 0
        self._pins: dict[CacheKey, int] = {}

    def __len__(self) -> int:
        return self._size

    def lookup(self, owner: int, addr: int, nbytes: int) -> MemoryRegion | None:
        """Cached region of ``owner`` covering ``[addr, addr+nbytes)``."""
        regions = self._by_owner.get(owner)
        if regions:
            for region in regions.values():
                if region.covers(addr, nbytes):
                    self._freq[(owner, region.base)] += 1
                    self.trace.incr("armci.region_cache_hits")
                    return region
        self.trace.incr("armci.region_cache_misses")
        return None

    # ------------------------------------------------------------ pinning

    def pin(self, region: MemoryRegion) -> None:
        """Mark a cached handle in use by an outstanding RDMA op.

        Pinned entries are never evicted; a region evicted mid-transfer
        would deregister the handle the NIC is still using. No-op for
        regions not in the cache (local regions, uncached handles).
        """
        key = (region.rank, region.base)
        if key in self._freq:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, region: MemoryRegion) -> None:
        """Drop one pin (the RDMA op completed)."""
        key = (region.rank, region.base)
        count = self._pins.get(key)
        if count is None:
            return
        if count <= 1:
            del self._pins[key]
        else:
            self._pins[key] = count - 1

    def pinned(self, owner: int, base: int) -> int:
        """Outstanding pin count of an entry (0 if absent/unpinned)."""
        return self._pins.get((owner, base), 0)

    # ---------------------------------------------------------- mutation

    def insert(self, region: MemoryRegion) -> None:
        """Add a region handle fetched from its owner, evicting LFU.

        Only *unpinned* entries are eviction candidates. If the cache is
        full and everything is pinned, the insert proceeds over capacity
        (the transfer already paid for the handle) and a trace counter
        records the overflow. If the cache is bound to a registration
        budget and no slot can be freed, the handle is left uncached —
        the next access re-fetches it (graceful degradation, not an
        error).
        """
        key = (region.rank, region.base)
        regions = self._by_owner.setdefault(region.rank, {})
        if region.base in regions:
            self._freq[key] += 1
            return
        if self.capacity is not None and self._size >= self.capacity:
            if not self._evict():
                self.trace.incr("armci.region_cache_pinned_overflow")
        if self.budget_registry is not None and not self.budget_registry.reserve():
            # Try to make room within our own entries first.
            if not (self._evict() and self.budget_registry.reserve()):
                self.trace.incr("armci.region_cache_uncached")
                return
        regions[region.base] = region
        self._size += 1
        self._freq[key] = 1
        self._clock += 1
        self._age[key] = self._clock

    def _evict(self) -> bool:
        """Evict the least-frequently-used *unpinned* entry.

        Returns False when every entry is pinned (nothing evictable).
        """
        candidates = [k for k in self._freq if k not in self._pins]
        if not candidates:
            return False
        victim = min(candidates, key=lambda k: (self._freq[k], self._age[k]))
        owner, base = victim
        # Keep empty per-owner dicts: an in-flight insert may still hold a
        # reference to one.
        del self._by_owner[owner][base]
        self._size -= 1
        del self._freq[victim]
        del self._age[victim]
        if self.budget_registry is not None:
            self.budget_registry.release()
        self.trace.incr("armci.region_cache_evictions")
        return True

    def evict_for_budget(self, slots: int = 1) -> int:
        """Evict up to ``slots`` unpinned entries to free budget slots.

        Called by the runtime when a local registration fails with the
        budget exhausted: cached remote handles are expendable (they can
        be re-fetched), local registrations are not. Returns the number
        of slots actually freed; 0 when the cache holds no budget or
        everything is pinned.
        """
        if self.budget_registry is None:
            return 0
        freed = 0
        while freed < slots and self._evict():
            freed += 1
        if freed:
            self.trace.incr("armci.region_budget_reclaims", freed)
        return freed

    def invalidate(self, owner: int, base: int) -> None:
        """Drop a cached handle (the region was destroyed at its owner)."""
        regions = self._by_owner.get(owner)
        if regions is not None and base in regions:
            del regions[base]
            self._size -= 1
            del self._freq[(owner, base)]
            del self._age[(owner, base)]
            self._pins.pop((owner, base), None)
            if self.budget_registry is not None:
                self.budget_registry.release()

    def invalidate_rank(self, owner: int) -> None:
        """Drop every cached handle owned by ``owner`` (non-generator).

        Crash recovery: a respawned rank's old registrations are gone, so
        every handle pointing at its previous incarnation is poison.
        """
        regions = self._by_owner.get(owner)
        if not regions:
            return
        for base in list(regions):
            self.invalidate(owner, base)

    def frequency(self, owner: int, base: int) -> int:
        """Access count of a cached entry (0 if absent)."""
        return self._freq.get((owner, base), 0)

    def space_bytes(self, gamma: int) -> int:
        """Current cache footprint: entries * gamma (Eq. 5 second term)."""
        return self._size * gamma
