"""Analytical models from the paper: LogGP protocol latencies (Eqs. 7-9)
and PAMI resource time/space complexity (Eqs. 1-6, Tables I & II)."""

from .loggp import LogGPModel
from .complexity import (
    Attributes,
    ComplexityModel,
    TABLE_I_ROWS,
    table_ii_attributes,
)

__all__ = [
    "Attributes",
    "ComplexityModel",
    "LogGPModel",
    "TABLE_I_ROWS",
    "table_ii_attributes",
]
