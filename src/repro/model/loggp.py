"""LogGP latency models for the ARMCI communication protocols.

Closed forms of the paper's Equations 7-9 (Section III-C), using the LogGP
parameters (Alexandrov et al.):

- ``o``  -- time the processor is busy issuing/handling a message,
- ``L``  -- network latency,
- ``G``  -- inverse bandwidth (seconds per byte),
- ``g``  -- per-message gap (ignored by the paper "for simplicity").

These are used to cross-check the simulator: benchmarks compare simulated
protocol latencies against these closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True)
class LogGPModel:
    """LogGP parameter set and the paper's protocol latency equations."""

    #: Processor communication overhead per message (seconds).
    o: float
    #: Network latency (seconds).
    L: float
    #: Inverse bandwidth (seconds/byte).
    G: float

    def __post_init__(self) -> None:
        if self.o < 0 or self.L < 0 or self.G <= 0:
            raise ReproError(
                f"LogGP parameters must be non-negative with G > 0, got "
                f"o={self.o}, L={self.L}, G={self.G}"
            )

    def t_rdma(self, m: int) -> float:
        """Eq. 7: contiguous get/put via RDMA.

        ``T_rdma ~ o + L + (m-1) G`` — no remote processor involvement.
        """
        self._check_m(m)
        return self.o + self.L + (m - 1) * self.G

    def t_fallback(self, m: int) -> float:
        """Eq. 8: active-message fall-back for contiguous get.

        ``T_fallback ~ o + L + o + (m-1) G`` — the extra ``o`` is the remote
        process/thread handling the request, which also makes the protocol
        dependent on remote progress (T_fallback in Omega(T_rdma)).
        """
        self._check_m(m)
        return self.o + self.L + self.o + (m - 1) * self.G

    def t_strided(self, m: int, l0: int) -> float:
        """Eq. 9: strided transfer as a list of non-blocking RDMA ops.

        ``T_strided ~ o * (m / l0) + m G`` — the per-message overhead ``o``
        is paid once per contiguous chunk, so latency is inversely
        proportional to the chunk size ``l0``.
        """
        self._check_m(m)
        if l0 <= 0 or m % l0 != 0:
            raise ReproError(f"chunk size {l0} must evenly divide message {m}")
        num_chunks = m // l0
        return self.o * num_chunks + m * self.G

    def strided_efficiency(self, m: int, l0: int) -> float:
        """Ratio of pure-wire time to strided transfer time (0..1]."""
        return (m * self.G) / self.t_strided(m, l0)

    @staticmethod
    def _check_m(m: int) -> None:
        if m < 1:
            raise ReproError(f"message size must be >= 1 byte, got {m}")
