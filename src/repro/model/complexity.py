"""Time/space complexity models of PAMI resource setup (Eqs. 1-6).

Table I names the attributes; Table II gives their empirical values. The
:class:`ComplexityModel` evaluates the paper's closed forms:

- Contexts:        ``M_c = eps * rho``          (Eq. 1)
                   ``T_c = rho * t_ctx``         (Eq. 2)
- Endpoints:       ``M_e = zeta * alpha * rho``  (Eq. 3)
                   ``T_e = zeta * beta * rho``   (Eq. 4)
- Memory regions:  ``M_r = tau*gamma + sigma*zeta*gamma``  (Eq. 5)
                   ``T_r = tau*delta + sigma*delta``       (Eq. 6)

(The paper overloads the symbol ``rho`` for both context count and creation
time; here ``rho`` is the count and ``t_ctx`` the creation time.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..machine.bgq import BGQParams

#: Table I — (index, property, symbol) rows, verbatim from the paper.
TABLE_I_ROWS: tuple[tuple[int, str, str], ...] = (
    (1, "Message Size for Data Transfer", "m"),
    (2, "Total Number of Processes", "p"),
    (3, "Number of Processes/Node", "c"),
    (4, "Endpoint Space Utilization", "alpha"),
    (5, "Endpoint Creation Time", "beta"),
    (6, "Memory Region Space Utilization", "gamma"),
    (7, "Memory Region Creation Time", "delta"),
    (8, "Context Space Utilization", "epsilon"),
    (9, "Context Creation Time", "t_ctx"),
    (10, "Number of Contexts", "rho"),
    (11, "Communication Clique", "zeta"),
    (12, "Number of Active Global Address Structure", "sigma"),
    (13, "Number of Local Buffers used for Communication", "tau"),
)


@dataclass(frozen=True)
class Attributes:
    """One concrete assignment of the Table I attributes."""

    #: Endpoint space utilization (bytes), alpha.
    alpha: int
    #: Endpoint creation time (s), beta.
    beta: float
    #: Memory-region space utilization (bytes), gamma.
    gamma: int
    #: Memory-region creation time (s), delta.
    delta: float
    #: Context space utilization (bytes), epsilon.
    epsilon: int
    #: Context creation time (s).
    t_ctx: float
    #: Number of contexts, rho (1-2 in the paper).
    rho: int
    #: Communication clique size, zeta (1-p).
    zeta: int
    #: Number of active global address structures, sigma (1-7).
    sigma: int
    #: Number of local communication buffers, tau (1-3).
    tau: int

    def __post_init__(self) -> None:
        if self.rho < 1:
            raise ReproError(f"need at least one context, got rho={self.rho}")
        if self.zeta < 0:
            raise ReproError(f"clique size must be >= 0, got zeta={self.zeta}")
        if self.sigma < 0 or self.tau < 0:
            raise ReproError(
                f"sigma/tau must be >= 0, got sigma={self.sigma}, tau={self.tau}"
            )


def table_ii_attributes(
    params: BGQParams | None = None,
    *,
    rho: int = 1,
    zeta: int = 1,
    sigma: int = 1,
    tau: int = 1,
) -> Attributes:
    """Attributes populated with Table II's empirical values.

    The variable attributes (``rho``, ``zeta``, ``sigma``, ``tau``) default
    to the low end of Table II's ranges and can be overridden.
    """
    p = params if params is not None else BGQParams()
    return Attributes(
        alpha=p.endpoint_space,
        beta=p.endpoint_create_time,
        gamma=p.memregion_space,
        delta=p.memregion_create_time,
        epsilon=p.context_space,
        t_ctx=p.context_create_time(rho - 1),
        rho=rho,
        zeta=zeta,
        sigma=sigma,
        tau=tau,
    )


@dataclass(frozen=True)
class ComplexityModel:
    """Evaluates Eqs. 1-6 for a given attribute assignment."""

    attrs: Attributes

    def context_space(self) -> int:
        """Eq. 1: ``M_c = epsilon * rho`` bytes per process."""
        return self.attrs.epsilon * self.attrs.rho

    def context_time(self) -> float:
        """Eq. 2: total context-creation time per process."""
        return self.attrs.rho * self.attrs.t_ctx

    def endpoint_space(self) -> int:
        """Eq. 3: ``M_e = zeta * alpha * rho`` bytes per process."""
        return self.attrs.zeta * self.attrs.alpha * self.attrs.rho

    def endpoint_time(self) -> float:
        """Eq. 4: ``T_e = zeta * beta * rho`` seconds per process."""
        return self.attrs.zeta * self.attrs.beta * self.attrs.rho

    def memregion_space(self) -> int:
        """Eq. 5: ``M_r = tau*gamma + sigma*zeta*gamma`` bytes per process.

        First term: local communication buffers; second: cached remote
        regions for every active global structure across the clique. With
        strong scaling (zeta ~ p) this term motivates the bounded
        region cache of Section III-B.
        """
        a = self.attrs
        return a.tau * a.gamma + a.sigma * a.zeta * a.gamma

    def memregion_time(self) -> float:
        """Eq. 6: ``T_r = tau*delta + sigma*delta`` seconds per process."""
        a = self.attrs
        return a.tau * a.delta + a.sigma * a.delta

    def total_space(self) -> int:
        """Total modeled setup space per process (bytes)."""
        return self.context_space() + self.endpoint_space() + self.memregion_space()

    def total_time(self) -> float:
        """Total modeled setup time per process (seconds)."""
        return self.context_time() + self.endpoint_time() + self.memregion_time()
