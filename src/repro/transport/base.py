"""Backend-agnostic transport interface (DESIGN.md §15).

The ARMCI protocol layer talks to the network through exactly four
primitive families — RDMA put/get, active messages, atomic
read-modify-writes — plus memory-region registration and fence/flush
completion. :class:`Transport` names that surface; each backend
implements it and declares *how* it implements it in a
:class:`TransportCapabilities` descriptor (native AMO set, completion
style, progress model), so protocol code can branch on capabilities
instead of backend names.

Two backends ship:

- ``pami`` (:mod:`repro.transport.pami`) — the paper's Blue Gene/Q
  messaging layer, delegating 1:1 to :mod:`repro.pami`. The default;
  byte-identical to the pre-transport-layer simulation.
- ``mpi3`` (:mod:`repro.transport.mpi3`) — MPI-3 one-sided windows à la
  foMPI/DART-MPI: per-op origin window overhead, flush-based fences,
  a limited native AMO set with software fallback, and emulated active
  messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover
    from ..pami.activemsg import AmOp
    from ..pami.atomics import RmwOp
    from ..pami.context import PamiContext
    from ..pami.memregion import MemoryRegion, MemoryRegionRegistry
    from ..pami.rma import RmaOp
    from ..pami.world import PamiWorld


@dataclass(frozen=True)
class TransportCapabilities:
    """Per-backend capability descriptor.

    Attributes
    ----------
    name:
        Registry key (``config.backend`` value selecting this backend).
    completion:
        ``"counter"`` — per-op completion counters/callbacks (PAMI), a
        fence only reaps already-tracked acks. ``"flush"`` — completion
        is certified by a window flush, so every fence additionally pays
        a flush round-trip to the target.
    progress:
        ``"dedicated_thread"`` — the backend can drive progress from a
        dedicated thread (PAMI contexts). ``"mpi_calls"`` — passive-target
        progress happens only inside MPI calls (the MPI-3 model; an async
        thread then models a library-internal progress thread).
    native_rmw_ops:
        AMO opcodes the backend services without target-side software
        (NIC/hardware offload). Ops outside this set fall back to a
        software agent at the target and are counted in
        ``transport.amo_software_fallbacks``.
    true_active_messages:
        Whether the wire has first-class active messages (PAMI) or the
        backend emulates them (MPI-3: two-sided protocol under RMA),
        paying ``am_emulation_overhead`` per delivery.
    typed_datatypes:
        Whether the NIC walks typed/derived datatypes (both backends:
        PAMI typed transfers, MPI derived datatypes).
    rma_origin_overhead:
        Origin-side software occupancy (seconds) added to every RMA
        put/get — window bookkeeping the PAMI fast path does not pay.
    am_emulation_overhead:
        Target-side service cost (seconds) added to every emulated
        active message.
    registration_overhead:
        Extra cost (seconds) per memory-region registration
        (``MPI_Win_attach``-style).
    flush_overhead:
        Origin-side software cost (seconds) of one flush, on top of the
        flush round-trip; only meaningful under ``completion="flush"``.
    """

    name: str
    completion: str
    progress: str
    native_rmw_ops: frozenset[str] = frozenset()
    true_active_messages: bool = True
    typed_datatypes: bool = True
    rma_origin_overhead: float = 0.0
    am_emulation_overhead: float = 0.0
    registration_overhead: float = 0.0
    flush_overhead: float = 0.0


class Transport:
    """One job's binding of the ARMCI protocol layer to a wire backend.

    Stateless apart from the world/config references: every method takes
    the initiating context explicitly, exactly like the PAMI primitives
    it abstracts. All methods are non-generators returning op handles,
    except the registration and fence hooks (generators, documented).
    """

    capabilities: TransportCapabilities

    def __init__(self, world: "PamiWorld", config) -> None:
        self.world = world
        self.config = config

    # ------------------------------------------------------------- RMA

    def rdma_put(
        self,
        ctx: "PamiContext",
        dst_rank: int,
        local_addr: int,
        remote_addr: int,
        nbytes: int,
        want_remote_ack: bool = False,
        extra_occupancy: float = 0.0,
    ) -> "RmaOp":
        """Post a non-blocking one-sided put (buffer captured at post)."""
        raise NotImplementedError

    def rdma_get(
        self,
        ctx: "PamiContext",
        dst_rank: int,
        remote_addr: int,
        local_addr: int,
        nbytes: int,
        extra_occupancy: float = 0.0,
    ) -> "RmaOp":
        """Post a non-blocking one-sided get."""
        raise NotImplementedError

    @property
    def rma_extra_occupancy(self) -> float:
        """Origin occupancy protocol code must add to hand-rolled
        transfers (the typed strided/vector paths time themselves
        against the network instead of calling :meth:`rdma_put`)."""
        return self.capabilities.rma_origin_overhead

    # ------------------------------------------------- active messages

    def send_am(
        self,
        ctx: "PamiContext",
        dst_rank: int,
        dispatch_id: int,
        header: dict[str, Any] | None = None,
        payload=None,
        target_context: int | None = None,
    ) -> "AmOp":
        """Post a non-blocking active message (serviced by target
        progress)."""
        raise NotImplementedError

    # ------------------------------------------------------------ AMOs

    def rmw(
        self,
        ctx: "PamiContext",
        dst_rank: int,
        addr: int,
        op: str,
        operand: int = 0,
        operand2: int = 0,
        target_context: int | None = None,
        credited: bool = False,
    ) -> "RmwOp":
        """Post a non-blocking read-modify-write (fetch semantics)."""
        raise NotImplementedError

    def rmw_is_native(self, op: str) -> bool:
        """Whether ``op`` completes without target-side software progress
        (and therefore takes no FIFO credit under flow control)."""
        raise NotImplementedError

    # ----------------------------------------------------- registration

    def register_region(
        self, registry: "MemoryRegionRegistry", base: int, nbytes: int
    ) -> Generator[Any, Any, "MemoryRegion"]:
        """Register ``[base, base+nbytes)`` for one-sided access.

        Generator charging simulated time; raises
        :class:`~repro.errors.ResourceExhaustedError` (before any time is
        charged) when the registration budget is spent.
        """
        raise NotImplementedError

    # ------------------------------------------------ completion/fence

    def fence_extra(self, rt, dst: int) -> Generator[Any, Any, None]:
        """Backend-specific completion work a fence to ``dst`` performs
        *after* reaping the tracked acks.

        Counter-completion backends (PAMI) do nothing — the generator
        must then add **zero** events to the engine. Flush-completion
        backends pay the flush round-trip here.
        """
        raise NotImplementedError
