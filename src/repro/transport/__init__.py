"""Pluggable communication backends for the ARMCI protocol layer.

``repro.armci`` calls the wire through exactly one object — a
:class:`~repro.transport.base.Transport` — constructed per job from
``ArmciConfig(backend=...)``. ``backend=None`` (the default) resolves to
:data:`DEFAULT_BACKEND`, which the ``REPRO_ARMCI_BACKEND`` environment
variable (and the test suite's backend-conformance fixture) can
override without touching call sites.
"""

from __future__ import annotations

import os

from ..errors import ArmciError
from .base import Transport, TransportCapabilities
from .mpi3 import Mpi3Transport
from .pami import PamiTransport

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "Mpi3Transport",
    "PamiTransport",
    "Transport",
    "TransportCapabilities",
    "capability_matrix",
    "create_transport",
    "is_known_backend",
]

#: Backend registry: config name -> Transport subclass.
BACKENDS: dict[str, type[Transport]] = {
    "pami": PamiTransport,
    "mpi3": Mpi3Transport,
}

#: Resolution of ``ArmciConfig(backend=None)``. Module-global (not baked
#: into the config dataclass) so the conformance suite and CI matrix can
#: re-point every default-configured job at another backend.
DEFAULT_BACKEND: str = os.environ.get("REPRO_ARMCI_BACKEND", "pami")


def is_known_backend(name: str) -> bool:
    """Whether ``name`` is a registered backend (non-generator)."""
    return name in BACKENDS


def create_transport(name: str | None, world, config) -> Transport:
    """Construct the transport for one job.

    ``name=None`` resolves :data:`DEFAULT_BACKEND` at call time (so a
    monkeypatched default takes effect for every job built afterwards).
    """
    if name is None:
        name = DEFAULT_BACKEND
    cls = BACKENDS.get(name)
    if cls is None:
        raise ArmciError(
            f"unknown transport backend {name!r}; valid: {sorted(BACKENDS)}"
        )
    return cls(world, config)


def capability_matrix() -> list[TransportCapabilities]:
    """Capability descriptors of every registered backend, by name."""
    return [BACKENDS[name].capabilities for name in sorted(BACKENDS)]
