"""MPI-3 one-sided (RMA window) backend, modeled after foMPI / DART-MPI.

The same simulated wire as PAMI — the torus, its timings, chaos, link
faults, and integrity all apply unchanged — but with MPI-3 window
semantics layered on:

- **Origin window overhead.** Every put/get pays ``WIN_ORIGIN_OVERHEAD``
  of origin-side software occupancy (window bookkeeping, datatype
  checks) that the PAMI fast path does not, injected through the
  primitives' ``extra_occupancy`` hook so it composes with contention,
  chaos, and routing exactly like any other occupancy.
- **Flush completion.** MPI-3 passive-target completion is certified by
  ``MPI_Win_flush``, not per-op counters: every ARMCI fence pays one
  flush round-trip to the target (plus ``FLUSH_OVERHEAD`` software
  cost), counted in ``transport.flush_syncs``.
- **Limited native AMOs.** ``MPI_Fetch_and_op``/``MPI_Compare_and_swap``
  with hardware-offloadable ops (add, replace, no-op, CAS) complete in
  the target NIC without software progress — the passive-target promise.
  ``fetch_max`` has no offload and falls back to a target-side software
  agent (progress-dependent, like every PAMI AMO), counted in
  ``transport.amo_software_fallbacks``.
- **Emulated active messages.** MPI has no AM primitive; the backend
  runs them as a two-sided protocol serviced at the target, paying
  ``AM_EMULATION_OVERHEAD`` per delivery on top of the handler cost.
- **Window attach.** Region registration is ``MPI_Win_attach``; each
  registration pays ``WIN_ATTACH_OVERHEAD`` on top of the PAMI-level
  registration cost, counted in ``transport.win_attach``.

Progress remains whatever the job configures: default (D) mode is the
pure passive-target model — progress only inside MPI calls — and AT mode
models an MPI library with an internal progress thread.
"""

from __future__ import annotations

from typing import Any, Generator

from ..pami import activemsg as _am
from ..pami import atomics as _atomics
from ..pami import rma as _rma
from ..sim.primitives import Delay
from .base import Transport, TransportCapabilities

#: Origin-side software occupancy per RMA op (window bookkeeping).
WIN_ORIGIN_OVERHEAD = 120e-9
#: Target-side service cost per emulated active message.
AM_EMULATION_OVERHEAD = 400e-9
#: Extra cost per region registration (MPI_Win_attach).
WIN_ATTACH_OVERHEAD = 500e-9
#: Origin software cost of one MPI_Win_flush (plus the wire round-trip).
FLUSH_OVERHEAD = 100e-9

#: Ops with NIC offload under MPI-3 RMA (fetch-and-add, replace, no-op
#: reads, compare-and-swap). ``fetch_max`` is deliberately absent: max
#: has no hardware offload, so the library emulates it in software.
MPI3_NATIVE_RMW_OPS = frozenset({"fetch_add", "swap", "compare_swap", "fetch"})

MPI3_CAPABILITIES = TransportCapabilities(
    name="mpi3",
    completion="flush",
    progress="mpi_calls",
    native_rmw_ops=MPI3_NATIVE_RMW_OPS,
    true_active_messages=False,
    typed_datatypes=True,  # MPI derived datatypes
    rma_origin_overhead=WIN_ORIGIN_OVERHEAD,
    am_emulation_overhead=AM_EMULATION_OVERHEAD,
    registration_overhead=WIN_ATTACH_OVERHEAD,
    flush_overhead=FLUSH_OVERHEAD,
)


class Mpi3Transport(Transport):
    """MPI-3 one-sided windows over the simulated torus."""

    capabilities = MPI3_CAPABILITIES

    def rdma_put(
        self, ctx, dst_rank, local_addr, remote_addr, nbytes,
        want_remote_ack=False, extra_occupancy=0.0,
    ):
        return _rma.rdma_put(
            ctx, dst_rank, local_addr, remote_addr, nbytes,
            want_remote_ack=want_remote_ack,
            extra_occupancy=extra_occupancy + WIN_ORIGIN_OVERHEAD,
        )

    def rdma_get(
        self, ctx, dst_rank, remote_addr, local_addr, nbytes,
        extra_occupancy=0.0,
    ):
        return _rma.rdma_get(
            ctx, dst_rank, remote_addr, local_addr, nbytes,
            extra_occupancy=extra_occupancy + WIN_ORIGIN_OVERHEAD,
        )

    def send_am(
        self, ctx, dst_rank, dispatch_id, header=None, payload=None,
        target_context=None,
    ):
        # Emulated AM: the receive-side agent pays the two-sided match
        # cost on top of whatever handler cost the protocol declared.
        header = dict(header or {})
        header["_cost"] = header.get("_cost", 0.0) + AM_EMULATION_OVERHEAD
        self.world.trace.incr("transport.am_emulations")
        return _am.send_am(
            ctx, dst_rank, dispatch_id, header=header, payload=payload,
            target_context=target_context,
        )

    def rmw(
        self, ctx, dst_rank, addr, op, operand=0, operand2=0,
        target_context=None, credited=False,
    ):
        native = op in MPI3_NATIVE_RMW_OPS
        if native:
            self.world.trace.incr("transport.amo_native")
        else:
            self.world.trace.incr("transport.amo_software_fallbacks")
        return _atomics.rmw(
            ctx, dst_rank, addr, op, operand, operand2,
            target_context=target_context, credited=credited, nic=native,
        )

    def rmw_is_native(self, op: str) -> bool:
        return op in MPI3_NATIVE_RMW_OPS

    def register_region(
        self, registry, base: int, nbytes: int
    ) -> Generator[Any, Any, Any]:
        # Budget exhaustion still raises fast (before time is charged);
        # the attach overhead is paid only on successful registration.
        region = yield from registry.create(base, nbytes)
        self.world.trace.incr("transport.win_attach")
        yield Delay(WIN_ATTACH_OVERHEAD)
        return region

    def fence_extra(self, rt, dst: int) -> Generator[Any, Any, None]:
        # MPI_Win_flush(dst): remote completion is certified by a flush
        # round-trip, even when no write acks were tracked.
        world = self.world
        rtt = 2 * world.network.hops(rt.rank, dst) * world.params.hop_latency
        world.trace.incr("transport.flush_syncs")
        yield Delay(rtt + FLUSH_OVERHEAD)
