"""The PAMI backend: 1:1 delegation to :mod:`repro.pami`.

This is the paper's native messaging layer and the default backend. It
adds nothing on top of the primitives — every method forwards its
arguments verbatim, so a job running over :class:`PamiTransport` is
byte-identical (same events, same timings, same counters) to one calling
the PAMI modules directly, as the pre-refactor code did.
"""

from __future__ import annotations

from typing import Any, Generator

from ..pami import activemsg as _am
from ..pami import atomics as _atomics
from ..pami import rma as _rma
from .base import Transport, TransportCapabilities

#: BG/Q has no generic NIC AMOs (Section III-D): PAMI services every AMO
#: in target-side software, so the native set is empty. The what-if
#: hardware path (``world.nic_amo_support``) overrides this dynamically.
PAMI_CAPABILITIES = TransportCapabilities(
    name="pami",
    completion="counter",
    progress="dedicated_thread",
    native_rmw_ops=frozenset(),
    true_active_messages=True,
    typed_datatypes=True,
)


class PamiTransport(Transport):
    """PAMI-native transport (the Blue Gene/Q messaging stack)."""

    capabilities = PAMI_CAPABILITIES

    def rdma_put(
        self, ctx, dst_rank, local_addr, remote_addr, nbytes,
        want_remote_ack=False, extra_occupancy=0.0,
    ):
        return _rma.rdma_put(
            ctx, dst_rank, local_addr, remote_addr, nbytes,
            want_remote_ack=want_remote_ack, extra_occupancy=extra_occupancy,
        )

    def rdma_get(
        self, ctx, dst_rank, remote_addr, local_addr, nbytes,
        extra_occupancy=0.0,
    ):
        return _rma.rdma_get(
            ctx, dst_rank, remote_addr, local_addr, nbytes,
            extra_occupancy=extra_occupancy,
        )

    def send_am(
        self, ctx, dst_rank, dispatch_id, header=None, payload=None,
        target_context=None,
    ):
        return _am.send_am(
            ctx, dst_rank, dispatch_id, header=header, payload=payload,
            target_context=target_context,
        )

    def rmw(
        self, ctx, dst_rank, addr, op, operand=0, operand2=0,
        target_context=None, credited=False,
    ):
        # nic defaults to the world's what-if flag inside the primitive.
        return _atomics.rmw(
            ctx, dst_rank, addr, op, operand, operand2,
            target_context=target_context, credited=credited,
        )

    def rmw_is_native(self, op: str) -> bool:
        # All-or-nothing on BG/Q: the Gemini-style what-if NIC services
        # every opcode; real hardware services none.
        return self.world.nic_amo_support

    def register_region(
        self, registry, base: int, nbytes: int
    ) -> Generator[Any, Any, Any]:
        return (yield from registry.create(base, nbytes))

    def fence_extra(self, rt, dst: int) -> Generator[Any, Any, None]:
        # Counter completion: the tracked acks already certify remote
        # completion; adding any event here would break byte-identity.
        return
        yield  # pragma: no cover
