"""Exception hierarchy for the :mod:`repro` package.

Every layer raises a subclass of :class:`ReproError` so callers can catch
package failures without masking programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """A discrete-event simulation invariant was violated."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class PdesError(SimulationError):
    """The sharded parallel-PDES runtime hit a protocol error.

    Raised for violations of the conservative-synchronization contract
    (an event injected below the current epoch horizon, a shared-memory
    ring overflowing its fixed capacity, a worker process dying mid-run)
    rather than for errors in the simulated workload itself.
    """


class TopologyError(ReproError):
    """Invalid torus geometry, coordinate, or rank mapping."""


class PamiError(ReproError):
    """A PAMI-layer precondition failed (bad endpoint, context, region...)."""


class ArmciError(ReproError):
    """An ARMCI-layer precondition failed."""


class ResourceExhaustedError(PamiError, ArmciError):
    """A resource budget (memory-region slots, FIFO credits) was exhausted.

    Subclasses both :class:`PamiError` (the budget lives in the PAMI
    layer) and :class:`ArmciError` (blocking ARMCI calls surface it), so
    existing ``except ArmciError`` handlers keep working.
    """


class DeadlineExceededError(ArmciError):
    """A blocking operation's deadline expired before it completed.

    Raised instead of hanging when a deadline (explicit ``timeout=``,
    inherited from an enclosing operation, or
    ``ArmciConfig.default_deadline``) passes while the operation is
    still parked — waiting on a completion event, a flow-control
    credit, or a retry backoff sleep.
    """


class ConsistencyError(ArmciError):
    """A location-consistency invariant was violated."""


class VerificationError(ReproError):
    """The verification subsystem (``repro.verify``) found a defect:
    an oracle-flagged missed fence, a data race, or a schedule-dependent
    divergence a fuzz run could not shrink cleanly."""


class HandleError(ArmciError):
    """Misuse of a non-blocking request handle (double wait, reuse...)."""


class GlobalArrayError(ReproError):
    """Invalid global-array construction or patch access."""


class ProcessFailedError(ReproError):
    """A one-sided operation targeted a failed process.

    Raised at the *initiator* when fault detection completes (the
    fault-tolerance extension; cf. Vishnu et al., HiPC 2010 — the
    resiliency motivation in the paper's introduction).

    Attributes
    ----------
    rank:
        The failed rank, when the detector knows it (``None`` otherwise).
    op:
        The originating operation kind (``"put"``, ``"rmw"``,
        ``"barrier"``, ``"fence"``...) so recovery code and tests can
        route per-op compensation without parsing message text.
    """

    def __init__(
        self, message: str = "", *, rank: int | None = None, op: str | None = None
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.op = op


class RecoveryError(ReproError):
    """The crash-recovery subsystem (``repro.recover``) hit a protocol
    error it could not compensate for."""


class UnrecoverableError(RecoveryError):
    """A failure pattern the replication scheme cannot survive — e.g. a
    rank *and* its replication buddy both died inside one epoch."""


class TransientFaultError(ReproError):
    """A one-sided operation was lost to a *transient* transport fault.

    Unlike :class:`ProcessFailedError` the target is still alive: the
    NIC reported a dropped or checksum-rejected packet (chaos
    injection). The operation is safe to retry — faults are injected
    before any target-side effect, so a retried op applies exactly once.
    """


class RetryExhaustedError(TransientFaultError):
    """The retry budget for a transient fault was spent without success.

    Subclasses :class:`TransientFaultError` so callers that treat any
    transient-fault outcome uniformly can catch the base class.
    """
