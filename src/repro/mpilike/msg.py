"""Tag-matched two-sided messaging (eager protocol over active messages).

Semantics (a deliberately small MPI subset):

- ``send(rt, dst, tag, payload)`` — blocking until the payload is on the
  wire (eager: no rendezvous), like ``MPI_Send`` for small messages.
- ``data = yield from recv(rt, src, tag)`` — blocks until a matching
  message arrives; messages from one source with one tag are delivered
  in order (PAMI's pairwise ordering).

Matching is exact on ``(src, tag)``; unexpected messages are banked at
the receiver, exactly the unexpected-message queue of an MPI runtime.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from ..pami.activemsg import AmEnvelope
from ..pami.context import PamiContext

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.runtime import ArmciProcess

MSG_ID = 13


class MessageBoard:
    """Per-rank matching state: unexpected messages + posted receives."""

    def __init__(self) -> None:
        self._unexpected: dict[tuple[int, int], deque[bytes]] = {}
        self._posted: dict[tuple[int, int], deque] = {}

    def deliver(self, src: int, tag: int, payload: bytes) -> None:
        """A message arrived: complete a posted recv or bank it."""
        key = (src, tag)
        posted = self._posted.get(key)
        if posted:
            posted.popleft().succeed(payload)
        else:
            self._unexpected.setdefault(key, deque()).append(payload)

    def match_or_post(self, src: int, tag: int, engine):
        """Take a banked message, or return an Event to wait on."""
        key = (src, tag)
        banked = self._unexpected.get(key)
        if banked:
            return banked.popleft(), None
        event = engine.event(f"recv.{src}.{tag}")
        self._posted.setdefault(key, deque()).append(event)
        return None, event

    def unexpected_count(self) -> int:
        """Banked (unmatched) messages currently held."""
        return sum(len(q) for q in self._unexpected.values())


def _board(rt: "ArmciProcess") -> MessageBoard:
    board = getattr(rt, "_msg_board", None)
    if board is None:
        board = MessageBoard()
        rt._msg_board = board
    return board


def handle_message(rt: "ArmciProcess", ctx: PamiContext, env: AmEnvelope) -> None:
    """Receiver-side delivery (runs in the target's progress engine)."""
    _board(rt).deliver(env.src, env.header["tag"], env.payload)
    rt.trace.incr("mpilike.delivered")


def send(
    rt: "ArmciProcess", dst: int, tag: int, payload: bytes
) -> Generator[Any, Any, None]:
    """Blocking eager send: returns when the send buffer is reusable."""
    op = rt.transport.send_am(
        rt.main_context, dst, MSG_ID, header={"tag": tag}, payload=bytes(payload)
    )
    yield from rt.main_context.wait_with_progress(op.local_event)
    rt.trace.incr("mpilike.sends")


def recv(rt: "ArmciProcess", src: int, tag: int) -> Generator[Any, Any, bytes]:
    """Blocking receive of the next ``(src, tag)`` message."""
    payload, event = _board(rt).match_or_post(src, tag, rt.engine)
    if payload is None:
        payload = yield from rt.main_context.wait_with_progress(event)
    rt.trace.incr("mpilike.recvs")
    return payload
