"""A minimal two-sided (MPI-like) messaging layer over PAMI.

The paper positions PGAS one-sided communication against the ubiquitous
two-sided MPI model (Sections I and V). This tiny send/recv layer —
tag-matched messages over active messages — exists for that comparison:
two-sided transfers complete only when the *receiver participates*
(posts a matching receive and makes progress), whereas the ARMCI
one-sided operations of this package never need the target's attention
once RDMA is in play.
"""

from .msg import MessageBoard, recv, send

__all__ = ["MessageBoard", "recv", "send"]
