"""A minimal Global Arrays layer over ARMCI.

Provides exactly what NWChem-style applications need (Section II-B):
block-distributed dense 2D arrays with one-sided patch ``get``/``put``/
``accumulate``, plus shared load-balance counters — all built on the
ARMCI primitives, the way the real Global Arrays toolkit is.
"""

from .distribution import BlockDistribution, Patch
from .array import GlobalArray
from .counter import SharedCounter
from .taskpool import DistributedTaskPool, TaskPool
from .dgemm import parallel_dgemm

__all__ = [
    "BlockDistribution",
    "DistributedTaskPool",
    "GlobalArray",
    "Patch",
    "SharedCounter",
    "TaskPool",
    "parallel_dgemm",
]
