"""Shared load-balance counters (NWChem's ``nxtask``).

A single 64-bit integer hosted on one rank; every process draws task ids
with ``fetch_add``. On BG/Q each draw is serviced by the host's software
progress engine — the primitive whose acceleration is the paper's
headline application result (Figs. 9-11).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import ArmciError

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.runtime import ArmciProcess


class SharedCounter:
    """A fetch-and-add counter on a host rank.

    Create collectively with :meth:`create`; every rank gets an equivalent
    handle to the same storage.
    """

    def __init__(self, host: int, addr: int, alloc=None) -> None:
        self.host = host
        self.addr = addr
        #: The backing collective :class:`~repro.armci.runtime.Allocation`
        #: when created via :meth:`create` (``None`` for raw handles).
        #: Crash recovery protects counters through this — the counter
        #: value lives in replicated memory and rolls back with it.
        self.alloc = alloc

    @classmethod
    def create(
        cls, rt: "ArmciProcess", host: int = 0
    ) -> Generator[Any, Any, "SharedCounter"]:
        """Collective creation; the counter starts at zero."""
        if not 0 <= host < rt.world.num_procs:
            raise ArmciError(f"counter host {host} out of range")
        alloc = yield from rt.malloc(8)
        return cls(host, alloc.addr(host), alloc)

    def next(self, rt: "ArmciProcess", stride: int = 1) -> Generator[Any, Any, int]:
        """Draw the next value (returns the pre-increment value)."""
        old = yield from rt.rmw(self.host, self.addr, "fetch_add", stride)
        rt.trace.incr("gax.counter_draws")
        return old

    def read(self, rt: "ArmciProcess") -> Generator[Any, Any, int]:
        """Read the current value without modifying it."""
        return (yield from rt.rmw(self.host, self.addr, "fetch"))

    def reset(self, rt: "ArmciProcess") -> Generator[Any, Any, int]:
        """Reset to zero; returns the old value (host-side swap)."""
        return (yield from rt.rmw(self.host, self.addr, "swap", 0))
