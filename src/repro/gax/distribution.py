"""Block distributions of dense 2D arrays over a process grid."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from ..errors import GlobalArrayError


def default_process_grid(num_procs: int) -> tuple[int, int]:
    """Near-square process grid (rows x cols) covering ``num_procs``."""
    if num_procs < 1:
        raise GlobalArrayError(f"need >= 1 process, got {num_procs}")
    rows = int(math.sqrt(num_procs))
    while num_procs % rows != 0:
        rows -= 1
    return rows, num_procs // rows


@dataclass(frozen=True)
class Patch:
    """A half-open 2D index range ``[row_lo, row_hi) x [col_lo, col_hi)``."""

    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int

    def __post_init__(self) -> None:
        if self.row_lo < 0 or self.col_lo < 0:
            raise GlobalArrayError(f"patch indices must be >= 0: {self}")
        if self.row_hi <= self.row_lo or self.col_hi <= self.col_lo:
            raise GlobalArrayError(f"patch must be non-empty: {self}")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_hi - self.row_lo, self.col_hi - self.col_lo)

    def intersect(self, other: "Patch") -> "Patch | None":
        """Intersection with another patch, or None if disjoint."""
        r0 = max(self.row_lo, other.row_lo)
        r1 = min(self.row_hi, other.row_hi)
        c0 = max(self.col_lo, other.col_lo)
        c1 = min(self.col_hi, other.col_hi)
        if r0 >= r1 or c0 >= c1:
            return None
        return Patch(r0, r1, c0, c1)


def _even_bounds(extent: int, nblocks: int) -> list[int]:
    """Boundaries splitting ``extent`` into ``nblocks`` near-even pieces.

    The first ``extent % nblocks`` pieces get one extra element, so every
    piece is non-empty whenever ``nblocks <= extent``.
    """
    base, extra = divmod(extent, nblocks)
    bounds = [0]
    for b in range(nblocks):
        bounds.append(bounds[-1] + base + (1 if b < extra else 0))
    return bounds


def _block_index(bounds: list[int], index: int) -> int:
    """Block containing element ``index`` given ``_even_bounds`` output."""
    import bisect

    return bisect.bisect_right(bounds, index) - 1


def _validate_bounds(bounds: tuple[int, ...], extent: int, label: str) -> None:
    if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != extent:
        raise GlobalArrayError(
            f"{label} bounds must run 0..{extent}, got {bounds}"
        )
    for lo, hi in zip(bounds, bounds[1:]):
        if hi <= lo:
            raise GlobalArrayError(
                f"{label} bounds must be strictly increasing, got {bounds}"
            )


@dataclass(frozen=True)
class BlockDistribution:
    """Block distribution of a ``rows x cols`` array on a process grid.

    By default blocks are near-even with remainders spread over the
    leading blocks (GA-style), so every grid slot owns a non-empty block
    whenever the grid fits the array. Irregular distributions — GA's
    ``ga_create_irreg`` — are built with :meth:`from_bounds`, giving
    explicit per-dimension block boundaries. Ranks map row-major onto
    the grid.
    """

    rows: int
    cols: int
    grid_rows: int
    grid_cols: int
    #: Optional explicit boundaries (irregular distribution); None = even.
    row_bounds: tuple[int, ...] | None = None
    col_bounds: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise GlobalArrayError(
                f"array must be non-empty, got {self.rows}x{self.cols}"
            )
        if self.grid_rows < 1 or self.grid_cols < 1:
            raise GlobalArrayError(
                f"grid must be non-empty, got {self.grid_rows}x{self.grid_cols}"
            )
        if self.grid_rows > self.rows or self.grid_cols > self.cols:
            raise GlobalArrayError(
                f"grid {self.grid_rows}x{self.grid_cols} larger than array "
                f"{self.rows}x{self.cols}"
            )
        if self.row_bounds is not None:
            _validate_bounds(self.row_bounds, self.rows, "row")
            if len(self.row_bounds) != self.grid_rows + 1:
                raise GlobalArrayError(
                    f"need {self.grid_rows + 1} row bounds, got "
                    f"{len(self.row_bounds)}"
                )
        if self.col_bounds is not None:
            _validate_bounds(self.col_bounds, self.cols, "col")
            if len(self.col_bounds) != self.grid_cols + 1:
                raise GlobalArrayError(
                    f"need {self.grid_cols + 1} col bounds, got "
                    f"{len(self.col_bounds)}"
                )

    @classmethod
    def from_bounds(
        cls,
        row_bounds: tuple[int, ...],
        col_bounds: tuple[int, ...],
    ) -> "BlockDistribution":
        """Irregular distribution (``ga_create_irreg``) from explicit
        boundaries: ``row_bounds = (0, ..., rows)``, one block per
        adjacent pair."""
        row_bounds = tuple(row_bounds)
        col_bounds = tuple(col_bounds)
        if len(row_bounds) < 2 or len(col_bounds) < 2:
            raise GlobalArrayError("bounds need at least two entries")
        return cls(
            rows=row_bounds[-1],
            cols=col_bounds[-1],
            grid_rows=len(row_bounds) - 1,
            grid_cols=len(col_bounds) - 1,
            row_bounds=row_bounds,
            col_bounds=col_bounds,
        )

    @property
    def num_procs(self) -> int:
        return self.grid_rows * self.grid_cols

    def _row_bounds(self) -> list[int]:
        if self.row_bounds is not None:
            return list(self.row_bounds)
        return _even_bounds(self.rows, self.grid_rows)

    def _col_bounds(self) -> list[int]:
        if self.col_bounds is not None:
            return list(self.col_bounds)
        return _even_bounds(self.cols, self.grid_cols)

    @property
    def block_rows(self) -> int:
        """Maximum rows in any block."""
        bounds = self._row_bounds()
        return max(hi - lo for lo, hi in zip(bounds, bounds[1:]))

    @property
    def block_cols(self) -> int:
        """Maximum cols in any block."""
        bounds = self._col_bounds()
        return max(hi - lo for lo, hi in zip(bounds, bounds[1:]))

    def grid_coord(self, rank: int) -> tuple[int, int]:
        """Grid position of ``rank`` (row-major)."""
        if not 0 <= rank < self.num_procs:
            raise GlobalArrayError(
                f"rank {rank} outside grid of {self.num_procs}"
            )
        return divmod(rank, self.grid_cols)

    def owner_block(self, rank: int) -> Patch:
        """The (always non-empty) index patch owned by ``rank``."""
        pi, pj = self.grid_coord(rank)
        rb, cb = self._row_bounds(), self._col_bounds()
        return Patch(rb[pi], rb[pi + 1], cb[pj], cb[pj + 1])

    def owner_of(self, row: int, col: int) -> int:
        """Rank owning element ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise GlobalArrayError(f"index ({row}, {col}) out of bounds")
        pi = _block_index(self._row_bounds(), row)
        pj = _block_index(self._col_bounds(), col)
        return pi * self.grid_cols + pj

    def owners_of_patch(self, patch: Patch) -> Iterator[tuple[int, Patch]]:
        """All ``(rank, sub_patch)`` pairs covering ``patch``."""
        if patch.row_hi > self.rows or patch.col_hi > self.cols:
            raise GlobalArrayError(
                f"patch {patch} exceeds array {self.rows}x{self.cols}"
            )
        rb, cb = self._row_bounds(), self._col_bounds()
        pi_lo = _block_index(rb, patch.row_lo)
        pi_hi = _block_index(rb, patch.row_hi - 1)
        pj_lo = _block_index(cb, patch.col_lo)
        pj_hi = _block_index(cb, patch.col_hi - 1)
        for pi in range(pi_lo, pi_hi + 1):
            for pj in range(pj_lo, pj_hi + 1):
                rank = pi * self.grid_cols + pj
                sub = self.owner_block(rank).intersect(patch)
                if sub is not None:
                    yield rank, sub
