"""Distributed dgemm over global arrays — the Section III-E motivating case.

``C = A . B`` with A, B, C block-distributed: each process reads patches
of A and B (non-blocking gets) and accumulates partial products into C.
Reads target A/B and writes target C — *different* distributed
structures — so a per-target consistency tracker (``cs_tgt``) fences
spuriously on every get that follows an accumulate to the same rank,
while ``cs_mr`` never does. The consistency ablation benchmark counts
exactly that difference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

import numpy as np

from .array import GlobalArray
from .counter import SharedCounter
from .distribution import Patch

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.runtime import ArmciProcess


def dgemm_task_list(n: int, block: int) -> list[tuple[Patch, Patch, Patch]]:
    """Block tasks: for each C block (i, j) and inner block k, the patch
    triple (A[i,k], B[k,j], C[i,j])."""
    nb = -(-n // block)
    tasks = []
    for i in range(nb):
        for j in range(nb):
            for k in range(nb):
                r0, r1 = i * block, min((i + 1) * block, n)
                c0, c1 = j * block, min((j + 1) * block, n)
                k0, k1 = k * block, min((k + 1) * block, n)
                tasks.append(
                    (Patch(r0, r1, k0, k1), Patch(k0, k1, c0, c1), Patch(r0, r1, c0, c1))
                )
    return tasks


def parallel_dgemm(
    rt: "ArmciProcess",
    ga_a: GlobalArray,
    ga_b: GlobalArray,
    ga_c: GlobalArray,
    counter: SharedCounter,
    block: int,
) -> Generator[Any, Any, int]:
    """Counter-load-balanced ``C += A . B``; returns tasks done locally.

    All ranks must call collectively; C must be zeroed beforehand and the
    counter freshly created/reset.
    """
    n = ga_a.dist.rows
    tasks = dgemm_task_list(n, block)
    done = 0
    mine = yield from counter.next(rt)
    for task_id, (pa, pb, pc) in enumerate(tasks):
        if task_id != mine:
            continue
        a = yield from ga_a.get(rt, pa)
        b = yield from ga_b.get(rt, pb)
        partial = a @ b
        yield from ga_c.acc(rt, pc, partial)
        done += 1
        mine = yield from counter.next(rt)
    yield from rt.fence_all()
    yield from rt.barrier()
    return done


def reference_dgemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sequential reference for verification."""
    return a @ b
