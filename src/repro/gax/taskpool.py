"""Task pools over shared counters, including a distributed variant.

Figures 9/11 show the single software-serviced counter saturating as p
grows. The standard mitigation (used by NWChem at scale and enabled by
hardware AMOs on Gemini) is to **distribute** the load balancing: shard
the task range over several counters hosted on different ranks, with
ranks draining their home shard first and stealing from remote shards
once it is exhausted. Both pool flavours expose the same
``next_range(rt)`` interface the Fock build consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from ..errors import ArmciError, ProcessFailedError
from .counter import SharedCounter

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.runtime import ArmciProcess


@dataclass
class TaskPool:
    """Single shared counter over ``[0, ntasks)`` with chunked draws."""

    counter: SharedCounter
    ntasks: int
    chunk: int = 1

    def __post_init__(self) -> None:
        if self.ntasks < 1:
            raise ArmciError(f"need >= 1 task, got {self.ntasks}")
        if self.chunk < 1:
            raise ArmciError(f"chunk must be >= 1, got {self.chunk}")

    @classmethod
    def create(
        cls, rt: "ArmciProcess", ntasks: int, chunk: int = 1, host: int = 0
    ) -> Generator[Any, Any, "TaskPool"]:
        """Collective creation."""
        counter = yield from SharedCounter.create(rt, host=host)
        return cls(counter, ntasks, chunk)

    def next_range(
        self, rt: "ArmciProcess"
    ) -> Generator[Any, Any, tuple[int, int] | None]:
        """Claim the next task range ``[lo, hi)``; ``None`` when drained."""
        sid = None
        if rt.obs is not None:
            sid = rt.obs.begin(rt.rank, "main", "task_draw", "taskpool.next_range")
        try:
            draw = yield from self.counter.next(rt)
        finally:
            if sid is not None:
                rt.obs.end(sid)
        lo = draw * self.chunk
        if lo >= self.ntasks:
            return None
        return lo, min(lo + self.chunk, self.ntasks)

    def reset(self, rt: "ArmciProcess") -> Generator[Any, Any, None]:
        """Reset for the next iteration (call from one rank, then barrier)."""
        yield from self.counter.reset(rt)


@dataclass
class DistributedTaskPool:
    """``g`` counters over ``g`` task shards, with work stealing.

    Each rank drains the shard of its *home* counter
    (``rank % g``-th counter), then probes the remaining shards round
    robin. Counter hosts are spread across ranks, so both the AMO service
    load and the network traffic decentralize — at p=4096 a single
    counter's software service rate is the bottleneck even under the
    asynchronous-thread design.

    **Fault tolerance.** When created with ``backups`` (the default via
    :meth:`create`), each shard also gets a standby counter on a
    *different* host. A rank that sees the primary's host fail pushes its
    local progress watermark (highest successful draw + 1) into the
    backup with a ``fetch_max`` merge, then keeps drawing from the
    backup. Because every survivor max-merges before its first backup
    draw, the backup converges to the furthest progress any survivor
    observed; a task drawn concurrently around the failure may run twice
    (at-least-once semantics), but no undrawn task is skipped. A shard is
    lost only when primary *and* backup hosts are both dead.
    """

    counters: list[SharedCounter]
    ntasks: int
    chunk: int = 1
    backups: list[SharedCounter] | None = None

    def __post_init__(self) -> None:
        if not self.counters:
            raise ArmciError("need at least one counter")
        if self.ntasks < 1:
            raise ArmciError(f"need >= 1 task, got {self.ntasks}")
        if self.chunk < 1:
            raise ArmciError(f"chunk must be >= 1, got {self.chunk}")
        if self.backups is not None and len(self.backups) != len(self.counters):
            raise ArmciError(
                f"backup/primary arity mismatch: {len(self.backups)} backups "
                f"for {len(self.counters)} counters"
            )

    @classmethod
    def create(
        cls,
        rt: "ArmciProcess",
        ntasks: int,
        num_counters: int,
        chunk: int = 1,
        fault_tolerant: bool = True,
    ) -> Generator[Any, Any, "DistributedTaskPool"]:
        """Collective creation; counter ``s`` lives on a distinct host
        (strided across the job so hosts land on different nodes when
        possible). With ``fault_tolerant`` (and more than one process) a
        standby counter per shard is placed on the next rank over."""
        if num_counters < 1:
            raise ArmciError(f"need >= 1 counter, got {num_counters}")
        p = rt.world.num_procs
        num_counters = min(num_counters, p)
        stride = max(1, p // num_counters)
        counters = []
        backups: list[SharedCounter] | None = (
            [] if fault_tolerant and p > 1 else None
        )
        for s in range(num_counters):
            host = (s * stride) % p
            counter = yield from SharedCounter.create(rt, host=host)
            counters.append(counter)
            if backups is not None:
                backup = yield from SharedCounter.create(rt, host=(host + 1) % p)
                backups.append(backup)
        return cls(counters, ntasks, chunk, backups)

    @property
    def num_counters(self) -> int:
        return len(self.counters)

    @property
    def allocations(self) -> list:
        """Backing allocations of every counter (primaries then backups).

        Crash recovery protects these so draw positions roll back to the
        checkpoint epoch together with the data they gated — replayed
        epochs redraw the same task ids (exactly-once per epoch).
        """
        pools = list(self.counters) + list(self.backups or ())
        return [c.alloc for c in pools if c.alloc is not None]

    def _shard_bounds(self, shard: int) -> tuple[int, int]:
        g = self.num_counters
        base, extra = divmod(self.ntasks, g)
        lo = shard * base + min(shard, extra)
        hi = lo + base + (1 if shard < extra else 0)
        return lo, hi

    def _shard_counter(self, rt: "ArmciProcess", shard: int) -> SharedCounter:
        failed_over: set[int] = rt._dtp_state[3]
        if shard in failed_over and self.backups is not None:
            return self.backups[shard]
        return self.counters[shard]

    def _fail_over(
        self, rt: "ArmciProcess", shard: int
    ) -> Generator[Any, Any, bool]:
        """Switch a shard to its backup counter; ``False`` if unrecoverable.

        Pushes this rank's watermark (highest draw it has seen succeed
        plus one) into the backup with a ``fetch_max`` so the standby
        resumes from the furthest progress any survivor can vouch for.
        """
        _pool, _drained, watermarks, failed_over = rt._dtp_state
        if self.backups is None or shard in failed_over:
            # No standby, or the standby is the counter that just died.
            return False
        backup = self.backups[shard]
        # Function-level import: repro.serve builds on gax primitives,
        # so gax must not import serve at module scope.
        from ..serve.termination import merge_watermark

        merged = yield from merge_watermark(
            rt, backup.host, backup.addr, watermarks.get(shard, 0)
        )
        if not merged:
            return False
        failed_over.add(shard)
        rt.trace.incr("gax.pool_shards_failed_over")
        return True

    def next_range(
        self, rt: "ArmciProcess"
    ) -> Generator[Any, Any, tuple[int, int] | None]:
        """Claim a range from the home shard, stealing once it drains.

        Per-rank probe state lives on ``rt`` (each rank remembers which
        shards it has seen drained, how far each shard had advanced, and
        which shards it has failed over to their backup counters).
        """
        g = self.num_counters
        state = getattr(rt, "_dtp_state", None)
        if state is None or state[0] is not self:
            # (pool identity, drained shards, per-shard watermark,
            #  shards running on their backup counter)
            state = (self, set(), {}, set())
            rt._dtp_state = state
        drained: set[int] = state[1]
        watermarks: dict[int, int] = state[2]
        home = rt.rank % g
        sid = None
        result = None
        if rt.obs is not None:
            sid = rt.obs.begin(rt.rank, "main", "task_draw", "dtp.next_range")
        try:
            result = yield from self._next_range(rt, g, home, drained, watermarks)
        finally:
            if sid is not None:
                rt.obs.end(sid, empty=result is None)
        return result

    def _next_range(
        self,
        rt: "ArmciProcess",
        g: int,
        home: int,
        drained: set,
        watermarks: dict,
    ) -> Generator[Any, Any, tuple[int, int] | None]:
        for probe in range(g):
            shard = (home + probe) % g
            if shard in drained:
                continue
            lo, hi = self._shard_bounds(shard)
            shard_tasks = hi - lo
            while True:
                counter = self._shard_counter(rt, shard)
                try:
                    draw = yield from counter.next(rt)
                except ProcessFailedError:
                    recovered = yield from self._fail_over(rt, shard)
                    if recovered:
                        continue
                    # Primary and backup hosts both dead (or no backup):
                    # the shard's undrawn tasks are lost to this pool.
                    drained.add(shard)
                    rt.trace.incr("gax.pool_shards_lost")
                    break
                if draw + 1 > watermarks.get(shard, 0):
                    watermarks[shard] = draw + 1
                offset = draw * self.chunk
                if offset >= shard_tasks:
                    drained.add(shard)
                    if probe > 0:
                        rt.trace.incr("gax.pool_steal_misses")
                    break
                if probe > 0:
                    rt.trace.incr("gax.pool_steals")
                return lo + offset, min(lo + offset + self.chunk, hi)
        return None

    def reset(self, rt: "ArmciProcess") -> Generator[Any, Any, None]:
        """Reset every counter (call from exactly one rank, then have
        **all** ranks call :meth:`reset_local` before the next round).

        Counters on dead hosts are skipped; each rank rediscovers the
        failover in the next round's first draw against the shard."""
        for counter in self.counters + (self.backups or []):
            try:
                yield from counter.reset(rt)
            except ProcessFailedError:
                rt.trace.incr("gax.pool_reset_skipped_dead")
        self.reset_local(rt)

    def reset_local(self, rt: "ArmciProcess") -> None:
        """Clear this rank's drained-shard memory (non-generator; every
        rank must call it between rounds)."""
        if hasattr(rt, "_dtp_state"):
            del rt._dtp_state