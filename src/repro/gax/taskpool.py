"""Task pools over shared counters, including a distributed variant.

Figures 9/11 show the single software-serviced counter saturating as p
grows. The standard mitigation (used by NWChem at scale and enabled by
hardware AMOs on Gemini) is to **distribute** the load balancing: shard
the task range over several counters hosted on different ranks, with
ranks draining their home shard first and stealing from remote shards
once it is exhausted. Both pool flavours expose the same
``next_range(rt)`` interface the Fock build consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from ..errors import ArmciError, ProcessFailedError
from .counter import SharedCounter

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.runtime import ArmciProcess


@dataclass
class TaskPool:
    """Single shared counter over ``[0, ntasks)`` with chunked draws."""

    counter: SharedCounter
    ntasks: int
    chunk: int = 1

    def __post_init__(self) -> None:
        if self.ntasks < 1:
            raise ArmciError(f"need >= 1 task, got {self.ntasks}")
        if self.chunk < 1:
            raise ArmciError(f"chunk must be >= 1, got {self.chunk}")

    @classmethod
    def create(
        cls, rt: "ArmciProcess", ntasks: int, chunk: int = 1, host: int = 0
    ) -> Generator[Any, Any, "TaskPool"]:
        """Collective creation."""
        counter = yield from SharedCounter.create(rt, host=host)
        return cls(counter, ntasks, chunk)

    def next_range(
        self, rt: "ArmciProcess"
    ) -> Generator[Any, Any, tuple[int, int] | None]:
        """Claim the next task range ``[lo, hi)``; ``None`` when drained."""
        draw = yield from self.counter.next(rt)
        lo = draw * self.chunk
        if lo >= self.ntasks:
            return None
        return lo, min(lo + self.chunk, self.ntasks)

    def reset(self, rt: "ArmciProcess") -> Generator[Any, Any, None]:
        """Reset for the next iteration (call from one rank, then barrier)."""
        yield from self.counter.reset(rt)


@dataclass
class DistributedTaskPool:
    """``g`` counters over ``g`` task shards, with work stealing.

    Each rank drains the shard of its *home* counter
    (``rank % g``-th counter), then probes the remaining shards round
    robin. Counter hosts are spread across ranks, so both the AMO service
    load and the network traffic decentralize — at p=4096 a single
    counter's software service rate is the bottleneck even under the
    asynchronous-thread design.
    """

    counters: list[SharedCounter]
    ntasks: int
    chunk: int = 1

    def __post_init__(self) -> None:
        if not self.counters:
            raise ArmciError("need at least one counter")
        if self.ntasks < 1:
            raise ArmciError(f"need >= 1 task, got {self.ntasks}")
        if self.chunk < 1:
            raise ArmciError(f"chunk must be >= 1, got {self.chunk}")

    @classmethod
    def create(
        cls,
        rt: "ArmciProcess",
        ntasks: int,
        num_counters: int,
        chunk: int = 1,
    ) -> Generator[Any, Any, "DistributedTaskPool"]:
        """Collective creation; counter ``s`` lives on a distinct host
        (strided across the job so hosts land on different nodes when
        possible)."""
        if num_counters < 1:
            raise ArmciError(f"need >= 1 counter, got {num_counters}")
        p = rt.world.num_procs
        num_counters = min(num_counters, p)
        stride = max(1, p // num_counters)
        counters = []
        for s in range(num_counters):
            host = (s * stride) % p
            counter = yield from SharedCounter.create(rt, host=host)
            counters.append(counter)
        return cls(counters, ntasks, chunk)

    @property
    def num_counters(self) -> int:
        return len(self.counters)

    def _shard_bounds(self, shard: int) -> tuple[int, int]:
        g = self.num_counters
        base, extra = divmod(self.ntasks, g)
        lo = shard * base + min(shard, extra)
        hi = lo + base + (1 if shard < extra else 0)
        return lo, hi

    def next_range(
        self, rt: "ArmciProcess"
    ) -> Generator[Any, Any, tuple[int, int] | None]:
        """Claim a range from the home shard, stealing once it drains.

        Per-rank probe state lives on ``rt`` (each rank remembers which
        shards it has seen drained).
        """
        g = self.num_counters
        state = getattr(rt, "_dtp_state", None)
        if state is None or state[0] is not self:
            state = (self, set())  # (pool identity, drained shards)
            rt._dtp_state = state
        drained: set[int] = state[1]
        home = rt.rank % g
        for probe in range(g):
            shard = (home + probe) % g
            if shard in drained:
                continue
            lo, hi = self._shard_bounds(shard)
            shard_tasks = hi - lo
            try:
                draw = yield from self.counters[shard].next(rt)
            except ProcessFailedError:
                # The shard's counter host died: its undrawn tasks are
                # lost to this pool (a recovering runtime would rebuild
                # the counter elsewhere); keep draining healthy shards.
                drained.add(shard)
                rt.trace.incr("gax.pool_shards_lost")
                continue
            offset = draw * self.chunk
            if offset >= shard_tasks:
                drained.add(shard)
                if probe > 0:
                    rt.trace.incr("gax.pool_steal_misses")
                continue
            if probe > 0:
                rt.trace.incr("gax.pool_steals")
            return lo + offset, min(lo + offset + self.chunk, hi)
        return None

    def reset(self, rt: "ArmciProcess") -> Generator[Any, Any, None]:
        """Reset every counter (call from exactly one rank, then have
        **all** ranks call :meth:`reset_local` before the next round)."""
        for counter in self.counters:
            yield from counter.reset(rt)
        self.reset_local(rt)

    def reset_local(self, rt: "ArmciProcess") -> None:
        """Clear this rank's drained-shard memory (non-generator; every
        rank must call it between rounds)."""
        if hasattr(rt, "_dtp_state"):
            del rt._dtp_state