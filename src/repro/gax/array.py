"""Block-distributed dense float64 global arrays.

Patch operations decompose into per-owner ARMCI strided transfers: the
rows of a sub-patch are uniform contiguous chunks in the owner's
row-major block, exactly the uniformly non-contiguous datatype the
paper's strided protocols target (Section III-C.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

import numpy as np

from ..errors import GlobalArrayError
from ..types import StridedDescriptor, StridedShape
from .distribution import BlockDistribution, Patch, default_process_grid

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.runtime import Allocation, ArmciProcess

_F64 = 8  # bytes per element


class _Scratch:
    """Reusable per-rank scratch segment for patch staging.

    Blocking patch operations stage data through one grow-only buffer,
    bounding address-space growth across thousands of tasks.
    """

    def __init__(self, rt: "ArmciProcess") -> None:
        self.rt = rt
        self._addr: int | None = None
        self._size = 0

    def buffer(self, nbytes: int) -> int:
        if self._addr is None or nbytes > self._size:
            size = max(nbytes, 2 * self._size, 4096)
            self._addr = self.rt.world.space(self.rt.rank).allocate(size)
            self._size = size
        return self._addr


class GlobalArray:
    """One rank's view of a collectively created global 2D array.

    Create with :meth:`create` from inside a simulated process::

        ga = yield from GlobalArray.create(rt, (n, n))
        block = yield from ga.get(rt, Patch(0, 16, 0, 16))
        yield from ga.acc(rt, patch, contribution, scale=1.0)
    """

    def __init__(
        self, dist: BlockDistribution, alloc: "Allocation", name: str
    ) -> None:
        self.dist = dist
        self.alloc = alloc
        self.name = name

    # ------------------------------------------------------------ create

    @classmethod
    def create(
        cls,
        rt: "ArmciProcess",
        shape: tuple[int, int],
        grid: tuple[int, int] | None = None,
        name: str = "ga",
        dist: BlockDistribution | None = None,
    ) -> Generator[Any, Any, "GlobalArray"]:
        """Collective creation (all ranks must call with equal arguments).

        Pass an explicit ``dist`` (e.g. from
        :meth:`BlockDistribution.from_bounds`) for irregular
        distributions, GA's ``ga_create_irreg``.
        """
        if dist is None:
            rows, cols = shape
            if grid is None:
                grid = default_process_grid(rt.world.num_procs)
            dist = BlockDistribution(rows, cols, grid[0], grid[1])
        elif (dist.rows, dist.cols) != tuple(shape):
            raise GlobalArrayError(
                f"distribution covers {dist.rows}x{dist.cols}, shape says "
                f"{shape}"
            )
        if dist.num_procs != rt.world.num_procs:
            raise GlobalArrayError(
                f"distribution needs {dist.num_procs} procs, job has "
                f"{rt.world.num_procs}"
            )
        block_bytes = dist.block_rows * dist.block_cols * _F64
        alloc = yield from rt.malloc(block_bytes)
        rt.trace.incr("gax.arrays_created")
        return cls(dist, alloc, name)

    # ----------------------------------------------------------- helpers

    def _owner_layout(self, rank: int, sub: Patch) -> tuple[int, StridedShape, int]:
        """(remote base addr, strided shape, remote row stride) of ``sub``
        inside ``rank``'s block."""
        block = self.dist.owner_block(rank)
        block_cols = block.col_hi - block.col_lo
        row_off = sub.row_lo - block.row_lo
        col_off = sub.col_lo - block.col_lo
        base = self.alloc.addr(rank) + (row_off * block_cols + col_off) * _F64
        nrows, ncols = sub.shape
        shape = (
            StridedShape(ncols * _F64, (nrows,))
            if nrows > 1
            else StridedShape(ncols * _F64)
        )
        return base, shape, block_cols * _F64

    def _descriptor(
        self, shape: StridedShape, local_stride: int, remote_stride: int
    ) -> StridedDescriptor:
        if not shape.counts:
            return StridedDescriptor(shape, (), ())
        return StridedDescriptor(shape, (local_stride,), (remote_stride,))

    def _scratch(self, rt: "ArmciProcess") -> _Scratch:
        scratch = getattr(rt, "_gax_scratch", None)
        if scratch is None:
            scratch = _Scratch(rt)
            rt._gax_scratch = scratch
        return scratch

    def _check_patch(self, patch: Patch) -> None:
        if patch.row_hi > self.dist.rows or patch.col_hi > self.dist.cols:
            raise GlobalArrayError(
                f"patch {patch} exceeds array "
                f"{self.dist.rows}x{self.dist.cols}"
            )

    # --------------------------------------------------------------- ops

    def get(
        self, rt: "ArmciProcess", patch: Patch
    ) -> Generator[Any, Any, np.ndarray]:
        """Blocking one-sided read of ``patch`` into a numpy array."""
        self._check_patch(patch)
        nrows, ncols = patch.shape
        out = np.empty((nrows, ncols), dtype=np.float64)
        space = rt.world.space(rt.rank)
        scratch = self._scratch(rt)
        for rank, sub in self.dist.owners_of_patch(patch):
            base, shape, remote_stride = self._owner_layout(rank, sub)
            srows, scols = sub.shape
            local = scratch.buffer(srows * scols * _F64)
            desc = self._descriptor(shape, scols * _F64, remote_stride)
            yield from rt.gets(rank, local, base, desc)
            data = space.read_f64(local, srows * scols).reshape(srows, scols)
            out[
                sub.row_lo - patch.row_lo : sub.row_hi - patch.row_lo,
                sub.col_lo - patch.col_lo : sub.col_hi - patch.col_lo,
            ] = data
        rt.trace.incr("gax.gets")
        return out

    def put(
        self, rt: "ArmciProcess", patch: Patch, values: np.ndarray
    ) -> Generator[Any, Any, None]:
        """Blocking one-sided write of ``values`` into ``patch``."""
        self._check_patch(patch)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.shape != patch.shape:
            raise GlobalArrayError(
                f"values shape {values.shape} != patch shape {patch.shape}"
            )
        space = rt.world.space(rt.rank)
        scratch = self._scratch(rt)
        for rank, sub in self.dist.owners_of_patch(patch):
            base, shape, remote_stride = self._owner_layout(rank, sub)
            srows, scols = sub.shape
            local = scratch.buffer(srows * scols * _F64)
            piece = values[
                sub.row_lo - patch.row_lo : sub.row_hi - patch.row_lo,
                sub.col_lo - patch.col_lo : sub.col_hi - patch.col_lo,
            ]
            space.write_f64(local, piece)
            desc = self._descriptor(shape, scols * _F64, remote_stride)
            yield from rt.puts(rank, local, base, desc)
        rt.trace.incr("gax.puts")

    def acc(
        self,
        rt: "ArmciProcess",
        patch: Patch,
        values: np.ndarray,
        scale: float = 1.0,
    ) -> Generator[Any, Any, None]:
        """Blocking atomic accumulate ``A[patch] += scale * values``.

        Row-by-row ARMCI accumulates (each row of the sub-patch is
        contiguous at the owner).
        """
        self._check_patch(patch)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.shape != patch.shape:
            raise GlobalArrayError(
                f"values shape {values.shape} != patch shape {patch.shape}"
            )
        space = rt.world.space(rt.rank)
        scratch = self._scratch(rt)
        for rank, sub in self.dist.owners_of_patch(patch):
            base, _shape, remote_stride = self._owner_layout(rank, sub)
            srows, scols = sub.shape
            local = scratch.buffer(srows * scols * _F64)
            piece = values[
                sub.row_lo - patch.row_lo : sub.row_hi - patch.row_lo,
                sub.col_lo - patch.col_lo : sub.col_hi - patch.col_lo,
            ]
            space.write_f64(local, piece)
            for r in range(srows):
                yield from rt.acc(
                    rank,
                    local + r * scols * _F64,
                    base + r * remote_stride,
                    scols * _F64,
                    scale,
                )
        rt.trace.incr("gax.accs")

    # --------------------------------------------------- whole-array ops

    def duplicate(
        self, rt: "ArmciProcess", name: str | None = None
    ) -> Generator[Any, Any, "GlobalArray"]:
        """Collective: a new array with this one's shape and distribution
        (``ga_duplicate``); contents are not copied."""
        block_bytes = self.dist.block_rows * self.dist.block_cols * _F64
        alloc = yield from rt.malloc(block_bytes)
        rt.trace.incr("gax.arrays_created")
        return GlobalArray(self.dist, alloc, name or f"{self.name}.dup")

    def copy_from(
        self, rt: "ArmciProcess", other: "GlobalArray"
    ) -> Generator[Any, Any, None]:
        """Collective ``this = other`` (``ga_copy``): same distribution, so
        every rank copies its own block locally."""
        if other.dist != self.dist:
            raise GlobalArrayError(
                "copy_from requires identical distributions"
            )
        self.local_block(rt)[:] = other.local_block(rt)
        nrows, ncols = self.dist.owner_block(rt.rank).shape
        yield from rt.compute(nrows * ncols * rt.world.params.acc_flop_time)
        yield from rt.barrier()
        rt.trace.incr("gax.copies")

    def add_arrays(
        self,
        rt: "ArmciProcess",
        alpha: float,
        a: "GlobalArray",
        beta: float,
        b: "GlobalArray",
    ) -> Generator[Any, Any, None]:
        """Collective ``this = alpha*A + beta*B`` (``ga_add``), same
        distribution required."""
        if a.dist != self.dist or b.dist != self.dist:
            raise GlobalArrayError("add_arrays requires identical distributions")
        self.local_block(rt)[:] = alpha * a.local_block(rt) + beta * b.local_block(rt)
        nrows, ncols = self.dist.owner_block(rt.rank).shape
        yield from rt.compute(2 * nrows * ncols * rt.world.params.acc_flop_time)
        yield from rt.barrier()
        rt.trace.incr("gax.adds")

    # ------------------------------------------------- collective algebra

    def dot(
        self, rt: "ArmciProcess", other: "GlobalArray"
    ) -> Generator[Any, Any, float]:
        """Collective element-wise dot product ``sum(A * B)``.

        Both arrays must share a distribution; each rank reduces its own
        block locally, then the hardware collective network combines.
        """
        if other.dist != self.dist:
            raise GlobalArrayError(
                f"dot requires identical distributions: {self.dist} vs "
                f"{other.dist}"
            )
        local = float(
            (self.local_block(rt) * other.local_block(rt)).sum()
        )
        # Local reduction cost: one multiply-add per element.
        nrows, ncols = self.dist.owner_block(rt.rank).shape
        yield from rt.compute(nrows * ncols * rt.world.params.acc_flop_time)
        result = yield from rt.allreduce(local, "sum")
        rt.trace.incr("gax.dots")
        return result

    def scale(self, rt: "ArmciProcess", factor: float) -> Generator[Any, Any, None]:
        """Collective in-place scaling ``A *= factor`` (local blocks)."""
        self.local_block(rt)[:] *= factor
        nrows, ncols = self.dist.owner_block(rt.rank).shape
        yield from rt.compute(nrows * ncols * rt.world.params.acc_flop_time)
        yield from rt.barrier()
        rt.trace.incr("gax.scales")

    def symmetrize(self, rt: "ArmciProcess") -> Generator[Any, Any, None]:
        """Collective ``A = (A + A^T) / 2`` for square arrays.

        Each rank fetches the transpose of its own block with a one-sided
        strided get, then updates locally.
        """
        if self.dist.rows != self.dist.cols:
            raise GlobalArrayError(
                f"symmetrize requires a square array, got "
                f"{self.dist.rows}x{self.dist.cols}"
            )
        block = self.dist.owner_block(rt.rank)
        mirror = Patch(block.col_lo, block.col_hi, block.row_lo, block.row_hi)
        transposed = yield from self.get(rt, mirror)
        # All reads complete everywhere before anyone writes.
        yield from rt.barrier()
        local = self.local_block(rt)
        local[:] = 0.5 * (local + transposed.T)
        yield from rt.barrier()
        rt.trace.incr("gax.symmetrizes")

    # ------------------------------------------------------- local views

    def local_block(self, rt: "ArmciProcess") -> np.ndarray:
        """Writable view of this rank's own block (no communication)."""
        block = self.dist.owner_block(rt.rank)
        nrows, ncols = block.shape
        view = rt.world.space(rt.rank).view(
            self.alloc.addr(rt.rank), nrows * ncols * _F64
        )
        return view.view(np.float64).reshape(nrows, ncols)

    def fill(self, rt: "ArmciProcess", value: float) -> None:
        """Set this rank's block to ``value`` (local, collective by usage)."""
        self.local_block(rt)[:] = value

    def to_numpy(self, rt: "ArmciProcess") -> Generator[Any, Any, np.ndarray]:
        """Gather the whole array (test/verification helper)."""
        full = Patch(0, self.dist.rows, 0, self.dist.cols)
        return (yield from self.get(rt, full))
