"""Simulated synchronization resources: locks, semaphores, FIFO queues.

These model *simulated-time* contention (e.g. the PAMI context lock shared
by the main and asynchronous progress threads), not Python threading.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from ..errors import SimulationError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine


class Semaphore:
    """Counting semaphore with FIFO grant order."""

    __slots__ = ("engine", "name", "_count", "_waiters")

    def __init__(self, engine: "Engine", count: int = 1, name: str = "sem") -> None:
        if count < 0:
            raise SimulationError(f"semaphore count must be >= 0, got {count}")
        self.engine = engine
        self.name = name
        self._count = count
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of currently available permits."""
        return self._count

    def acquire(self) -> Event:
        """Request a permit; the returned event triggers when granted.

        Processes use it as ``yield sem.acquire()``.
        """
        ev = Event(self.engine, name=f"{self.name}.acquire")
        if self._count > 0:
            self._count -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Take a permit immediately if available; never blocks."""
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def release(self) -> None:
        """Return a permit, granting the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._count += 1


class Lock(Semaphore):
    """Binary mutual-exclusion lock (a semaphore with one permit).

    Used to model the PAMI progress-engine lock (Section III-D): when the
    main thread and the asynchronous thread share one communication context,
    they contend on this lock; with two contexts each thread owns its own.
    """

    def __init__(self, engine: "Engine", name: str = "lock") -> None:
        super().__init__(engine, count=1, name=name)

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._count == 0

    def release(self) -> None:
        if self._count == 1:
            raise SimulationError(f"lock {self.name!r} released while not held")
        super().release()


class Queue:
    """Unbounded FIFO queue with blocking get.

    ``put`` is immediate; ``get`` returns an event that triggers with the
    oldest item as soon as one is available. Used for context work queues.
    """

    __slots__ = ("engine", "name", "_items", "_getters")

    def __init__(self, engine: "Engine", name: str = "queue") -> None:
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Request the oldest item; use as ``item = yield queue.get()``."""
        ev = Event(self.engine, name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        """Pop the oldest item immediately.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if not self._items:
            raise SimulationError(f"queue {self.name!r} is empty")
        return self._items.popleft()

    def peek_all(self) -> tuple[Any, ...]:
        """Snapshot of queued items (oldest first) without removing them."""
        return tuple(self._items)
