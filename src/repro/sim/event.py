"""One-shot simulation events.

An :class:`Event` is the synchronization primitive of the simulator: it can
be waited on by any number of processes and succeeds exactly once, carrying
an optional value. Waiters are resumed in FIFO order at the simulated time of
the trigger.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine


class Event:
    """A one-shot event that processes can wait on.

    Parameters
    ----------
    engine:
        The owning engine; waiter wake-ups are scheduled on it.
    name:
        Optional label used in error messages and traces.
    """

    __slots__ = (
        "engine",
        "name",
        "_value",
        "_triggered",
        "_callbacks",
        "_obs_span",
    )

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._callbacks: list[Callable[[Any], None]] = []
        #: Obs span id registered as this event's cause (kept on the event
        #: itself: an id()-keyed side table would alias once the allocator
        #: reuses a collected event's address, breaking byte-stable exports).
        self._obs_span: int | None = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed`.

        Raises
        ------
        SimulationError
            If the event has not triggered yet.
        """
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has not triggered")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all current and future waiters.

        Wake-ups happen at the current simulated time but as separate
        scheduler entries, preserving FIFO order with other same-time work.

        Raises
        ------
        SimulationError
            If the event already triggered (events are one-shot).
        """
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.engine.schedule(0.0, cb, value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` when the event triggers.

        If the event already triggered, the callback is scheduled at the
        current simulated time (it never runs synchronously, keeping
        re-entrancy out of process code).
        """
        if self._triggered:
            self.engine.schedule(0.0, callback, self._value)
        else:
            self._callbacks.append(callback)
