"""Commands that simulated processes yield to the engine.

A simulated process is a generator. Each ``yield`` hands the engine one of
these command objects; the engine resumes the generator when the command
completes, sending back the command's result (e.g. the event's value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .event import Event


@dataclass(frozen=True)
class Delay:
    """Suspend the process for ``dt`` seconds of simulated time."""

    dt: float

    def __post_init__(self) -> None:
        if self.dt < 0:
            raise SimulationError(f"cannot delay by negative time {self.dt}")


@dataclass(frozen=True)
class WaitEvent:
    """Suspend until ``event`` triggers; the yield returns ``event.value``."""

    event: "Event"


@dataclass(frozen=True)
class WaitAll:
    """Suspend until every event in ``events`` has triggered.

    The yield returns the list of event values in the given order. An empty
    sequence completes immediately.
    """

    events: Sequence["Event"]


@dataclass(frozen=True)
class WaitAny:
    """Suspend until the *first* of ``events`` triggers.

    The yield returns ``(index, value)`` of the first event to trigger
    (lowest index wins if several are already triggered). The sequence must
    be non-empty. Other events are left untouched and may be waited on again.
    """

    events: Sequence["Event"]

    def __post_init__(self) -> None:
        if not self.events:
            raise SimulationError("WaitAny needs at least one event")


Command = Delay | WaitEvent | WaitAll | WaitAny
