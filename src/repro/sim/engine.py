"""The discrete-event scheduler."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable

from ..errors import DeadlockError, SimulationError
from .process import ProcessBody, SimProcess
from .event import Event


class Timer:
    """Handle to a cancellable scheduled callback (:meth:`Engine.schedule_timer`).

    A cancelled timer's heap entry is skipped when reached — without
    advancing the clock — so abandoned deadline timers neither fire nor
    stretch the simulated run to their expiry time.
    """

    __slots__ = ("_callback", "_arg", "cancelled")

    def __init__(self, callback: Callable[[Any], None], arg: Any) -> None:
        self._callback = callback
        self._arg = arg
        self.cancelled = False

    def __call__(self, _arg: Any) -> None:
        if not self.cancelled:
            self._callback(self._arg)

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """Deterministic discrete-event scheduler.

    Maintains a heap of ``(time, seq, callback, arg)`` entries. Equal
    timestamps are broken FIFO by the monotonically increasing sequence
    number, so runs are exactly reproducible.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[Any], None], Any]] = []
        self._seq = itertools.count()
        self._live_processes: set[SimProcess] = set()
        self._failure: BaseException | None = None
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of scheduler entries executed so far (for diagnostics)."""
        return self._events_executed

    def schedule(self, delay: float, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), callback, arg))

    def schedule_timer(
        self, delay: float, callback: Callable[[Any], None], arg: Any = None
    ) -> Timer:
        """Like :meth:`schedule`, returning a cancellable :class:`Timer`."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        timer = Timer(callback, arg)
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), timer, None))
        return timer

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event` bound to this engine."""
        return Event(self, name=name)

    def spawn(
        self, body: ProcessBody, name: str = "proc", daemon: bool = False
    ) -> SimProcess:
        """Start a simulated process from a generator.

        Parameters
        ----------
        body:
            The generator to drive.
        name:
            Label for error messages.
        daemon:
            Daemon processes (e.g. progress threads) may still be blocked
            when the simulation completes without that counting as deadlock.
        """
        proc = SimProcess(self, body, name=name, daemon=daemon)
        self._live_processes.add(proc)
        proc.start()
        return proc

    def process_finished(self, proc: SimProcess) -> None:
        """Internal: a process's generator terminated."""
        self._live_processes.discard(proc)

    def fail(self, error: SimulationError, cause: BaseException | None = None) -> None:
        """Internal: record a fatal error; :meth:`run` re-raises it."""
        if self._failure is None:
            if cause is not None:
                error.__cause__ = cause
            self._failure = error

    def run(self, until: float | None = None) -> float:
        """Execute scheduled work until the heap drains or ``until`` passes.

        Returns the final simulated time. Re-raises the first process
        failure, if any.
        """
        while self._heap:
            if self._failure is not None:
                raise self._failure
            time, _seq, callback, arg = self._heap[0]
            if type(callback) is Timer and callback.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = time
            self._events_executed += 1
            callback(arg)
        if self._failure is not None:
            raise self._failure
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_complete(self, processes: Iterable[SimProcess]) -> list[Any]:
        """Run until every listed process finishes; return their results.

        Raises
        ------
        DeadlockError
            If the event heap drains while a listed (non-daemon) process is
            still blocked — i.e. nothing can ever wake it.
        """
        procs = list(processes)
        self.run()
        stuck = [p for p in procs if not p.done.triggered]
        if stuck:
            names = ", ".join(p.name for p in stuck)
            raise DeadlockError(
                f"simulation drained with {len(stuck)} blocked process(es): {names}"
            )
        return [p.done.value for p in procs]
