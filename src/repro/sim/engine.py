"""The discrete-event scheduler."""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from typing import Any, Callable, Iterable

from ..errors import DeadlockError, SimulationError
from .process import ProcessBody, SimProcess
from .event import Event


class Timer:
    """Handle to a cancellable scheduled callback (:meth:`Engine.schedule_timer`).

    A cancelled timer's heap entry is skipped when reached — without
    advancing the clock — so abandoned deadline timers neither fire nor
    stretch the simulated run to their expiry time.
    """

    __slots__ = ("_callback", "_arg", "cancelled")

    def __init__(self, callback: Callable[[Any], None], arg: Any) -> None:
        self._callback = callback
        self._arg = arg
        self.cancelled = False

    def __call__(self, _arg: Any) -> None:
        if not self.cancelled:
            self._callback(self._arg)

    def cancel(self) -> None:
        self.cancelled = True


# --------------------------------------------------------------- policies

#: Tie-break band assigned to events scheduled past a policy's ``limit``
#: (mid-range, so un-perturbed events keep FIFO order among themselves).
_FIFO_BAND = 1 << 31
#: Band that sorts a demoted event behind every other equal-time event.
_DEMOTED_BAND = 1 << 33


class SchedulePolicy:
    """Equal-timestamp tie-breaking policy for :class:`Engine`.

    The engine orders its heap by ``(time, key)``; the policy supplies
    ``key`` for each scheduled entry. Events at *different* simulated
    times are never reordered — a policy only permutes the execution
    order of logically concurrent (equal-timestamp) events, which the
    default engine runs in FIFO submission order.

    The base class is an explicit FIFO policy: every event gets the same
    band, so ties fall through to the submission sequence number. It
    reproduces exactly the ``Engine(policy=None)`` order while enabling
    the schedule bookkeeping (digest/log) the verification harness uses.

    Subclasses override :meth:`key`. Keys must be ``(band, seq)`` tuples
    (``seq`` last) so entries from one policy are mutually comparable and
    the engine can recover the submission number for its schedule log.
    """

    name = "fifo"

    def key(self, seq: int) -> tuple[int, int]:
        """Tie-break key for the ``seq``-th scheduled entry."""
        return (_FIFO_BAND, seq)

    def describe(self) -> str:
        """Human-readable policy label for logs and reports."""
        return self.name


class RandomTieBreakPolicy(SchedulePolicy):
    """Seeded uniform tie-breaking: concurrent events run in random order.

    Each scheduled entry draws a 32-bit band, so equal-timestamp events
    execute in a seed-determined random permutation of submission order.
    ``limit`` bounds the perturbation to the first ``limit`` scheduled
    entries (later entries take the neutral FIFO band) — the knob the
    shrinker bisects to find a minimal failing perturbation.
    """

    name = "random"

    def __init__(self, seed: int, limit: int | None = None) -> None:
        if limit is not None and limit < 0:
            raise SimulationError(f"policy limit must be >= 0, got {limit}")
        self.seed = seed
        self.limit = limit
        self._rng = random.Random(seed)
        self._issued = 0

    def key(self, seq: int) -> tuple[int, int]:
        self._issued += 1
        if self.limit is not None and self._issued > self.limit:
            return (_FIFO_BAND, seq)
        return (self._rng.getrandbits(32), seq)

    def describe(self) -> str:
        lim = "" if self.limit is None else f",limit={self.limit}"
        return f"{self.name}(seed={self.seed}{lim})"


class PriorityPerturbationPolicy(SchedulePolicy):
    """Bounded PCT-style perturbation (Burckhardt et al. priority fuzzing).

    Equal-timestamp events are split into a small number of priority
    ``bands`` (FIFO *within* a band, so the perturbation is coarser and
    more structured than uniform tie-breaking), and ``demotions`` randomly
    chosen schedule points are pushed behind every other concurrent event
    — the "one event delayed a long time" schedules that uniform random
    tie-breaks almost never produce, and that expose lost-wakeup and
    stale-read bugs. ``horizon`` is the schedule-index range the demotion
    points are drawn from; ``limit`` bounds perturbation for shrinking.
    """

    name = "pct"

    def __init__(
        self,
        seed: int,
        bands: int = 3,
        demotions: int = 4,
        horizon: int = 8192,
        limit: int | None = None,
    ) -> None:
        if bands < 1:
            raise SimulationError(f"need >= 1 priority band, got {bands}")
        if demotions < 0:
            raise SimulationError(f"demotions must be >= 0, got {demotions}")
        if horizon < 1:
            raise SimulationError(f"horizon must be >= 1, got {horizon}")
        if limit is not None and limit < 0:
            raise SimulationError(f"policy limit must be >= 0, got {limit}")
        self.seed = seed
        self.bands = bands
        self.demotions = demotions
        self.horizon = horizon
        self.limit = limit
        self._rng = random.Random(seed)
        self._change_points = frozenset(
            self._rng.sample(range(horizon), min(demotions, horizon))
        )
        self._issued = 0

    def key(self, seq: int) -> tuple[int, int]:
        i = self._issued
        self._issued += 1
        if self.limit is not None and i >= self.limit:
            return (_FIFO_BAND, seq)
        if i in self._change_points:
            return (_DEMOTED_BAND, seq)
        return (self._rng.randrange(self.bands), seq)

    def describe(self) -> str:
        lim = "" if self.limit is None else f",limit={self.limit}"
        return (
            f"{self.name}(seed={self.seed},bands={self.bands},"
            f"demotions={self.demotions}{lim})"
        )


def _mix64(h: int, v: int) -> int:
    """splitmix64 step folding ``v`` into running digest ``h``."""
    x = (h ^ v) * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class Engine:
    """Deterministic discrete-event scheduler.

    Maintains a heap of ``(time, key, callback, arg)`` entries. With no
    policy configured (the default), ``key`` is the monotonically
    increasing submission sequence number, so equal timestamps are broken
    FIFO and runs are exactly reproducible — bit-for-bit the historical
    behaviour. With a :class:`SchedulePolicy`, ``key`` is the policy's
    ``(band, seq)`` tuple: equal-timestamp events execute in the policy's
    (still fully deterministic, seed-driven) order, which is how the
    verification harness explores alternative schedules.

    Parameters
    ----------
    policy:
        Optional tie-breaking policy. ``None`` = FIFO (default).
    record_schedule:
        If True, every executed entry is appended to :attr:`schedule_log`
        as ``(time, seq)`` — the raw material for divergence logs. Off by
        default (it grows with the run).
    """

    def __init__(
        self,
        policy: SchedulePolicy | None = None,
        record_schedule: bool = False,
    ) -> None:
        if policy is not None and not isinstance(policy, SchedulePolicy):
            raise SimulationError(
                f"policy must be a SchedulePolicy, got {type(policy).__name__}"
            )
        self._now = 0.0
        self._heap: list[tuple[float, Any, Callable[[Any], None], Any]] = []
        # Fast lane for zero-delay entries (event resolution, process
        # steps): a FIFO deque sidesteps two O(log n) heap operations per
        # entry on the hottest scheduling path. Only usable when ties are
        # broken FIFO with no bookkeeping — any policy or recording routes
        # everything through the heap so digests/logs stay complete.
        self._fast: deque[tuple[int, Callable[[Any], None], Any]] = deque()
        self._fast_ok = policy is None and not record_schedule
        self._seq = itertools.count()
        self._policy = policy
        self._record = record_schedule
        self._schedule_log: list[tuple[float, int]] = []
        self._digest = 0
        self._live_processes: set[SimProcess] = set()
        self._failure: BaseException | None = None
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of scheduler entries executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def policy(self) -> SchedulePolicy | None:
        """The configured tie-breaking policy (None = FIFO)."""
        return self._policy

    @property
    def schedule_digest(self) -> int:
        """64-bit fingerprint of the executed event order.

        Two runs with the same digest executed entries in the same
        submission order; distinct digests mean distinct schedules. Only
        maintained when a policy is configured or recording is on (the
        default FIFO path skips the bookkeeping entirely).
        """
        return self._digest

    @property
    def schedule_log(self) -> list[tuple[float, int]]:
        """Executed ``(time, seq)`` entries (``record_schedule`` only)."""
        return self._schedule_log

    def _push(self, delay: float, callback: Callable[[Any], None], arg: Any) -> None:
        """Normalize and push one heap entry.

        Every entry is a 4-tuple ``(time, key, callback, arg)`` — both
        schedule paths (plain callbacks and :class:`Timer` wrappers) go
        through here, so the run loop can rely on the shape regardless of
        policy.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not callable(callback):
            raise SimulationError(
                f"scheduled callback must be callable, got {type(callback).__name__}"
            )
        seq = next(self._seq)
        if delay == 0.0 and self._fast_ok:
            # Same-timestamp FIFO entries keep their submission sequence
            # number so the run loop can merge them against the heap in
            # exact (time, seq) order — bit-for-bit the heap-only order.
            self._fast.append((seq, callback, arg))
            return
        key: Any = seq if self._policy is None else self._policy.key(seq)
        heapq.heappush(self._heap, (self._now + delay, key, callback, arg))

    def schedule(self, delay: float, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` after ``delay`` seconds of simulated time."""
        self._push(delay, callback, arg)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[Any], None],
        arg: Any = None,
        key: Any = None,
    ) -> None:
        """Schedule ``callback(arg)`` at *absolute* simulated time ``time``.

        The remote-event injection hook of the sharded PDES runtime
        (:mod:`repro.sim.parallel`): events received from another shard
        carry an absolute delivery timestamp and a content-derived
        tie-break ``key`` — typically ``(src_rank, seq)`` — so that
        equal-timestamp deliveries execute in an order independent of
        the arrival interleaving (and therefore of the shard count).
        ``key=None`` falls back to the submission sequence number (or
        the configured policy), exactly like :meth:`schedule`.

        Keyed and unkeyed entries must not be mixed at equal timestamps
        within one engine (their keys are not mutually comparable); the
        parallel runtime schedules *everything* keyed.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (t={time}, now={self._now})"
            )
        if not callable(callback):
            raise SimulationError(
                f"scheduled callback must be callable, got {type(callback).__name__}"
            )
        if key is None:
            seq = next(self._seq)
            key = seq if self._policy is None else self._policy.key(seq)
        heapq.heappush(self._heap, (time, key, callback, arg))

    def next_event_time(self) -> float | None:
        """Earliest pending entry's time, or ``None`` when idle.

        The GVT/epoch-advance hook of the sharded PDES runtime: after an
        epoch's window drains, every shard reports this value and the
        next window starts at the global minimum. Cancelled
        :class:`Timer` entries are discarded while peeking (they would
        otherwise report a time that will never execute).
        """
        if self._fast:
            return self._now
        heap = self._heap
        while heap:
            time, _key, callback, _arg = heap[0]
            if isinstance(callback, Timer) and callback.cancelled:
                heapq.heappop(heap)
                continue
            return time
        return None

    def schedule_timer(
        self, delay: float, callback: Callable[[Any], None], arg: Any = None
    ) -> Timer:
        """Like :meth:`schedule`, returning a cancellable :class:`Timer`."""
        timer = Timer(callback, arg)
        self._push(delay, timer, None)
        return timer

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event` bound to this engine."""
        return Event(self, name=name)

    def spawn(
        self, body: ProcessBody, name: str = "proc", daemon: bool = False
    ) -> SimProcess:
        """Start a simulated process from a generator.

        Parameters
        ----------
        body:
            The generator to drive.
        name:
            Label for error messages.
        daemon:
            Daemon processes (e.g. progress threads) may still be blocked
            when the simulation completes without that counting as deadlock.
        """
        proc = SimProcess(self, body, name=name, daemon=daemon)
        self._live_processes.add(proc)
        proc.start()
        return proc

    def process_finished(self, proc: SimProcess) -> None:
        """Internal: a process's generator terminated."""
        self._live_processes.discard(proc)

    def fail(self, error: SimulationError, cause: BaseException | None = None) -> None:
        """Internal: record a fatal error; :meth:`run` re-raises it."""
        if self._failure is None:
            if cause is not None:
                error.__cause__ = cause
            self._failure = error

    def run(self, until: float | None = None, exclusive: bool = False) -> float:
        """Execute scheduled work until the heap drains or ``until`` passes.

        Returns the final simulated time. Re-raises the first process
        failure, if any. Cancelled :class:`Timer` entries are discarded
        without executing, advancing the clock, or counting toward
        :attr:`events_executed` — under any tie-breaking policy
        (``isinstance``, so Timer subclasses are covered too).

        ``exclusive=True`` stops *before* executing any entry at exactly
        ``until`` (half-open window ``[now, until)``) — the epoch-window
        primitive of the sharded PDES runtime, whose conservative
        horizon ``gvt + lookahead`` must not be crossed. The default
        (inclusive) behaviour is unchanged.
        """
        track = self._policy is not None or self._record
        fast = self._fast
        while self._heap or fast:
            if self._failure is not None:
                raise self._failure
            # Zero-delay fast lane: entries are due *now*; run one when the
            # heap is empty, due later, or due now but submitted later —
            # i.e. strict (time, seq) merge order, identical to heap-only.
            if fast and (
                not self._heap
                or self._heap[0][0] > self._now
                or self._heap[0][1] > fast[0][0]
            ):
                if until is not None and (
                    self._now > until or (exclusive and self._now >= until)
                ):
                    self._now = until
                    return self._now
                _seq, callback, arg = fast.popleft()
                if isinstance(callback, Timer) and callback.cancelled:
                    continue
                self._events_executed += 1
                callback(arg)
                continue
            time, key, callback, arg = self._heap[0]
            if isinstance(callback, Timer) and callback.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and (time > until or (exclusive and time >= until)):
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = time
            self._events_executed += 1
            if track:
                seq = key[-1] if isinstance(key, tuple) else key
                self._digest = _mix64(self._digest, seq)
                if self._record:
                    self._schedule_log.append((time, seq))
            callback(arg)
        if self._failure is not None:
            raise self._failure
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_complete(self, processes: Iterable[SimProcess]) -> list[Any]:
        """Run until every listed process finishes; return their results.

        Raises
        ------
        DeadlockError
            If the event heap drains while a listed (non-daemon) process is
            still blocked — i.e. nothing can ever wake it.
        """
        procs = list(processes)
        self.run()
        stuck = [p for p in procs if not p.done.triggered]
        if stuck:
            names = ", ".join(p.name for p in stuck)
            raise DeadlockError(
                f"simulation drained with {len(stuck)} blocked process(es): {names}"
            )
        return [p.done.value for p in procs]
