"""Shard partitioning from torus geometry, and the lookahead it buys.

Shards own contiguous rank blocks. Under the paper's ABCDET mapping
(rightmost letter = within-node slot varies fastest) a contiguous block
whose boundaries are multiples of ``procs_per_node`` never splits a
compute node, so every cross-shard message crosses at least one torus
link and the conservative lookahead is the full off-node minimum
(``am_send_overhead + hop_latency``). Boundaries that cut through a node
drop the lookahead to the intra-node latency instead — still correct,
just smaller epochs.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from ...errors import PdesError
from ...machine.bgq import BGQParams
from ...topology.mapping import RankMapping

#: Fraction of the raw minimum cross-shard delay used as the lookahead.
#: Strictly below 1 so that accumulated float rounding in multi-term
#: delivery-time sums can never land a cross-shard event underneath the
#: epoch horizon. Underestimating lookahead is always safe — it only
#: shortens the windows.
LOOKAHEAD_SAFETY = 0.9


@dataclass(frozen=True)
class ShardPlan:
    """Partition of ranks ``[0, num_ranks)`` into contiguous shard blocks.

    Attributes
    ----------
    bounds:
        ``shards + 1`` monotonically increasing rank boundaries;
        shard ``i`` owns ``range(bounds[i], bounds[i+1])``.
    lookahead:
        Conservative-synchronization lookahead in simulated seconds: no
        event sent at time ``t`` by one shard can affect another shard
        before ``t + lookahead``.
    node_aligned:
        True when no compute node is split across shards (every cut
        link is a real torus link).
    """

    bounds: tuple[int, ...]
    lookahead: float
    node_aligned: bool

    @property
    def shards(self) -> int:
        return len(self.bounds) - 1

    @property
    def num_ranks(self) -> int:
        return self.bounds[-1]

    def shard_of(self, rank: int) -> int:
        """Shard owning ``rank``."""
        if not 0 <= rank < self.num_ranks:
            raise PdesError(f"rank {rank} outside plan [0, {self.num_ranks})")
        return bisect_right(self.bounds, rank) - 1

    def ranks_of(self, shard: int) -> range:
        """Ranks owned by ``shard``."""
        if not 0 <= shard < self.shards:
            raise PdesError(f"shard {shard} outside plan [0, {self.shards})")
        return range(self.bounds[shard], self.bounds[shard + 1])

    def describe(self) -> str:
        sizes = [
            self.bounds[i + 1] - self.bounds[i] for i in range(self.shards)
        ]
        kind = "node-aligned" if self.node_aligned else "node-splitting"
        return (
            f"{self.shards} shard(s) over {self.num_ranks} ranks "
            f"(sizes {sizes}, {kind}, lookahead {self.lookahead * 1e6:.3f} us)"
        )


def plan_shards(
    mapping: RankMapping,
    shards: int,
    params: BGQParams,
    rank_weights: list[float] | None = None,
    num_ranks: int | None = None,
) -> ShardPlan:
    """Partition ranks into ``shards`` contiguous blocks.

    Boundaries target equal cumulative weight (uniform by default;
    pass :func:`rank_weights_from_critical_path` output to bias shard
    sizes against critical-path load) and are snapped to node boundaries
    when that preserves a valid non-empty partition, maximising the
    lookahead.

    ``num_ranks`` defaults to the full mapping; jobs that use fewer
    ranks than the partition offers pass their actual count.
    """
    if shards < 1:
        raise PdesError(f"need >= 1 shard, got {shards}")
    n = mapping.num_ranks if num_ranks is None else num_ranks
    if n < 1 or n > mapping.num_ranks:
        raise PdesError(
            f"num_ranks {n} outside (0, {mapping.num_ranks}] for this mapping"
        )
    if shards > n:
        raise PdesError(f"cannot split {n} rank(s) into {shards} shards")
    if rank_weights is not None and len(rank_weights) != n:
        raise PdesError(
            f"rank_weights has {len(rank_weights)} entries for {n} ranks"
        )

    # Cumulative weight -> ideal (equal-weight) cut points.
    if rank_weights is None:
        cuts = [round(i * n / shards) for i in range(1, shards)]
    else:
        prefix = [0.0]
        for w in rank_weights:
            if w < 0:
                raise PdesError(f"rank weight must be >= 0, got {w}")
            prefix.append(prefix[-1] + w)
        total = prefix[-1]
        if total <= 0:
            cuts = [round(i * n / shards) for i in range(1, shards)]
        else:
            cuts = [
                bisect_left(prefix, i * total / shards, 1, n)
                for i in range(1, shards)
            ]

    ppn = mapping.procs_per_node
    bounds = [0]
    for i, cut in enumerate(cuts):
        remaining = shards - 1 - i  # shards still needing >= 1 rank each
        lo, hi = bounds[-1] + 1, n - remaining
        # Prefer the nearest node boundary; fall back to the raw cut.
        snapped = round(cut / ppn) * ppn
        for candidate in (snapped, cut):
            if lo <= candidate <= hi:
                bounds.append(candidate)
                break
        else:
            bounds.append(min(max(cut, lo), hi))
    bounds.append(n)

    aligned = mapping.order.endswith("T") and all(
        b % ppn == 0 for b in bounds[1:-1]
    )
    off_node = params.am_send_overhead + params.hop_latency
    raw = off_node if aligned else min(off_node, params.shm_latency)
    return ShardPlan(
        bounds=tuple(bounds),
        lookahead=raw * LOOKAHEAD_SAFETY,
        node_aligned=aligned,
    )


def rank_weights_from_critical_path(report, num_ranks: int) -> list[float]:
    """Per-rank partitioning weights from a critical-path report.

    Every rank gets a base weight of 1.0 (it still has to execute its
    local events); ranks that carry critical-path time get up to
    ``num_ranks`` extra weight proportional to their share of the path,
    so :func:`plan_shards` gives hot ranks smaller blocks.

    ``report`` is a :class:`repro.obs.critical_path.CriticalPathReport`
    (duck-typed: anything with ``segments`` carrying ``rank``/``duration``).
    """
    weights = [1.0] * num_ranks
    crit = [0.0] * num_ranks
    total = 0.0
    for seg in report.segments:
        if 0 <= seg.rank < num_ranks and seg.duration > 0:
            crit[seg.rank] += seg.duration
            total += seg.duration
    if total > 0:
        scale = num_ranks / total
        for rank in range(num_ranks):
            weights[rank] += crit[rank] * scale
    return weights
