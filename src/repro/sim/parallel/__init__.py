"""Sharded conservative parallel discrete-event simulation (PDES).

Partitions simulated ranks across shards — each with its own
:class:`~repro.sim.engine.Engine` and :class:`~repro.machine.network.TorusNetwork`
clone — and synchronizes them with epoch-based conservative windows whose
lookahead comes from the torus geometry (minimum per-hop latency on any
cut link). Cross-shard events travel through per-pair rings: plain deques
in inline mode, ``multiprocessing.shared_memory`` SPSC rings between
forked workers.

The single-shard engine is untouched and remains the bit-exact reference
oracle: ``run_program(..., shards=1)`` executes the same keyed event
stream on one engine, and the fuzz suite checks that its schedule digest
and workload results exactly match every multi-shard run.

See DESIGN.md §16 for the protocol and its safety argument.
"""

from .partition import (
    ShardPlan,
    plan_shards,
    rank_weights_from_critical_path,
)
from .program import ChaosSpec, RankProgram, ShardRuntime
from .rings import LocalRing, ShmRing
from .runner import PdesResult, run_program
from .workloads import (
    ChaosCliqueProgram,
    CliqueProgram,
    HaloProgram,
    ScfLiteProgram,
    make_factory,
)

__all__ = [
    "ChaosCliqueProgram",
    "ChaosSpec",
    "CliqueProgram",
    "HaloProgram",
    "LocalRing",
    "PdesResult",
    "RankProgram",
    "ScfLiteProgram",
    "ShardPlan",
    "ShardRuntime",
    "ShmRing",
    "make_factory",
    "plan_shards",
    "rank_weights_from_critical_path",
    "run_program",
]
