"""One shard's execution wrapper: engine + runtime + epoch primitives.

The epoch protocol (shared verbatim by the inline and forked modes):

1. every shard reports the time of its earliest pending event;
2. GVT = minimum report; all-idle terminates the run;
3. each shard processes the half-open window ``[GVT, GVT + lookahead)``
   on its own engine (``run(horizon, exclusive=True)``);
4. each shard flushes the cross-shard events generated so far — the
   lookahead guarantees they all land at or above the horizon;
5. after a barrier, each shard drains its incoming rings and injects.

Step 4's guarantee is asserted (``PdesError``), not assumed: a message
below the horizon means the lookahead derivation or the network model's
minimum-delay invariant was broken.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable

from ...errors import PdesError
from ...machine.bgq import BGQParams
from ...machine.network import TorusNetwork
from ...topology.mapping import RankMapping
from ..engine import Engine
from .partition import ShardPlan
from .program import ChaosSpec, Message, ShardRuntime

INFINITY = float("inf")


class ShardWorker:
    """Owns one shard: a fresh engine, a network clone, its rank programs."""

    def __init__(
        self,
        shard_id: int,
        plan: ShardPlan,
        factory: Callable[[int], Any],
        mapping: RankMapping,
        params: BGQParams,
        chaos: ChaosSpec | None = None,
        metrics=None,
    ) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.engine = Engine()
        # A private network instance per shard: the FIFO clocks and memo
        # caches in TorusNetwork are mutable, and sharing them across
        # shards is exactly the leak the shard-safety test forbids.
        network = TorusNetwork(self.engine, mapping, params)
        programs = {rank: factory(rank) for rank in plan.ranks_of(shard_id)}
        self.rt = ShardRuntime(
            shard_id, plan, self.engine, network, programs,
            chaos=chaos, metrics=metrics,
        )
        self.epochs = 0

    # ------------------------------------------------------------ phases

    def bootstrap(self) -> None:
        """Run every program's start hook at t=0 (ascending rank order).

        Start hooks only mutate their own rank's state and draw from
        their own rank's counters, so the call order cannot affect the
        outcome; ascending order is just the fixed convention.
        """
        for rank in sorted(self.rt.programs):
            self.rt.programs[rank].start(self.rt)

    def next_time(self) -> float:
        """Earliest pending local event (inf when this shard is idle)."""
        t = self.engine.next_event_time()
        return INFINITY if t is None else t

    def process_window(self, horizon: float) -> None:
        """Execute every local event strictly below ``horizon``."""
        self.engine.run(until=horizon, exclusive=True)
        self.epochs += 1

    def flush(self, horizon: float) -> dict[int, list[Message]]:
        """Take the cross-shard events generated so far, checked safe.

        Every outbound event must land at or above ``horizon`` — the
        receiving shard's engine clock after this epoch — or conservative
        synchronization is broken.
        """
        out: dict[int, list[Message]] = {}
        for target, msgs in self.rt.outboxes.items():
            if not msgs:
                continue
            for msg in msgs:
                if msg[0] < horizon:
                    raise PdesError(
                        f"lookahead violation: shard {self.shard_id} emitted "
                        f"an event at t={msg[0]} below horizon {horizon}"
                    )
            out[target] = msgs
            self.rt.outboxes[target] = []
        return out

    def inject_batch(self, msgs: list[Message]) -> None:
        for msg in msgs:
            self.rt.inject(msg)

    def inject_blob(self, blob: bytes) -> None:
        self.inject_batch(pickle.loads(blob))

    def run_to_completion(self) -> None:
        """Single-shard (oracle) path: no epochs, just drain the engine."""
        self.engine.run()

    # ----------------------------------------------------------- summary

    def summary(self) -> dict[str, Any]:
        """Picklable end-of-run report the runner merges across shards."""
        return {
            "shard": self.shard_id,
            "digests": self.rt.rank_digests(),
            "delivered": self.rt.delivered,
            "dropped": self.rt.dropped,
            "events_executed": self.engine.events_executed,
            "sim_time": self.engine.now,
            "epochs": self.epochs,
            "results": self.rt.results(),
            "metrics": self.rt.metrics,
        }
