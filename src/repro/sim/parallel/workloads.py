"""Deterministic rank-program workloads for the parallel PDES runtime.

Every workload follows the determinism contract of
:mod:`repro.sim.parallel.program`: all choices (peers, delays, floats)
are content-hashed from ``(rank, op, seed)``, handlers touch only their
own rank's state, and any float accumulation happens in a fixed
content-derived order (``sorted`` + ``math.fsum``) so results are
bit-identical for every shard count — "commutative-safe" in the fuzz
harness's sense.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ...errors import PdesError
from .program import Message, RankProgram, ShardRuntime, _mix

_MASK = 0xFFFFFFFFFFFFFFFF


def _unit(h: int) -> float:
    """Map a hash to a deterministic float in [-0.5, 0.5)."""
    return (h % (1 << 30)) / float(1 << 30) - 0.5


class CliqueProgram(RankProgram):
    """All-to-all pings: each rank sends ``ops`` puts to hashed peers.

    Every ping is answered with a pong, so the workload exercises both
    the put path (source injection FIFO) and the AM control path in
    both directions across every shard cut.
    """

    def __init__(
        self,
        rank: int,
        num_ranks: int,
        ops: int = 8,
        payload_bytes: int = 64,
        seed: int = 0,
        spacing: float = 2e-6,
    ) -> None:
        self.rank = rank
        self.n = num_ranks
        self.ops = ops
        self.payload_bytes = payload_bytes
        self.seed = seed
        self.spacing = spacing
        self.sent = 0
        self.recv = 0
        self.acks = 0
        self.checksum = 0

    def _peer(self, op_index: int) -> int:
        peer = _mix(self.rank, op_index, self.seed, 1) % (self.n - 1)
        return peer + 1 if peer >= self.rank else peer

    def start(self, rt: ShardRuntime) -> None:
        if self.n < 2 or self.ops == 0:
            return
        stagger = self.spacing * (1 + _mix(self.rank, self.seed) % 64) / 64.0
        rt.after(self.rank, stagger, "op", 0)

    def on_message(self, rt: ShardRuntime, msg: Message) -> None:
        kind, payload = msg[4], msg[5]
        if kind == "op":
            op_index = payload
            rt.send_put(
                self.rank, self._peer(op_index), self.payload_bytes,
                "ping", (self.rank, op_index),
            )
            self.sent += 1
            if op_index + 1 < self.ops:
                gap = _mix(self.rank, op_index, self.seed, 2) % 16
                rt.after(self.rank, self.spacing * (1 + gap) / 8.0, "op", op_index + 1)
        elif kind == "ping":
            src, op_index = payload
            self.recv += 1
            self.checksum = (self.checksum ^ _mix(src, op_index, 7)) & _MASK
            rt.send_am(self.rank, src, "pong", op_index)
        elif kind == "pong":
            self.acks += 1

    def result(self) -> Any:
        return (self.sent, self.recv, self.acks, self.checksum)


class HaloProgram(RankProgram):
    """1D ring halo exchange: ``iters`` coupled neighbor rounds.

    Each round waits for both neighbors' values before combining —
    the tightest cross-shard dependency pattern (every round crosses
    every cut twice). Combination folds the received values in sorted
    order, so the float result is independent of arrival order.
    """

    def __init__(
        self, rank: int, num_ranks: int, iters: int = 4, seed: int = 0
    ) -> None:
        self.rank = rank
        self.n = num_ranks
        self.iters = iters
        self.value = _unit(_mix(rank, seed, 11))
        self.it = 0
        self._inbox: dict[int, list[float]] = {}

    def _neighbors(self) -> tuple[int, int]:
        return (self.rank - 1) % self.n, (self.rank + 1) % self.n

    def _send_round(self, rt: ShardRuntime) -> None:
        left, right = self._neighbors()
        rt.send_am(self.rank, left, "halo", (self.it, self.value))
        rt.send_am(self.rank, right, "halo", (self.it, self.value))

    def start(self, rt: ShardRuntime) -> None:
        if self.n < 2 or self.iters == 0:
            return
        self._send_round(rt)

    def on_message(self, rt: ShardRuntime, msg: Message) -> None:
        it, val = msg[5]
        self._inbox.setdefault(it, []).append(val)
        while len(self._inbox.get(self.it, ())) >= 2:
            vals = self._inbox.pop(self.it)
            self.value = (self.value + math.fsum(sorted(vals))) / 3.0
            self.it += 1
            if self.it < self.iters:
                self._send_round(rt)

    def result(self) -> Any:
        return (self.it, self.value)


class ScfLiteProgram(RankProgram):
    """SCF-flavoured reduction: ranks compute terms, rank 0 sums them.

    Tasks are dealt round-robin; each term is a hash-derived float sent
    to rank 0, which sums with ``math.fsum`` over terms *sorted by task
    id* — a schedule-independent, bit-exact global energy. Task
    accounting (per-rank done counts) rides along in the results.
    """

    def __init__(
        self, rank: int, num_ranks: int, tasks: int = 64, seed: int = 0
    ) -> None:
        self.rank = rank
        self.n = num_ranks
        self.seed = seed
        self.my_tids = list(range(rank, tasks, num_ranks))
        self.done = 0
        self._terms: list[tuple[int, float]] = []  # rank 0 only

    def start(self, rt: ShardRuntime) -> None:
        if self.my_tids:
            stagger = 1e-6 * (1 + _mix(self.rank, self.seed, 3) % 32) / 32.0
            rt.after(self.rank, stagger, "task", 0)

    def on_message(self, rt: ShardRuntime, msg: Message) -> None:
        kind, payload = msg[4], msg[5]
        if kind == "task":
            i = payload
            tid = self.my_tids[i]
            term = _unit(_mix(tid, self.seed, 5))
            rt.send_am(self.rank, 0, "term", (tid, term))
            self.done += 1
            if i + 1 < len(self.my_tids):
                gap = _mix(self.rank, i, self.seed, 4) % 8
                rt.after(self.rank, 1e-6 * (1 + gap) / 4.0, "task", i + 1)
        elif kind == "term":
            self._terms.append(payload)

    def result(self) -> Any:
        if self.rank == 0:
            ordered = sorted(self._terms)
            energy = math.fsum(term for _tid, term in ordered)
            return ("energy", energy, len(ordered), self.done)
        return ("tasks", self.done)


class ChaosCliqueProgram(RankProgram):
    """Clique pings under deterministic drops, with ack + bounded retry.

    The chaos target of the equivalence fuzz: drops are content-hashed
    (see :class:`ChaosSpec`), receivers deduplicate by ``(src, op)``,
    and senders retry on a timer until acked or the attempt budget runs
    out — every branch of which is schedule-independent, so accounting
    (acked/failed/unique-received) is exactly equal across shard counts.
    """

    def __init__(
        self,
        rank: int,
        num_ranks: int,
        ops: int = 6,
        seed: int = 0,
        timeout: float = 25e-6,
        max_attempts: int = 12,
        spacing: float = 2e-6,
    ) -> None:
        self.rank = rank
        self.n = num_ranks
        self.ops = ops
        self.seed = seed
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.spacing = spacing
        self.pending: dict[int, int] = {}  # op index -> attempts
        self.acked: set[int] = set()
        self.failed: set[int] = set()
        self.seen: set[tuple[int, int]] = set()
        self.recv_unique = 0
        self.checksum = 0

    def _peer(self, op_index: int) -> int:
        peer = _mix(self.rank, op_index, self.seed, 21) % (self.n - 1)
        return peer + 1 if peer >= self.rank else peer

    def start(self, rt: ShardRuntime) -> None:
        if self.n < 2 or self.ops == 0:
            return
        stagger = self.spacing * (1 + _mix(self.rank, self.seed, 20) % 64) / 64.0
        rt.after(self.rank, stagger, "op", 0)

    def on_message(self, rt: ShardRuntime, msg: Message) -> None:
        kind, payload = msg[4], msg[5]
        if kind == "op":
            op_index = payload
            self.pending[op_index] = 1
            rt.send_am(self.rank, self._peer(op_index), "ping", (self.rank, op_index))
            rt.after(self.rank, self.timeout, "retry", op_index)
            if op_index + 1 < self.ops:
                gap = _mix(self.rank, op_index, self.seed, 22) % 16
                rt.after(self.rank, self.spacing * (1 + gap) / 8.0, "op", op_index + 1)
        elif kind == "ping":
            src, op_index = payload
            if (src, op_index) not in self.seen:
                self.seen.add((src, op_index))
                self.recv_unique += 1
                self.checksum = (self.checksum ^ _mix(src, op_index, 23)) & _MASK
            # Ack every copy: the previous ack may itself have dropped.
            rt.send_am(self.rank, src, "ack", op_index)
        elif kind == "ack":
            if payload in self.pending:
                del self.pending[payload]
                self.acked.add(payload)
        elif kind == "retry":
            op_index = payload
            attempts = self.pending.get(op_index)
            if attempts is None:
                return  # already acked; stale timer
            if attempts >= self.max_attempts:
                del self.pending[op_index]
                self.failed.add(op_index)
                return
            self.pending[op_index] = attempts + 1
            rt.send_am(self.rank, self._peer(op_index), "ping", (self.rank, op_index))
            rt.after(self.rank, self.timeout, "retry", op_index)

    def result(self) -> Any:
        return (
            len(self.acked),
            len(self.failed),
            self.recv_unique,
            self.checksum,
        )


WORKLOADS: dict[str, type] = {
    "clique": CliqueProgram,
    "halo": HaloProgram,
    "scf_lite": ScfLiteProgram,
    "chaos_clique": ChaosCliqueProgram,
}


def make_factory(
    name: str, num_ranks: int, **kwargs: Any
) -> Callable[[int], RankProgram]:
    """Factory for ``run_program``: ``rank -> workload program``."""
    cls = WORKLOADS.get(name)
    if cls is None:
        raise PdesError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        )
    return lambda rank: cls(rank, num_ranks, **kwargs)
