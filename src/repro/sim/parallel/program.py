"""Deterministic wire-level rank programs and their shard runtime.

The sharded engine executes *rank programs*: objects that own exactly one
rank's state and react to delivered messages. The contract that makes
shards=1 and shards=N produce bit-identical results:

1. Every scheduled entry (message delivery or self-timer) carries a
   content-derived tie-break key ``(src_rank, seq)`` where ``seq`` comes
   from the source rank's private monotone counter. Equal-timestamp
   entries therefore execute in an order that depends only on message
   *content*, never on which engine they happen to share.
2. A handler touches only its own rank's state, so the per-rank delivery
   stream — the projection of the schedule onto one rank, ordered by
   ``(time, src, seq)`` — fully determines that rank's behaviour. That
   projection is identical whether ranks share one engine or are split
   across shards.
3. Chaos drops are rolled from a hash of the message identity
   ``(src, dst, seq, salt)``, not from arrival order, so fault patterns
   are also shard-count independent.

The schedule digest folds every delivery into a per-rank chained
splitmix64 and combines ranks commutatively (XOR), making it order-exact
within a rank and insensitive to legitimate cross-rank concurrency —
exactly the equivalence the fuzz oracle checks.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any

from ...errors import PdesError
from ..engine import Engine, _mix64

#: A wire/timer message: (time, dst, src, seq, kind, payload).
Message = tuple

_TIME_BITS = struct.Struct("<d")
#: Distinct fold multipliers so field transpositions change the digest.
_K_SRC = 0x9E3779B97F4A7C15
_K_SEQ = 0xC2B2AE3D27D4EB4F


def _mix(*vals: int) -> int:
    """Content hash over integers (chaos rolls, workload choices)."""
    h = 0x243F6A8885A308D3
    for v in vals:
        h = _mix64(h, v)
    return h


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic message-drop injection for parallel programs.

    ``drop_mod``: one in ``drop_mod`` messages is dropped.
    ``salt``: varies the drop pattern between fuzz seeds.
    """

    drop_mod: int = 5
    salt: int = 0

    def __post_init__(self) -> None:
        if self.drop_mod < 2:
            raise PdesError(f"drop_mod must be >= 2, got {self.drop_mod}")


class RankProgram:
    """Base class for rank programs (duck-typed; subclassing optional).

    Subclasses implement :meth:`start` (schedule initial activity) and
    :meth:`on_message` (react to one delivery). State must be confined
    to the program's own rank; the only way to affect another rank is
    ``rt.send_am`` / ``rt.send_put``.
    """

    def start(self, rt: "ShardRuntime") -> None:
        raise NotImplementedError

    def on_message(self, rt: "ShardRuntime", msg: Message) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        """Workload result for equivalence checking (None = no result)."""
        return None


class ShardRuntime:
    """Execution context for the rank programs of one shard.

    Owns the shard's engine and network clone, the per-rank sequence
    counters and digests, and the outboxes holding cross-shard events
    until the epoch flush. A single-shard runtime (the oracle) is just
    the degenerate case where every destination is local.
    """

    def __init__(
        self,
        shard_id: int,
        plan,
        engine: Engine,
        network,
        programs: dict[int, RankProgram],
        chaos: ChaosSpec | None = None,
        metrics=None,
    ) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.engine = engine
        self.network = network
        self.programs = programs
        self.chaos = chaos
        self.metrics = metrics
        self.lo = plan.bounds[shard_id]
        self.hi = plan.bounds[shard_id + 1]
        self.delivered = 0
        self.dropped = 0
        self._seq: dict[int, int] = {}
        self._digest: dict[int, int] = {}
        self._kind_crc: dict[str, int] = {}
        #: Cross-shard events awaiting the epoch flush, per target shard.
        self.outboxes: dict[int, list[Message]] = {
            s: [] for s in range(plan.shards) if s != shard_id
        }

    # ----------------------------------------------------------- helpers

    def owns(self, rank: int) -> bool:
        return self.lo <= rank < self.hi

    def next_seq(self, rank: int) -> int:
        """The rank's private monotone counter (sends and timers share it)."""
        seq = self._seq.get(rank, 0)
        self._seq[rank] = seq + 1
        return seq

    def _kind_code(self, kind: str) -> int:
        code = self._kind_crc.get(kind)
        if code is None:
            code = self._kind_crc[kind] = zlib.crc32(kind.encode())
        return code

    def _roll_drop(self, src: int, dst: int, seq: int) -> bool:
        chaos = self.chaos
        if chaos is None:
            return False
        return _mix(src, dst, seq, chaos.salt) % chaos.drop_mod == 0

    # ------------------------------------------------------------ sending

    def send_am(self, src: int, dst: int, kind: str, payload: Any = None) -> None:
        """Send a small control message (AM header / AMO-request class).

        Delivery time follows the torus model's control-packet path:
        intra-node crossbar latency or AM send overhead plus per-hop
        torus latency.
        """
        if not self.owns(src):
            raise PdesError(f"rank {src} does not belong to shard {self.shard_id}")
        seq = self.next_seq(src)
        if self._roll_drop(src, dst, seq):
            self.dropped += 1
            if self.metrics is not None:
                self.metrics.counter("pdes.dropped").incr(rank=src)
            return
        deliver = self.network.packet_arrival(src, dst)
        self._route((deliver, dst, src, seq, kind, payload))

    def send_put(
        self, src: int, dst: int, nbytes: int, kind: str, payload: Any = None
    ) -> None:
        """Send a payload-bearing message through the RDMA-put path.

        Serializes through the *source's* injection FIFO — sender-shard
        state, so the FIFO clock never needs cross-shard coordination.
        """
        if not self.owns(src):
            raise PdesError(f"rank {src} does not belong to shard {self.shard_id}")
        seq = self.next_seq(src)
        if self._roll_drop(src, dst, seq):
            self.dropped += 1
            if self.metrics is not None:
                self.metrics.counter("pdes.dropped").incr(rank=src)
            return
        deliver = self.network.put_timing(src, dst, nbytes).deliver
        self._route((deliver, dst, src, seq, kind, payload))

    def after(self, rank: int, delay: float, kind: str, payload: Any = None) -> None:
        """Schedule a self-message (timer) ``delay`` seconds from now.

        Timers are ordinary messages from a rank to itself, keyed with
        the same counter as its sends, so their ordering against equal-
        timestamp traffic is shard-count independent too.
        """
        if not self.owns(rank):
            raise PdesError(f"rank {rank} does not belong to shard {self.shard_id}")
        if delay < 0:
            raise PdesError(f"timer delay must be >= 0, got {delay}")
        seq = self.next_seq(rank)
        time = self.engine.now + delay
        self.engine.schedule_at(
            time, self._on_wire, (time, rank, rank, seq, kind, payload),
            key=(rank, seq),
        )

    def _route(self, msg: Message) -> None:
        deliver, dst, src, seq = msg[0], msg[1], msg[2], msg[3]
        target = self.plan.shard_of(dst)
        if target == self.shard_id:
            self.engine.schedule_at(deliver, self._on_wire, msg, key=(src, seq))
        else:
            self.outboxes[target].append(msg)

    # ---------------------------------------------------------- delivery

    def inject(self, msg: Message) -> None:
        """Schedule one event received from another shard.

        The conservative contract guarantees ``msg`` lands at or above
        the current epoch horizon (== the engine clock after an
        exclusive window); anything below it is a protocol violation.
        """
        time, _dst, src, seq = msg[0], msg[1], msg[2], msg[3]
        if time < self.engine.now:
            raise PdesError(
                f"causality violation: remote event at t={time} injected "
                f"into shard {self.shard_id} at now={self.engine.now}"
            )
        self.engine.schedule_at(time, self._on_wire, msg, key=(src, seq))

    def _on_wire(self, msg: Message) -> None:
        time, dst, src, seq, kind = msg[0], msg[1], msg[2], msg[3], msg[4]
        (time_bits,) = struct.unpack("<Q", _TIME_BITS.pack(time))
        v = time_bits ^ (src * _K_SRC) ^ (seq * _K_SEQ) ^ self._kind_code(kind)
        self._digest[dst] = _mix64(self._digest.get(dst, 0), v & 0xFFFFFFFFFFFFFFFF)
        self.delivered += 1
        if self.metrics is not None:
            self.metrics.counter("pdes.delivered").incr(rank=dst)
        self.programs[dst].on_message(self, msg)

    # ----------------------------------------------------------- summary

    def rank_digests(self) -> dict[int, int]:
        """Per-rank delivery-stream digests (order-exact within a rank).

        The runner combines these across shards with
        :func:`combine_digests` — XOR, so legitimate cross-rank
        concurrency cannot matter, while any reordering *within* a
        rank's stream changes its chained digest.
        """
        return dict(self._digest)

    def results(self) -> dict[int, Any]:
        """Per-rank workload results (ranks returning None omitted)."""
        out = {}
        for rank in sorted(self.programs):
            value = self.programs[rank].result()
            if value is not None:
                out[rank] = value
        return out


def combine_digests(rank_digests: dict[int, int], delivered: int) -> int:
    """Job-wide schedule digest from merged per-rank digests.

    Commutative across ranks (XOR of rank-folded chains) and therefore
    shard-count independent; the total delivered-count fold catches
    pathological cancellations.
    """
    acc = _mix64(0, delivered)
    for rank, digest in rank_digests.items():
        acc ^= _mix64(rank + 1, digest)
    return acc
