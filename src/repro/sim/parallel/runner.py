"""Orchestration of sharded PDES runs: single / inline / fork modes.

``run_program`` is the one entry point. Three execution modes share the
shard protocol code in :mod:`repro.sim.parallel.shard`:

``single``
    One shard on one engine, no epochs — the bit-exact reference oracle
    (``shards=1``). Identical to running the programs on a plain
    :class:`~repro.sim.engine.Engine`.
``inline``
    N shard objects stepped sequentially in this process, exchanging
    pickled batches through :class:`LocalRing`. Same protocol, same
    serialization, no processes — the mode the equivalence fuzz leans
    on for speed and debuggability.
``fork``
    N forked worker processes with :class:`ShmRing` pairs, two
    ``multiprocessing`` barriers per epoch and a lock-free next-times
    array — the mode that actually scales across host cores.

All three produce identical schedule digests and workload results for
conforming programs; the fuzz suite enforces exactly that.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import queue as queue_mod
import time as time_mod
from dataclasses import dataclass, field
from typing import Any, Callable

from ...errors import PdesError
from ...machine.bgq import BGQParams
from ...obs.metrics import MetricsRegistry
from ...topology.mapping import RankMapping, abcdet_mapping
from ...topology.partitions import KNOWN_PARTITIONS
from .partition import ShardPlan, plan_shards
from .program import ChaosSpec, combine_digests
from .rings import DEFAULT_RING_CAPACITY, LocalRing, ShmRing
from .shard import INFINITY, ShardWorker

#: Wall-clock ceiling for one forked worker's end-of-run report.
_WORKER_REPORT_TIMEOUT = 600.0

MODES = ("auto", "single", "inline", "fork")


def mapping_for_ranks(num_ranks: int, procs_per_node: int = 16) -> RankMapping:
    """Smallest standard BG/Q partition hosting ``num_ranks``.

    Rounds the node count up to the next known partition size (the same
    convention :class:`repro.pami.world.PamiWorld` uses: a job may use
    fewer ranks than the partition offers).
    """
    if num_ranks < 1:
        raise PdesError(f"need >= 1 rank, got {num_ranks}")
    nodes = max(1, math.ceil(num_ranks / procs_per_node))
    for size in sorted(KNOWN_PARTITIONS):
        if size >= nodes:
            return abcdet_mapping(KNOWN_PARTITIONS[size], procs_per_node)
    raise PdesError(
        f"{num_ranks} ranks at {procs_per_node}/node exceed the largest "
        f"known partition ({max(KNOWN_PARTITIONS)} nodes)"
    )


@dataclass
class PdesResult:
    """Merged outcome of one parallel (or oracle) run."""

    num_ranks: int
    shards: int
    mode: str
    lookahead: float
    node_aligned: bool
    schedule_digest: int
    delivered: int
    dropped: int
    events_executed: int
    epochs: int
    sim_time: float
    wall_seconds: float
    results: dict[int, Any] = field(default_factory=dict)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def events_per_sec(self) -> float:
        return self.events_executed / self.wall_seconds if self.wall_seconds > 0 else 0.0


# ------------------------------------------------------------- ring I/O


def _flush_to_rings(worker: ShardWorker, horizon: float, rings: dict) -> None:
    """Pickle each target's batch and push it onto the pair ring."""
    for target, msgs in worker.flush(horizon).items():
        rings[(worker.shard_id, target)].push(
            pickle.dumps(msgs, protocol=pickle.HIGHEST_PROTOCOL)
        )


def _drain_rings(worker: ShardWorker, rings: dict, shards: int) -> None:
    for src in range(shards):
        if src == worker.shard_id:
            continue
        for blob in rings[(src, worker.shard_id)].pop_all():
            worker.inject_blob(blob)


# ----------------------------------------------------------- fork mode


def _worker_main(
    shard_id: int,
    plan: ShardPlan,
    factory: Callable[[int], Any],
    mapping: RankMapping,
    params: BGQParams,
    chaos: ChaosSpec | None,
    rings: dict,
    barrier_a,
    barrier_b,
    next_times,
    out_queue,
) -> None:
    """Forked shard worker: the epoch loop against shared-memory rings.

    Phase safety of the lock-free ``next_times`` array: a shard writes
    its slot only between draining (after barrier A) and barrier B, and
    reads the array only after barrier B; no peer can reach its next
    write (which lies beyond barrier A of the following epoch) before
    every reader has passed barrier B of this one.
    """
    try:
        worker = ShardWorker(
            shard_id, plan, factory, mapping, params,
            chaos=chaos, metrics=MetricsRegistry(),
        )
        worker.bootstrap()
        _flush_to_rings(worker, plan.lookahead, rings)
        barrier_a.wait()
        _drain_rings(worker, rings, plan.shards)
        while True:
            next_times[shard_id] = worker.next_time()
            barrier_b.wait()
            gvt = min(next_times)
            if gvt == INFINITY:
                break
            horizon = gvt + plan.lookahead
            worker.process_window(horizon)
            _flush_to_rings(worker, horizon, rings)
            barrier_a.wait()
            _drain_rings(worker, rings, plan.shards)
        out_queue.put(("ok", worker.summary()))
    except Exception as exc:  # report, then release any parked peers
        barrier_a.abort()
        barrier_b.abort()
        out_queue.put(("error", f"shard {shard_id}: {type(exc).__name__}: {exc}"))
    finally:
        out_queue.close()
        out_queue.join_thread()


def _run_fork(
    plan: ShardPlan,
    factory: Callable[[int], Any],
    mapping: RankMapping,
    params: BGQParams,
    chaos: ChaosSpec | None,
    ring_capacity: int,
) -> list[dict]:
    ctx = multiprocessing.get_context("fork")
    shards = plan.shards
    rings = {
        (i, j): ShmRing(ring_capacity)
        for i in range(shards)
        for j in range(shards)
        if i != j
    }
    barrier_a = ctx.Barrier(shards)
    barrier_b = ctx.Barrier(shards)
    next_times = multiprocessing.Array("d", shards, lock=False)
    out_queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(
                s, plan, factory, mapping, params, chaos,
                rings, barrier_a, barrier_b, next_times, out_queue,
            ),
            daemon=True,
        )
        for s in range(shards)
    ]
    try:
        for p in procs:
            p.start()
        reports: list[dict] = []
        errors: list[str] = []
        for _ in range(shards):
            try:
                status, payload = out_queue.get(timeout=_WORKER_REPORT_TIMEOUT)
            except queue_mod.Empty:
                dead = [p.pid for p in procs if p.exitcode not in (None, 0)]
                raise PdesError(
                    f"shard worker(s) died without reporting (exitcodes "
                    f"{[p.exitcode for p in procs]}, dead pids {dead})"
                ) from None
            if status == "ok":
                reports.append(payload)
            else:
                errors.append(payload)
        for p in procs:
            p.join(timeout=30.0)
        if errors:
            raise PdesError("; ".join(sorted(errors)))
        return reports
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for ring in rings.values():
            ring.close()
            ring.unlink()


# --------------------------------------------------------- inline mode


def _run_inline(
    plan: ShardPlan,
    factory: Callable[[int], Any],
    mapping: RankMapping,
    params: BGQParams,
    chaos: ChaosSpec | None,
    ring_capacity: int,
) -> list[dict]:
    shards = plan.shards
    rings = {
        (i, j): LocalRing(ring_capacity)
        for i in range(shards)
        for j in range(shards)
        if i != j
    }
    workers = [
        ShardWorker(
            s, plan, factory, mapping, params,
            chaos=chaos, metrics=MetricsRegistry(),
        )
        for s in range(shards)
    ]
    for w in workers:
        w.bootstrap()
    for w in workers:
        _flush_to_rings(w, plan.lookahead, rings)
    for w in workers:
        _drain_rings(w, rings, shards)
    while True:
        gvt = min(w.next_time() for w in workers)
        if gvt == INFINITY:
            break
        horizon = gvt + plan.lookahead
        for w in workers:
            w.process_window(horizon)
        for w in workers:
            _flush_to_rings(w, horizon, rings)
        for w in workers:
            _drain_rings(w, rings, shards)
    return [w.summary() for w in workers]


# -------------------------------------------------------------- driver


def run_program(
    factory: Callable[[int], Any],
    num_ranks: int,
    *,
    shards: int = 1,
    procs_per_node: int = 16,
    params: BGQParams | None = None,
    chaos: ChaosSpec | None = None,
    mode: str = "auto",
    ring_capacity: int = DEFAULT_RING_CAPACITY,
    rank_weights: list[float] | None = None,
    mapping: RankMapping | None = None,
) -> PdesResult:
    """Run ``factory(rank)`` programs for every rank; return the merged result.

    ``mode="auto"`` picks ``single`` for one shard and ``fork`` for
    several. Pass ``mode="inline"`` to run a multi-shard configuration
    in-process (same protocol, no worker processes).
    """
    if mode not in MODES:
        raise PdesError(f"unknown mode {mode!r}; choose from {MODES}")
    if params is None:
        params = BGQParams()
    if mapping is None:
        mapping = mapping_for_ranks(num_ranks, procs_per_node)
    plan = plan_shards(
        mapping, shards, params, rank_weights=rank_weights, num_ranks=num_ranks
    )
    if mode == "auto":
        mode = "single" if shards == 1 else "fork"
    if mode == "single" and shards != 1:
        raise PdesError(f"mode 'single' requires shards=1, got {shards}")

    start = time_mod.perf_counter()
    if mode == "single":
        worker = ShardWorker(
            0, plan, factory, mapping, params,
            chaos=chaos, metrics=MetricsRegistry(),
        )
        worker.bootstrap()
        worker.run_to_completion()
        reports = [worker.summary()]
    elif mode == "inline":
        reports = _run_inline(plan, factory, mapping, params, chaos, ring_capacity)
    else:
        reports = _run_fork(plan, factory, mapping, params, chaos, ring_capacity)
    wall = time_mod.perf_counter() - start

    digests: dict[int, int] = {}
    results: dict[int, Any] = {}
    metrics = MetricsRegistry()
    delivered = dropped = events = 0
    epochs = 0
    sim_time = 0.0
    for rep in reports:
        digests.update(rep["digests"])
        results.update(rep["results"])
        if rep["metrics"] is not None:
            metrics.merge(rep["metrics"])
        delivered += rep["delivered"]
        dropped += rep["dropped"]
        events += rep["events_executed"]
        epochs = max(epochs, rep["epochs"])
        sim_time = max(sim_time, rep["sim_time"])
    return PdesResult(
        num_ranks=num_ranks,
        shards=shards,
        mode=mode,
        lookahead=plan.lookahead,
        node_aligned=plan.node_aligned,
        schedule_digest=combine_digests(digests, delivered),
        delivered=delivered,
        dropped=dropped,
        events_executed=events,
        epochs=epochs,
        sim_time=sim_time,
        wall_seconds=wall,
        results=results,
        metrics=metrics,
    )
