"""Cross-shard event transport: SPSC rings.

One ring per ordered shard pair. The shared-memory variant backs the
forked-worker mode; the deque variant gives the inline (single-process)
mode the same API so both modes share the shard protocol code.

The rings are single-producer single-consumer and are only drained at
epoch barriers, so no locking is needed: the writer owns the tail
cursor, the reader owns the head cursor, both are monotone byte counts,
and the barrier between a flush and the matching drain orders the memory
operations. A full ring is a hard protocol error (``PdesError``) rather
than a blocking wait — the reader is parked at a barrier the writer has
not reached yet, so waiting for space would deadlock; size the ring with
``ring_capacity`` instead.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

from ...errors import PdesError

#: Ring header: two little-endian u64 monotone byte cursors (head, tail).
_HDR = struct.Struct("<QQ")
_LEN = struct.Struct("<I")
HEADER_SIZE = _HDR.size

#: Default per-pair ring capacity (bytes of pickled event batches).
DEFAULT_RING_CAPACITY = 1 << 20


class ShmRing:
    """SPSC byte-record ring over ``multiprocessing.shared_memory``.

    Records are length-prefixed byte strings (pickled event batches),
    written and read with wrap-around. Create in the parent before
    forking; children inherit the mapping, so no name-based re-attach
    (and no resource-tracker double bookkeeping) is needed.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 64:
            raise PdesError(f"ring capacity must be >= 64 bytes, got {capacity}")
        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(
            create=True, size=HEADER_SIZE + capacity
        )
        _HDR.pack_into(self._shm.buf, 0, 0, 0)

    # ------------------------------------------------------------- write

    def push(self, data: bytes) -> None:
        """Append one record; raises :class:`PdesError` when full."""
        buf = self._shm.buf
        head, tail = _HDR.unpack_from(buf, 0)
        need = _LEN.size + len(data)
        if need > self.capacity - (tail - head):
            raise PdesError(
                f"shard ring overflow: record of {need} B does not fit "
                f"({self.capacity - (tail - head)} B free of {self.capacity}); "
                f"raise ring_capacity"
            )
        tail = self._write(tail, _LEN.pack(len(data)))
        tail = self._write(tail, data)
        struct.pack_into("<Q", buf, 8, tail)

    def _write(self, pos: int, data: bytes) -> int:
        buf = self._shm.buf
        off = pos % self.capacity
        first = min(len(data), self.capacity - off)
        base = HEADER_SIZE + off
        buf[base : base + first] = data[:first]
        if first < len(data):
            buf[HEADER_SIZE : HEADER_SIZE + len(data) - first] = data[first:]
        return pos + len(data)

    # -------------------------------------------------------------- read

    def pop_all(self) -> list[bytes]:
        """Drain every complete record (the per-barrier bulk read)."""
        buf = self._shm.buf
        head, tail = _HDR.unpack_from(buf, 0)
        out: list[bytes] = []
        while head != tail:
            raw, head = self._read(head, _LEN.size)
            (length,) = _LEN.unpack(raw)
            data, head = self._read(head, length)
            out.append(data)
        struct.pack_into("<Q", buf, 0, head)
        return out

    def _read(self, pos: int, n: int) -> tuple[bytes, int]:
        buf = self._shm.buf
        off = pos % self.capacity
        first = min(n, self.capacity - off)
        base = HEADER_SIZE + off
        data = bytes(buf[base : base + first])
        if first < n:
            data += bytes(buf[HEADER_SIZE : HEADER_SIZE + n - first])
        return data, pos + n

    # --------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class LocalRing:
    """Deque-backed ring with the :class:`ShmRing` API (inline mode).

    Enforces the same capacity accounting so inline fuzz runs exercise
    the overflow path the shared-memory rings would hit.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self.capacity = capacity
        self._records: list[bytes] = []
        self._used = 0

    def push(self, data: bytes) -> None:
        need = _LEN.size + len(data)
        if need > self.capacity - self._used:
            raise PdesError(
                f"shard ring overflow: record of {need} B does not fit "
                f"({self.capacity - self._used} B free of {self.capacity}); "
                f"raise ring_capacity"
            )
        self._records.append(data)
        self._used += need

    def pop_all(self) -> list[bytes]:
        out = self._records
        self._records = []
        self._used = 0
        return out

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass
