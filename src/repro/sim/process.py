"""Simulated processes: generator coroutines driven by the engine."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import SimulationError
from .event import Event
from .primitives import Delay, WaitAll, WaitAny, WaitEvent

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

#: The generator type a process body must have.
ProcessBody = Generator[Any, Any, Any]


class SimProcess:
    """A running simulated process.

    Wraps a generator and interprets the commands it yields. The process's
    :attr:`done` event triggers with the generator's return value when it
    finishes. Exceptions raised inside the generator abort the whole
    simulation (loud failure: protocol bugs must not be silently swallowed).

    Processes are created via :meth:`Engine.spawn`, not directly.
    """

    __slots__ = ("engine", "name", "body", "done", "daemon", "_started", "_killed")

    def __init__(
        self, engine: "Engine", body: ProcessBody, name: str, daemon: bool
    ) -> None:
        if not hasattr(body, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(body).__name__}; "
                "did you forget a yield in the process function?"
            )
        self.engine = engine
        self.name = name
        self.body = body
        self.daemon = daemon
        #: Triggers with the generator's return value on completion.
        self.done = Event(engine, name=f"{name}.done")
        self._started = False
        self._killed = False

    def start(self) -> None:
        """Schedule the first step at the current simulated time."""
        if self._started:
            raise SimulationError(f"process {self.name!r} started twice")
        self._started = True
        self.engine.schedule(0.0, self._step, None)

    def kill(self) -> None:
        """Terminate the process (fail-stop crash): ``done`` fires with
        ``None`` and the generator never runs again.

        Safe to call from within the process's own frame (a rank failing
        itself): the generator can't be closed while executing, so the
        kill flag suppresses any further stepping once it yields or
        returns.
        """
        if self._killed or self.done.triggered:
            return
        self._killed = True
        try:
            self.body.close()
        except (ValueError, RuntimeError):
            pass  # generator currently executing (self-kill)
        self.engine.process_finished(self)
        self.done.succeed(None)

    # The engine resumes us through this callback.
    def _step(self, send_value: Any) -> None:
        if self._killed:
            return
        try:
            command = self.body.send(send_value)
        except StopIteration as stop:
            if self._killed:
                return
            self.engine.process_finished(self)
            self.done.succeed(stop.value)
            return
        except Exception as exc:
            if self._killed:
                return
            self.engine.process_finished(self)
            self.engine.fail(
                SimulationError(f"process {self.name!r} raised {exc!r}"), cause=exc
            )
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if self._killed:
            return
        if isinstance(command, Delay):
            self.engine.schedule(command.dt, self._step, None)
        elif isinstance(command, WaitEvent):
            command.event.add_callback(self._step)
        elif isinstance(command, WaitAll):
            self._wait_all(list(command.events))
        elif isinstance(command, WaitAny):
            self._wait_any(list(command.events))
        elif isinstance(command, Event):
            # Allow yielding a bare Event as shorthand for WaitEvent(event).
            command.add_callback(self._step)
        elif isinstance(command, SimProcess):
            # Yielding a process waits for its completion (join).
            command.done.add_callback(self._step)
        else:
            self.engine.process_finished(self)
            self.engine.fail(
                SimulationError(
                    f"process {self.name!r} yielded unsupported command "
                    f"{command!r}"
                )
            )

    def _wait_all(self, events: list[Event]) -> None:
        pending = sum(1 for ev in events if not ev.triggered)
        if pending == 0:
            self.engine.schedule(0.0, self._step, [ev.value for ev in events])
            return
        remaining = [pending]

        def on_trigger(_value: Any) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self._step([ev.value for ev in events])

        for ev in events:
            if not ev.triggered:
                ev.add_callback(on_trigger)

    def _wait_any(self, events: list[Event]) -> None:
        for i, ev in enumerate(events):
            if ev.triggered:
                self.engine.schedule(0.0, self._step, (i, ev.value))
                return
        fired = [False]

        def make_callback(index: int):
            def on_trigger(value: Any) -> None:
                if not fired[0]:
                    fired[0] = True
                    self._step((index, value))

            return on_trigger

        for i, ev in enumerate(events):
            ev.add_callback(make_callback(i))
