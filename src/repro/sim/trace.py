"""Lightweight instrumentation: named counters and duration accumulators.

Protocol layers increment counters (messages sent, fences issued, cache
misses...) and record dwell times (time blocked on the load-balance counter).
Benchmarks and tests read them back to check behaviour, not just timing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Interval:
    """One recorded activity interval on a timeline lane."""

    lane: str
    label: str
    start: float
    end: float


@dataclass
class Trace:
    """Counter and timer sink shared across a simulated job."""

    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    durations: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Per-series sample histograms (:class:`repro.obs.metrics.Histogram`,
    #: fixed log2 buckets anchored at 1 ns — O(1) memory per series,
    #: unlike the raw lists this replaced).
    histograms: dict = field(default_factory=dict)
    #: Optional per-lane activity intervals (enable via record_intervals).
    intervals: list[Interval] = field(default_factory=list)
    #: Interval recording is opt-in: at scale it would dominate memory.
    record_intervals: bool = False
    #: Retain every raw observation alongside the buckets (opt-in: this
    #: restores the unbounded-growth behaviour; tests asserting exact
    #: values and exact-percentile readers enable it).
    keep_raw_samples: bool = False

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self.counters[name] += amount

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into duration bucket ``name``."""
        self.durations[name] += seconds

    def sample(self, name: str, value: float) -> None:
        """Record one observation into sample series ``name``.

        Observations land in a fixed-bucket log-scale histogram; the raw
        value is retained only under ``keep_raw_samples``.
        """
        h = self.histograms.get(name)
        if h is None:
            from ..obs.metrics import Histogram

            h = self.histograms[name] = Histogram(keep_raw=self.keep_raw_samples)
        h.record(value)

    @property
    def samples(self) -> dict[str, list[float]]:
        """Raw observations per series (empty unless ``keep_raw_samples``)."""
        return {
            name: h.raw
            for name, h in self.histograms.items()
            if h.keep_raw and h.count
        }

    def sample_summary(self, name: str) -> dict:
        """Deterministic summary (count/mean/min/max/p50/p95/p99) of a
        series; empty dict if the series was never sampled."""
        h = self.histograms.get(name)
        return h.summary() if h is not None else {}

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def time(self, name: str) -> float:
        """Accumulated duration ``name`` in seconds (0.0 if never recorded)."""
        return self.durations.get(name, 0.0)

    def interval(self, lane: str, label: str, start: float, end: float) -> None:
        """Record one activity interval (no-op unless enabled)."""
        if self.record_intervals and end > start:
            self.intervals.append(Interval(lane, label, start, end))

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of all counters (for before/after deltas)."""
        return dict(self.counters)

    def clear(self) -> None:
        """Reset all counters, durations, samples, and intervals."""
        self.counters.clear()
        self.durations.clear()
        self.histograms.clear()
        self.intervals.clear()
