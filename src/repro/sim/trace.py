"""Lightweight instrumentation: named counters and duration accumulators.

Protocol layers increment counters (messages sent, fences issued, cache
misses...) and record dwell times (time blocked on the load-balance counter).
Benchmarks and tests read them back to check behaviour, not just timing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Interval:
    """One recorded activity interval on a timeline lane."""

    lane: str
    label: str
    start: float
    end: float


@dataclass
class Trace:
    """Counter and timer sink shared across a simulated job."""

    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    durations: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    samples: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))
    #: Optional per-lane activity intervals (enable via record_intervals).
    intervals: list[Interval] = field(default_factory=list)
    #: Interval recording is opt-in: at scale it would dominate memory.
    record_intervals: bool = False

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self.counters[name] += amount

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into duration bucket ``name``."""
        self.durations[name] += seconds

    def sample(self, name: str, value: float) -> None:
        """Append one observation to sample series ``name``."""
        self.samples[name].append(value)

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def time(self, name: str) -> float:
        """Accumulated duration ``name`` in seconds (0.0 if never recorded)."""
        return self.durations.get(name, 0.0)

    def interval(self, lane: str, label: str, start: float, end: float) -> None:
        """Record one activity interval (no-op unless enabled)."""
        if self.record_intervals and end > start:
            self.intervals.append(Interval(lane, label, start, end))

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of all counters (for before/after deltas)."""
        return dict(self.counters)

    def clear(self) -> None:
        """Reset all counters, durations, samples, and intervals."""
        self.counters.clear()
        self.durations.clear()
        self.samples.clear()
        self.intervals.clear()
