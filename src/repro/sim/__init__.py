"""Deterministic discrete-event simulation engine.

The engine drives *simulated processes*: plain Python generators that yield
command objects (:class:`~repro.sim.primitives.Delay`,
:class:`~repro.sim.primitives.WaitEvent`, ...). All times are seconds of
simulated time; execution is deterministic (FIFO tie-breaking on equal
timestamps), so every benchmark in this package is exactly reproducible.
"""

from .engine import Engine
from .event import Event
from .primitives import Delay, WaitAll, WaitAny, WaitEvent
from .process import SimProcess
from .resources import Lock, Queue, Semaphore
from .trace import Trace

__all__ = [
    "Delay",
    "Engine",
    "Event",
    "Lock",
    "Queue",
    "Semaphore",
    "SimProcess",
    "Trace",
    "WaitAll",
    "WaitAny",
    "WaitEvent",
]
