"""Figure 8 driver: strided bandwidth vs contiguous-chunk size.

Transfers a fixed 1 MB patch whose contiguous chunk size l0 sweeps from
small to the full megabyte; the proposed zero-copy protocol posts one
non-blocking RDMA per chunk, so measured bandwidth tracks the Fig. 4
contiguous curve as l0 grows (Eq. 9 in action).
"""

from __future__ import annotations

from ..armci.config import ArmciConfig
from ..errors import ReproError
from ..types import StridedDescriptor, StridedShape
from ..util.units import MB, mbps
from .harness import two_proc_job

#: Chunk sizes from 512 B to the full 1 MB (powers of two).
DEFAULT_CHUNKS: tuple[int, ...] = tuple(2**k for k in range(9, 21))


def strided_bandwidth_sweep(
    total_bytes: int = MB,
    chunk_sizes: tuple[int, ...] = DEFAULT_CHUNKS,
    op: str = "put",
    config: ArmciConfig | None = None,
) -> list[tuple[int, float]]:
    """Strided transfer bandwidth per chunk size l0 (Fig. 8).

    Returns ``(l0, MB/s)`` rows for a ``total_bytes`` patch.
    """
    if op not in ("get", "put"):
        raise ReproError(f"op must be 'get' or 'put', got {op!r}")
    for l0 in chunk_sizes:
        if total_bytes % l0 != 0:
            raise ReproError(f"chunk {l0} does not divide total {total_bytes}")
    job = two_proc_job(config)
    results: list[tuple[int, float]] = []

    def body(rt):
        alloc = yield from rt.malloc(total_bytes)
        if rt.rank == 0:
            local = rt.world.space(0).allocate(total_bytes)
            yield from rt.get(1, local, alloc.addr(1), 16)  # warm caches
            yield from rt.fence(1)
            for l0 in chunk_sizes:
                nchunks = total_bytes // l0
                desc = StridedDescriptor(
                    StridedShape(l0, (nchunks,) if nchunks > 1 else ()),
                    (l0,) if nchunks > 1 else (),
                    (l0,) if nchunks > 1 else (),
                )
                t0 = rt.engine.now
                if op == "put":
                    yield from rt.puts(1, local, alloc.addr(1), desc)
                else:
                    yield from rt.gets(1, local, alloc.addr(1), desc)
                elapsed = rt.engine.now - t0
                results.append((l0, mbps(total_bytes, elapsed)))
                if op == "put":
                    yield from rt.fence(1)
        yield from rt.barrier()

    job.run(body)
    return results
