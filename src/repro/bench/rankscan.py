"""Figure 7 driver: get latency as a function of process rank.

2048 processes (128 nodes at 16/node, the 2*2*4*4*2 partition of Eq. 10,
ABCDET-mapped): rank 0 issues a small get to every other rank. The
pseudo-oscillatory curve is pure torus geometry — clusters of ranks at
equal network distance from rank 0 see equal latency, and each hop adds
~35 ns each way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..armci.config import ArmciConfig
from ..armci.runtime import ArmciJob


@dataclass(frozen=True)
class RankLatency:
    """Latency of a small get from rank 0 to ``rank``."""

    rank: int
    hops: int
    seconds: float


def rank_latency_scan(
    num_procs: int = 2048,
    procs_per_node: int = 16,
    nbytes: int = 16,
    config: ArmciConfig | None = None,
    rank_step: int = 1,
) -> list[RankLatency]:
    """Measure 16 B get latency from rank 0 to ranks 1..p-1 (Fig. 7).

    ``rank_step`` subsamples destinations for quicker runs.
    """
    job = ArmciJob(
        num_procs,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=procs_per_node,
    )
    job.init()
    targets = list(range(1, num_procs, rank_step))
    results: list[RankLatency] = []

    def body(rt):
        alloc = yield from rt.malloc(max(nbytes, 64))
        if rt.rank == 0:
            local = rt.world.space(0).allocate(max(nbytes, 64))
            for dst in targets:
                # Warm the endpoint + region cache for this destination,
                # then time one get (the paper's steady-state number).
                yield from rt.get(dst, local, alloc.addr(dst), nbytes)
                t0 = rt.engine.now
                yield from rt.get(dst, local, alloc.addr(dst), nbytes)
                results.append(
                    RankLatency(
                        dst, rt.world.network.hops(0, dst), rt.engine.now - t0
                    )
                )
        yield from rt.barrier()

    job.run(body)
    return results


def hop_latency_estimate(results: list[RankLatency]) -> float:
    """Per-hop one-way latency from the scan (the paper derives 35 ns).

    (max - min latency) / (hop spread * 2 for the round trip).
    """
    internode = [r for r in results if r.hops > 0]
    lo = min(internode, key=lambda r: r.seconds)
    hi = max(internode, key=lambda r: r.seconds)
    hop_spread = hi.hops - lo.hops
    if hop_spread == 0:
        raise ValueError("all destinations at equal distance; need a bigger job")
    return (hi.seconds - lo.seconds) / (hop_spread * 2)
