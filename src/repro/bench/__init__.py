"""Benchmark drivers regenerating the paper's tables and figures.

Each module produces the rows/series of one evaluation artifact
(Section IV); the ``benchmarks/`` directory wraps these in
pytest-benchmark targets that print paper-style tables. All results are
*simulated* measurements produced by running the actual protocols — see
DESIGN.md for the calibration story.
"""

from .latency import contiguous_latency_sweep, latency_per_byte
from .bandwidth import bandwidth_sweep, efficiency_series, n_half
from .rankscan import rank_latency_scan
from .strided import strided_bandwidth_sweep
from .amo import amo_latency_scan
from .scf import scf_comparison
from .tables import table_i_rows, table_ii_rows

__all__ = [
    "amo_latency_scan",
    "bandwidth_sweep",
    "contiguous_latency_sweep",
    "efficiency_series",
    "latency_per_byte",
    "n_half",
    "rank_latency_scan",
    "scf_comparison",
    "strided_bandwidth_sweep",
    "table_i_rows",
    "table_ii_rows",
]
