"""Figure 3 & 5 drivers: contiguous get/put latency and latency/byte."""

from __future__ import annotations

from ..armci.config import ArmciConfig
from ..errors import ReproError
from .harness import PAPER_SIZES, two_proc_job


def contiguous_latency_sweep(
    sizes: tuple[int, ...] = PAPER_SIZES,
    op: str = "get",
    config: ArmciConfig | None = None,
    samples: int = 3,
) -> list[tuple[int, float]]:
    """Blocking inter-node latency per message size (Fig. 3).

    Rank 0 issues blocking ops against rank 1's registered segment;
    caches are warmed before timing. Returns ``(size, seconds)`` rows.
    """
    if op not in ("get", "put"):
        raise ReproError(f"op must be 'get' or 'put', got {op!r}")
    job = two_proc_job(config)
    results: list[tuple[int, float]] = []

    def body(rt):
        alloc = yield from rt.malloc(max(sizes))
        if rt.rank == 0:
            local = rt.world.space(0).allocate(max(sizes))
            # Warm endpoint, regions, and the remote region cache.
            yield from rt.get(1, local, alloc.addr(1), 16)
            yield from rt.fence(1)
            for size in sizes:
                elapsed = 0.0
                for _ in range(samples):
                    t0 = rt.engine.now
                    if op == "get":
                        yield from rt.get(1, local, alloc.addr(1), size)
                    else:
                        yield from rt.put(1, local, alloc.addr(1), size)
                    elapsed += rt.engine.now - t0
                    if op == "put":
                        yield from rt.fence(1)  # drain acks, untimed
                results.append((size, elapsed / samples))
        yield from rt.barrier()

    job.run(body)
    return results


def latency_per_byte(
    sizes: tuple[int, ...] = PAPER_SIZES,
    op: str = "get",
    config: ArmciConfig | None = None,
) -> list[tuple[int, float]]:
    """Effective latency per byte in ns (Fig. 5) — the message-aggregation
    inflection-point study. ~1 ns/byte beyond 4 KB in the paper."""
    rows = contiguous_latency_sweep(sizes, op=op, config=config)
    return [(size, seconds / size * 1e9) for size, seconds in rows]
