"""Figure 11 driver: NWChem SCF, default vs asynchronous thread."""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.nwchem.scf import ScfConfig, ScfResult, run_scf
from ..armci.config import ArmciConfig


@dataclass(frozen=True)
class ScfComparison:
    """One process count's D-vs-AT cell of Fig. 11."""

    num_procs: int
    default: ScfResult
    async_thread: ScfResult

    @property
    def improvement(self) -> float:
        """Fractional execution-time reduction from the AT design."""
        return 1.0 - self.async_thread.total_time / self.default.total_time

    @property
    def counter_time_reduction(self) -> float:
        """Factor by which AT shrinks aggregate counter time."""
        at = self.async_thread.counter_time_total
        return self.default.counter_time_total / at if at > 0 else float("inf")


#: Benchmark-scale SCF input: the paper's 644 basis functions with a task
#: grain sized so the shared counter is exercised hard but not saturated.
BENCH_SCF = ScfConfig(nblocks=64, task_time=4e-3, iterations=1)


def scf_comparison(
    proc_counts: tuple[int, ...] = (1024, 2048, 4096),
    scf: ScfConfig = BENCH_SCF,
    procs_per_node: int = 16,
) -> list[ScfComparison]:
    """Run Fig. 11's grid: D and AT at each process count."""
    rows = []
    for p in proc_counts:
        d = run_scf(p, ArmciConfig.default_mode(), scf, procs_per_node, "D")
        at = run_scf(
            p, ArmciConfig.async_thread_mode(), scf, procs_per_node, "AT"
        )
        rows.append(ScfComparison(p, d, at))
    return rows
