"""Table I & II drivers: attribute definitions and measured values.

Table I is definitional; Table II's values are *measured inside the
simulation* (context/endpoint/region creation timed with the simulated
clock) and cross-checked against the closed-form complexity model
(Eqs. 1-6).
"""

from __future__ import annotations

from ..armci.config import ArmciConfig
from ..armci.runtime import ArmciJob
from ..machine.bgq import BGQParams
from ..model.complexity import TABLE_I_ROWS
from ..util.units import us


def table_i_rows() -> list[tuple[int, str, str]]:
    """Table I verbatim: (index, property, symbol)."""
    return list(TABLE_I_ROWS)


def measure_setup_costs(num_contexts: int = 2) -> dict[str, float]:
    """Measure the Table II timing attributes in the simulator.

    Returns a dict of measured values (times in seconds):
    ``context_create_first``, ``context_create_second``,
    ``endpoint_create`` (beta), ``memregion_create`` (delta).
    """
    job = ArmciJob(
        2,
        config=ArmciConfig(async_thread=False, num_contexts=1),
        procs_per_node=1,
    )
    measured: dict[str, float] = {}

    def body(rt):
        if rt.rank == 0:
            client = rt.client
            for i in range(num_contexts):
                t0 = rt.engine.now
                yield from client.create_context()
                measured[f"context_create_{i}"] = rt.engine.now - t0
            t0 = rt.engine.now
            yield from rt.endpoints.get(1)
            measured["endpoint_create"] = rt.engine.now - t0
            addr = rt.world.space(0).allocate(4096)
            t0 = rt.engine.now
            yield from rt.world.regions[0].create(addr, 4096)
            measured["memregion_create"] = rt.engine.now - t0
        return
        yield  # pragma: no cover - makes this a generator

    # Run outside job.init() so context creation is measured from scratch.
    procs = [job.engine.spawn(body(rt), name=f"m{rt.rank}") for rt in job.processes]
    job.engine.run_until_complete(procs)
    measured["context_create_first"] = measured.pop("context_create_0")
    if num_contexts > 1:
        measured["context_create_second"] = measured.pop("context_create_1")
    return measured


def table_ii_rows() -> list[tuple[str, str, str, str]]:
    """Table II: (property, symbol, paper value, measured value)."""
    m = measure_setup_costs()
    params = BGQParams()
    return [
        ("Message Size for Data Transfer", "m", "16 B - 1 MB", "16 B - 1 MB"),
        ("Total number of processes", "p", "2 - 4096", "2 - 4096"),
        ("Number of processes/Node", "c", "1 - 16", "1 - 16"),
        ("Endpoint Space Utilization", "alpha", "4 B", f"{params.endpoint_space} B"),
        (
            "Endpoint Creation Time",
            "beta",
            "0.3 us",
            f"{us(m['endpoint_create']):.2f} us",
        ),
        ("Memory Region Space Utilization", "gamma", "8 B", f"{params.memregion_space} B"),
        (
            "Memory Region Creation Time",
            "delta",
            "43 us",
            f"{us(m['memregion_create']):.1f} us",
        ),
        ("Context Space Utilization", "epsilon", "varies", f"{params.context_space} B"),
        (
            "Context Creation Time",
            "t_ctx",
            "3821 - 4271 us",
            f"{us(m['context_create_first']):.0f} - "
            f"{us(m['context_create_second']):.0f} us",
        ),
        ("Number of contexts", "rho", "1 - 2", "1 - 2"),
        ("Communication Clique", "zeta", "1 - p", "1 - p"),
        ("Number of Active Global Address Structure", "sigma", "1 - 7", "1 - 7"),
        ("Number of Local Buffers used for Communication", "tau", "1 - 3", "1 - 3"),
    ]
