"""Figure 9 driver: fetch-and-add latency on a shared counter.

The micro-kernel of NWChem's load balancing: every rank repeatedly
fetch-and-adds a counter resident at rank 0, with four configurations —
default (D) vs asynchronous thread (AT), each with and without rank 0
performing ~300 us computation chunks. The what-if fifth configuration
models NIC-hardware AMOs (the Gemini-style support the paper's
conclusion requests for future Blue Gene hardware).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..armci.config import ArmciConfig
from ..armci.runtime import ArmciJob
from ..errors import ReproError
from ..gax.counter import SharedCounter

#: Rank 0's per-chunk computation time in the "with compute" variants.
COMPUTE_CHUNK = 300e-6


@dataclass(frozen=True)
class AmoResult:
    """Average fetch-and-add latency for one (p, configuration) cell."""

    num_procs: int
    label: str
    mean_latency: float
    max_latency: float


def _config_for(label: str) -> tuple[ArmciConfig, bool, bool]:
    """(armci config, rank0 computes, hardware AMO) per curve label."""
    table = {
        "D": (ArmciConfig.default_mode(), False, False),
        "AT": (ArmciConfig.async_thread_mode(), False, False),
        "D+compute": (ArmciConfig.default_mode(), True, False),
        "AT+compute": (ArmciConfig.async_thread_mode(), True, False),
        "HW+compute": (ArmciConfig.default_mode(), True, True),
    }
    if label not in table:
        raise ReproError(f"unknown AMO config {label!r}; valid: {sorted(table)}")
    return table[label]


def amo_latency_run(
    num_procs: int,
    label: str,
    iterations: int = 8,
    procs_per_node: int = 16,
) -> AmoResult:
    """One cell of Fig. 9: mean fetch-and-add latency seen by ranks 1..p-1."""
    config, rank0_computes, hardware = _config_for(label)
    job = ArmciJob(
        num_procs,
        config=config,
        procs_per_node=min(procs_per_node, num_procs),
        nic_amo_support=hardware,
    )
    job.init()
    latencies: list[float] = []
    # Rank 0 stops computing once every requester is done.
    done = {"count": 0}
    requesters = num_procs - 1

    def body(rt):
        counter = yield from SharedCounter.create(rt, host=0)
        yield from rt.barrier()
        if rt.rank == 0:
            if rank0_computes:
                while done["count"] < requesters:
                    yield from rt.compute(COMPUTE_CHUNK)
                    yield from rt.progress()
            yield from rt.barrier()
            return
        for _ in range(iterations):
            t0 = rt.engine.now
            yield from counter.next(rt)
            latencies.append(rt.engine.now - t0)
        done["count"] += 1
        yield from rt.barrier()

    job.run(body)
    if len(latencies) != requesters * iterations:
        raise ReproError(
            f"lost AMO samples: {len(latencies)} != {requesters * iterations}"
        )
    return AmoResult(
        num_procs,
        label,
        mean_latency=sum(latencies) / len(latencies),
        max_latency=max(latencies),
    )


def amo_latency_scan(
    proc_counts: tuple[int, ...] = (4, 16, 64, 256, 1024),
    labels: tuple[str, ...] = ("D", "AT", "D+compute", "AT+compute"),
    iterations: int = 8,
) -> list[AmoResult]:
    """The full Fig. 9 grid (plus optional hardware what-if)."""
    results = []
    for label in labels:
        for p in proc_counts:
            results.append(amo_latency_run(p, label, iterations=iterations))
    return results
