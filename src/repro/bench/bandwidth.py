"""Figure 4 & 6 drivers: windowed bandwidth and bandwidth efficiency."""

from __future__ import annotations

from ..armci.config import ArmciConfig
from ..errors import ReproError
from ..util.units import mbps
from .harness import PAPER_SIZES, two_proc_job


def bandwidth_sweep(
    sizes: tuple[int, ...] = PAPER_SIZES,
    op: str = "put",
    config: ArmciConfig | None = None,
    window: int = 32,
) -> list[tuple[int, float]]:
    """Pipelined inter-node bandwidth per message size (Fig. 4).

    Rank 0 posts ``window`` non-blocking operations per size, waits for
    local completion, and reports payload MB/s. Returns ``(size, MB/s)``.
    """
    if op not in ("get", "put"):
        raise ReproError(f"op must be 'get' or 'put', got {op!r}")
    job = two_proc_job(config)
    results: list[tuple[int, float]] = []

    def body(rt):
        alloc = yield from rt.malloc(max(sizes))
        if rt.rank == 0:
            local = rt.world.space(0).allocate(max(sizes))
            yield from rt.get(1, local, alloc.addr(1), 16)  # warm caches
            yield from rt.fence(1)
            for size in sizes:
                t0 = rt.engine.now
                for _ in range(window):
                    if op == "put":
                        yield from rt.nbput(1, local, alloc.addr(1), size)
                    else:
                        yield from rt.nbget(1, local, alloc.addr(1), size)
                yield from rt.wait_all()
                elapsed = rt.engine.now - t0
                results.append((size, mbps(window * size, elapsed)))
                if op == "put":
                    yield from rt.fence(1)
        yield from rt.barrier()

    job.run(body)
    return results


def efficiency_series(
    sizes: tuple[int, ...] = PAPER_SIZES,
    op: str = "put",
    config: ArmciConfig | None = None,
    peak_bandwidth: float = 1.8e9,
) -> list[tuple[int, float]]:
    """Bandwidth efficiency vs the 1.8 GB/s available peak (Fig. 6).

    The paper reads N1/2 = 2 KB and >= 90% efficiency beyond 16 KB off
    this curve.
    """
    rows = bandwidth_sweep(sizes, op=op, config=config)
    peak_mbps = peak_bandwidth / 1e6
    return [(size, bw / peak_mbps) for size, bw in rows]


def n_half(
    efficiency: list[tuple[int, float]],
) -> int:
    """Smallest measured message size reaching half of peak bandwidth.

    Raises
    ------
    ReproError
        If no size in the series reaches 50% efficiency.
    """
    for size, eff in sorted(efficiency):
        if eff >= 0.5:
            return size
    raise ReproError("no message size reached 50% of peak bandwidth")
