"""Command-line runner: regenerate any paper table/figure without pytest.

Usage::

    python -m repro.bench list
    python -m repro.bench fig3
    python -m repro.bench fig9 --procs 4 16 64
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from ..util import ascii_chart, bytes_fmt, render_table, us
from . import (
    amo_latency_scan,
    bandwidth_sweep,
    contiguous_latency_sweep,
    efficiency_series,
    latency_per_byte,
    n_half,
    rank_latency_scan,
    scf_comparison,
    strided_bandwidth_sweep,
    table_i_rows,
    table_ii_rows,
)
from .rankscan import hop_latency_estimate


def _fig3(args) -> str:
    gets = contiguous_latency_sweep(op="get")
    puts = dict(contiguous_latency_sweep(op="put"))
    rows = [[bytes_fmt(s), f"{us(g):.2f}", f"{us(puts[s]):.2f}"] for s, g in gets]
    return render_table(
        ["msg size", "get (us)", "put (us)"], rows,
        title="Figure 3: inter-node latency",
    )


def _fig4(args) -> str:
    puts = bandwidth_sweep(op="put")
    gets = bandwidth_sweep(op="get")
    get_by = dict(gets)
    rows = [[bytes_fmt(s), f"{b:.0f}", f"{get_by[s]:.0f}"] for s, b in puts]
    table = render_table(
        ["msg size", "put (MB/s)", "get (MB/s)"], rows,
        title="Figure 4: inter-node bandwidth",
    )
    chart = ascii_chart(
        {"put": puts, "get": gets},
        log_x=True,
        x_label="msg size (B)",
        y_label="MB/s",
    )
    return table + "\n\n" + chart


def _fig5(args) -> str:
    rows = [[bytes_fmt(s), f"{v:.3f}"] for s, v in latency_per_byte()]
    return render_table(
        ["msg size", "latency/byte (ns)"], rows,
        title="Figure 5: effective latency per byte",
    )


def _fig6(args) -> str:
    series = efficiency_series()
    rows = [[bytes_fmt(s), f"{v * 100:.1f}%"] for s, v in series]
    table = render_table(
        ["msg size", "efficiency"], rows,
        title="Figure 6: bandwidth efficiency vs 1.8 GB/s",
    )
    chart = ascii_chart(
        {"efficiency": series},
        log_x=True,
        x_label="msg size (B)",
        y_label="fraction of 1.8 GB/s",
    )
    return table + f"\nN1/2 = {bytes_fmt(n_half(series))}\n\n" + chart


def _fig7(args) -> str:
    results = rank_latency_scan(num_procs=args.procs[0] if args.procs else 2048)
    internode = [r for r in results if r.hops > 0]
    by_hops: dict[int, float] = {}
    counts: dict[int, int] = {}
    for r in internode:
        by_hops.setdefault(r.hops, r.seconds)
        counts[r.hops] = counts.get(r.hops, 0) + 1
    rows = [[h, counts[h], f"{us(by_hops[h]):.3f}"] for h in sorted(by_hops)]
    table = render_table(
        ["hops", "ranks", "get latency (us)"], rows,
        title="Figure 7: 16 B get latency vs rank (ABCDET)",
    )
    return table + f"\nper-hop latency: {hop_latency_estimate(results) * 1e9:.1f} ns"


def _fig8(args) -> str:
    puts = strided_bandwidth_sweep(op="put")
    gets = dict(strided_bandwidth_sweep(op="get"))
    rows = [[bytes_fmt(l0), f"{b:.0f}", f"{gets[l0]:.0f}"] for l0, b in puts]
    return render_table(
        ["chunk l0", "put (MB/s)", "get (MB/s)"], rows,
        title="Figure 8: strided bandwidth, 1 MB total",
    )


def _fig9(args) -> str:
    procs = tuple(args.procs) if args.procs else (4, 16, 64, 256)
    labels = ("D", "AT", "D+compute", "AT+compute", "HW+compute")
    results = amo_latency_scan(proc_counts=procs, labels=labels)
    cells = {(r.label, r.num_procs): r for r in results}
    rows = [
        [p] + [f"{us(cells[(label, p)].mean_latency):.2f}" for label in labels]
        for p in procs
    ]
    return render_table(
        ["procs"] + [f"{label} (us)" for label in labels], rows,
        title="Figure 9: mean fetch-and-add latency",
    )


def _fig11(args) -> str:
    from ..apps.nwchem import ScfConfig

    procs = tuple(args.procs) if args.procs else (64, 256)
    scf = ScfConfig(nblocks=24, task_time=2e-3, iterations=1, tasks_per_draw=2)
    rows = []
    for cell in scf_comparison(proc_counts=procs, scf=scf):
        rows.append(
            [
                cell.num_procs,
                f"{cell.default.total_time * 1e3:.1f}",
                f"{cell.async_thread.total_time * 1e3:.1f}",
                f"{cell.improvement * 100:.0f}%",
            ]
        )
    return render_table(
        ["procs", "D total (ms)", "AT total (ms)", "AT gain"], rows,
        title="Figure 11: SCF proxy, default vs async thread "
        "(CLI scale; full scale via benchmarks/)",
    )


def _table1(args) -> str:
    return render_table(
        ["#", "Property", "Symbol"], table_i_rows(),
        title="Table I: PAMI time and space attributes",
    )


def _table2(args) -> str:
    return render_table(
        ["Property", "Symbol", "Paper", "Measured (sim)"], table_ii_rows(),
        title="Table II: empirical attribute values",
    )


COMMANDS: dict[str, Callable] = {
    "table1": _table1,
    "table2": _table2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig11": _fig11,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures (simulated).",
    )
    parser.add_argument(
        "target",
        help="one of: list, all, " + ", ".join(COMMANDS),
    )
    parser.add_argument(
        "--procs",
        type=int,
        nargs="*",
        help="override process counts (fig7/fig9/fig11)",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        print("available targets: all, " + ", ".join(COMMANDS))
        return 0
    if args.target == "all":
        for name, fn in COMMANDS.items():
            print(fn(args))
            print()
        return 0
    fn = COMMANDS.get(args.target)
    if fn is None:
        print(
            f"unknown target {args.target!r}; try 'list'", file=sys.stderr
        )
        return 2
    print(fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
