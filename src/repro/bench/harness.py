"""Shared benchmark machinery."""

from __future__ import annotations

from ..armci.config import ArmciConfig
from ..armci.runtime import ArmciJob

#: The paper's message-size sweep: 16 B to 1 MB in powers of two.
PAPER_SIZES: tuple[int, ...] = tuple(2**k for k in range(4, 21))


def two_proc_job(
    config: ArmciConfig | None = None, **kwargs
) -> ArmciJob:
    """Two processes on adjacent nodes — the Fig. 3/4 setup."""
    job = ArmciJob(
        2,
        config=config if config is not None else ArmciConfig(),
        procs_per_node=kwargs.pop("procs_per_node", 1),
        **kwargs,
    )
    job.init()
    return job
