"""Chaos injection: transient transport faults for resilience testing.

The seed models only fail-stop ranks (:mod:`repro.pami.faults`). Real
networks also exhibit *transient* faults — dropped packets, checksum
rejects, duplicated deliveries, latency spikes — that a production PGAS
runtime must absorb with retries rather than surface as process death
(the resiliency motivation of Section I; cf. the timeout/error-completion
protocols of scalable MPI-3 RMA implementations).

This module provides the configuration surface:

- :class:`ChaosConfig` — seeded probabilities for drop / corruption /
  duplication / jitter, optionally restricted to chosen links, plus the
  detection and transport-retransmit knobs.
- :class:`FaultPlan` — scheduled fail-stop crashes (``rank`` dies at
  simulated time ``t``), composing with the transient model.
- :class:`ChaosEngine` — the runtime object the PAMI layer consults at
  each transfer. It is only constructed when injection is enabled, so
  the fast path pays exactly one ``world.chaos is None`` check.

Fault semantics (what the ARMCI retry layer relies on):

- Faults are injected at **request delivery, before any target-side
  effect** (remote write, AM handler, AMO application). A retried
  operation therefore applies **exactly once** — the lost attempt never
  touched the target. Corruption is modeled as a checksum reject at the
  receiving NIC: the packet is discarded, never written.
- Reply/ack control packets ride the NIC-reliable path and are not
  chaos-exposed; only the forward request path rolls the dice.
- Duplicated deliveries are discarded by sequence-number dedup at the
  target (they cost handler time but have no semantic effect).
- Jitter on ordered traffic is clamped per (src, dst) pair so delivery
  order on a deterministic route stays monotone (head-of-line blocking);
  AMOs are unordered and take unclamped jitter.
- Active messages with no reply cookie (notify, unlock, group and
  tag-matched sends) cannot report loss to their initiator, so the
  transport retransmits them after :attr:`ChaosConfig.retransmit_delay`,
  re-rolling the dice up to :attr:`ChaosConfig.max_retransmits` times;
  the final attempt always delivers (bounded-loss transport, so a
  ``drop_prob`` of 1.0 cannot livelock the simulation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .errors import ReproError
from .pami.context import PamiContext, WorkItem
from .pami.faults import FAULT_DETECT_DELAY, TransientFault

#: Valid resource-fault kinds for :class:`ResourceFault`.
RESOURCE_FAULT_KINDS = ("exhaust_memregions", "stall_progress", "saturate_fifo")

#: Valid corruption models for :attr:`ChaosConfig.corrupt_mode`.
CORRUPT_MODES = ("detected", "payload")

#: Valid link-fault kinds for :class:`LinkFault`.
LINK_FAULT_KINDS = ("kill", "revive", "degrade", "lossy", "corrupt")


class ChaosError(ReproError):
    """Invalid chaos configuration or fault plan."""


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ChaosError(f"{name} must be in [0, 1], got {value}")


def _check_coord(name: str, coord) -> None:
    if not isinstance(coord, tuple) or not all(
        isinstance(c, int) and c >= 0 for c in coord
    ):
        raise ChaosError(f"{name} must be a node coordinate tuple, got {coord!r}")


@dataclass(frozen=True)
class LinkFault:
    """One scheduled link fault on the torus link ``(a, b)`` at time ``at``.

    Kinds
    -----
    ``kill``
        The link dies: every transfer routed across it is lost until a
        ``revive`` (fault-aware routing detours around it meanwhile).
    ``revive``
        The link comes back healthy (clears degradation/loss modes too).
    ``degrade``
        Per-hop latency across the link is multiplied by ``factor``.
    ``lossy``
        Transfers crossing the link are dropped with probability ``prob``.
    ``corrupt``
        Transfers crossing the link get one payload bit flipped with
        probability ``prob`` — *silently*, unless end-to-end integrity
        (``ArmciConfig.integrity``) catches it.
    """

    kind: str
    a: tuple[int, ...]
    b: tuple[int, ...]
    at: float
    factor: float = 1.0
    prob: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in LINK_FAULT_KINDS:
            raise ChaosError(
                f"unknown link fault {self.kind!r}; valid: {LINK_FAULT_KINDS}"
            )
        _check_coord("link endpoint a", self.a)
        _check_coord("link endpoint b", self.b)
        if self.at < 0.0:
            raise ChaosError(f"fault time must be >= 0, got {self.at}")
        if self.kind == "degrade" and self.factor < 1.0:
            raise ChaosError(
                f"degrade factor must be >= 1, got {self.factor}"
            )
        if self.kind in ("lossy", "corrupt"):
            _check_prob(f"{self.kind} prob", self.prob)


@dataclass(frozen=True)
class ChaosConfig:
    """Transient-fault injection knobs (all probabilities per transfer).

    ``drop_prob`` and ``corrupt_prob`` are mutually exclusive outcomes of
    one roll (their sum must stay <= 1); both discard the request before
    it takes effect, differing only in the reported reason.
    """

    #: RNG seed: identical configs replay identical fault sequences.
    seed: int = 0
    #: Probability a request is silently lost in the network.
    drop_prob: float = 0.0
    #: Probability a request is checksum-rejected at the receiving NIC.
    corrupt_prob: float = 0.0
    #: Probability a delivered message is delivered twice (the duplicate
    #: is discarded by sequence-number dedup, costing handler time).
    dup_prob: float = 0.0
    #: Probability a transfer takes extra latency.
    jitter_prob: float = 0.0
    #: Maximum extra latency per jittered transfer (uniform in [0, max]).
    jitter_max: float = 0.0
    #: Restrict injection to these (src, dst) links; None = every link.
    links: frozenset[tuple[int, int]] | None = None
    #: Delay before the initiator NIC reports a lost request (timeout /
    #: error-completion path).
    detect_delay: float = FAULT_DETECT_DELAY
    #: Transport retransmit backoff for cookie-less active messages.
    retransmit_delay: float = 5e-6
    #: Retransmit budget for cookie-less AMs; the final attempt always
    #: delivers so injection cannot livelock fire-and-forget traffic.
    max_retransmits: int = 8
    #: Corruption model. ``"detected"`` (the legacy seed behaviour): the
    #: receiving NIC's checksum rejects the packet, so corruption is just
    #: a loss with a different reason. ``"payload"``: the corruption is
    #: *silent* — one payload bit flips in flight and the damaged data
    #: lands, unless ``ArmciConfig.integrity`` verification catches it.
    corrupt_mode: str = "detected"
    #: Scheduled link faults (kill/degrade/lossy/corrupt/revive), applied
    #: at their ``at`` times; requires the world's link-fault model,
    #: which is enabled automatically when any are present.
    link_faults: tuple = ()

    def __post_init__(self) -> None:
        if self.corrupt_mode not in CORRUPT_MODES:
            raise ChaosError(
                f"unknown corrupt_mode {self.corrupt_mode!r}; "
                f"valid: {CORRUPT_MODES}"
            )
        for lf in self.link_faults:
            if not isinstance(lf, LinkFault):
                raise ChaosError(
                    f"link_faults entries must be LinkFault, got {lf!r}"
                )
        _check_prob("drop_prob", self.drop_prob)
        _check_prob("corrupt_prob", self.corrupt_prob)
        _check_prob("dup_prob", self.dup_prob)
        _check_prob("jitter_prob", self.jitter_prob)
        if self.drop_prob + self.corrupt_prob > 1.0:
            raise ChaosError(
                "drop_prob + corrupt_prob must not exceed 1, got "
                f"{self.drop_prob} + {self.corrupt_prob}"
            )
        if self.jitter_max < 0.0:
            raise ChaosError(f"jitter_max must be >= 0, got {self.jitter_max}")
        if self.detect_delay < 0.0:
            raise ChaosError(f"detect_delay must be >= 0, got {self.detect_delay}")
        if self.retransmit_delay <= 0.0:
            raise ChaosError(
                f"retransmit_delay must be > 0, got {self.retransmit_delay}"
            )
        if self.max_retransmits < 0:
            raise ChaosError(
                f"max_retransmits must be >= 0, got {self.max_retransmits}"
            )
        if self.links is not None:
            for pair in self.links:
                if (
                    not isinstance(pair, tuple)
                    or len(pair) != 2
                    or not all(isinstance(r, int) and r >= 0 for r in pair)
                ):
                    raise ChaosError(f"links entries must be (src, dst), got {pair!r}")

    @property
    def enabled(self) -> bool:
        """Whether any injection can actually occur."""
        return (
            self.drop_prob > 0.0
            or self.corrupt_prob > 0.0
            or self.dup_prob > 0.0
            or (self.jitter_prob > 0.0 and self.jitter_max > 0.0)
        )

    @classmethod
    def light(cls, seed: int = 0) -> "ChaosConfig":
        """Mild preset (low drop/dup/jitter): enough injection to shake
        retry and ordering paths without drowning a run in retransmits.
        Used by the verification fuzz targets."""
        return cls(
            seed=seed,
            drop_prob=0.02,
            dup_prob=0.02,
            jitter_prob=0.1,
            jitter_max=2e-6,
        )


@dataclass(frozen=True)
class RankCrash:
    """One scheduled fail-stop crash: ``rank`` dies at simulated ``at``."""

    rank: int
    at: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ChaosError(f"crash rank must be >= 0, got {self.rank}")
        if self.at < 0.0:
            raise ChaosError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class ResourceFault:
    """One scheduled *resource* fault (non-fatal; the rank stays alive).

    Kinds
    -----
    ``exhaust_memregions``
        Clamp ``rank``'s memory-region budget to what is currently in
        use; later registrations fail and transfers degrade to the
        active-message fall-back (Eqs. 7–8).
    ``stall_progress``
        Wedge ``rank``'s asynchronous progress thread (it stops
        servicing its context). Liveness then depends on the progress
        watchdog failing over, or on deadlines surfacing the stall.
    ``saturate_fifo``
        Burst ``amount`` junk work items into ``rank``'s progress-context
        FIFO, consuming flow-control credits; senders targeting the rank
        hit backpressure until the burst drains.
    """

    kind: str
    rank: int
    at: float
    amount: int = 0

    def __post_init__(self) -> None:
        if self.kind not in RESOURCE_FAULT_KINDS:
            raise ChaosError(
                f"unknown resource fault {self.kind!r}; "
                f"valid: {RESOURCE_FAULT_KINDS}"
            )
        if self.rank < 0:
            raise ChaosError(f"fault rank must be >= 0, got {self.rank}")
        if self.at < 0.0:
            raise ChaosError(f"fault time must be >= 0, got {self.at}")
        if self.kind == "saturate_fifo" and self.amount < 1:
            raise ChaosError(
                f"saturate_fifo needs amount >= 1, got {self.amount}"
            )


class FifoNoiseItem(WorkItem):
    """Junk work injected by ``saturate_fifo``.

    Occupies one FIFO slot (credit) until serviced and costs one handler
    dispatch, with no semantic effect — modelling a burst of unexpected
    traffic (e.g. an all-to-one incast) saturating the reception FIFO.
    """

    credited = True

    def cost(self, ctx: PamiContext) -> float:
        return ctx.params.am_handler_time

    def execute(self, ctx: PamiContext) -> None:
        ctx.trace.incr("chaos.noise_serviced")


@dataclass
class FaultPlan:
    """A schedule of fail-stop crashes and resource faults.

    Chainable: ``FaultPlan().crash(2, at=1e-3).saturate_fifo(0, at=2e-3,
    amount=64).stall_progress(1, at=3e-3)``.
    """

    crashes: list[RankCrash] = field(default_factory=list)
    resource_faults: list[ResourceFault] = field(default_factory=list)
    link_faults: list[LinkFault] = field(default_factory=list)

    def crash(self, rank: int, at: float) -> "FaultPlan":
        """Schedule ``rank`` to fail at simulated time ``at``."""
        self.crashes.append(RankCrash(rank, at))
        return self

    def crash_each(self, ranks, start: float, spacing: float = 0.0) -> "FaultPlan":
        """Schedule each of ``ranks`` to fail, ``spacing`` seconds apart.

        The recovery chaos schedules build on this: spacing chosen inside
        an epoch kills ranks mid-transfer; spacing near an epoch boundary
        kills them mid-checkpoint. ``spacing=0`` is a simultaneous
        multi-rank loss (a node failure taking several processes).
        """
        for i, rank in enumerate(ranks):
            self.crash(rank, start + i * spacing)
        return self

    def exhaust_memregions(self, rank: int, at: float) -> "FaultPlan":
        """Exhaust ``rank``'s memory-region budget at time ``at``."""
        self.resource_faults.append(
            ResourceFault("exhaust_memregions", rank, at)
        )
        return self

    def stall_progress(self, rank: int, at: float) -> "FaultPlan":
        """Wedge ``rank``'s async progress thread at time ``at``."""
        self.resource_faults.append(ResourceFault("stall_progress", rank, at))
        return self

    def saturate_fifo(self, rank: int, at: float, amount: int = 32) -> "FaultPlan":
        """Burst ``amount`` junk items into ``rank``'s FIFO at time ``at``."""
        self.resource_faults.append(
            ResourceFault("saturate_fifo", rank, at, amount)
        )
        return self

    def kill_link(self, a, b, at: float) -> "FaultPlan":
        """Kill the torus link ``(a, b)`` at time ``at``."""
        self.link_faults.append(LinkFault("kill", tuple(a), tuple(b), at))
        return self

    def revive_link(self, a, b, at: float) -> "FaultPlan":
        """Revive the torus link ``(a, b)`` at time ``at``."""
        self.link_faults.append(LinkFault("revive", tuple(a), tuple(b), at))
        return self

    def degrade_link(self, a, b, at: float, factor: float) -> "FaultPlan":
        """Multiply the link's per-hop latency by ``factor`` at time ``at``."""
        self.link_faults.append(
            LinkFault("degrade", tuple(a), tuple(b), at, factor=factor)
        )
        return self

    def lossy_link(self, a, b, at: float, prob: float) -> "FaultPlan":
        """Make the link drop crossing transfers w.p. ``prob`` at ``at``."""
        self.link_faults.append(
            LinkFault("lossy", tuple(a), tuple(b), at, prob=prob)
        )
        return self

    def corrupt_link(self, a, b, at: float, prob: float) -> "FaultPlan":
        """Make the link silently flip payload bits w.p. ``prob`` at ``at``."""
        self.link_faults.append(
            LinkFault("corrupt", tuple(a), tuple(b), at, prob=prob)
        )
        return self


class ChaosEngine:
    """Runtime dice-roller consulted by the PAMI transfer paths.

    Constructed by :class:`~repro.pami.world.PamiWorld` only when the
    config is enabled; every injection site guards with a single
    ``world.chaos is None`` check, so disabled runs pay no RNG calls.
    """

    __slots__ = ("config", "trace", "_rng", "_last_deliver")

    def __init__(self, config: ChaosConfig, trace) -> None:
        self.config = config
        self.trace = trace
        self._rng = random.Random(config.seed)
        #: Per-(src, dst) high-water delivery time for jitter clamping.
        self._last_deliver: dict[tuple[int, int], float] = {}

    def _applies(self, src: int, dst: int) -> bool:
        links = self.config.links
        return links is None or (src, dst) in links

    def transfer_fault(self, src: int, dst: int, kind: str):
        """Roll drop/corruption for one request; None = delivered clean.

        Returns a :class:`~repro.pami.faults.TransientFault` for a loss
        (or a detected corruption), a
        :class:`~repro.pami.integrity.PayloadCorruption` for a silent
        payload corruption (``corrupt_mode="payload"``), or None.
        """
        if not self._applies(src, dst):
            return None
        cfg = self.config
        roll = self._rng.random()
        if roll < cfg.drop_prob:
            self.trace.incr("chaos.drops")
            self.trace.incr(f"chaos.drops.{kind}")
            return TransientFault("dropped", src, dst)
        if roll < cfg.drop_prob + cfg.corrupt_prob:
            self.trace.incr("chaos.corruptions")
            self.trace.incr(f"chaos.corruptions.{kind}")
            if cfg.corrupt_mode == "payload":
                # Extra RNG draws happen only in payload mode, so the
                # legacy "detected" fault sequences replay unchanged.
                from .pami.integrity import PayloadCorruption

                return PayloadCorruption(
                    src, dst, self._rng.random(), self._rng.randrange(8)
                )
            return TransientFault("corrupted", src, dst)
        return None

    def duplicate(self, src: int, dst: int) -> bool:
        """Whether a delivered message is delivered a second time."""
        if not self._applies(src, dst) or self.config.dup_prob <= 0.0:
            return False
        if self._rng.random() < self.config.dup_prob:
            self.trace.incr("chaos.duplicates")
            return True
        return False

    def _jitter(self, src: int, dst: int) -> float:
        cfg = self.config
        if (
            not self._applies(src, dst)
            or cfg.jitter_prob <= 0.0
            or cfg.jitter_max <= 0.0
        ):
            return 0.0
        if self._rng.random() < cfg.jitter_prob:
            self.trace.incr("chaos.jittered")
            return self._rng.random() * cfg.jitter_max
        return 0.0

    def ordered_deliver(self, src: int, dst: int, deliver: float) -> float:
        """Jittered delivery time for *ordered* traffic on (src, dst).

        Clamped monotone per pair: a jittered packet head-of-line blocks
        later packets on the same deterministic route, so the
        :class:`~repro.pami.ordering.OrderingChecker` invariant holds.
        """
        t = deliver + self._jitter(src, dst)
        floor = self._last_deliver.get((src, dst))
        if floor is not None and floor > t:
            t = floor
        self._last_deliver[(src, dst)] = t
        return t

    def unordered_deliver(self, src: int, dst: int, deliver: float) -> float:
        """Jittered delivery time for unordered traffic (AMOs): no clamp."""
        return deliver + self._jitter(src, dst)
