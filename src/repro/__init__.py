"""Scalable PGAS communication subsystem on Blue Gene/Q — simulated.

A full reproduction of Vishnu, Kerbyson, Barker, van Dam, *Building
Scalable PGAS Communication Subsystem on Blue Gene/Q* (IPDPS/IPPS 2013)
over a deterministic discrete-event model of the machine. See README.md
for the quickstart, DESIGN.md for the architecture and substitution
rationale, and EXPERIMENTS.md for paper-vs-measured results.

Most users start with::

    from repro.armci import ArmciConfig, ArmciJob
    from repro.gax import GlobalArray, Patch, SharedCounter
"""

from .armci import ArmciConfig, ArmciJob, ArmciProcess
from .chaos import ChaosConfig, FaultPlan, RankCrash, ResourceFault
from .machine import BGQParams

__version__ = "1.0.0"

__all__ = [
    "ArmciConfig",
    "ArmciJob",
    "ArmciProcess",
    "BGQParams",
    "ChaosConfig",
    "FaultPlan",
    "RankCrash",
    "ResourceFault",
    "__version__",
]
