"""``repro.serve`` — selector/actor layer + serving workloads on ARMCI.

Layer 1 (:mod:`~repro.serve.actor`, :mod:`~repro.serve.mailbox`,
:mod:`~repro.serve.termination`): actors with guarded multi-inbox
selector semantics, per-sender remote-accumulate ring mailboxes with
automatic sender-side aggregation, and four-counter wave termination
detection — the production-traffic layer the paper's PGAS subsystem
exists to carry.

Layer 2 (:mod:`~repro.serve.clients`, :mod:`~repro.serve.kv`): a
hash-sharded KV-store / parameter-server scenario driven by an
open-loop Zipf/bursty client population (millions of simulated clients
multiplexed onto client ranks), with per-request deadlines, dual-write
replication, client-driven failover, and exact golden-model auditing.

Nothing here is constructed by default: a job that never touches
``repro.serve`` runs byte-identical to one built before the package
existed.
"""

from .actor import Actor, ActorSystem
from .clients import (
    ClientLoadConfig,
    generate_requests,
    golden_state,
    requests_to_records,
    shard_of,
)
from .kv import KvClientActor, KvConfig, KvResult, KvShardActor, run_kv
from .mailbox import (
    FLAG_LATE,
    FLAG_REPLICA,
    FLAG_RESPOND,
    KIND_ACC,
    KIND_CTL_PAUSE,
    KIND_CTL_RESUME,
    KIND_GET,
    KIND_PUT,
    RESPONSE_BIAS,
    InboxSpec,
    Mailbox,
    SLOT_DTYPE,
)
from .termination import FourCounterTermination, merge_watermark

__all__ = [
    "Actor",
    "ActorSystem",
    "ClientLoadConfig",
    "FLAG_LATE",
    "FLAG_REPLICA",
    "FLAG_RESPOND",
    "FourCounterTermination",
    "InboxSpec",
    "KIND_ACC",
    "KIND_CTL_PAUSE",
    "KIND_CTL_RESUME",
    "KIND_GET",
    "KIND_PUT",
    "KvClientActor",
    "KvConfig",
    "KvResult",
    "KvShardActor",
    "Mailbox",
    "RESPONSE_BIAS",
    "SLOT_DTYPE",
    "generate_requests",
    "golden_state",
    "merge_watermark",
    "requests_to_records",
    "run_kv",
    "shard_of",
]
