"""Open-loop client load generation for the serving workload.

Millions of *simulated clients* are multiplexed onto the job's client
ranks: each rank owns a disjoint slice of the client population and
materializes that slice's entire request schedule up front as one
structured numpy array (vectorized — the per-request Python cost that
would otherwise dominate a million-client run never exists). Arrivals
are open-loop: a request's issue time never depends on any response.

Key popularity is Zipf(``zipf_alpha``) over the shared ``num_keys``
accumulate/get key space. PUT traffic instead targets per-rank
*private* key ranges appended after the shared range — accumulates
commute (and the deltas are integer-valued, so float addition is
exact in any order) while puts do not, so giving each client rank
exclusive last-writer-wins keys is what makes the golden model
deterministic without cross-rank ordering assumptions.

Arrival processes: ``"poisson"`` (exponential gaps at the rank's share
of the aggregate ``rate``) or ``"bursty"`` — a periodic on/off
intensity (``burst_factor`` times the mean rate for ``duty_cycle`` of
each ``burst_epoch``, correspondingly less in the off phase, same
long-run mean), realized exactly by inverting the integrated intensity
of a unit-rate Poisson stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ArmciError
from .mailbox import KIND_ACC, KIND_GET, KIND_PUT, SLOT_DTYPE

#: Request schedule row (superset of the mailbox slot payload fields).
REQUEST_DTYPE = np.dtype(
    [
        ("client", "<u8"),
        ("kind", "<u2"),
        ("key", "<u8"),
        ("value", "<f8"),
        ("arrival", "<f8"),
        ("deadline", "<f8"),
    ]
)


@dataclass(frozen=True)
class ClientLoadConfig:
    """Shape of the open-loop client population (see module docstring).

    ``rate`` is the aggregate offered load (requests/second of simulated
    time) across all client ranks. ``get_fraction`` + ``acc_fraction``
    must not exceed 1; the remainder is PUT traffic.
    """

    num_clients: int = 1024
    requests_per_client: int = 4
    num_keys: int = 256
    put_keys_per_rank: int = 16
    zipf_alpha: float = 1.0
    rate: float = 1e6
    arrival: str = "poisson"
    burst_factor: float = 4.0
    duty_cycle: float = 0.25
    burst_epoch: float = 1e-3
    get_fraction: float = 0.5
    acc_fraction: float = 0.4
    deadline: float = 5e-3
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ArmciError(f"need >= 1 client, got {self.num_clients}")
        if self.requests_per_client < 1:
            raise ArmciError(
                f"need >= 1 request per client, got {self.requests_per_client}"
            )
        if self.num_keys < 1:
            raise ArmciError(f"need >= 1 key, got {self.num_keys}")
        if self.put_keys_per_rank < 1:
            raise ArmciError(
                f"need >= 1 put key per rank, got {self.put_keys_per_rank}"
            )
        if self.rate <= 0:
            raise ArmciError(f"rate must be > 0, got {self.rate}")
        if self.arrival not in ("poisson", "bursty"):
            raise ArmciError(
                f"arrival must be 'poisson' or 'bursty', got {self.arrival!r}"
            )
        if not 0 < self.duty_cycle < 1:
            raise ArmciError(
                f"duty_cycle must be in (0, 1), got {self.duty_cycle}"
            )
        if self.burst_factor * self.duty_cycle > 1.0 + 1e-12:
            raise ArmciError(
                "burst_factor * duty_cycle must be <= 1 (the off phase "
                f"cannot have negative rate), got "
                f"{self.burst_factor * self.duty_cycle:.3f}"
            )
        if self.get_fraction < 0 or self.acc_fraction < 0:
            raise ArmciError("traffic fractions must be >= 0")
        if self.get_fraction + self.acc_fraction > 1.0 + 1e-12:
            raise ArmciError(
                "get_fraction + acc_fraction must be <= 1, got "
                f"{self.get_fraction + self.acc_fraction:.3f}"
            )
        if self.deadline <= 0:
            raise ArmciError(f"deadline must be > 0, got {self.deadline}")

    def total_keys(self, n_client_ranks: int) -> int:
        """Size of the whole key space including private PUT ranges."""
        return self.num_keys + n_client_ranks * self.put_keys_per_rank

    def client_slice(self, rank_index: int, n_client_ranks: int) -> tuple[int, int]:
        """This rank's ``[lo, hi)`` slice of the client population."""
        base, extra = divmod(self.num_clients, n_client_ranks)
        lo = rank_index * base + min(rank_index, extra)
        return lo, lo + base + (1 if rank_index < extra else 0)


def _rng(cfg: ClientLoadConfig, rank_index: int) -> np.random.Generator:
    return np.random.Generator(
        np.random.PCG64(cfg.seed * 1_000_003 + rank_index)
    )


def _zipf_keys(
    rng: np.random.Generator, n: int, num_keys: int, alpha: float
) -> np.ndarray:
    """Zipf(alpha) draws over ``[0, num_keys)`` via inverse-CDF."""
    weights = 1.0 / np.power(np.arange(1, num_keys + 1, dtype=np.float64), alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(n), side="right").astype(np.uint64)


def _arrival_times(
    cfg: ClientLoadConfig, rng: np.random.Generator, n: int, rank_rate: float
) -> np.ndarray:
    """Sorted arrival times for ``n`` requests at this rank's rate."""
    # Unit-rate Poisson measure; arrivals are its inverse image under
    # the (integrated) intensity function.
    measure = np.cumsum(rng.exponential(1.0, n))
    if cfg.arrival == "poisson":
        return measure / rank_rate
    # Bursty: intensity r*bf during [0, d*E) of each epoch, r*rl after,
    # with d*bf + (1-d)*rl == 1 so the long-run mean stays r.
    e = cfg.burst_epoch
    d = cfg.duty_cycle
    bf = cfg.burst_factor
    rl = max(0.0, (1.0 - bf * d) / (1.0 - d))
    per_epoch = rank_rate * e  # total measure accumulated per epoch
    burst_measure = rank_rate * bf * d * e
    epoch = np.floor(measure / per_epoch)
    rem = measure - epoch * per_epoch
    in_burst = rem <= burst_measure
    off = np.empty(n)
    off[in_burst] = rem[in_burst] / (rank_rate * bf)
    if rl > 0.0:
        tail = ~in_burst
        off[tail] = d * e + (rem[tail] - burst_measure) / (rank_rate * rl)
    else:
        # Degenerate off phase (rate 0): everything lands in the burst.
        off[~in_burst] = d * e
    return epoch * e + off


def generate_requests(
    cfg: ClientLoadConfig, rank_index: int, n_client_ranks: int
) -> np.ndarray:
    """The full request schedule of client rank ``rank_index``.

    Deterministic in ``(cfg.seed, rank_index)`` alone — the golden
    model regenerates identical schedules without talking to the ranks.
    Rows are sorted by arrival time.
    """
    if not 0 <= rank_index < n_client_ranks:
        raise ArmciError(
            f"rank_index {rank_index} out of range for {n_client_ranks} ranks"
        )
    lo, hi = cfg.client_slice(rank_index, n_client_ranks)
    n = (hi - lo) * cfg.requests_per_client
    out = np.zeros(n, dtype=REQUEST_DTYPE)
    if n == 0:
        return out
    rng = _rng(cfg, rank_index)
    rank_rate = cfg.rate / n_client_ranks
    # Each simulated client issues exactly requests_per_client requests;
    # the permutation interleaves the population over the timeline.
    clients = np.repeat(
        np.arange(lo, hi, dtype=np.uint64), cfg.requests_per_client
    )
    out["client"] = rng.permutation(clients)
    u = rng.random(n)
    get = u < cfg.get_fraction
    acc = ~get & (u < cfg.get_fraction + cfg.acc_fraction)
    put = ~get & ~acc
    out["kind"][get] = KIND_GET
    out["kind"][acc] = KIND_ACC
    out["kind"][put] = KIND_PUT
    shared = _zipf_keys(rng, n, cfg.num_keys, cfg.zipf_alpha)
    out["key"] = shared
    put_lo = cfg.num_keys + rank_index * cfg.put_keys_per_rank
    out["key"][put] = put_lo + rng.integers(
        0, cfg.put_keys_per_rank, int(put.sum()), dtype=np.uint64
    )
    # Integer-valued floats: sums are exact in any delivery order.
    out["value"][acc] = rng.integers(1, 10, int(acc.sum())).astype(np.float64)
    out["value"][put] = rng.integers(0, 1000, int(put.sum())).astype(np.float64)
    out["arrival"] = _arrival_times(cfg, rng, n, rank_rate)
    out["deadline"] = out["arrival"] + cfg.deadline
    return out


def golden_state(cfg: ClientLoadConfig, n_client_ranks: int) -> np.ndarray:
    """Reference key-space state after every mutation has been applied.

    Accumulates sum (order-free by construction); puts are last-writer-
    wins in arrival order, well-defined because each rank's PUT keys are
    private to it.
    """
    state = np.zeros(cfg.total_keys(n_client_ranks))
    for idx in range(n_client_ranks):
        req = generate_requests(cfg, idx, n_client_ranks)
        acc = req["kind"] == KIND_ACC
        np.add.at(state, req["key"][acc].astype(np.intp), req["value"][acc])
        put = np.flatnonzero(req["kind"] == KIND_PUT)
        if len(put):
            # Last write per key: reverse, keep first occurrence.
            keys = req["key"][put][::-1]
            _uniq, first = np.unique(keys, return_index=True)
            winners = put[len(put) - 1 - first]
            state[req["key"][winners].astype(np.intp)] = req["value"][winners]
    return state


def shard_of(keys, num_shards: int) -> np.ndarray:
    """Stable hash shard of each key (splitmix64 finalizer mod shards)."""
    z = np.asarray(keys, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = z + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(num_shards)).astype(np.int64)


def requests_to_records(req: np.ndarray) -> np.ndarray:
    """Reshape schedule rows into mailbox slot records (seq unset)."""
    rec = np.zeros(len(req), dtype=SLOT_DTYPE)
    rec["kind"] = req["kind"]
    rec["client"] = req["client"].astype(np.uint32)
    rec["key"] = req["key"]
    rec["value"] = req["value"]
    rec["arrival"] = req["arrival"]
    rec["deadline"] = req["deadline"]
    return rec
