"""Selector/actor runtime over the ARMCI runtime.

An :class:`ActorSystem` lives on every rank of the job (SPMD: every
rank constructs one and takes part in every collective
:meth:`~ActorSystem.register` call). An actor is owned by exactly one
rank; other ranks address it by name. Messages are fixed-format records
(:data:`~repro.serve.mailbox.SLOT_DTYPE`); delivery is per-(sender,
inbox) FIFO via the remote-accumulate ring lanes of
:mod:`repro.serve.mailbox`, with **automatic sender-side aggregation**:
everything posted between two ``flush`` calls toward one destination
rank ships as a single combined vector put (one
:class:`~repro.armci.aggregate.AggregateHandle` flush), regardless of
how many actors/inboxes it spans.

Selector semantics: an actor declares several named inboxes in priority
order and may *guard* any of them (``Actor.guard`` returning ``False``
leaves that inbox's lanes untouched — messages wait in the ring and
backpressure propagates to senders through the lane's bounded
capacity).

Backpressure composes with the runtime's existing credit/FIFO flow
control: lane capacity bounds what a sender may commit (refreshing the
consumer's ``head`` costs one AMO); beneath that, the aggregate flush
itself is subject to FIFO credits and deadline propagation like any
ARMCI operation. ``flush`` is *best-effort*: what fits in the lanes
goes out, the rest stays queued locally — never blocking, which is what
keeps termination waves deadlock-free.

Termination bookkeeping is per-peer (``sent_to[r]`` / ``recv_from[r]``)
so that when a rank dies, *both* sides of its flows drop out of the
wave stats symmetrically — otherwise a survivor's global send counter
would forever exceed the global receive counter and the four-counter
protocol would never fire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

import numpy as np

from ..errors import ArmciError, ProcessFailedError
from ..sim.primitives import Delay
from .mailbox import InboxSpec, Mailbox, SLOT_DTYPE, StagingBuffer, stage_batch

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.runtime import ArmciProcess
    from .termination import FourCounterTermination


class Actor:
    """Base class for actors. Override :meth:`on_batch` (and optionally
    :meth:`guard`). ``on_batch`` may be a plain method or a generator
    (it is ``yield from``-ed when it returns one), so handlers may issue
    ARMCI operations."""

    def on_batch(self, system: "ActorSystem", inbox: str, sender: int,
                 records: np.ndarray):
        raise NotImplementedError

    def guard(self, inbox: str) -> bool:
        """Selector guard: ``False`` defers the inbox (ring untouched)."""
        return True


class _Registration:
    """One registered actor as seen from any rank."""

    __slots__ = ("name", "owner", "actor", "specs", "mailboxes")

    def __init__(self, name, owner, actor, specs, mailboxes) -> None:
        self.name = name
        self.owner = owner
        self.actor = actor  # None on non-owner ranks
        self.specs = specs
        self.mailboxes = mailboxes  # {inbox name: Mailbox}


class ActorSystem:
    """Per-rank actor runtime (see module docstring)."""

    #: Cap on records drained per lane poll and sent per lane flush leg.
    MAX_BATCH = 4096

    def __init__(self, rt: "ArmciProcess", poll_interval: float = 2e-6) -> None:
        if poll_interval <= 0:
            raise ArmciError(f"poll_interval must be > 0, got {poll_interval}")
        self.rt = rt
        self.poll_interval = poll_interval
        self._registry: dict[str, _Registration] = {}
        self._local: list[_Registration] = []  # actors owned here, in order
        #: Outbound queues: {dst rank: {(actor, inbox): [record arrays]}}.
        self._outbox: dict[int, dict[tuple[str, str], list[np.ndarray]]] = {}
        #: Loopback queue (owner == self): no ring round-trip.
        self._local_queue: list[tuple[str, str, np.ndarray]] = []
        #: Sender-side lane views, one per (actor, inbox) posted to.
        self._lanes: dict[tuple[str, str], Any] = {}
        self._scratch = StagingBuffer()
        self._sent_to: dict[int, int] = {}
        self._recv_from: dict[int, int] = {}
        self._dead: set[int] = set()
        self._peer_death_hooks: list[Callable[[int], None]] = []
        #: Workload drivers set this while they still have work pending
        #: that is not yet visible in any queue (e.g. future arrivals).
        self.busy = False
        job = rt.job
        if getattr(job, "serve_metrics", None) is None:
            from ..obs.metrics import MetricsRegistry

            job.serve_metrics = MetricsRegistry()
        self.metrics = job.serve_metrics

    # ----------------------------------------------------- registration

    def register(
        self,
        name: str,
        owner: int,
        actor: Actor | None,
        inboxes: tuple[InboxSpec, ...],
    ) -> Generator[Any, Any, None]:
        """Collectively register one actor (every rank must call, with
        identical ``name``/``owner``/``inboxes``; ``actor`` is retained
        only on the owner)."""
        if name in self._registry:
            raise ArmciError(f"actor {name!r} already registered")
        if not inboxes:
            raise ArmciError(f"actor {name!r} needs at least one inbox")
        rt = self.rt
        if rt.rank == owner and actor is None:
            raise ArmciError(f"owner rank {owner} must supply actor {name!r}")
        mailboxes = {}
        for spec in inboxes:
            senders = spec.senders
            if senders is None:
                senders = tuple(range(rt.world.num_procs))
            else:
                senders = tuple(senders)
            stride = 16 + spec.capacity * SLOT_DTYPE.itemsize
            alloc = yield from rt.malloc(len(senders) * stride)
            mailboxes[spec.name] = Mailbox(rt, owner, spec, senders, alloc)
        reg = _Registration(
            name, owner, actor if rt.rank == owner else None,
            tuple(inboxes), mailboxes,
        )
        self._registry[name] = reg
        if rt.rank == owner:
            self._local.append(reg)
        rt.trace.incr("serve.actors_registered")

    def on_peer_dead(self, hook: Callable[[int], None]) -> None:
        """Register a callback fired once per rank discovered dead."""
        self._peer_death_hooks.append(hook)

    def actor_of(self, name: str) -> Actor | None:
        """The local actor object (``None`` unless this rank owns it)."""
        return self._registry[name].actor

    # ----------------------------------------------------------- posting

    def post(self, name: str, inbox: str, records: np.ndarray) -> int:
        """Queue records for an actor's inbox (local, non-blocking).

        Returns the number queued (0 when the owner is known dead —
        dropped and counted, like a send into a crashed rank).
        """
        reg = self._registry[name]
        if len(records) == 0:
            return 0
        if records.dtype != SLOT_DTYPE:
            raise ArmciError(
                f"records must use SLOT_DTYPE, got {records.dtype}"
            )
        dst = reg.owner
        if dst in self._dead or self.rt.world.is_failed(dst):
            self._note_dead(dst)
            self.rt.trace.incr("serve.records_dropped_dead", len(records))
            return 0
        if inbox not in reg.mailboxes:
            raise ArmciError(f"actor {name!r} has no inbox {inbox!r}")
        n = len(records)
        self._sent_to[dst] = self._sent_to.get(dst, 0) + n
        self.rt.trace.incr("serve.records_posted", n)
        if dst == self.rt.rank:
            self._local_queue.append((name, inbox, records.copy()))
            self.rt.trace.incr("serve.local_deliveries", n)
        else:
            self._outbox.setdefault(dst, {}).setdefault((name, inbox), []).append(
                records.copy()
            )
        return n

    def outbox_pending(self) -> int:
        """Records queued locally but not yet committed to any ring."""
        return sum(
            len(a)
            for per_dst in self._outbox.values()
            for arrays in per_dst.values()
            for a in arrays
        )

    # ------------------------------------------------------------ flush

    def flush(self) -> Generator[Any, Any, bool]:
        """Ship queued records, best effort; ``True`` if any were sent.

        Per destination rank: stage what fits into each target lane
        under one aggregate handle, flush it (one combined vector put),
        fence, then commit every lane with a remote ``fetch_add``.
        Lanes without room defer their leftovers locally (backpressure);
        a dead destination drops its whole queue (counted).
        """
        rt = self.rt
        progress = False
        for dst in sorted(self._outbox):
            per_dst = self._outbox[dst]
            if not per_dst:
                continue
            if dst in self._dead or rt.world.is_failed(dst):
                self._drop_dst(dst)
                continue
            agg = rt.aggregate(dst)
            agg.on_flush = self._on_wire_flush
            commits: list[tuple[Any, int]] = []
            try:
                for key in sorted(per_dst):
                    arrays = per_dst[key]
                    if not arrays:
                        continue
                    records = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
                    lane = self._sender_lane(key)
                    want = min(len(records), self.MAX_BATCH)
                    if lane.room < want:
                        yield from lane.refresh_head(rt)
                    n_send = min(want, lane.room)
                    if n_send <= 0:
                        per_dst[key] = [records]
                        rt.trace.incr("serve.backpressure_deferrals")
                        continue
                    stage_batch(rt, agg, self._scratch, lane, records[:n_send])
                    commits.append((lane, n_send))
                    if n_send < len(records):
                        per_dst[key] = [records[n_send:]]
                        rt.trace.incr("serve.backpressure_deferrals")
                    else:
                        per_dst[key] = []
                if not commits:
                    continue
                handle = yield from agg.flush_if_pending()
                if handle is not None:
                    yield from rt.fence(dst)
                    rt.trace.incr("serve.wire_flushes")
                for lane, n in commits:
                    yield from rt.rmw(dst, lane.commit_addr, "fetch_add", n)
                    lane.tail += n
                    progress = True
            except ProcessFailedError:
                if rt.world.is_failed(rt.rank):
                    raise
                # Lanes whose commit already landed advanced their tail
                # above; everything else (staged-but-uncommitted data
                # included) is simply dropped with the dead rank.
                self._drop_dst(dst)
        return progress

    def _on_wire_flush(self, total_bytes: int, segments: int) -> None:
        """Aggregate-handle observer: batching efficiency dashboards."""
        self.metrics.counter("serve.wire_bytes").incr(total_bytes)
        self.metrics.counter("serve.wire_segments").incr(segments)

    def _sender_lane(self, key: tuple[str, str]):
        lane = self._lanes.get(key)
        if lane is None:
            name, inbox = key
            mailbox = self._registry[name].mailboxes[inbox]
            lane = self._lanes[key] = mailbox.sender_lane(self.rt.rank)
        return lane

    def _drop_dst(self, dst: int) -> None:
        per_dst = self._outbox.pop(dst, {})
        dropped = sum(len(a) for arrays in per_dst.values() for a in arrays)
        if dropped:
            self.rt.trace.incr("serve.records_dropped_dead", dropped)
        self._note_dead(dst)

    def _note_dead(self, dst: int) -> None:
        if dst in self._dead:
            return
        self._dead.add(dst)
        self.rt.trace.incr("serve.peer_deaths")
        for hook in self._peer_death_hooks:
            hook(dst)

    # ---------------------------------------------------------- polling

    def poll_once(self) -> Generator[Any, Any, bool]:
        """Drain deliverable messages once; ``True`` if any delivered.

        Loopback queue first (guard-deferred batches re-queue in order),
        then every locally-owned actor's inboxes in priority order,
        every permitted sender lane per inbox.
        """
        delivered = False
        if self._local_queue:
            pending, self._local_queue = self._local_queue, []
            for name, inbox, records in pending:
                reg = self._registry[name]
                if reg.actor is not None and reg.actor.guard(inbox):
                    self._recv_from[self.rt.rank] = (
                        self._recv_from.get(self.rt.rank, 0) + len(records)
                    )
                    self.rt.trace.incr("serve.records_delivered", len(records))
                    yield from self._deliver(reg, inbox, self.rt.rank, records)
                    delivered = True
                else:
                    self._local_queue.append((name, inbox, records))
                    self.rt.trace.incr("serve.guard_deferrals")
        for reg in self._local:
            for spec in reg.specs:
                if not reg.actor.guard(spec.name):
                    self.rt.trace.incr("serve.guard_deferrals")
                    continue
                mailbox = reg.mailboxes[spec.name]
                for sender in mailbox.senders:
                    if sender == self.rt.rank:
                        continue  # loopback never touches the ring
                    records = mailbox.poll(sender)
                    if records is None:
                        continue
                    self._recv_from[sender] = (
                        self._recv_from.get(sender, 0) + len(records)
                    )
                    yield from self._deliver(reg, spec.name, sender, records)
                    delivered = True
        return delivered

    def _deliver(self, reg, inbox: str, sender: int, records) -> Generator:
        result = reg.actor.on_batch(self, inbox, sender, records)
        if result is not None and hasattr(result, "send"):
            yield from result

    # ------------------------------------------------------ termination

    @property
    def idle(self) -> bool:
        """No local work in flight (rings excluded: unconsumed ring data
        is caught by the sent/recv imbalance in the wave stats)."""
        return (
            not self.busy
            and not self._local_queue
            and self.outbox_pending() == 0
        )

    def wave_stats(self) -> tuple[int, int, bool]:
        """``(sent, recv, idle)`` over *alive* peers only."""
        world = self.rt.world
        sent = sum(
            n for r, n in self._sent_to.items() if not world.is_failed(r)
        )
        recv = sum(
            n for r, n in self._recv_from.items() if not world.is_failed(r)
        )
        return sent, recv, self.idle

    def _service(self) -> Generator[Any, Any, None]:
        """Keep draining while parked inside a termination wave.

        The explicit ``rt.progress()`` matters in default (D) mode: a
        rank that only sleeps between polls never services its progress
        context, so peers' ring commits would never land (Fig. 9's
        point, biting an idle server instead of a computing one).
        """
        yield from self.rt.progress()
        yield from self.poll_once()
        yield from self.flush()

    def run(
        self,
        detector: "FourCounterTermination",
        step: Callable[[], Generator] | None = None,
    ) -> Generator[Any, Any, None]:
        """Poll/step/flush until the detector declares termination.

        ``step`` is the workload's chance to inject new messages (e.g.
        the open-loop client driver); it is a generator returning truthy
        when it made progress. When nothing moved and the system is not
        yet idle, the loop sleeps one ``poll_interval``.
        """
        while True:
            # Explicit progress first (see _service): deliver whatever
            # peers have pushed at our context before polling the rings.
            yield from self.rt.progress()
            progress = yield from self.poll_once()
            if step is not None:
                progress = bool((yield from step())) or progress
            progress = bool((yield from self.flush())) or progress
            if not self.idle:
                if not progress:
                    yield Delay(self.poll_interval)
                continue
            if progress:
                continue  # give just-flushed peers a chance to respond
            done = yield from detector.wave(
                self.wave_stats(), service=self._service
            )
            if done:
                return
            yield Delay(self.poll_interval)
